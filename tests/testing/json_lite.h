#ifndef SPQ_TESTS_TESTING_JSON_LITE_H_
#define SPQ_TESTS_TESTING_JSON_LITE_H_

// Minimal recursive-descent JSON parser used by the observability tests
// to prove the trace exports are machine-loadable (chrome://tracing JSON,
// JSONL). Strict enough to reject what real consumers reject — trailing
// garbage, unterminated strings, bare words — and no more; it is a test
// validator, not a production parser.

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace spq::testing {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }

  /// Pointer to the member value, nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonLite {
 public:
  /// Parses `text` as exactly one JSON document (trailing whitespace OK,
  /// trailing garbage is an error). Returns false on any syntax error.
  static bool Parse(const std::string& text, JsonValue* out) {
    JsonLite parser(text);
    if (!parser.ParseValue(out)) return false;
    parser.SkipWhitespace();
    return parser.pos_ == text.size();
  }

 private:
  explicit JsonLite(const std::string& text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return ConsumeLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return ConsumeLiteral("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return ConsumeLiteral("null");
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      SkipWhitespace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              const bool hex = (h >= '0' && h <= '9') ||
                               (h >= 'a' && h <= 'f') || (h >= 'A' && h <= 'F');
              if (!hex) return false;
            }
            pos_ += 4;
            out->push_back('?');  // tests only check validity, not decoding
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number_value = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace spq::testing

#endif  // SPQ_TESTS_TESTING_JSON_LITE_H_
