#include "dfs/datanode.h"

#include <gtest/gtest.h>

namespace spq::dfs {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return b; }

TEST(DataNodeTest, PutAndGetRoundTrip) {
  DataNode node(0);
  ASSERT_TRUE(node.Put(1, Bytes({1, 2, 3})).ok());
  auto data = node.Get(1);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(**data, Bytes({1, 2, 3}));
  EXPECT_TRUE(node.Holds(1));
  EXPECT_EQ(node.num_blocks(), 1u);
  EXPECT_EQ(node.stored_bytes(), 3u);
}

TEST(DataNodeTest, GetMissingBlockIsNotFound) {
  DataNode node(0);
  EXPECT_TRUE(node.Get(42).status().IsNotFound());
}

TEST(DataNodeTest, DuplicatePutRejected) {
  DataNode node(0);
  ASSERT_TRUE(node.Put(1, Bytes({1})).ok());
  EXPECT_TRUE(node.Put(1, Bytes({2})).IsInvalidArgument());
  EXPECT_EQ(node.stored_bytes(), 1u);
}

TEST(DataNodeTest, KilledNodeRefusesIO) {
  DataNode node(3);
  ASSERT_TRUE(node.Put(1, Bytes({9})).ok());
  node.Kill();
  EXPECT_FALSE(node.alive());
  EXPECT_TRUE(node.Get(1).status().IsIOError());
  EXPECT_TRUE(node.Put(2, Bytes({1})).IsIOError());
}

TEST(DataNodeTest, RestartRestoresBlocks) {
  DataNode node(3);
  ASSERT_TRUE(node.Put(1, Bytes({9, 8})).ok());
  node.Kill();
  node.Restart();
  EXPECT_TRUE(node.alive());
  auto data = node.Get(1);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(**data, Bytes({9, 8}));
}

TEST(DataNodeTest, EmptyBlockAllowed) {
  DataNode node(0);
  ASSERT_TRUE(node.Put(5, {}).ok());
  auto data = node.Get(5);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE((*data)->empty());
}

}  // namespace
}  // namespace spq::dfs
