#include "dfs/mini_dfs.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace spq::dfs {
namespace {

std::vector<uint8_t> RandomBytes(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextUint32(256));
  return data;
}

TEST(MiniDfsTest, WriteReadRoundTrip) {
  MiniDfs dfs({.num_datanodes = 4, .block_size = 100, .replication = 2});
  auto data = RandomBytes(1234, 7);
  ASSERT_TRUE(dfs.WriteFile("f", data).ok());
  auto read = dfs.ReadFile("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(MiniDfsTest, EmptyFileRoundTrip) {
  MiniDfs dfs({.num_datanodes = 3, .block_size = 64, .replication = 3});
  ASSERT_TRUE(dfs.WriteFile("empty", {}).ok());
  auto read = dfs.ReadFile("empty");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  auto meta = dfs.GetMetadata("empty");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->blocks.size(), 1u);  // one empty block, no special case
}

TEST(MiniDfsTest, FilesSplitIntoBlockSizedBlocks) {
  MiniDfs dfs({.num_datanodes = 4, .block_size = 100, .replication = 1});
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(250, 1)).ok());
  auto meta = dfs.GetMetadata("f");
  ASSERT_TRUE(meta.ok());
  ASSERT_EQ(meta->blocks.size(), 3u);
  EXPECT_EQ(meta->blocks[0].length, 100u);
  EXPECT_EQ(meta->blocks[1].length, 100u);
  EXPECT_EQ(meta->blocks[2].length, 50u);
  EXPECT_EQ(meta->size, 250u);
}

TEST(MiniDfsTest, ReplicasLandOnDistinctNodes) {
  MiniDfs dfs({.num_datanodes = 8, .block_size = 50, .replication = 3});
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(500, 2)).ok());
  auto meta = dfs.GetMetadata("f");
  ASSERT_TRUE(meta.ok());
  for (const auto& block : meta->blocks) {
    std::set<NodeId> nodes(block.replicas.begin(), block.replicas.end());
    EXPECT_EQ(nodes.size(), 3u) << "block " << block.block;
    for (NodeId n : nodes) {
      EXPECT_TRUE(dfs.datanode(n).Holds(block.block));
    }
  }
}

TEST(MiniDfsTest, WriteOnceSemantics) {
  MiniDfs dfs({.num_datanodes = 3});
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(10, 3)).ok());
  EXPECT_TRUE(dfs.WriteFile("f", RandomBytes(10, 4)).IsInvalidArgument());
}

TEST(MiniDfsTest, ReadMissingFileIsNotFound) {
  MiniDfs dfs;
  EXPECT_TRUE(dfs.ReadFile("nope").status().IsNotFound());
  EXPECT_TRUE(dfs.GetMetadata("nope").status().IsNotFound());
}

TEST(MiniDfsTest, ReadBlockOutOfRange) {
  MiniDfs dfs({.num_datanodes = 3, .block_size = 100});
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(50, 5)).ok());
  EXPECT_TRUE(dfs.ReadBlock("f", 1).status().IsOutOfRange());
}

TEST(MiniDfsTest, SurvivesReplicationMinusOneFailures) {
  MiniDfs dfs({.num_datanodes = 5, .block_size = 64, .replication = 3,
               .seed = 9});
  auto data = RandomBytes(1000, 6);
  ASSERT_TRUE(dfs.WriteFile("f", data).ok());
  // Kill two nodes — any block still has at least one live replica.
  dfs.datanode(0).Kill();
  dfs.datanode(1).Kill();
  EXPECT_EQ(dfs.alive_datanodes(), 3u);
  auto read = dfs.ReadFile("f");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST(MiniDfsTest, AllReplicasDeadIsIOError) {
  MiniDfs dfs({.num_datanodes = 3, .block_size = 64, .replication = 2});
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(32, 7)).ok());
  for (NodeId n = 0; n < 3; ++n) dfs.datanode(n).Kill();
  EXPECT_TRUE(dfs.ReadFile("f").status().IsIOError());
}

TEST(MiniDfsTest, RestartedNodeServesAgain) {
  MiniDfs dfs({.num_datanodes = 3, .block_size = 64, .replication = 3});
  auto data = RandomBytes(128, 8);
  ASSERT_TRUE(dfs.WriteFile("f", data).ok());
  for (NodeId n = 0; n < 3; ++n) dfs.datanode(n).Kill();
  dfs.datanode(1).Restart();
  auto read = dfs.ReadFile("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(MiniDfsTest, WriteFailsWithoutEnoughLiveNodes) {
  MiniDfs dfs({.num_datanodes = 3, .replication = 3});
  dfs.datanode(2).Kill();
  EXPECT_TRUE(dfs.WriteFile("f", RandomBytes(10, 9)).IsIOError());
}

TEST(MiniDfsTest, PlacementBalancesLoad) {
  MiniDfs dfs({.num_datanodes = 4, .block_size = 10, .replication = 1,
               .seed = 3});
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(400, 10)).ok());  // 40 blocks
  // Least-loaded placement: every node ends up with ~10 blocks.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_NEAR(static_cast<double>(dfs.datanode(n).num_blocks()), 10.0, 1.0);
  }
}

// ----- per-block CRC-32C: corruption is detected, never served -----

TEST(MiniDfsTest, CorruptReplicaDetectedAndFailedOver) {
  MiniDfs dfs({.num_datanodes = 4, .block_size = 64, .replication = 2,
               .seed = 3});
  auto data = RandomBytes(200, 21);
  ASSERT_TRUE(dfs.WriteFile("f", data).ok());
  auto meta = dfs.GetMetadata("f");
  ASSERT_TRUE(meta.ok());
  for (const auto& block : meta->blocks) {
    ASSERT_TRUE(
        dfs.datanode(block.replicas[0]).CorruptReplica(block.block, 5).ok());
  }
  // Every read of a corrupted replica fails its CRC and fails over to the
  // intact copy — the data comes back bit-exact.
  auto read = dfs.ReadFile("f");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
  EXPECT_GE(dfs.corrupt_replicas_detected(), 1u);
}

TEST(MiniDfsTest, AllReplicasCorruptIsIOErrorNeverGarbage) {
  MiniDfs dfs({.num_datanodes = 3, .block_size = 128, .replication = 2});
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(100, 22)).ok());
  auto meta = dfs.GetMetadata("f");
  ASSERT_TRUE(meta.ok());
  for (NodeId node : meta->blocks[0].replicas) {
    ASSERT_TRUE(dfs.datanode(node).CorruptReplica(meta->blocks[0].block,
                                                  0).ok());
  }
  EXPECT_TRUE(dfs.ReadFile("f").status().IsIOError());
  EXPECT_TRUE(dfs.ReadBlock("f", 0).status().IsIOError());
  EXPECT_GE(dfs.corrupt_replicas_detected(), 2u);
}

TEST(MiniDfsTest, InjectedStorageFaultsDetectedByChecksums) {
  DfsOptions options{.num_datanodes = 6, .block_size = 128,
                     .replication = 3, .seed = 4};
  options.faults.storage_fault_prob = 0.3;
  options.faults.seed = 77;
  MiniDfs dfs(options);
  auto data = RandomBytes(1000, 23);  // 8 blocks, 24 replica writes/reads
  ASSERT_TRUE(dfs.WriteFile("f", data).ok());
  // Deterministic for this seed: faults were injected on some replicas,
  // every one was caught by the length/CRC check, and triple replication
  // kept each block readable — so the payload survives bit-exact.
  auto read = dfs.ReadFile("f");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
  EXPECT_GT(dfs.faulty_replica_writes() + dfs.corrupt_replicas_detected(),
            0u);
}

TEST(MiniDfsTest, ListAndDelete) {
  MiniDfs dfs;
  ASSERT_TRUE(dfs.WriteFile("a", RandomBytes(5, 11)).ok());
  ASSERT_TRUE(dfs.WriteFile("b", RandomBytes(5, 12)).ok());
  EXPECT_EQ(dfs.ListFiles().size(), 2u);
  EXPECT_TRUE(dfs.FileExists("a"));
  ASSERT_TRUE(dfs.DeleteFile("a").ok());
  EXPECT_FALSE(dfs.FileExists("a"));
  EXPECT_TRUE(dfs.DeleteFile("a").IsNotFound());
  EXPECT_EQ(dfs.ListFiles().size(), 1u);
}

TEST(MiniDfsTest, ReplicationClampedToClusterSize) {
  MiniDfs dfs({.num_datanodes = 2, .replication = 5});
  EXPECT_EQ(dfs.options().replication, 2u);
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(10, 13)).ok());
}

TEST(MiniDfsTest, DegenerateOptionsAreSanitized) {
  MiniDfs dfs({.num_datanodes = 0, .block_size = 0, .replication = 0});
  EXPECT_EQ(dfs.num_datanodes(), 1u);
  ASSERT_TRUE(dfs.WriteFile("f", RandomBytes(3, 14)).ok());
  auto read = dfs.ReadFile("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 3u);
}

}  // namespace
}  // namespace spq::dfs
