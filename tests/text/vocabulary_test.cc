#include "text/vocabulary.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace spq::text {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("italian"), 0u);
  EXPECT_EQ(vocab.Intern("gourmet"), 1u);
  EXPECT_EQ(vocab.Intern("sushi"), 2u);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  TermId id = vocab.Intern("pizza");
  EXPECT_EQ(vocab.Intern("pizza"), id);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, LookupFindsInternedTerm) {
  Vocabulary vocab;
  TermId id = vocab.Intern("wine");
  auto found = vocab.Lookup("wine");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, id);
}

TEST(VocabularyTest, LookupMissingReturnsNotFound) {
  Vocabulary vocab;
  EXPECT_TRUE(vocab.Lookup("nope").status().IsNotFound());
}

TEST(VocabularyTest, TermRoundTrip) {
  Vocabulary vocab;
  TermId id = vocab.Intern("cheap");
  auto term = vocab.Term(id);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(*term, "cheap");
}

TEST(VocabularyTest, TermOutOfRange) {
  Vocabulary vocab;
  EXPECT_TRUE(vocab.Term(99).status().IsOutOfRange());
}

TEST(VocabularyTest, FillSyntheticCreatesNTerms) {
  Vocabulary vocab;
  vocab.FillSynthetic(1000);
  EXPECT_EQ(vocab.size(), 1000u);
  auto t0 = vocab.Term(0);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(*t0, "t0");
  auto t999 = vocab.Term(999);
  ASSERT_TRUE(t999.ok());
  EXPECT_EQ(*t999, "t999");
}

TEST(VocabularyTest, EmptyByDefault) {
  Vocabulary vocab;
  EXPECT_TRUE(vocab.empty());
  EXPECT_EQ(vocab.size(), 0u);
}

TEST(VocabularyTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "spq_vocab.txt").string();
  Vocabulary vocab;
  vocab.Intern("italian");
  vocab.Intern("gourmet");
  vocab.Intern("sushi");
  ASSERT_TRUE(vocab.Save(path).ok());

  Vocabulary loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 3u);
  // Ids are preserved (line order = id order).
  ASSERT_TRUE(loaded.Lookup("italian").ok());
  EXPECT_EQ(*loaded.Lookup("italian"), 0u);
  EXPECT_EQ(*loaded.Lookup("sushi"), 2u);
  std::remove(path.c_str());
}

TEST(VocabularyTest, LoadIntoNonEmptyRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "spq_vocab2.txt").string();
  Vocabulary vocab;
  vocab.Intern("a");
  ASSERT_TRUE(vocab.Save(path).ok());
  Vocabulary occupied;
  occupied.Intern("x");
  EXPECT_TRUE(occupied.Load(path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(VocabularyTest, LoadRejectsDuplicatesAndBlankLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "spq_vocab3.txt").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a\na\n", f);
    std::fclose(f);
  }
  Vocabulary dup;
  EXPECT_TRUE(dup.Load(path).IsInvalidArgument());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a\n\nb\n", f);
    std::fclose(f);
  }
  Vocabulary blank;
  EXPECT_TRUE(blank.Load(path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(VocabularyTest, LoadMissingFileIsIOError) {
  Vocabulary vocab;
  EXPECT_TRUE(vocab.Load("/nonexistent/vocab.txt").IsIOError());
}

}  // namespace
}  // namespace spq::text
