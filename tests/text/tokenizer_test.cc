#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace spq::text {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  auto tokens = Tokenize("italian, gourmet!");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "italian");
  EXPECT_EQ(tokens[1], "gourmet");
}

TEST(TokenizerTest, LowercasesAscii) {
  auto tokens = Tokenize("Italian SPAGHETTI");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "italian");
  EXPECT_EQ(tokens[1], "spaghetti");
}

TEST(TokenizerTest, KeepsDigits) {
  auto tokens = Tokenize("route66 a1");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "route66");
  EXPECT_EQ(tokens[1], "a1");
}

TEST(TokenizerTest, EmptyAndPunctuationOnlyInputs) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ,,, ---").empty());
}

TEST(TokenizerTest, TokenizeToSetInternsAndDeduplicates) {
  Vocabulary vocab;
  KeywordSet set = TokenizeToSet("pizza pasta pizza", vocab);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(vocab.size(), 2u);
  ASSERT_TRUE(vocab.Lookup("pizza").ok());
  EXPECT_TRUE(set.Contains(*vocab.Lookup("pizza")));
  EXPECT_TRUE(set.Contains(*vocab.Lookup("pasta")));
}

TEST(TokenizerTest, ReadOnlyTokenizerSkipsUnknownTerms) {
  Vocabulary vocab;
  vocab.Intern("known");
  KeywordSet set = TokenizeToSetReadOnly("known unknown", vocab);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(vocab.size(), 1u);  // unchanged
}

TEST(TokenizerTest, ReadOnlyWithAllUnknownGivesEmptySet) {
  Vocabulary vocab;
  KeywordSet set = TokenizeToSetReadOnly("a b c", vocab);
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace spq::text
