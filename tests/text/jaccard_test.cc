#include "text/jaccard.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace spq::text {
namespace {

TEST(JaccardTest, PaperTable2Scores) {
  // Example 1 / Table 2 of the paper: q.W = {italian}.
  // Terms: italian=0, gourmet=1, chinese=2, cheap=3, sushi=4, wine=5,
  // mexican=6, exotic=7, greek=8, traditional=9, spaghetti=10, indian=11.
  KeywordSet query({0});
  EXPECT_DOUBLE_EQ(Jaccard(KeywordSet({0, 1}), query), 0.5);   // f1
  EXPECT_DOUBLE_EQ(Jaccard(KeywordSet({2, 3}), query), 0.0);   // f2
  EXPECT_DOUBLE_EQ(Jaccard(KeywordSet({4, 5}), query), 0.0);   // f3
  EXPECT_DOUBLE_EQ(Jaccard(KeywordSet({0}), query), 1.0);      // f4
  EXPECT_DOUBLE_EQ(Jaccard(KeywordSet({6, 7}), query), 0.0);   // f5
  EXPECT_DOUBLE_EQ(Jaccard(KeywordSet({0, 10}), query), 0.5);  // f7
  EXPECT_DOUBLE_EQ(Jaccard(KeywordSet({11}), query), 0.0);     // f8
}

TEST(JaccardTest, SymmetricAndBounded) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<TermId> a_ids, b_ids;
    for (int i = 0; i < 10; ++i) {
      a_ids.push_back(rng.NextUint32(20));
      b_ids.push_back(rng.NextUint32(20));
    }
    KeywordSet a(a_ids), b(b_ids);
    const double ab = Jaccard(a, b);
    EXPECT_DOUBLE_EQ(ab, Jaccard(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

TEST(JaccardTest, IdenticalSetsScoreOne) {
  KeywordSet a({4, 8, 15, 16, 23, 42});
  EXPECT_DOUBLE_EQ(Jaccard(a, a), 1.0);
}

TEST(JaccardTest, EmptySetsScoreZero) {
  KeywordSet empty;
  KeywordSet a({1});
  EXPECT_DOUBLE_EQ(Jaccard(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard(a, empty), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard(empty, a), 0.0);
}

TEST(JaccardUpperBoundTest, ShortFeaturesAreUnbounded) {
  // |f.W| < |q.W| -> bound 1 (Eq. 1, first branch).
  EXPECT_DOUBLE_EQ(JaccardUpperBound(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(JaccardUpperBound(3, 1), 1.0);
  EXPECT_DOUBLE_EQ(JaccardUpperBound(3, 2), 1.0);
}

TEST(JaccardUpperBoundTest, LongFeaturesBoundedByRatio) {
  // |f.W| >= |q.W| -> |q.W| / |f.W| (Eq. 1, second branch).
  EXPECT_DOUBLE_EQ(JaccardUpperBound(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(JaccardUpperBound(3, 6), 0.5);
  EXPECT_DOUBLE_EQ(JaccardUpperBound(1, 10), 0.1);
  EXPECT_DOUBLE_EQ(JaccardUpperBound(5, 100), 0.05);
}

TEST(JaccardUpperBoundTest, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(JaccardUpperBound(0, 0), 0.0);
}

TEST(JaccardUpperBoundTest, MonotoneNonIncreasingInFeatureLength) {
  // The property Lemma 2 relies on: once |f.W| >= |q.W|, longer features
  // can only have lower bounds.
  const std::size_t qlen = 4;
  double prev = JaccardUpperBound(qlen, qlen);
  for (std::size_t flen = qlen + 1; flen <= 200; ++flen) {
    const double cur = JaccardUpperBound(qlen, flen);
    EXPECT_LE(cur, prev) << "flen=" << flen;
    prev = cur;
  }
}

TEST(JaccardUpperBoundTest, DominatesActualJaccard) {
  // Property: w(f,q) <= w̄(f,q) for every pair of sets (random sweep).
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<TermId> q_ids, f_ids;
    const int qn = 1 + static_cast<int>(rng.NextUint32(5));
    const int fn = static_cast<int>(rng.NextUint32(30));
    for (int i = 0; i < qn; ++i) q_ids.push_back(rng.NextUint32(40));
    for (int i = 0; i < fn; ++i) f_ids.push_back(rng.NextUint32(40));
    KeywordSet q(q_ids), f(f_ids);
    EXPECT_LE(Jaccard(f, q), JaccardUpperBound(q.size(), f.size()) + 1e-12)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace spq::text
