// Property tests pinning the keyword-set fast paths against naive
// references:
//
//  - SortedIntersectionSize's galloping branch (engaged at length ratio
//    >= 8) vs a set-membership count;
//  - JaccardSorted vs the inter/union formula computed naively;
//  - JaccardSortedBounded's early exit: below-threshold calls return the
//    length-ratio upper bound WITHOUT touching elements, and callers that
//    act on `score > threshold` cannot distinguish it from the exact
//    function;
//  - TermSignature's screening property: a zero AND proves an empty
//    intersection (the converse — collisions — is exercised and allowed).

#include "text/keyword_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

namespace spq::text {
namespace {

std::vector<TermId> RandomSortedUnique(std::mt19937_64& rng, std::size_t len,
                                       TermId universe) {
  std::set<TermId> s;
  std::uniform_int_distribution<TermId> d(0, universe);
  while (s.size() < len) s.insert(d(rng));
  return std::vector<TermId>(s.begin(), s.end());
}

std::size_t NaiveIntersection(const std::vector<TermId>& a,
                              const std::vector<TermId>& b) {
  const std::set<TermId> sb(b.begin(), b.end());
  std::size_t n = 0;
  for (TermId t : a) n += sb.count(t);
  return n;
}

double NaiveJaccard(const std::vector<TermId>& a,
                    const std::vector<TermId>& b) {
  const std::size_t inter = NaiveIntersection(a, b);
  const std::size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

TEST(JaccardPropertyTest, IntersectionMatchesNaiveAcrossLengthRatios) {
  std::mt19937_64 rng(987654321);
  // Adversarial ratios around the galloping cutover (8): balanced pairs,
  // just-below / at / far-beyond the ratio, and degenerate empties. Small
  // universes force dense overlap; large ones force sparse overlap.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {0, 0},  {0, 17},  {1, 1},    {1, 7},    {1, 8},   {1, 9},
      {1, 1000}, {3, 24}, {4, 4},   {5, 40},   {5, 41},  {7, 700},
      {13, 104}, {16, 2048}, {64, 64}, {100, 800},
  };
  for (const auto& [la, lb] : shapes) {
    for (const TermId universe : {30u, 4000u, 1u << 20}) {
      if (la + lb > universe) continue;
      for (int rep = 0; rep < 4; ++rep) {
        const auto a = RandomSortedUnique(rng, la, universe);
        const auto b = RandomSortedUnique(rng, lb, universe);
        const std::size_t want = NaiveIntersection(a, b);
        // Both argument orders: the implementation swaps internally.
        EXPECT_EQ(want, SortedIntersectionSize(a, b))
            << la << "x" << lb << " universe=" << universe;
        EXPECT_EQ(want, SortedIntersectionSize(b, a))
            << lb << "x" << la << " universe=" << universe;
        EXPECT_EQ(NaiveJaccard(a, b), JaccardSorted(a, b));
      }
    }
  }
}

TEST(JaccardPropertyTest, GallopHitsEveryPositionPattern) {
  // The galloping probe's edge cases: needle before everything, between
  // every pair, equal to every element, after everything.
  const std::vector<TermId> b = {10, 20, 30, 40, 50, 60, 70, 80, 90,
                                 100, 110, 120, 130, 140, 150, 160};
  for (TermId needle = 0; needle <= 170; ++needle) {
    const std::vector<TermId> a = {needle};
    const std::size_t want = NaiveIntersection(a, b);
    EXPECT_EQ(want, SortedIntersectionSize(a, b)) << "needle=" << needle;
  }
}

TEST(JaccardPropertyTest, BoundedEarlyExitIsInvisibleToThresholdCallers) {
  std::mt19937_64 rng(246813579);
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t la = rep % 11;            // 0..10, includes empty
    const std::size_t lb = 1 + (rep * 7) % 60;  // 1..60
    const auto a = RandomSortedUnique(rng, la, 200);
    const auto b = RandomSortedUnique(rng, lb, 200);
    const double exact = JaccardSorted(a.data(), a.size(), b.data(), b.size());
    const double upper =
        static_cast<double>(std::min(la, lb)) /
        static_cast<double>(std::max<std::size_t>(1, std::max(la, lb)));
    // Thresholds straddling the bound, including exactly AT it (the
    // boundary where the early exit fires: upper <= threshold).
    for (double threshold :
         {0.0, upper * 0.5, upper, std::nextafter(upper, 2.0), 0.99}) {
      const double got = JaccardSortedBounded(a.data(), a.size(), b.data(),
                                              b.size(), threshold);
      if (upper <= threshold) {
        EXPECT_EQ(upper, got) << "early exit must return the bound itself";
      } else {
        EXPECT_EQ(exact, got) << "above the bound the exact value is due";
      }
      // The caller contract: acting on `score > threshold` is identical.
      EXPECT_EQ(exact > threshold, got > threshold)
          << "la=" << la << " lb=" << lb << " t=" << threshold;
    }
  }
}

TEST(JaccardPropertyTest, BoundedHandlesEmptyInputs) {
  const std::vector<TermId> empty;
  const std::vector<TermId> some = {1, 5, 9};
  EXPECT_EQ(0.0, JaccardSortedBounded(empty.data(), 0, empty.data(), 0, 0.0));
  EXPECT_EQ(0.0, JaccardSortedBounded(empty.data(), 0, some.data(),
                                      some.size(), 0.0));
  EXPECT_EQ(0.0, JaccardSorted(empty, empty));
  EXPECT_EQ(0u, SortedIntersectionSize(empty, some));
}

TEST(TermSignatureTest, ZeroAndProvesEmptyIntersection) {
  std::mt19937_64 rng(1122334455);
  int disjoint_sigs = 0;
  for (int rep = 0; rep < 500; ++rep) {
    const auto a = RandomSortedUnique(rng, 1 + rep % 12, 1u << 16);
    const auto b = RandomSortedUnique(rng, 1 + (rep * 3) % 12, 1u << 16);
    const uint64_t sa = TermSignature(a);
    const uint64_t sb = TermSignature(b);
    if ((sa & sb) == 0) {
      ++disjoint_sigs;
      // The screening property — the only direction the prefilters use.
      EXPECT_EQ(0u, NaiveIntersection(a, b));
    }
    if (NaiveIntersection(a, b) > 0) {
      EXPECT_NE(0u, sa & sb) << "a shared term must share a bit";
    }
  }
  // The screen must actually screen on sparse random sets, not degenerate
  // to all-pass (that would make the prefilters dead code).
  EXPECT_GT(disjoint_sigs, 100);
}

TEST(TermSignatureTest, BasicShape) {
  EXPECT_EQ(0u, TermSignature(nullptr, 0));
  const std::vector<TermId> one = {42};
  const uint64_t s1 = TermSignature(one);
  EXPECT_NE(0u, s1);
  // Exactly one bit for one term.
  EXPECT_EQ(0u, s1 & (s1 - 1));
  // Signature is a pure OR: supersets only add bits.
  const std::vector<TermId> more = {7, 42, 99};
  EXPECT_EQ(s1, TermSignature(more) & s1);
  // Vector and span forms agree.
  EXPECT_EQ(TermSignature(more), TermSignature(more.data(), more.size()));
}

}  // namespace
}  // namespace spq::text
