#include "text/keyword_set.h"

#include <gtest/gtest.h>

#include <vector>

namespace spq::text {
namespace {

TEST(KeywordSetTest, SortsAndDeduplicates) {
  KeywordSet set({5, 1, 3, 1, 5, 5});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.ids(), (std::vector<TermId>{1, 3, 5}));
}

TEST(KeywordSetTest, EmptySet) {
  KeywordSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(0));
}

TEST(KeywordSetTest, ContainsBinarySearches) {
  KeywordSet set({10, 20, 30});
  EXPECT_TRUE(set.Contains(10));
  EXPECT_TRUE(set.Contains(20));
  EXPECT_TRUE(set.Contains(30));
  EXPECT_FALSE(set.Contains(15));
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(31));
}

TEST(KeywordSetTest, IntersectionSize) {
  KeywordSet a({1, 2, 3, 4});
  KeywordSet b({3, 4, 5, 6});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
  EXPECT_EQ(a.IntersectionSize(a), 4u);
}

TEST(KeywordSetTest, IntersectionWithEmptyIsZero) {
  KeywordSet a({1, 2});
  KeywordSet empty;
  EXPECT_EQ(a.IntersectionSize(empty), 0u);
  EXPECT_EQ(empty.IntersectionSize(a), 0u);
  EXPECT_EQ(empty.IntersectionSize(empty), 0u);
}

TEST(KeywordSetTest, IntersectsMatchesIntersectionSize) {
  KeywordSet a({1, 5, 9});
  KeywordSet b({2, 5, 8});
  KeywordSet c({2, 4, 8});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
}

TEST(KeywordSetTest, DisjointSets) {
  KeywordSet a({1, 3, 5});
  KeywordSet b({2, 4, 6});
  EXPECT_EQ(a.IntersectionSize(b), 0u);
  EXPECT_FALSE(a.Intersects(b));
}

TEST(KeywordSetTest, EqualityIsValueBased) {
  EXPECT_EQ(KeywordSet({3, 1, 2}), KeywordSet({1, 2, 3}));
  EXPECT_FALSE(KeywordSet({1}) == KeywordSet({2}));
}

TEST(SortedHelpersTest, SortedIntersectionSizeMatchesKeywordSet) {
  KeywordSet a({1, 2, 3, 7});
  KeywordSet b({2, 3, 4, 7, 9});
  EXPECT_EQ(SortedIntersectionSize(a.ids(), b.ids()), a.IntersectionSize(b));
}

TEST(SortedHelpersTest, JaccardSortedBasics) {
  std::vector<TermId> a{1, 2, 3};
  std::vector<TermId> b{2, 3, 4};
  // |∩|=2, |∪|=4.
  EXPECT_DOUBLE_EQ(JaccardSorted(a, b), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSorted(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSorted(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({}, {}), 0.0);
}

}  // namespace
}  // namespace spq::text
