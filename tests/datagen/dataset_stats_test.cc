#include "datagen/stats.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace spq::datagen {
namespace {

TEST(DatasetStatsTest, EmptyDataset) {
  core::Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  DatasetStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.num_data, 0u);
  EXPECT_EQ(stats.num_features, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_keywords, 0.0);
  EXPECT_DOUBLE_EQ(stats.spatial_skew, 1.0);
}

TEST(DatasetStatsTest, CountsAndKeywordRange) {
  core::Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  dataset.data = {{1, {0.5, 0.5}}};
  dataset.features = {
      {2, {0.2, 0.2}, text::KeywordSet({1, 2})},
      {3, {0.8, 0.8}, text::KeywordSet({2, 3, 4, 5})},
  };
  DatasetStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.num_data, 1u);
  EXPECT_EQ(stats.num_features, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_keywords, 3.0);
  EXPECT_EQ(stats.min_keywords, 2u);
  EXPECT_EQ(stats.max_keywords, 4u);
  EXPECT_EQ(stats.distinct_terms, 5u);  // {1,2,3,4,5}
}

TEST(DatasetStatsTest, UniformDataHasLowSkew) {
  auto dataset = MakeUniformDataset({.num_objects = 30000, .seed = 1});
  ASSERT_TRUE(dataset.ok());
  DatasetStats stats = ComputeStats(*dataset);
  EXPECT_LT(stats.spatial_skew, 1.5);
}

TEST(DatasetStatsTest, ClusteredDataHasHighSkew) {
  auto dataset = MakeClusteredDataset(
      {.num_objects = 30000, .seed = 2, .num_clusters = 4,
       .cluster_sigma = 0.02});
  ASSERT_TRUE(dataset.ok());
  DatasetStats stats = ComputeStats(*dataset);
  EXPECT_GT(stats.spatial_skew, 5.0);
}

TEST(DatasetStatsTest, MatchesGeneratorTargets) {
  auto dataset = MakeRealLikeDataset(FlickrLikeSpec(20000, 3));
  ASSERT_TRUE(dataset.ok());
  DatasetStats stats = ComputeStats(*dataset);
  EXPECT_NEAR(stats.avg_keywords, 7.9, 1.0);
  EXPECT_GE(stats.min_keywords, 1u);
}

TEST(DatasetStatsTest, ToStringMentionsKeyNumbers) {
  auto dataset = MakeUniformDataset({.num_objects = 1000, .seed = 5});
  ASSERT_TRUE(dataset.ok());
  std::string text = ComputeStats(*dataset).ToString();
  EXPECT_NE(text.find("|O|=500"), std::string::npos);
  EXPECT_NE(text.find("|F|=500"), std::string::npos);
  EXPECT_NE(text.find("skew"), std::string::npos);
}

}  // namespace
}  // namespace spq::datagen
