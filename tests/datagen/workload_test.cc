#include "datagen/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace spq::datagen {
namespace {

TEST(RadiusFromCellFractionTest, ConvertsPercentOfCell) {
  // 10% of a cell on a 50-wide grid over a unit extent: 0.1 * (1/50).
  EXPECT_DOUBLE_EQ(RadiusFromCellFraction(0.1, 1.0, 50), 0.002);
  EXPECT_DOUBLE_EQ(RadiusFromCellFraction(0.5, 10.0, 4), 1.25);
  EXPECT_DOUBLE_EQ(RadiusFromCellFraction(1.0, 1.0, 100), 0.01);
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  WorkloadSpec spec;
  auto queries = MakeQueries(spec, 25);
  EXPECT_EQ(queries.size(), 25u);
}

TEST(WorkloadTest, QueriesHaveRequestedShape) {
  WorkloadSpec spec;
  spec.num_keywords = 5;
  spec.k = 42;
  spec.radius = 0.01;
  spec.vocab_size = 500;
  for (const auto& q : MakeQueries(spec, 10)) {
    EXPECT_EQ(q.k, 42u);
    EXPECT_DOUBLE_EQ(q.radius, 0.01);
    EXPECT_EQ(q.keywords.size(), 5u);
    for (auto id : q.keywords.ids()) EXPECT_LT(id, 500u);
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadSpec spec;
  spec.seed = 77;
  auto a = MakeQueries(spec, 5);
  auto b = MakeQueries(spec, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  }
}

TEST(WorkloadTest, MostFrequentSelectionPicksLowestRanks) {
  WorkloadSpec spec;
  spec.num_keywords = 3;
  spec.selection = KeywordSelection::kMostFrequent;
  spec.vocab_size = 100;
  auto q = MakeQuery(spec, 0);
  EXPECT_EQ(q.keywords, text::KeywordSet({0, 1, 2}));
}

TEST(WorkloadTest, LeastFrequentSelectionPicksHighestRanks) {
  WorkloadSpec spec;
  spec.num_keywords = 2;
  spec.selection = KeywordSelection::kLeastFrequent;
  spec.vocab_size = 100;
  auto q = MakeQuery(spec, 0);
  EXPECT_EQ(q.keywords, text::KeywordSet({98, 99}));
}

TEST(WorkloadTest, FrequencyWeightedPrefersCommonTerms) {
  WorkloadSpec spec;
  spec.num_keywords = 1;
  spec.selection = KeywordSelection::kFrequencyWeighted;
  spec.term_zipf = 1.2;
  spec.vocab_size = 10000;
  int low_rank = 0;
  auto queries = MakeQueries(spec, 200);
  for (const auto& q : queries) {
    if (q.keywords.ids()[0] < 100) ++low_rank;
  }
  // With strong Zipf skew, most samples land in the first 100 ranks.
  EXPECT_GT(low_rank, 100);
}

TEST(WorkloadTest, UniformSelectionCoversVocabulary) {
  WorkloadSpec spec;
  spec.num_keywords = 1;
  spec.selection = KeywordSelection::kUniformRandom;
  spec.vocab_size = 10;
  std::set<text::TermId> seen;
  for (const auto& q : MakeQueries(spec, 300)) {
    seen.insert(q.keywords.ids()[0]);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(WorkloadTest, KeywordsAreDistinct) {
  WorkloadSpec spec;
  spec.num_keywords = 10;
  spec.vocab_size = 12;  // force collisions during sampling
  for (const auto& q : MakeQueries(spec, 20)) {
    EXPECT_EQ(q.keywords.size(), 10u);  // KeywordSet guarantees uniqueness
  }
}

TEST(WorkloadTest, MoreKeywordsThanVocabClamps) {
  WorkloadSpec spec;
  spec.num_keywords = 50;
  spec.vocab_size = 5;
  auto q = MakeQuery(spec, 0);
  EXPECT_EQ(q.keywords.size(), 5u);
}

}  // namespace
}  // namespace spq::datagen
