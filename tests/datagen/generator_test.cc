#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "geo/grid.h"

namespace spq::datagen {
namespace {

using core::Dataset;

void ExpectWellFormed(const Dataset& dataset, uint64_t num_objects) {
  EXPECT_EQ(dataset.data.size(), num_objects / 2);
  EXPECT_EQ(dataset.features.size(), num_objects - num_objects / 2);
  for (const auto& p : dataset.data) {
    EXPECT_TRUE(dataset.bounds.Contains(p.pos)) << "data " << p.id;
  }
  for (const auto& f : dataset.features) {
    EXPECT_TRUE(dataset.bounds.Contains(f.pos)) << "feature " << f.id;
    EXPECT_GE(f.keywords.size(), 1u) << "feature " << f.id;
  }
}

TEST(UniformGeneratorTest, ProducesWellFormedDataset) {
  auto dataset = MakeUniformDataset({.num_objects = 5000, .seed = 1});
  ASSERT_TRUE(dataset.ok());
  ExpectWellFormed(*dataset, 5000);
}

TEST(UniformGeneratorTest, DeterministicPerSeed) {
  UniformSpec spec{.num_objects = 500, .seed = 11};
  auto a = MakeUniformDataset(spec);
  auto b = MakeUniformDataset(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->data.size(), b->data.size());
  for (std::size_t i = 0; i < a->data.size(); ++i) {
    EXPECT_EQ(a->data[i].pos, b->data[i].pos);
  }
  for (std::size_t i = 0; i < a->features.size(); ++i) {
    EXPECT_EQ(a->features[i].keywords, b->features[i].keywords);
  }
}

TEST(UniformGeneratorTest, DifferentSeedsDiffer) {
  auto a = MakeUniformDataset({.num_objects = 100, .seed = 1});
  auto b = MakeUniformDataset({.num_objects = 100, .seed = 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = false;
  for (std::size_t i = 0; i < a->data.size(); ++i) {
    if (!(a->data[i].pos == b->data[i].pos)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(UniformGeneratorTest, KeywordCountsWithinRange) {
  auto dataset = MakeUniformDataset(
      {.num_objects = 2000, .seed = 5, .vocab_size = 1000,
       .min_keywords = 10, .max_keywords = 100});
  ASSERT_TRUE(dataset.ok());
  for (const auto& f : dataset->features) {
    // Duplicates may shrink the set slightly below the drawn count, but
    // never above max and (for vocab 1000 >> 100) rarely below min - 5.
    EXPECT_LE(f.keywords.size(), 100u);
    EXPECT_GE(f.keywords.size(), 5u);
    for (auto id : f.keywords.ids()) EXPECT_LT(id, 1000u);
  }
}

TEST(UniformGeneratorTest, SpatialDistributionIsRoughlyUniform) {
  auto dataset = MakeUniformDataset({.num_objects = 40000, .seed = 3});
  ASSERT_TRUE(dataset.ok());
  auto grid = geo::UniformGrid::Make(dataset->bounds, 4, 4);
  ASSERT_TRUE(grid.ok());
  std::vector<int> counts(16, 0);
  for (const auto& p : dataset->data) ++counts[grid->CellOf(p.pos)];
  const double expected = dataset->data.size() / 16.0;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.15);
  }
}

TEST(UniformGeneratorTest, RejectsBadSpecs) {
  EXPECT_FALSE(MakeUniformDataset({.num_objects = 1}).ok());
  EXPECT_FALSE(MakeUniformDataset({.num_objects = 10, .vocab_size = 0}).ok());
  EXPECT_FALSE(MakeUniformDataset(
                   {.num_objects = 10, .min_keywords = 5, .max_keywords = 2})
                   .ok());
  EXPECT_FALSE(MakeUniformDataset({.num_objects = 10, .min_keywords = 0}).ok());
}

TEST(ClusteredGeneratorTest, ProducesWellFormedDataset) {
  auto dataset = MakeClusteredDataset({.num_objects = 5000, .seed = 2});
  ASSERT_TRUE(dataset.ok());
  ExpectWellFormed(*dataset, 5000);
}

TEST(ClusteredGeneratorTest, IsMoreSkewedThanUniform) {
  const uint64_t n = 40000;
  auto uniform = MakeUniformDataset({.num_objects = n, .seed = 4});
  auto clustered = MakeClusteredDataset(
      {.num_objects = n, .seed = 4, .num_clusters = 8, .cluster_sigma = 0.02});
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(clustered.ok());
  auto grid = geo::UniformGrid::Make(uniform->bounds, 10, 10);
  ASSERT_TRUE(grid.ok());
  auto max_cell_count = [&](const Dataset& d) {
    std::vector<int> counts(grid->num_cells(), 0);
    for (const auto& p : d.data) ++counts[grid->CellOf(p.pos)];
    return *std::max_element(counts.begin(), counts.end());
  };
  // The densest cell of CL must be much denser than UN's densest cell.
  EXPECT_GT(max_cell_count(*clustered), 3 * max_cell_count(*uniform));
}

TEST(ClusteredGeneratorTest, RejectsZeroClusters) {
  EXPECT_FALSE(
      MakeClusteredDataset({.num_objects = 10, .num_clusters = 0}).ok());
}

TEST(RealLikeGeneratorTest, FlickrAndTwitterPresets) {
  RealLikeSpec fl = FlickrLikeSpec(1000);
  EXPECT_EQ(fl.vocab_size, 34'716u);
  EXPECT_DOUBLE_EQ(fl.mean_keywords, 7.9);
  RealLikeSpec tw = TwitterLikeSpec(1000);
  EXPECT_EQ(tw.vocab_size, 88'706u);
  EXPECT_DOUBLE_EQ(tw.mean_keywords, 9.8);
}

TEST(RealLikeGeneratorTest, MeanKeywordsApproximatelyMatches) {
  auto dataset = MakeRealLikeDataset(FlickrLikeSpec(30000, 8));
  ASSERT_TRUE(dataset.ok());
  double total = 0.0;
  for (const auto& f : dataset->features) total += f.keywords.size();
  const double mean = total / dataset->features.size();
  // Zipf sampling with replacement dedups a little below the Poisson mean.
  EXPECT_NEAR(mean, 7.9, 1.0);
}

TEST(RealLikeGeneratorTest, TermFrequenciesAreSkewed) {
  auto dataset = MakeRealLikeDataset(FlickrLikeSpec(20000, 8));
  ASSERT_TRUE(dataset.ok());
  std::map<text::TermId, int> freq;
  for (const auto& f : dataset->features) {
    for (auto id : f.keywords.ids()) ++freq[id];
  }
  // Rank-0 term should be far more frequent than a mid-vocabulary term.
  EXPECT_GT(freq[0], 50 * std::max(1, freq[1000]));
}

TEST(RealLikeGeneratorTest, SpatiallySkewedAroundHotspots) {
  auto dataset = MakeRealLikeDataset(FlickrLikeSpec(30000, 8));
  ASSERT_TRUE(dataset.ok());
  auto grid = geo::UniformGrid::Make(dataset->bounds, 10, 10);
  ASSERT_TRUE(grid.ok());
  std::vector<int> counts(grid->num_cells(), 0);
  for (const auto& p : dataset->data) ++counts[grid->CellOf(p.pos)];
  const double mean =
      static_cast<double>(dataset->data.size()) / grid->num_cells();
  EXPECT_GT(*std::max_element(counts.begin(), counts.end()), 3 * mean);
}

TEST(RealLikeGeneratorTest, WellFormed) {
  auto dataset = MakeRealLikeDataset(TwitterLikeSpec(3000, 9));
  ASSERT_TRUE(dataset.ok());
  ExpectWellFormed(*dataset, 3000);
}

TEST(RealLikeGeneratorTest, RejectsBadSpecs) {
  RealLikeSpec bad = FlickrLikeSpec(10);
  bad.mean_keywords = 0.0;
  EXPECT_FALSE(MakeRealLikeDataset(bad).ok());
  bad = FlickrLikeSpec(10);
  bad.num_hotspots = 0;
  EXPECT_FALSE(MakeRealLikeDataset(bad).ok());
}

}  // namespace
}  // namespace spq::datagen
