// Parameterized sweep over grid shapes: the partitioning invariants of
// Section 4.1 must hold for any nx x ny, including extreme aspect ratios
// and non-unit bounds.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/random.h"
#include "geo/grid.h"

namespace spq::geo {
namespace {

class GridShapeTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {
 protected:
  UniformGrid MakeGrid() {
    auto [nx, ny] = GetParam();
    auto grid = UniformGrid::Make(Rect{-3.0, 2.0, 7.0, 4.5}, nx, ny);
    EXPECT_TRUE(grid.ok());
    return *grid;
  }
};

TEST_P(GridShapeTest, EveryPointHasExactlyOneEnclosingCell) {
  UniformGrid grid = MakeGrid();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.NextDouble(-3.0, 7.0), rng.NextDouble(2.0, 4.5)};
    CellId id = grid.CellOf(p);
    ASSERT_LT(id, grid.num_cells());
    EXPECT_TRUE(grid.CellRect(id).Contains(p));
  }
}

TEST_P(GridShapeTest, CellRectsTileTheBounds) {
  UniformGrid grid = MakeGrid();
  double area = 0.0;
  for (CellId id = 0; id < grid.num_cells(); ++id) {
    const Rect r = grid.CellRect(id);
    EXPECT_GT(r.width(), 0.0);
    EXPECT_GT(r.height(), 0.0);
    area += r.width() * r.height();
  }
  EXPECT_NEAR(area, 10.0 * 2.5, 1e-9);
}

TEST_P(GridShapeTest, DuplicationTargetsMatchBruteForce) {
  UniformGrid grid = MakeGrid();
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    Point p{rng.NextDouble(-3.0, 7.0), rng.NextDouble(2.0, 4.5)};
    const double r = rng.NextDouble() * 1.5;
    auto fast = grid.CellsWithinDist(p, r);
    std::set<CellId> fast_set(fast.begin(), fast.end());
    std::set<CellId> brute;
    const CellId own = grid.CellOf(p);
    for (CellId id = 0; id < grid.num_cells(); ++id) {
      if (id != own && MinDist(p, grid.CellRect(id)) <= r) brute.insert(id);
    }
    ASSERT_EQ(fast_set, brute)
        << "nx=" << grid.nx() << " ny=" << grid.ny() << " trial " << trial;
  }
}

TEST_P(GridShapeTest, LemmaOneCoverageHolds) {
  UniformGrid grid = MakeGrid();
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    Point f{rng.NextDouble(-3.0, 7.0), rng.NextDouble(2.0, 4.5)};
    const double r = 0.01 + rng.NextDouble() * 0.8;
    const double angle = rng.NextDouble() * 2 * M_PI;
    const double dist = rng.NextDouble() * r;
    Point q{std::clamp(f.x + dist * std::cos(angle), -3.0, 7.0),
            std::clamp(f.y + dist * std::sin(angle), 2.0, 4.5)};
    if (Distance(q, f) > r) continue;
    const CellId qc = grid.CellOf(q);
    if (qc == grid.CellOf(f)) continue;
    auto targets = grid.CellsWithinDist(f, r);
    EXPECT_NE(std::find(targets.begin(), targets.end(), qc), targets.end())
        << "nx=" << grid.nx() << " ny=" << grid.ny();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridShapeTest,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(1u, 16u),
                      std::make_tuple(16u, 1u), std::make_tuple(3u, 7u),
                      std::make_tuple(50u, 50u), std::make_tuple(128u, 2u)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace spq::geo
