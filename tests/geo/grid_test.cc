#include "geo/grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"

namespace spq::geo {
namespace {

UniformGrid MakeUnitGrid(uint32_t nx, uint32_t ny) {
  auto grid = UniformGrid::Make(Rect{0, 0, 1, 1}, nx, ny);
  EXPECT_TRUE(grid.ok());
  return *grid;
}

TEST(GridTest, MakeRejectsInvalidArguments) {
  EXPECT_TRUE(UniformGrid::Make(Rect{0, 0, 1, 1}, 0, 4).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(UniformGrid::Make(Rect{0, 0, 1, 1}, 4, 0).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(UniformGrid::Make(Rect{0, 0, 0, 1}, 4, 4).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(UniformGrid::Make(Rect{5, 5, 1, 1}, 4, 4).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(UniformGrid::Make(Rect{0, 0, 1, 1}, 1u << 16, 1u << 16)
                  .status()
                  .IsInvalidArgument());
}

TEST(GridTest, BasicGeometry) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  EXPECT_EQ(grid.num_cells(), 16u);
  EXPECT_DOUBLE_EQ(grid.cell_width(), 0.25);
  EXPECT_DOUBLE_EQ(grid.cell_height(), 0.25);
}

TEST(GridTest, CellOfMapsInteriorPoints) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  EXPECT_EQ(grid.CellOf({0.1, 0.1}), grid.CellAt(0, 0));
  EXPECT_EQ(grid.CellOf({0.9, 0.1}), grid.CellAt(3, 0));
  EXPECT_EQ(grid.CellOf({0.1, 0.9}), grid.CellAt(0, 3));
  EXPECT_EQ(grid.CellOf({0.6, 0.3}), grid.CellAt(2, 1));
}

TEST(GridTest, BoundaryPointsClampIntoEdgeCells) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  EXPECT_EQ(grid.CellOf({1.0, 1.0}), grid.CellAt(3, 3));
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), grid.CellAt(0, 0));
  // Outside points clamp too (total partitioning).
  EXPECT_EQ(grid.CellOf({-0.5, 0.5}), grid.CellAt(0, 2));
  EXPECT_EQ(grid.CellOf({2.0, 2.0}), grid.CellAt(3, 3));
}

TEST(GridTest, EveryPointBelongsToExactlyOneCell) {
  UniformGrid grid = MakeUnitGrid(7, 5);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    CellId id = grid.CellOf(p);
    ASSERT_LT(id, grid.num_cells());
    EXPECT_TRUE(grid.CellRect(id).Contains(p));
  }
}

TEST(GridTest, CellRectsTileTheBounds) {
  UniformGrid grid = MakeUnitGrid(3, 3);
  double area = 0.0;
  for (CellId id = 0; id < grid.num_cells(); ++id) {
    Rect r = grid.CellRect(id);
    area += r.width() * r.height();
  }
  EXPECT_NEAR(area, 1.0, 1e-12);
}

TEST(GridTest, RowColRoundTrip) {
  UniformGrid grid = MakeUnitGrid(6, 4);
  for (CellId id = 0; id < grid.num_cells(); ++id) {
    EXPECT_EQ(grid.CellAt(grid.ColOf(id), grid.RowOf(id)), id);
  }
}

// --- CellsWithinDist: the Lemma 1 duplication targets ---

TEST(GridTest, CellsWithinDistExcludesOwnCell) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  Point p{0.1, 0.1};
  auto cells = grid.CellsWithinDist(p, 0.2);
  EXPECT_EQ(std::count(cells.begin(), cells.end(), grid.CellOf(p)), 0);
}

TEST(GridTest, InteriorPointFarFromBordersHasNoTargets) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  // Center of cell (1,1); borders are 0.125 away.
  EXPECT_TRUE(grid.CellsWithinDist({0.375, 0.375}, 0.1).empty());
}

TEST(GridTest, PaperExampleF7Duplication) {
  // Figure 2: 4x4 grid over [0,10]², r=1.5, f7=(3.0, 8.1) in cell C14
  // (1-indexed row-major from bottom-left) must duplicate to C9, C10, C13.
  auto grid_or = UniformGrid::Make(Rect{0, 0, 10, 10}, 4, 4);
  ASSERT_TRUE(grid_or.ok());
  const UniformGrid& grid = *grid_or;
  Point f7{3.0, 8.1};
  // Our ids are 0-indexed: paper's C14 = id 13 (col 1, row 3).
  EXPECT_EQ(grid.CellOf(f7), grid.CellAt(1, 3));
  auto targets = grid.CellsWithinDist(f7, 1.5);
  std::set<CellId> expected{grid.CellAt(0, 2),   // paper C9  (id 8)
                            grid.CellAt(1, 2),   // paper C10 (id 9)
                            grid.CellAt(0, 3)};  // paper C13 (id 12)
  EXPECT_EQ(std::set<CellId>(targets.begin(), targets.end()), expected);
}

TEST(GridTest, CornerPointReachesThreeNeighbors) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  // Just inside the corner shared by cells (0,0),(1,0),(0,1),(1,1).
  Point p{0.251, 0.251};
  auto targets = grid.CellsWithinDist(p, 0.05);
  std::set<CellId> expected{grid.CellAt(0, 0), grid.CellAt(1, 0),
                            grid.CellAt(0, 1)};
  EXPECT_EQ(std::set<CellId>(targets.begin(), targets.end()), expected);
}

TEST(GridTest, ZeroRadiusOnBorderTouchesNeighbor) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  // Exactly on the vertical border between (0,y) and (1,y): MINDIST to the
  // left cell is 0 <= r for any r >= 0.
  Point p{0.25, 0.1};
  auto targets = grid.CellsWithinDist(p, 0.0);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], grid.CellAt(0, 0));
}

TEST(GridTest, NegativeRadiusYieldsNothing) {
  UniformGrid grid = MakeUnitGrid(4, 4);
  EXPECT_TRUE(grid.CellsWithinDist({0.5, 0.5}, -1.0).empty());
}

TEST(GridTest, HugeRadiusReachesAllOtherCells) {
  UniformGrid grid = MakeUnitGrid(5, 5);
  auto targets = grid.CellsWithinDist({0.5, 0.5}, 10.0);
  EXPECT_EQ(targets.size(), grid.num_cells() - 1);
}

TEST(GridTest, CellsWithinDistMatchesBruteForce) {
  // Property check against a brute-force MINDIST scan over all cells.
  Rng rng(71);
  UniformGrid grid = MakeUnitGrid(8, 6);
  for (int trial = 0; trial < 500; ++trial) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    const double r = rng.NextDouble() * 0.3;
    auto fast = grid.CellsWithinDist(p, r);
    std::set<CellId> fast_set(fast.begin(), fast.end());
    std::set<CellId> brute;
    const CellId own = grid.CellOf(p);
    for (CellId id = 0; id < grid.num_cells(); ++id) {
      if (id != own && MinDist(p, grid.CellRect(id)) <= r) brute.insert(id);
    }
    ASSERT_EQ(fast_set, brute) << "trial " << trial << " r=" << r;
  }
}

TEST(GridTest, LemmaOneCoverage) {
  // Lemma 1 correctness: if a data point q and feature point f are within
  // distance r, then either they share a cell or f's duplication targets
  // include q's cell.
  Rng rng(73);
  UniformGrid grid = MakeUnitGrid(10, 10);
  for (int trial = 0; trial < 2000; ++trial) {
    Point f{rng.NextDouble(), rng.NextDouble()};
    const double r = 0.005 + rng.NextDouble() * 0.1;
    // Random point within distance r of f.
    const double angle = rng.NextDouble() * 2 * M_PI;
    const double dist = rng.NextDouble() * r;
    Point q{std::clamp(f.x + dist * std::cos(angle), 0.0, 1.0),
            std::clamp(f.y + dist * std::sin(angle), 0.0, 1.0)};
    if (Distance(q, f) > r) continue;  // clamping may push it out
    const CellId qc = grid.CellOf(q);
    if (qc == grid.CellOf(f)) continue;
    auto targets = grid.CellsWithinDist(f, r);
    EXPECT_NE(std::find(targets.begin(), targets.end(), qc), targets.end())
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace spq::geo
