#include "geo/point.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "geo/rect.h"

namespace spq::geo {
namespace {

TEST(PointTest, DistanceBasics) {
  Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(PointTest, DistanceIsSymmetric) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Point a{rng.NextDouble(), rng.NextDouble()};
    Point b{rng.NextDouble(), rng.NextDouble()};
    EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  }
}

TEST(RectTest, ContainsIsInclusive) {
  Rect r{0, 0, 10, 5};
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({10, 5}));
  EXPECT_TRUE(r.Contains({5, 2.5}));
  EXPECT_FALSE(r.Contains({10.001, 5}));
  EXPECT_FALSE(r.Contains({-0.001, 0}));
}

TEST(RectTest, WidthHeight) {
  Rect r{1, 2, 4, 8};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 6.0);
}

TEST(RectTest, MinDistInsideIsZero) {
  Rect r{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(MinDist({5, 5}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDist({0, 0}, r), 0.0);   // on the corner
  EXPECT_DOUBLE_EQ(MinDist({10, 3}, r), 0.0);  // on an edge
}

TEST(RectTest, MinDistToEdges) {
  Rect r{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(MinDist({-3, 5}, r), 3.0);   // left
  EXPECT_DOUBLE_EQ(MinDist({15, 5}, r), 5.0);   // right
  EXPECT_DOUBLE_EQ(MinDist({5, -2}, r), 2.0);   // below
  EXPECT_DOUBLE_EQ(MinDist({5, 12}, r), 2.0);   // above
}

TEST(RectTest, MinDistToCornerIsEuclidean) {
  Rect r{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(MinDist({-3, -4}, r), 5.0);
  EXPECT_DOUBLE_EQ(MinDist({13, 14}, r), 5.0);
}

TEST(RectTest, MinDistLowerBoundsDistanceToContainedPoints) {
  // Property: MinDist(p, r) <= Distance(p, x) for any x inside r.
  Rng rng(17);
  Rect r{2, 3, 6, 9};
  for (int i = 0; i < 500; ++i) {
    Point p{rng.NextDouble(-5, 15), rng.NextDouble(-5, 15)};
    Point inside{rng.NextDouble(r.min_x, r.max_x),
                 rng.NextDouble(r.min_y, r.max_y)};
    EXPECT_LE(MinDist(p, r), Distance(p, inside) + 1e-12);
  }
}

}  // namespace
}  // namespace spq::geo
