// Streaming spill readers under records larger than their 64 KiB
// buffers: the legacy windowed SegmentReader must double its window until
// one record fits, and the flat reader's pool cursor must grow for one
// oversized keyword span — paths no small-record workload touches.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/merge.h"
#include "mapreduce/runtime.h"
#include "mapreduce/spill.h"
#include "spq/shuffle_types.h"

namespace spq::mapreduce {
namespace {

std::string TempDir() {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("spq_streaming_test-" + std::to_string(static_cast<int>(::getpid()))))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

SortedSegment SpillStringSegment(const std::string& dir,
                                 const std::vector<std::string>& values,
                                 const std::string& name) {
  Buffer buf;
  for (uint32_t i = 0; i < values.size(); ++i) {
    Codec<uint32_t>::Encode(i, buf);
    Codec<std::string>::Encode(values[i], buf);
  }
  SortedSegment seg;
  seg.num_records = values.size();
  seg.bytes = buf.TakeBytes();
  seg.byte_size = seg.bytes.size();
  seg.spill_path = dir + "/" + name;
  EXPECT_TRUE(WriteSpillFile(seg.spill_path, seg.bytes).ok());
  seg.bytes.clear();
  return seg;
}

TEST(StreamingSegmentReaderTest, RecordLargerThanWindowGrowsAndDecodes) {
  const std::string dir = TempDir();
  // One 300 KiB record sandwiched between small ones: the 64 KiB window
  // must double (64 -> 128 -> 256 -> 512 KiB) before the big record
  // decodes, and the small records around it must survive the compaction.
  const std::vector<std::string> values = {
      "small-head", std::string(300 * 1024, 'x'), "small-tail"};
  SortedSegment seg = SpillStringSegment(dir, values, "big.seg");

  MergeStream<uint32_t, std::string> stream(
      {&seg}, [](const uint32_t& a, const uint32_t& b) { return a < b; });
  std::vector<std::string> out;
  while (stream.Advance()) out.push_back(stream.value());
  EXPECT_TRUE(stream.status().ok()) << stream.status().ToString();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], values[0]);
  EXPECT_EQ(out[1], values[1]);
  EXPECT_EQ(out[2], values[2]);

  std::filesystem::remove_all(dir);
}

TEST(StreamingSegmentReaderTest, TruncatedSpillFileSurfacesError) {
  const std::string dir = TempDir();
  SortedSegment seg = SpillStringSegment(
      dir, {"first", std::string(200 * 1024, 'y')}, "trunc.seg");
  // Chop the tail off on disk; num_records still promises two records.
  auto bytes = ReadSpillFile(seg.spill_path);
  ASSERT_TRUE(bytes.ok());
  bytes->resize(bytes->size() / 2);
  ASSERT_TRUE(WriteSpillFile(seg.spill_path, *bytes).ok());

  MergeStream<uint32_t, std::string> stream(
      {&seg}, [](const uint32_t& a, const uint32_t& b) { return a < b; });
  ASSERT_TRUE(stream.Advance());
  EXPECT_EQ(stream.value(), "first");
  while (stream.Advance()) {
  }
  EXPECT_FALSE(stream.status().ok());

  std::filesystem::remove_all(dir);
}

TEST(StreamingFlatReaderTest, PoolSpanLargerThanBufferGrowsAndMatches) {
  using core::CellKey;
  using core::ShuffleObject;
  const std::string dir = TempDir();

  // One feature with a ~96 KiB keyword span (> the 64 KiB cursor buffer)
  // among ordinary records.
  std::vector<std::pair<CellKey, ShuffleObject>> records;
  for (uint32_t i = 0; i < 10; ++i) {
    ShuffleObject obj;
    obj.kind = ShuffleObject::kFeature;
    obj.id = i;
    obj.pos = {0.25, 0.75};
    const std::size_t terms = i == 5 ? 24'000 : 4;
    for (uint32_t t = 0; t < terms; ++t) {
      obj.keywords.push_back(t * 7 + i);
    }
    records.emplace_back(CellKey{i % 3, static_cast<double>(i)},
                         std::move(obj));
  }
  auto seg_or = internal::BuildFlatSegment<CellKey, ShuffleObject>(records);
  ASSERT_TRUE(seg_or.ok());
  FlatSegment seg = *std::move(seg_or);
  seg.spill_path = dir + "/flat.seg";
  ASSERT_TRUE(WriteSpillFile(seg.spill_path, seg.bytes).ok());
  seg.bytes.clear();

  FlatMergeStream<CellKey, ShuffleObject> stream({&seg});
  uint64_t seen = 0;
  bool saw_big = false;
  while (stream.Advance()) {
    const core::ShuffleObjectView view = stream.value();
    ++seen;
    if (view.num_keywords == 24'000) {
      saw_big = true;
      // The span streamed through the grown pool buffer intact.
      EXPECT_EQ(view.id, 5u);
      EXPECT_EQ(view.keywords[0], 5u);          // t=0: 0*7+5
      EXPECT_EQ(view.keywords[23'999], 23'999u * 7 + 5);
    }
  }
  EXPECT_TRUE(stream.status().ok()) << stream.status().ToString();
  EXPECT_EQ(seen, 10u);
  EXPECT_TRUE(saw_big);

  std::filesystem::remove_all(dir);
}

TEST(StreamingFlatReaderTest, TruncatedFlatSpillSurfacesError) {
  using core::CellKey;
  using core::ShuffleObject;
  const std::string dir = TempDir();

  std::vector<std::pair<CellKey, ShuffleObject>> records;
  for (uint32_t i = 0; i < 100; ++i) {
    ShuffleObject obj;
    obj.kind = ShuffleObject::kFeature;
    obj.id = i;
    obj.keywords = {i, i + 1, i + 2};
    records.emplace_back(CellKey{0, static_cast<double>(i)}, std::move(obj));
  }
  auto seg_or = internal::BuildFlatSegment<CellKey, ShuffleObject>(records);
  ASSERT_TRUE(seg_or.ok());
  FlatSegment seg = *std::move(seg_or);
  seg.spill_path = dir + "/flat-trunc.seg";
  std::vector<uint8_t> truncated(seg.bytes.begin(),
                                 seg.bytes.begin() + seg.bytes.size() / 2);
  ASSERT_TRUE(WriteSpillFile(seg.spill_path, truncated).ok());
  seg.bytes.clear();

  FlatMergeStream<CellKey, ShuffleObject> stream({&seg});
  while (stream.Advance()) {
  }
  EXPECT_FALSE(stream.status().ok());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spq::mapreduce
