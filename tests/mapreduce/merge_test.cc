#include "mapreduce/merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mapreduce/runtime.h"
#include "spq/shuffle_types.h"

namespace spq::mapreduce {
namespace {

using Record = std::pair<uint32_t, uint64_t>;

SortedSegment MakeSegment(std::vector<Record> records) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.first < b.first; });
  Buffer buf;
  for (const auto& [k, v] : records) {
    Codec<uint32_t>::Encode(k, buf);
    Codec<uint64_t>::Encode(v, buf);
  }
  SortedSegment seg;
  seg.num_records = records.size();
  seg.bytes = buf.TakeBytes();
  return seg;
}

std::vector<Record> Drain(MergeStream<uint32_t, uint64_t>& stream) {
  std::vector<Record> out;
  while (stream.Advance()) out.emplace_back(stream.key(), stream.value());
  return out;
}

auto KeyLess = [](const uint32_t& a, const uint32_t& b) { return a < b; };

TEST(MergeStreamTest, EmptyInput) {
  std::vector<const SortedSegment*> segments;
  MergeStream<uint32_t, uint64_t> stream(segments, KeyLess);
  EXPECT_FALSE(stream.Advance());
  EXPECT_TRUE(stream.status().ok());
}

TEST(MergeStreamTest, SingleSegmentPreservesOrder) {
  SortedSegment seg = MakeSegment({{3, 30}, {1, 10}, {2, 20}});
  MergeStream<uint32_t, uint64_t> stream({&seg}, KeyLess);
  auto out = Drain(stream);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Record(1, 10));
  EXPECT_EQ(out[1], Record(2, 20));
  EXPECT_EQ(out[2], Record(3, 30));
}

TEST(MergeStreamTest, MergesTwoSegments) {
  SortedSegment a = MakeSegment({{1, 1}, {3, 3}, {5, 5}});
  SortedSegment b = MakeSegment({{2, 2}, {4, 4}, {6, 6}});
  MergeStream<uint32_t, uint64_t> stream({&a, &b}, KeyLess);
  auto out = Drain(stream);
  ASSERT_EQ(out.size(), 6u);
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i].first, i + 1);
  }
}

TEST(MergeStreamTest, EqualKeysBreakTiesBySegmentIndex) {
  SortedSegment a = MakeSegment({{7, 100}});
  SortedSegment b = MakeSegment({{7, 200}});
  MergeStream<uint32_t, uint64_t> stream({&a, &b}, KeyLess);
  auto out = Drain(stream);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, 100u);  // segment 0 first
  EXPECT_EQ(out[1].second, 200u);
}

TEST(MergeStreamTest, ManySegmentsRandomized) {
  Rng rng(55);
  std::vector<SortedSegment> segments;
  std::vector<Record> all;
  for (int s = 0; s < 13; ++s) {
    std::vector<Record> records;
    const int n = static_cast<int>(rng.NextUint32(50));
    for (int i = 0; i < n; ++i) {
      Record r{rng.NextUint32(100), rng.NextUint64()};
      records.push_back(r);
      all.push_back(r);
    }
    segments.push_back(MakeSegment(std::move(records)));
  }
  std::vector<const SortedSegment*> ptrs;
  for (const auto& s : segments) ptrs.push_back(&s);
  MergeStream<uint32_t, uint64_t> stream(ptrs, KeyLess);
  auto out = Drain(stream);
  ASSERT_EQ(out.size(), all.size());
  // Keys must be non-decreasing and form the same multiset.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].first, out[i].first);
  }
  auto key_multiset = [](std::vector<Record> v) {
    std::vector<uint32_t> keys;
    for (auto& r : v) keys.push_back(r.first);
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(key_multiset(out), key_multiset(all));
}

TEST(MergeStreamTest, CorruptSegmentSurfacesStatus) {
  // Values use multi-byte varints so truncation hits the second record.
  SortedSegment seg = MakeSegment({{1, 1ULL << 40}, {2, 1ULL << 41}});
  seg.bytes.resize(seg.bytes.size() - 3);  // truncate mid-record
  MergeStream<uint32_t, uint64_t> stream({&seg}, KeyLess);
  // First record decodes fine; the second fails.
  EXPECT_TRUE(stream.Advance());
  EXPECT_EQ(stream.key(), 1u);
  EXPECT_FALSE(stream.Advance());
  EXPECT_FALSE(stream.status().ok());
}

TEST(MergeStreamTest, SegmentWithZeroRecords) {
  SortedSegment empty = MakeSegment({});
  SortedSegment one = MakeSegment({{4, 40}});
  MergeStream<uint32_t, uint64_t> stream({&empty, &one}, KeyLess);
  auto out = Drain(stream);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Record(4, 40));
}

// ---------------------------------------------------------------------------
// FlatMergeStream strategy tests: the loser tree must emit exactly the
// heap's sequence (same records, same deterministic tie-breaks) at any
// fan-in, and kAuto must pick it only at high fan-in.
// ---------------------------------------------------------------------------

using FlatKV = std::pair<core::CellKey, core::ShuffleObject>;

FlatSegment MakeFlatSegment(Rng& rng, std::size_t num_records,
                            uint32_t num_cells) {
  std::vector<FlatKV> records(num_records);
  for (auto& [k, v] : records) {
    k.cell = rng.NextUint32(num_cells);
    // Coarse order values force plenty of exact ties, so the segment-index
    // tie-break is really exercised.
    k.order = static_cast<double>(rng.NextUint32(4));
    v.kind = core::ShuffleObject::kFeature;
    v.id = rng.NextUint64();
    v.pos = {rng.NextDouble(), rng.NextDouble()};
    v.keywords = {rng.NextUint32(100), 200 + rng.NextUint32(100)};
  }
  auto seg =
      internal::BuildFlatSegment<core::CellKey, core::ShuffleObject>(records);
  EXPECT_TRUE(seg.ok());
  return *std::move(seg);
}

std::vector<std::tuple<uint32_t, double, uint64_t>> DrainFlat(
    FlatMergeStream<core::CellKey, core::ShuffleObject>& stream) {
  std::vector<std::tuple<uint32_t, double, uint64_t>> out;
  while (stream.Advance()) {
    out.emplace_back(stream.key().cell, stream.key().order,
                     stream.value().id);
  }
  EXPECT_TRUE(stream.status().ok()) << stream.status().ToString();
  return out;
}

TEST(FlatMergeStrategyTest, LoserTreeMatchesHeapAtEveryFanIn) {
  Rng rng(31);
  std::vector<FlatSegment> segments;
  std::vector<const FlatSegment*> ptrs;
  // Includes empty and single-record segments among ordinary ones, and
  // spans fan-ins both below and above the auto threshold.
  for (std::size_t s = 0; s < 19; ++s) {
    segments.push_back(
        MakeFlatSegment(rng, s % 5 == 0 ? 0 : 50 + s, /*num_cells=*/6));
  }
  for (const auto& s : segments) ptrs.push_back(&s);
  for (std::size_t fan_in = 1; fan_in <= ptrs.size(); ++fan_in) {
    const std::vector<const FlatSegment*> subset(ptrs.begin(),
                                                 ptrs.begin() + fan_in);
    FlatMergeStream<core::CellKey, core::ShuffleObject> heap(
        subset, MergeStrategy::kBinaryHeap);
    FlatMergeStream<core::CellKey, core::ShuffleObject> loser(
        subset, MergeStrategy::kLoserTree);
    EXPECT_FALSE(heap.using_loser_tree());
    EXPECT_EQ(loser.using_loser_tree(), fan_in >= 2);
    EXPECT_EQ(DrainFlat(heap), DrainFlat(loser)) << "fan-in " << fan_in;
  }
}

TEST(FlatMergeStrategyTest, AutoPicksLoserTreeAtHighFanIn) {
  Rng rng(32);
  std::vector<FlatSegment> segments;
  for (std::size_t s = 0; s < 12; ++s) {
    segments.push_back(MakeFlatSegment(rng, 20, 4));
  }
  std::vector<const FlatSegment*> few, many;
  for (const auto& s : segments) many.push_back(&s);
  few.assign(many.begin(),
             many.begin() +
                 (FlatMergeStream<core::CellKey,
                                  core::ShuffleObject>::kLoserTreeMinFanIn -
                  1));
  FlatMergeStream<core::CellKey, core::ShuffleObject> small(few);
  FlatMergeStream<core::CellKey, core::ShuffleObject> large(many);
  EXPECT_FALSE(small.using_loser_tree());
  EXPECT_TRUE(large.using_loser_tree());
}

}  // namespace
}  // namespace spq::mapreduce
