#include "mapreduce/counters.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace spq::mapreduce {
namespace {

TEST(CountersTest, GetOfUnknownCounterIsZero) {
  Counters counters;
  EXPECT_EQ(counters.Get("nope"), 0u);
}

TEST(CountersTest, IncrementAccumulates) {
  Counters counters;
  counters.Increment("a");
  counters.Increment("a", 4);
  counters.Increment("b", 2);
  EXPECT_EQ(counters.Get("a"), 5u);
  EXPECT_EQ(counters.Get("b"), 2u);
}

TEST(CountersTest, MergeFromAddsCounters) {
  Counters a, b;
  a.Increment("x", 1);
  a.Increment("y", 2);
  b.Increment("y", 3);
  b.Increment("z", 4);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("x"), 1u);
  EXPECT_EQ(a.Get("y"), 5u);
  EXPECT_EQ(a.Get("z"), 4u);
  // b unchanged.
  EXPECT_EQ(b.Get("y"), 3u);
}

TEST(CountersTest, SnapshotIsSortedByName) {
  Counters counters;
  counters.Increment("zeta");
  counters.Increment("alpha");
  auto snapshot = counters.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.begin()->first, "alpha");
}

TEST(CountersTest, CopyIsIndependent) {
  Counters a;
  a.Increment("k", 7);
  Counters b = a;
  b.Increment("k", 1);
  EXPECT_EQ(a.Get("k"), 7u);
  EXPECT_EQ(b.Get("k"), 8u);
}

TEST(CountersTest, ConcurrentIncrementsAreAtomic) {
  Counters counters;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counters] {
      for (int i = 0; i < 10000; ++i) counters.Increment("hot");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counters.Get("hot"), 80000u);
}

}  // namespace
}  // namespace spq::mapreduce
