#include <gtest/gtest.h>

#include "mapreduce/job.h"

namespace spq::mapreduce {
namespace {

TEST(JobStatsTest, EmptyStatsHaveNeutralRatios) {
  JobStats stats;
  EXPECT_DOUBLE_EQ(stats.ReduceSkew(), 1.0);
  EXPECT_DOUBLE_EQ(stats.ReduceStragglerRatio(), 1.0);
  EXPECT_DOUBLE_EQ(stats.MaxReduceTaskSeconds(), 0.0);
  EXPECT_EQ(stats.MaxReduceRecords(), 0u);
}

TEST(JobStatsTest, ReduceSkewIsMaxOverMean) {
  JobStats stats;
  stats.reduce_input_records = {10, 10, 40};  // mean 20, max 40
  EXPECT_DOUBLE_EQ(stats.ReduceSkew(), 2.0);
  EXPECT_EQ(stats.MaxReduceRecords(), 40u);
}

TEST(JobStatsTest, PerfectBalanceIsOne) {
  JobStats stats;
  stats.reduce_input_records = {25, 25, 25, 25};
  EXPECT_DOUBLE_EQ(stats.ReduceSkew(), 1.0);
}

TEST(JobStatsTest, StragglerRatio) {
  JobStats stats;
  stats.reduce_task_seconds = {1.0, 1.0, 4.0};  // mean 2, max 4
  EXPECT_DOUBLE_EQ(stats.ReduceStragglerRatio(), 2.0);
  EXPECT_DOUBLE_EQ(stats.MaxReduceTaskSeconds(), 4.0);
}

TEST(JobStatsTest, AllZeroTimesAreNeutral) {
  JobStats stats;
  stats.reduce_task_seconds = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(stats.ReduceStragglerRatio(), 1.0);
}

TEST(FormatJobStatsTest, IncludesKeyFigures) {
  JobStats stats;
  stats.input_records = 123;
  stats.map_output_records = 456;
  stats.shuffle_bytes = 789;
  stats.reduce_input_records = {10, 20};
  stats.counters.Increment("reduce.features_examined", 7);
  std::string text = FormatJobStats(stats);
  EXPECT_NE(text.find("123"), std::string::npos);
  EXPECT_NE(text.find("456"), std::string::npos);
  EXPECT_NE(text.find("789"), std::string::npos);
  EXPECT_NE(text.find("reduce.features_examined"), std::string::npos);
}

TEST(FormatJobStatsTest, MentionsFailuresOnlyWhenPresent) {
  JobStats stats;
  EXPECT_EQ(FormatJobStats(stats).find("failures"), std::string::npos);
  stats.map_task_failures = 2;
  EXPECT_NE(FormatJobStats(stats).find("failures"), std::string::npos);
}

}  // namespace
}  // namespace spq::mapreduce
