#include "mapreduce/spill.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>

#include "mapreduce/runtime.h"

namespace spq::mapreduce {
namespace {

// Per-process unique: ctest runs each discovered test in its own process,
// possibly in parallel, and SpillFilesRemovedAfterJob remove_all()s this
// tree — a shared path let it yank spill files out from under sibling
// tests mid-job.
std::string SpillTestDir() {
  return (std::filesystem::temp_directory_path() /
          ("spq_spill_test_" + std::to_string(::getpid())))
      .string();
}

TEST(SpillFileTest, WriteReadRoundTrip) {
  const std::string path = SpillPath(SpillTestDir(), NextSpillRunId(), 0, 0);
  std::vector<uint8_t> bytes{1, 2, 3, 0, 255};
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());
  auto read = ReadSpillFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, bytes);
  RemoveSpillFile(path);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SpillFileTest, CreatesParentDirectories) {
  const std::string dir = SpillTestDir() + "/nested/deeper";
  const std::string path = SpillPath(dir, NextSpillRunId(), 1, 2);
  ASSERT_TRUE(WriteSpillFile(path, {42}).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  RemoveSpillFile(path);
}

TEST(SpillFileTest, ReadMissingFileIsIOError) {
  EXPECT_TRUE(ReadSpillFile("/nonexistent/spq.seg").status().IsIOError());
}

TEST(SpillFileTest, RemoveMissingFileIsNoop) {
  RemoveSpillFile("/nonexistent/spq.seg");  // must not crash
}

TEST(SpillFileTest, PathsAreUniquePerRunTaskPartition) {
  const std::string dir = SpillTestDir();
  EXPECT_NE(SpillPath(dir, 1, 0, 0), SpillPath(dir, 2, 0, 0));
  EXPECT_NE(SpillPath(dir, 1, 0, 0), SpillPath(dir, 1, 1, 0));
  EXPECT_NE(SpillPath(dir, 1, 0, 0), SpillPath(dir, 1, 0, 1));
}

// ----- the shared fetch-at-least-N / peek-available buffer primitive -----

std::vector<uint8_t> PatternBytes(std::size_t n) {
  std::vector<uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>((i * 131 + 7) & 0xff);
  }
  return bytes;
}

TEST(SpillRegionReaderTest, PeekConsumeWalksWholeRegion) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 9, 0);
  const std::vector<uint8_t> bytes = PatternBytes(10'000);
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());

  SpillRegionReader reader;
  // A tiny buffer forces many refill cycles.
  reader.Open(path, 0, bytes.size(), /*buffer_capacity=*/64);
  std::vector<uint8_t> got;
  while (got.size() < bytes.size()) {
    if (reader.peek_len() == 0) {
      ASSERT_TRUE(reader.FetchMore().ok());
      ASSERT_GT(reader.peek_len(), 0u);
    }
    // Consume in awkward prime-sized chunks to stress compaction.
    const std::size_t n = std::min<std::size_t>(reader.peek_len(), 13);
    got.insert(got.end(), reader.peek_data(), reader.peek_data() + n);
    reader.Consume(n);
  }
  EXPECT_EQ(got, bytes);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_TRUE(reader.FetchMore().IsOutOfRange());
  RemoveSpillFile(path);
}

TEST(SpillRegionReaderTest, FetchMoreGrowsPastBufferForOneBigRecord) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 9, 1);
  const std::vector<uint8_t> bytes = PatternBytes(5'000);
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());

  SpillRegionReader reader;
  reader.Open(path, 0, bytes.size(), /*buffer_capacity=*/128);
  // Keep widening without consuming — as a decoder stuck on one record
  // bigger than the buffer does — until the whole region is windowed.
  while (reader.peek_len() < bytes.size()) {
    ASSERT_TRUE(reader.FetchMore().ok());
  }
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), reader.peek_data()));
  reader.Consume(bytes.size());
  EXPECT_EQ(reader.remaining(), 0u);
  RemoveSpillFile(path);
}

TEST(SpillRegionReaderTest, FetchAndPeekProtocolsInterleave) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 9, 2);
  const std::vector<uint8_t> bytes = PatternBytes(2'000);
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());

  SpillRegionReader reader;
  reader.Open(path, 0, bytes.size(), /*buffer_capacity=*/64);
  const uint8_t* p = nullptr;
  ASSERT_TRUE(reader.Fetch(100, &p).ok());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.begin() + 100, p));
  ASSERT_TRUE(reader.FetchMore().ok());
  ASSERT_GE(reader.peek_len(), 1u);
  EXPECT_EQ(reader.peek_data()[0], bytes[100]);
  reader.Consume(50);
  ASSERT_TRUE(reader.Fetch(150, &p).ok());
  EXPECT_TRUE(std::equal(bytes.begin() + 150, bytes.begin() + 300, p));
  RemoveSpillFile(path);
}

TEST(SpillRegionReaderTest, TruncatedRegionSurfacesOutOfRange) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 9, 3);
  ASSERT_TRUE(WriteSpillFile(path, PatternBytes(100)).ok());

  SpillRegionReader reader;
  // Region claims more bytes than the file holds.
  reader.Open(path, 0, 500, /*buffer_capacity=*/64);
  Status st = Status::OK();
  while (st.ok()) st = reader.FetchMore();
  EXPECT_TRUE(st.IsOutOfRange()) << st.ToString();
  EXPECT_EQ(reader.peek_len(), 100u);
  RemoveSpillFile(path);
}

// ----- CRC framing: corruption is detected, never served -----

/// Flips one bit of the on-disk file at `offset`.
void FlipByteOnDisk(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c ^= 0x20;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(SpillFramingTest, CorruptBodyByteIsIOErrorNeverGarbage) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 20, 0);
  const std::vector<uint8_t> bytes = PatternBytes(5'000);
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());
  FlipByteOnDisk(path, 1'234);  // inside the body

  // Whole-file read: detected by the page CRC.
  EXPECT_TRUE(ReadSpillFile(path).status().IsIOError());

  // Region read: the reader must error out before serving the bad byte.
  SpillRegionReader reader;
  reader.Open(path, 0, bytes.size(), /*buffer_capacity=*/256);
  std::vector<uint8_t> got;
  Status st = Status::OK();
  while (st.ok() && got.size() < bytes.size()) {
    if (reader.peek_len() == 0) {
      st = reader.FetchMore();
      if (!st.ok()) break;
    }
    const std::size_t n = reader.peek_len();
    got.insert(got.end(), reader.peek_data(), reader.peek_data() + n);
    reader.Consume(n);
  }
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // Everything served before the error was verified-intact.
  EXPECT_LE(got.size(), 1'234u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), bytes.begin()));
  RemoveSpillFile(path);
}

TEST(SpillFramingTest, CorruptTrailerIsDetected) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 20, 1);
  ASSERT_TRUE(WriteSpillFile(path, PatternBytes(300)).ok());
  const auto file_size = std::filesystem::file_size(path);
  FlipByteOnDisk(path, static_cast<std::size_t>(file_size) - 3);
  EXPECT_TRUE(ReadSpillFile(path).status().IsIOError());
  SpillRegionReader reader;
  reader.Open(path, 0, 300, /*buffer_capacity=*/64);
  EXPECT_TRUE(reader.FetchMore().IsIOError());
  RemoveSpillFile(path);
}

TEST(SpillFramingTest, CorruptCrcTableIsDetected) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 20, 2);
  const std::vector<uint8_t> bytes = PatternBytes(700);
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());
  FlipByteOnDisk(path, bytes.size() + 1);  // first page's table entry
  EXPECT_TRUE(ReadSpillFile(path).status().IsIOError());
  RemoveSpillFile(path);
}

TEST(SpillFramingTest, VerifyAfterWriteCatchesInjectedWriteFaults) {
  // With prob 1.0 every storage site rolls SOME fault kind, but a site
  // can roll a kind for the other direction (a write site drawing
  // kShortRead injects nothing at write time) — so an individual write
  // may legitimately be acknowledged. The contract under test is what
  // faults may never do: an acknowledged write must round-trip the exact
  // bytes, a failed write must be a deterministic IOError whose file is
  // either detectably poisoned or clean — silent garbage is the one
  // impossible outcome. 24 distinct paths (independent site rolls) make
  // an all-inert run astronomically unlikely, so the verify-after-write
  // pass is genuinely exercised.
  FaultSpec spec;
  spec.storage_fault_prob = 1.0;
  spec.seed = 7;
  const std::vector<uint8_t> bytes = PatternBytes(2'000);
  const uint64_t run_id = NextSpillRunId();
  int write_failures = 0;
  for (uint32_t part = 0; part < 24; ++part) {
    const std::string path = SpillPath(SpillTestDir(), run_id, 20, part);
    Status st = Status::OK();
    Status again = Status::OK();
    {
      ScopedStorageFaults scope(&spec, /*salt=*/1);
      st = WriteSpillFile(path, bytes);
      // Deterministic: the same (spec, salt, path) re-rolls identically.
      again = WriteSpillFile(path, bytes);
    }
    EXPECT_EQ(st.ToString(), again.ToString());
    auto read = ReadSpillFile(path);  // outside the scope: no read faults
    if (st.ok()) {
      // Acknowledged ⇒ the bytes on the medium are the bytes handed in.
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      EXPECT_EQ(*read, bytes);
    } else {
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
      ++write_failures;
      // The unacknowledged file is torn/corrupt (framing detects it) or
      // clean (the fault hit the verify read, not the medium) — never
      // readable-but-wrong.
      if (read.ok()) EXPECT_EQ(*read, bytes);
    }
    RemoveSpillFile(path);
  }
  EXPECT_GT(write_failures, 0);

  // No scope: the same path writes and round-trips clean (a retried
  // attempt with a different salt behaves the same way).
  const std::string path = SpillPath(SpillTestDir(), run_id, 20, 100);
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());
  auto read = ReadSpillFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, bytes);
  RemoveSpillFile(path);
}

TEST(SpillFramingTest, ZeroFaultProbScopeIsInert) {
  const std::string path =
      SpillPath(SpillTestDir(), NextSpillRunId(), 20, 4);
  FaultSpec spec;  // storage_fault_prob = 0
  ScopedStorageFaults scope(&spec, /*salt=*/9);
  const std::vector<uint8_t> bytes = PatternBytes(500);
  ASSERT_TRUE(WriteSpillFile(path, bytes).ok());
  auto read = ReadSpillFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, bytes);
  RemoveSpillFile(path);
}

// ----- end-to-end: jobs with the out-of-core shuffle -----

class TensMapper : public Mapper<uint64_t, uint32_t, uint64_t> {
 public:
  void Map(const uint64_t& v, MapContext<uint32_t, uint64_t>& ctx) override {
    ctx.Emit(static_cast<uint32_t>(v % 7), v);
  }
};

struct GroupSum {
  uint32_t group;
  uint64_t sum;
};

class SumReducer : public Reducer<uint32_t, uint64_t, GroupSum> {
 public:
  void Reduce(const uint32_t& group, GroupValues<uint32_t, uint64_t>& values,
              ReduceContext<GroupSum>& ctx) override {
    uint64_t sum = 0;
    while (values.Next()) sum += values.value();
    ctx.Emit({group, sum});
  }
};

JobSpec<uint64_t, uint32_t, uint64_t, GroupSum> SumSpec() {
  JobSpec<uint64_t, uint32_t, uint64_t, GroupSum> spec;
  spec.mapper_factory = [] { return std::make_unique<TensMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.partitioner = [](const uint32_t& k, uint32_t n) { return k % n; };
  spec.sort_less = [](const uint32_t& a, const uint32_t& b) { return a < b; };
  spec.group_equal = [](const uint32_t& a, const uint32_t& b) {
    return a == b;
  };
  return spec;
}

std::map<uint32_t, uint64_t> ToMap(const std::vector<GroupSum>& records) {
  std::map<uint32_t, uint64_t> m;
  for (const auto& r : records) m[r.group] = r.sum;
  return m;
}

TEST(SpillShuffleTest, SpilledJobMatchesInMemoryJob) {
  std::vector<uint64_t> input;
  for (uint64_t i = 0; i < 5000; ++i) input.push_back(i);

  JobConfig in_memory;
  in_memory.num_map_tasks = 6;
  in_memory.num_reduce_tasks = 4;
  auto expected = RunJob(SumSpec(), in_memory, input);
  ASSERT_TRUE(expected.ok());

  JobConfig spilled = in_memory;
  spilled.spill_dir = SpillTestDir();
  auto result = RunJob(SumSpec(), spilled, input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(ToMap(result->records), ToMap(expected->records));
  EXPECT_EQ(result->stats.shuffle_bytes, expected->stats.shuffle_bytes);
}

TEST(SpillShuffleTest, SpillFilesRemovedAfterJob) {
  const std::string dir = SpillTestDir() + "/cleanup";
  std::vector<uint64_t> input;
  for (uint64_t i = 0; i < 100; ++i) input.push_back(i);
  JobConfig config;
  config.spill_dir = dir;
  auto result = RunJob(SumSpec(), config, input);
  ASSERT_TRUE(result.ok());
  std::size_t remaining = 0;
  if (std::filesystem::exists(dir)) {
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator(dir)) {
      ++remaining;
    }
  }
  EXPECT_EQ(remaining, 0u);
  std::filesystem::remove_all(SpillTestDir());
}

TEST(SpillShuffleTest, SpilledJobSurvivesReduceRetries) {
  std::vector<uint64_t> input;
  for (uint64_t i = 0; i < 2000; ++i) input.push_back(i);
  JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.spill_dir = SpillTestDir();
  config.faults.reduce_failure_prob = 0.5;
  config.faults.seed = 17;
  config.max_task_attempts = 30;
  auto result = RunJob(SumSpec(), config, input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  uint64_t total = 0;
  for (const auto& r : result->records) total += r.sum;
  EXPECT_EQ(total, 1999ull * 2000 / 2);
  EXPECT_GT(result->stats.reduce_task_failures, 0u);
  std::filesystem::remove_all(SpillTestDir());
}

TEST(SpillShuffleTest, UnwritableSpillDirFailsJob) {
  std::vector<uint64_t> input{1, 2, 3};
  JobConfig config;
  config.spill_dir = "/proc/definitely_unwritable/spills";
  auto result = RunJob(SumSpec(), config, input);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace spq::mapreduce
