#include "mapreduce/fault.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/runtime.h"

namespace spq::mapreduce {
namespace {

TEST(FaultSpecTest, DisabledByDefault) {
  FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_FALSE(AttemptFails(spec, 0, 0, 0));
  EXPECT_FALSE(AttemptFails(spec, 1, 7, 3));
}

TEST(FaultSpecTest, DeterministicDecisions) {
  FaultSpec spec;
  spec.map_failure_prob = 0.5;
  spec.seed = 9;
  for (uint32_t task = 0; task < 50; ++task) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(AttemptFails(spec, 0, task, attempt),
                AttemptFails(spec, 0, task, attempt));
    }
  }
}

TEST(FaultSpecTest, ProbabilityRoughlyRespected) {
  FaultSpec spec;
  spec.map_failure_prob = 0.3;
  spec.seed = 123;
  int failures = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (AttemptFails(spec, 0, static_cast<uint32_t>(i), 0)) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.3, 0.02);
}

TEST(FaultSpecTest, ProbabilityOneAlwaysFails) {
  FaultSpec spec;
  spec.reduce_failure_prob = 1.0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_TRUE(AttemptFails(spec, 1, 0, attempt));
  }
}

// ------------------------------------------------ end-to-end with a job

class IdentityMapper : public Mapper<uint64_t, uint32_t, uint64_t> {
 public:
  void Map(const uint64_t& v, MapContext<uint32_t, uint64_t>& ctx) override {
    ctx.Emit(static_cast<uint32_t>(v % 10), v);
  }
};

struct GroupSum {
  uint32_t group;
  uint64_t sum;
};

class SumReducer : public Reducer<uint32_t, uint64_t, GroupSum> {
 public:
  void Reduce(const uint32_t& group, GroupValues<uint32_t, uint64_t>& values,
              ReduceContext<GroupSum>& ctx) override {
    uint64_t sum = 0;
    while (values.Next()) sum += values.value();
    ctx.Emit({group, sum});
  }
};

JobSpec<uint64_t, uint32_t, uint64_t, GroupSum> SumSpec() {
  JobSpec<uint64_t, uint32_t, uint64_t, GroupSum> spec;
  spec.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.partitioner = [](const uint32_t& k, uint32_t n) { return k % n; };
  spec.sort_less = [](const uint32_t& a, const uint32_t& b) { return a < b; };
  spec.group_equal = [](const uint32_t& a, const uint32_t& b) {
    return a == b;
  };
  return spec;
}

std::vector<uint64_t> TestInput() {
  std::vector<uint64_t> input;
  for (uint64_t i = 0; i < 1000; ++i) input.push_back(i);
  return input;
}

std::map<uint32_t, uint64_t> ToMap(const std::vector<GroupSum>& records) {
  std::map<uint32_t, uint64_t> m;
  for (const auto& r : records) m[r.group] = r.sum;
  return m;
}

TEST(FaultInjectionTest, RetriedTasksProduceIdenticalResults) {
  const auto input = TestInput();

  JobConfig clean;
  clean.num_map_tasks = 8;
  clean.num_reduce_tasks = 4;
  auto expected = RunJob(SumSpec(), clean, input);
  ASSERT_TRUE(expected.ok());

  JobConfig faulty = clean;
  faulty.faults.map_failure_prob = 0.5;
  faulty.faults.reduce_failure_prob = 0.5;
  faulty.faults.seed = 77;
  faulty.max_task_attempts = 20;
  auto result = RunJob(SumSpec(), faulty, input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(ToMap(result->records), ToMap(expected->records));
  // With p=0.5 over 12 tasks, some failures are certain for this seed.
  EXPECT_GT(result->stats.map_task_failures +
                result->stats.reduce_task_failures,
            0u);
}

TEST(FaultInjectionTest, NoDoubleCountingAfterRetries) {
  const auto input = TestInput();
  JobConfig faulty;
  faulty.num_map_tasks = 6;
  faulty.num_reduce_tasks = 3;
  faulty.faults.map_failure_prob = 0.6;
  faulty.faults.seed = 5;
  faulty.max_task_attempts = 30;
  auto result = RunJob(SumSpec(), faulty, input);
  ASSERT_TRUE(result.ok());
  // Sum over all groups must equal sum 0..999 exactly once.
  uint64_t total = 0;
  for (const auto& r : result->records) total += r.sum;
  EXPECT_EQ(total, 999ull * 1000 / 2);
  EXPECT_EQ(result->stats.map_output_records, 1000u);
}

TEST(FaultInjectionTest, ExhaustedAttemptsAbortJob) {
  JobConfig config;
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 2;
  config.faults.map_failure_prob = 1.0;
  config.max_task_attempts = 3;
  auto result = RunJob(SumSpec(), config, TestInput());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted());
}

// Storage faults on the spill path (torn writes caught by the
// verify-after-write, short reads / bit flips caught by the page CRCs)
// must behave like task failures: the attempt retries with a fresh fault
// roll and the job converges to the exact clean-run output.
TEST(FaultInjectionTest, StorageFaultsOnSpillPathConverge) {
  const auto input = TestInput();

  JobConfig clean;
  clean.num_map_tasks = 6;
  clean.num_reduce_tasks = 4;
  auto expected = RunJob(SumSpec(), clean, input);
  ASSERT_TRUE(expected.ok());

  JobConfig faulty = clean;
  faulty.spill_dir = (std::filesystem::temp_directory_path() /
                      ("spq_fault_storage_" + std::to_string(::getpid())))
                         .string();
  faulty.faults.storage_fault_prob = 0.3;
  faulty.faults.seed = 41;
  faulty.max_task_attempts = 50;
  auto result = RunJob(SumSpec(), faulty, input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(ToMap(result->records), ToMap(expected->records));
  // p=0.3 per storage site over 24 spill files: detections are certain
  // for this seed, and every one cost an attempt, never a wrong record.
  EXPECT_GT(result->stats.storage_fault_detections, 0u);
  std::filesystem::remove_all(faulty.spill_dir);
}

// Task faults and storage faults together: the combined retry machinery
// must still converge to the clean output.
TEST(FaultInjectionTest, TaskAndStorageFaultsTogetherConverge) {
  const auto input = TestInput();
  JobConfig clean;
  clean.num_map_tasks = 5;
  clean.num_reduce_tasks = 3;
  auto expected = RunJob(SumSpec(), clean, input);
  ASSERT_TRUE(expected.ok());

  JobConfig faulty = clean;
  faulty.spill_dir = (std::filesystem::temp_directory_path() /
                      ("spq_fault_both_" + std::to_string(::getpid())))
                         .string();
  faulty.faults.map_failure_prob = 0.3;
  faulty.faults.reduce_failure_prob = 0.3;
  faulty.faults.storage_fault_prob = 0.2;
  faulty.faults.seed = 97;
  faulty.max_task_attempts = 60;
  auto result = RunJob(SumSpec(), faulty, input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ToMap(result->records), ToMap(expected->records));
  std::filesystem::remove_all(faulty.spill_dir);
}

// Without a spill dir there is no storage I/O to fault: the knob must be
// inert for in-memory shuffles, not a hidden failure source.
TEST(FaultInjectionTest, StorageFaultsInertWithoutSpill) {
  const auto input = TestInput();
  JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 4;
  config.faults.storage_fault_prob = 1.0;
  config.faults.seed = 3;
  auto result = RunJob(SumSpec(), config, input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.storage_fault_detections, 0u);
  EXPECT_EQ(result->records.size(), 10u);
}

TEST(FaultInjectionTest, ReduceOnlyFaultsRecover) {
  const auto input = TestInput();
  JobConfig faulty;
  faulty.num_reduce_tasks = 5;
  faulty.faults.reduce_failure_prob = 0.7;
  faulty.faults.seed = 31;
  faulty.max_task_attempts = 50;
  auto result = RunJob(SumSpec(), faulty, input);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.reduce_task_failures, 0u);
  EXPECT_EQ(result->records.size(), 10u);
}

}  // namespace
}  // namespace spq::mapreduce
