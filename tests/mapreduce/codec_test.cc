#include "mapreduce/codec.h"

#include <gtest/gtest.h>

#include "spq/shuffle_types.h"

namespace spq::mapreduce {
namespace {

template <typename T>
T RoundTrip(const T& value) {
  Buffer buf;
  Codec<T>::Encode(value, buf);
  BufferReader reader(buf.data(), buf.size());
  T out{};
  EXPECT_TRUE(Codec<T>::Decode(reader, &out).ok());
  EXPECT_TRUE(reader.exhausted());
  return out;
}

TEST(CodecTest, Primitives) {
  EXPECT_EQ(RoundTrip<uint32_t>(0u), 0u);
  EXPECT_EQ(RoundTrip<uint32_t>(123456u), 123456u);
  EXPECT_EQ(RoundTrip<uint64_t>(1ULL << 50), 1ULL << 50);
  EXPECT_DOUBLE_EQ(RoundTrip<double>(-2.75), -2.75);
  EXPECT_EQ(RoundTrip<std::string>("shuffle"), "shuffle");
}

TEST(CodecTest, Vectors) {
  std::vector<uint32_t> v{3, 1, 4, 1, 5};
  EXPECT_EQ(RoundTrip(v), v);
  EXPECT_EQ(RoundTrip(std::vector<uint32_t>{}), std::vector<uint32_t>{});
  std::vector<std::string> s{"a", "", "bc"};
  EXPECT_EQ(RoundTrip(s), s);
}

TEST(CodecTest, CellKeyRoundTrip) {
  core::CellKey key{42, -0.625};
  core::CellKey out = RoundTrip(key);
  EXPECT_EQ(out.cell, 42u);
  EXPECT_DOUBLE_EQ(out.order, -0.625);
}

TEST(CodecTest, ShuffleObjectDataRoundTrip) {
  core::ShuffleObject obj;
  obj.kind = core::ShuffleObject::kData;
  obj.id = 99;
  obj.pos = {0.25, 0.75};
  core::ShuffleObject out = RoundTrip(obj);
  EXPECT_TRUE(out.is_data());
  EXPECT_EQ(out.id, 99u);
  EXPECT_DOUBLE_EQ(out.pos.x, 0.25);
  EXPECT_DOUBLE_EQ(out.pos.y, 0.75);
  EXPECT_TRUE(out.keywords.empty());
}

TEST(CodecTest, ShuffleObjectFeatureRoundTrip) {
  core::ShuffleObject obj;
  obj.kind = core::ShuffleObject::kFeature;
  obj.id = 7;
  obj.pos = {0.5, 0.5};
  obj.keywords = {1, 5, 9};
  core::ShuffleObject out = RoundTrip(obj);
  EXPECT_TRUE(out.is_feature());
  EXPECT_EQ(out.keywords, (std::vector<text::TermId>{1, 5, 9}));
}

TEST(CodecTest, DataObjectOmitsKeywordPayload) {
  // The wire format of a data object must not spend bytes on keywords.
  core::ShuffleObject data;
  data.kind = core::ShuffleObject::kData;
  data.id = 1;
  core::ShuffleObject feature = data;
  feature.kind = core::ShuffleObject::kFeature;
  Buffer data_buf, feature_buf;
  Codec<core::ShuffleObject>::Encode(data, data_buf);
  Codec<core::ShuffleObject>::Encode(feature, feature_buf);
  EXPECT_LT(data_buf.size(), feature_buf.size());
}

TEST(CodecTest, DecodeFailsOnTruncation) {
  core::ShuffleObject obj;
  obj.kind = core::ShuffleObject::kFeature;
  obj.keywords = {1, 2, 3};
  Buffer buf;
  Codec<core::ShuffleObject>::Encode(obj, buf);
  BufferReader reader(buf.data(), buf.size() - 1);
  core::ShuffleObject out;
  EXPECT_FALSE(Codec<core::ShuffleObject>::Decode(reader, &out).ok());
}

}  // namespace
}  // namespace spq::mapreduce
