#include "mapreduce/runtime.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spq::mapreduce {
namespace {

// ---------------------------------------------------------------- word count

/// Classic word count: proves the map -> shuffle -> sort -> group -> reduce
/// pipeline end to end.
class WordCountMapper : public Mapper<std::string, std::string, uint64_t> {
 public:
  void Map(const std::string& line,
           MapContext<std::string, uint64_t>& ctx) override {
    std::string word;
    for (char c : line) {
      if (c == ' ') {
        if (!word.empty()) ctx.Emit(word, 1);
        word.clear();
      } else {
        word.push_back(c);
      }
    }
    if (!word.empty()) ctx.Emit(word, 1);
  }
};

struct WordCount {
  std::string word;
  uint64_t count;
};

class WordCountReducer
    : public Reducer<std::string, uint64_t, WordCount> {
 public:
  void Reduce(const std::string& word,
              GroupValues<std::string, uint64_t>& values,
              ReduceContext<WordCount>& ctx) override {
    uint64_t total = 0;
    while (values.Next()) total += values.value();
    ctx.Emit({word, total});
  }
};

JobSpec<std::string, std::string, uint64_t, WordCount> WordCountSpec() {
  JobSpec<std::string, std::string, uint64_t, WordCount> spec;
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<WordCountReducer>(); };
  spec.partitioner = [](const std::string& key, uint32_t n) {
    return static_cast<uint32_t>(std::hash<std::string>{}(key) % n);
  };
  spec.sort_less = [](const std::string& a, const std::string& b) {
    return a < b;
  };
  spec.group_equal = [](const std::string& a, const std::string& b) {
    return a == b;
  };
  return spec;
}

std::map<std::string, uint64_t> RunWordCount(const std::vector<std::string>& lines,
                                             const JobConfig& config) {
  auto result = RunJob(WordCountSpec(), config, lines);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::map<std::string, uint64_t> counts;
  for (const auto& wc : result->records) counts[wc.word] = wc.count;
  return counts;
}

TEST(RuntimeTest, WordCountBasics) {
  JobConfig config;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 2;
  config.num_workers = 4;
  auto counts = RunWordCount(
      {"the quick brown fox", "the lazy dog", "the fox"}, config);
  EXPECT_EQ(counts["the"], 3u);
  EXPECT_EQ(counts["fox"], 2u);
  EXPECT_EQ(counts["dog"], 1u);
  EXPECT_EQ(counts.size(), 6u);
}

TEST(RuntimeTest, EmptyInputYieldsEmptyOutput) {
  JobConfig config;
  auto result = RunJob(WordCountSpec(), config, std::vector<std::string>{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->records.empty());
  EXPECT_EQ(result->stats.input_records, 0u);
}

TEST(RuntimeTest, MoreTasksThanRecords) {
  JobConfig config;
  config.num_map_tasks = 16;
  config.num_reduce_tasks = 16;
  config.num_workers = 4;
  auto counts = RunWordCount({"solo"}, config);
  EXPECT_EQ(counts["solo"], 1u);
}

TEST(RuntimeTest, SingleWorkerMatchesParallel) {
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back("w" + std::to_string(i % 17) + " w" +
                    std::to_string(i % 5));
  }
  JobConfig serial;
  serial.num_workers = 1;
  JobConfig parallel;
  parallel.num_workers = 8;
  EXPECT_EQ(RunWordCount(lines, serial), RunWordCount(lines, parallel));
}

TEST(RuntimeTest, StatsArepopulated) {
  JobConfig config;
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 3;
  auto result =
      RunJob(WordCountSpec(), config, std::vector<std::string>{"a b", "c a"});
  ASSERT_TRUE(result.ok());
  const JobStats& stats = result->stats;
  EXPECT_EQ(stats.input_records, 2u);
  EXPECT_EQ(stats.map_output_records, 4u);
  EXPECT_GT(stats.shuffle_bytes, 0u);
  EXPECT_EQ(stats.reduce_input_records.size(), 3u);
  uint64_t total = 0;
  for (uint64_t v : stats.reduce_input_records) total += v;
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(stats.map_task_failures, 0u);
  EXPECT_EQ(stats.reduce_task_failures, 0u);
}

TEST(RuntimeTest, InvalidConfigRejected) {
  JobConfig config;
  config.num_map_tasks = 0;
  auto result = RunJob(WordCountSpec(), config, std::vector<std::string>{"x"});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(RuntimeTest, IncompleteSpecRejected) {
  JobSpec<std::string, std::string, uint64_t, WordCount> spec;  // all empty
  JobConfig config;
  auto result = RunJob(spec, config, std::vector<std::string>{"x"});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

// ------------------------------------------------- secondary sort semantics

struct TestKey {
  uint32_t group = 0;
  double order = 0.0;
};

}  // namespace
}  // namespace spq::mapreduce

namespace spq::mapreduce {
template <>
struct Codec<spq::mapreduce::TestKey> {
  static void Encode(const TestKey& k, Buffer& buf) {
    buf.PutUint32(k.group);
    buf.PutDouble(k.order);
  }
  static Status Decode(BufferReader& reader, TestKey* out) {
    SPQ_RETURN_NOT_OK(reader.GetUint32(&out->group));
    return reader.GetDouble(&out->order);
  }
};
}  // namespace spq::mapreduce

namespace spq::mapreduce {
namespace {

struct OrderedInput {
  uint32_t group;
  double order;
  uint64_t payload;
};

class PassThroughMapper : public Mapper<OrderedInput, TestKey, uint64_t> {
 public:
  void Map(const OrderedInput& in,
           MapContext<TestKey, uint64_t>& ctx) override {
    ctx.Emit(TestKey{in.group, in.order}, in.payload);
  }
};

/// Emits values in arrival order, recording the composite key's secondary
/// component so tests can assert the sort order within the group.
struct SeenValue {
  uint32_t group;
  double order;
  uint64_t payload;
};

class CollectingReducer : public Reducer<TestKey, uint64_t, SeenValue> {
 public:
  explicit CollectingReducer(int limit = -1) : limit_(limit) {}
  void Reduce(const TestKey& group_key, GroupValues<TestKey, uint64_t>& values,
              ReduceContext<SeenValue>& ctx) override {
    int taken = 0;
    while (values.Next()) {
      ctx.Emit({group_key.group, values.key().order, values.value()});
      if (limit_ > 0 && ++taken >= limit_) break;  // early termination
    }
  }

 private:
  int limit_;
};

JobSpec<OrderedInput, TestKey, uint64_t, SeenValue> SecondarySortSpec(
    int limit = -1) {
  JobSpec<OrderedInput, TestKey, uint64_t, SeenValue> spec;
  spec.mapper_factory = [] { return std::make_unique<PassThroughMapper>(); };
  spec.reducer_factory = [limit] {
    return std::make_unique<CollectingReducer>(limit);
  };
  spec.partitioner = [](const TestKey& k, uint32_t n) { return k.group % n; };
  spec.sort_less = [](const TestKey& a, const TestKey& b) {
    if (a.group != b.group) return a.group < b.group;
    return a.order < b.order;
  };
  spec.group_equal = [](const TestKey& a, const TestKey& b) {
    return a.group == b.group;
  };
  return spec;
}

TEST(RuntimeTest, SecondarySortOrdersValuesWithinGroup) {
  std::vector<OrderedInput> input;
  // Interleave groups and emit orders descending so sorting must work.
  for (int i = 9; i >= 0; --i) {
    input.push_back({0, static_cast<double>(i), static_cast<uint64_t>(i)});
    input.push_back({1, static_cast<double>(-i), static_cast<uint64_t>(i)});
  }
  JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 2;
  auto result = RunJob(SecondarySortSpec(), config, input);
  ASSERT_TRUE(result.ok());
  std::map<uint32_t, std::vector<double>> orders;
  for (const auto& seen : result->records) {
    orders[seen.group].push_back(seen.order);
  }
  ASSERT_EQ(orders.size(), 2u);
  for (const auto& [group, seq] : orders) {
    ASSERT_EQ(seq.size(), 10u) << "group " << group;
    for (std::size_t i = 1; i < seq.size(); ++i) {
      EXPECT_LE(seq[i - 1], seq[i]) << "group " << group;
    }
  }
}

TEST(RuntimeTest, ReducerSeesCompositeKeyOfCurrentValue) {
  std::vector<OrderedInput> input{{5, 0.25, 1}, {5, 0.75, 2}};
  JobConfig config;
  config.num_reduce_tasks = 1;
  auto result = RunJob(SecondarySortSpec(), config, input);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), 2u);
  EXPECT_DOUBLE_EQ(result->records[0].order, 0.25);
  EXPECT_DOUBLE_EQ(result->records[1].order, 0.75);
}

TEST(RuntimeTest, EarlyTerminationSkipsToNextGroup) {
  // Reducer takes only the first (smallest-order) value per group; the
  // runtime must still deliver every group.
  std::vector<OrderedInput> input;
  for (uint32_t g = 0; g < 8; ++g) {
    for (int i = 0; i < 20; ++i) {
      input.push_back({g, static_cast<double>((i * 7) % 20), i * 100ull + g});
    }
  }
  JobConfig config;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  auto result = RunJob(SecondarySortSpec(/*limit=*/1), config, input);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), 8u);
  for (const auto& seen : result->records) {
    EXPECT_DOUBLE_EQ(seen.order, 0.0) << "group " << seen.group;
  }
}

TEST(RuntimeTest, GroupsWithSingleValue) {
  std::vector<OrderedInput> input;
  for (uint32_t g = 0; g < 100; ++g) input.push_back({g, 1.0, g});
  JobConfig config;
  config.num_map_tasks = 7;
  config.num_reduce_tasks = 5;
  auto result = RunJob(SecondarySortSpec(), config, input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 100u);
}

TEST(RuntimeTest, DeterministicAcrossRuns) {
  std::vector<OrderedInput> input;
  for (int i = 0; i < 500; ++i) {
    input.push_back({static_cast<uint32_t>(i % 13),
                     static_cast<double>((i * 31) % 97), static_cast<uint64_t>(i)});
  }
  JobConfig config;
  config.num_map_tasks = 8;
  config.num_reduce_tasks = 6;
  config.num_workers = 8;
  auto a = RunJob(SecondarySortSpec(), config, input);
  auto b = RunJob(SecondarySortSpec(), config, input);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->records.size(), b->records.size());
  for (std::size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].group, b->records[i].group);
    EXPECT_DOUBLE_EQ(a->records[i].order, b->records[i].order);
    EXPECT_EQ(a->records[i].payload, b->records[i].payload);
  }
}

// ---- parameterized sweep: cluster shape must never change results ----

class ClusterShapeTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {
};

TEST_P(ClusterShapeTest, WordCountInvariantUnderClusterShape) {
  const auto [maps, reduces, workers] = GetParam();
  std::vector<std::string> lines;
  for (int i = 0; i < 300; ++i) {
    lines.push_back("alpha w" + std::to_string(i % 23) + " w" +
                    std::to_string(i % 7));
  }
  JobConfig reference;
  reference.num_map_tasks = 1;
  reference.num_reduce_tasks = 1;
  reference.num_workers = 1;
  JobConfig config;
  config.num_map_tasks = maps;
  config.num_reduce_tasks = reduces;
  config.num_workers = workers;
  EXPECT_EQ(RunWordCount(lines, config), RunWordCount(lines, reference));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapeTest,
    ::testing::Combine(::testing::Values(1u, 3u, 16u),
                       ::testing::Values(1u, 4u, 13u),
                       ::testing::Values(1u, 8u)),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

TEST(RuntimeTest, CountersFlowFromTasksToJob) {
  JobSpec<std::string, std::string, uint64_t, WordCount> spec = WordCountSpec();
  spec.mapper_factory = [] {
    class CountingMapper : public WordCountMapper {
     public:
      void Map(const std::string& line,
               MapContext<std::string, uint64_t>& ctx) override {
        ctx.counters().Increment("lines");
        WordCountMapper::Map(line, ctx);
      }
    };
    return std::make_unique<CountingMapper>();
  };
  JobConfig config;
  config.num_map_tasks = 3;
  auto result =
      RunJob(spec, config, std::vector<std::string>{"a", "b", "c", "d"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.counters.Get("lines"), 4u);
}

}  // namespace
}  // namespace spq::mapreduce
