// Tests for the process-wide metrics layer (common/metrics.h), run under
// the "observability" ctest label and the tsan preset:
//   - log₂-bucket quantile estimates agree with a sorted-sample reference
//     within the documented factor-2 bucket bound (and land in the same
//     power-of-two bucket as the truth);
//   - concurrent recorders across the per-thread shards lose nothing:
//     count, sum, and max are exact after an 8-thread hammer;
//   - registry lookups are identity-stable and ResetForTest() keeps
//     cached references valid;
//   - Prometheus text exposition carries every registered series;
//   - LogRateLimiter admits the 1st/(N+1)th/... occurrence and reports
//     the suppressed count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"

namespace spq::metrics {
namespace {

TEST(MetricsTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 0);
  EXPECT_EQ(Histogram::BucketOf(2), 1);
  EXPECT_EQ(Histogram::BucketOf(3), 1);
  EXPECT_EQ(Histogram::BucketOf(4), 2);
  EXPECT_EQ(Histogram::BucketOf(1023), 9);
  EXPECT_EQ(Histogram::BucketOf(1024), 10);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 63);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLow(i)), i) << i;
    if (i < 63) {
      EXPECT_EQ(Histogram::BucketOf(Histogram::BucketHigh(i) - 1), i) << i;
    }
  }
}

TEST(MetricsTest, ExactAggregatesSmall) {
  Histogram hist;
  hist.Record(1);
  hist.Record(100);
  hist.Record(7);
  const HistogramSnapshot snap = hist.Read();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 108u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 36.0);
  EXPECT_EQ(snap.buckets[Histogram::BucketOf(1)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::BucketOf(7)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::BucketOf(100)], 1u);
  // q == 1 is exact: the tracked maximum, not a bucket bound.
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 100.0);
}

TEST(MetricsTest, EmptyHistogramIsZero) {
  Histogram hist;
  const HistogramSnapshot snap = hist.Read();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

// The estimator contract against the exact reference: for a large
// log-normal-ish sample (latencies), each estimated quantile must fall in
// the same log₂ bucket as the true quantile — which bounds the ratio
// between estimate and truth by 2 in either direction.
TEST(MetricsTest, QuantilesMatchSortedReference) {
  std::mt19937_64 rng(20260808);
  std::lognormal_distribution<double> dist(10.0, 1.5);  // ~e^10 ns center
  Histogram hist;
  std::vector<double> samples;
  samples.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<uint64_t>(dist(rng));
    hist.Record(v);
    samples.push_back(static_cast<double>(v));
  }
  const HistogramSnapshot snap = hist.Read();
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double truth = PercentileOfSamples(samples, q);
    const double estimate = snap.Percentile(q);
    EXPECT_EQ(Histogram::BucketOf(static_cast<uint64_t>(truth)),
              Histogram::BucketOf(static_cast<uint64_t>(estimate)))
        << "q=" << q << " truth=" << truth << " estimate=" << estimate;
    EXPECT_GE(estimate, truth / 2.0) << "q=" << q;
    EXPECT_LE(estimate, truth * 2.0) << "q=" << q;
  }
}

TEST(MetricsTest, PercentileOfSamplesReference) {
  // 1..100: the q-quantile with linear interpolation is 1 + 99q.
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(i);
  EXPECT_DOUBLE_EQ(PercentileOfSamples(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSamples(samples, 0.5), 50.5);
  EXPECT_DOUBLE_EQ(PercentileOfSamples(samples, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(PercentileOfSamples({42.0}, 0.99), 42.0);
  EXPECT_DOUBLE_EQ(PercentileOfSamples({}, 0.5), 0.0);
}

// 8 threads × 100k records across the striped shards: the merged view
// must be exact on count/sum/max — shard stripes may split any way, but
// nothing is lost (the tsan preset re-runs this for the race proof).
TEST(MetricsTest, ConcurrentRecordingIsLossless) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = hist.Read();
  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(snap.count, kTotal);
  EXPECT_EQ(snap.sum, kTotal * (kTotal + 1) / 2);  // 1..kTotal, each once
  EXPECT_EQ(snap.max, kTotal);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(MetricsTest, CountersAndGaugesConcurrent) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("test.hits");
  Gauge& depth = registry.gauge("test.depth");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.Increment();
        depth.Add(1);
        depth.Add(-1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hits.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(depth.Value(), 0);
}

TEST(MetricsTest, RegistryLookupIsIdentityStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.same");
  Counter& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.Value(), 3u);

  Histogram& h1 = registry.histogram("test.lat_ns");
  Histogram& h2 = registry.histogram("test.lat_ns");
  EXPECT_EQ(&h1, &h2);

  // ResetForTest zeroes values in place; cached references stay valid.
  h1.Record(9);
  registry.ResetForTest();
  EXPECT_EQ(a.Value(), 0u);
  EXPECT_EQ(b.Value(), 0u);
  EXPECT_EQ(h2.Read().count, 0u);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
}

TEST(MetricsTest, SnapshotIsSortedAndSparse) {
  MetricsRegistry registry;
  registry.counter("test.b").Increment(2);
  registry.counter("test.a").Increment(1);
  registry.gauge("test.g").Set(-5);
  registry.histogram("test.h_ns").Record(1024);

  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "test.a");  // name-sorted
  EXPECT_EQ(snap.counters[1].first, "test.b");
  EXPECT_EQ(snap.CounterValue("test.a"), 1u);
  EXPECT_EQ(snap.CounterValue("test.b"), 2u);
  EXPECT_EQ(snap.CounterValue("test.absent"), 0u);  // sparse: 0, not a throw
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  EXPECT_EQ(snap.HistogramValue("test.h_ns").count, 1u);
  EXPECT_EQ(snap.HistogramValue("test.absent").count, 0u);
}

TEST(MetricsTest, PrometheusDumpCarriesEverySeries) {
  MetricsRegistry registry;
  registry.counter("test.dump.hits").Increment(7);
  registry.gauge("test.dump.depth").Set(3);
  registry.histogram("test.dump.lat_ns").Record(100);
  registry.histogram("test.dump.lat_ns").Record(5000);

  std::ostringstream os;
  registry.DumpPrometheus(os);
  const std::string text = os.str();
  // Names are sanitized to the Prometheus charset (dots → underscores).
  EXPECT_NE(text.find("test_dump_hits 7"), std::string::npos) << text;
  EXPECT_NE(text.find("test_dump_depth 3"), std::string::npos) << text;
  EXPECT_NE(text.find("test_dump_lat_ns_count 2"), std::string::npos) << text;
  EXPECT_NE(text.find("test_dump_lat_ns_sum 5100"), std::string::npos) << text;
  EXPECT_NE(text.find("test_dump_lat_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find('.'), std::string::npos)
      << "unsanitized dot in: " << text;
}

TEST(LogRateLimiterTest, AdmitsFirstAndEveryNth) {
  spq::LogRateLimiter limiter(4);
  uint64_t suppressed = 123;
  EXPECT_TRUE(limiter.ShouldLog(&suppressed));  // 1st
  EXPECT_EQ(suppressed, 0u);
  EXPECT_FALSE(limiter.ShouldLog());  // 2nd
  EXPECT_FALSE(limiter.ShouldLog());  // 3rd
  EXPECT_FALSE(limiter.ShouldLog());  // 4th
  EXPECT_TRUE(limiter.ShouldLog(&suppressed));  // 5th = 1 + N
  EXPECT_EQ(suppressed, 3u);
  EXPECT_EQ(limiter.Count(), 5u);
}

TEST(LogRateLimiterTest, EveryOneNeverSuppresses) {
  spq::LogRateLimiter limiter(1);
  for (int i = 0; i < 5; ++i) {
    uint64_t suppressed = 99;
    EXPECT_TRUE(limiter.ShouldLog(&suppressed)) << i;
    EXPECT_EQ(suppressed, 0u) << i;
  }
}

}  // namespace
}  // namespace spq::metrics
