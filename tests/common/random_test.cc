#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace spq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BoundedValuesStayInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    EXPECT_LT(rng.NextUint32(3), 3u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    double r = rng.NextDouble(-2.0, 5.0);
    EXPECT_GE(r, -2.0);
    EXPECT_LT(r, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  for (double mean : {0.5, 3.0, 9.8, 50.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, BernoulliProbabilityRespected) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng forked = a.Fork(1);
  Rng b(31);
  Rng forked2 = b.Fork(1);
  // Forks of identical parents with identical salts agree...
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(forked.NextUint64(), forked2.NextUint64());
  }
  // ...and differ from the parent stream.
  Rng c(31);
  Rng fork_salt2 = c.Fork(2);
  Rng d(31);
  Rng fork_salt1 = d.Fork(1);
  EXPECT_NE(fork_salt1.NextUint64(), fork_salt2.NextUint64());
}

TEST(ZipfSamplerTest, RankZeroIsMostFrequent) {
  Rng rng(37);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSamplerTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(41);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(ZipfSamplerTest, FrequencyRatiosFollowPowerLaw) {
  Rng rng(43);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  // P(rank 0) / P(rank 1) should be about 2 for s=1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.3);
}

TEST(ZipfSamplerTest, SamplesCoverFullRange) {
  Rng rng(47);
  ZipfSampler zipf(5, 0.5);
  std::set<uint32_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(zipf.Sample(rng));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

}  // namespace
}  // namespace spq
