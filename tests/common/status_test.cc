#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/statusor.h"

namespace spq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st.code(), Status::Code::kOk);
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  SPQ_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(result.value_or(3), 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(3), 3);
}

StatusOr<int> Double(StatusOr<int> input) {
  SPQ_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto ok = Double(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  auto err = Double(Status::Internal("boom"));
  EXPECT_TRUE(err.status().IsInternal());
}

TEST(StatusOrTest, MoveOnlyFriendly) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> v = std::move(result).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace spq
