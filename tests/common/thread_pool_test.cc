#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace spq {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ShutdownDrainsAndIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) pool.Submit([&count] { ++count; });
  pool.Shutdown();
  EXPECT_EQ(count.load(), 16);  // outstanding tasks drained before join
  pool.Shutdown();              // second call is a no-op
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedNotEnqueued) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> late{0};
  // Debug builds assert; release builds drop the task. Either way it must
  // never run or wedge a later Wait() behind dead workers.
  EXPECT_DEBUG_DEATH(pool.Submit([&late] { ++late; }), "Shutdown");
  pool.Wait();  // must not block: nothing may be queued
  EXPECT_EQ(late.load(), 0);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(pool, n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, HandlesZeroItems) {
  ThreadPool pool(4);
  bool called = false;
  ParallelFor(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, HandlesFewerItemsThanWorkers) {
  ThreadPool pool(16);
  std::atomic<int> count{0};
  ParallelFor(pool, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelForTest, ComputesCorrectAggregate) {
  ThreadPool pool(8);
  const std::size_t n = 1000;
  std::vector<long> out(n, 0);
  ParallelFor(pool, n, [&](std::size_t i) { out[i] = static_cast<long>(i); });
  long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, static_cast<long>(n * (n - 1) / 2));
}

}  // namespace
}  // namespace spq
