#include "common/logging.h"

#include <gtest/gtest.h>

namespace spq {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { Logger::SetMinLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, DefaultMinLevelIsInfo) {
  EXPECT_EQ(Logger::MinLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, SetMinLevelRoundTrips) {
  Logger::SetMinLevel(LogLevel::kError);
  EXPECT_EQ(Logger::MinLevel(), LogLevel::kError);
  Logger::SetMinLevel(LogLevel::kDebug);
  EXPECT_EQ(Logger::MinLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MacrosCompileAndRespectLevels) {
  // Not a capture test (logs go to stderr); verifies the macros expand to
  // valid statements in branch positions and stream arbitrary types.
  Logger::SetMinLevel(LogLevel::kOff);
  if (true) SPQ_LOG_INFO << "hidden " << 42;
  SPQ_LOG_DEBUG << "also hidden " << 1.5;
  Logger::SetMinLevel(LogLevel::kError);
  SPQ_LOG_ERROR << "visible in stderr during tests is fine";
}

TEST_F(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kOff));
}

}  // namespace
}  // namespace spq
