#include "common/buffer.h"

#include <gtest/gtest.h>

#include <limits>

namespace spq {
namespace {

TEST(BufferTest, RoundTripsScalars) {
  Buffer buf;
  buf.PutUint8(0xAB);
  buf.PutUint32(0xDEADBEEF);
  buf.PutUint64(0x0123456789ABCDEFULL);
  buf.PutDouble(3.5);
  buf.PutDouble(-0.0);

  BufferReader reader(buf.data(), buf.size());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double d1, d2;
  ASSERT_TRUE(reader.GetUint8(&u8).ok());
  ASSERT_TRUE(reader.GetUint32(&u32).ok());
  ASSERT_TRUE(reader.GetUint64(&u64).ok());
  ASSERT_TRUE(reader.GetDouble(&d1).ok());
  ASSERT_TRUE(reader.GetDouble(&d2).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(d1, 3.5);
  EXPECT_EQ(d2, -0.0);
  EXPECT_TRUE(reader.exhausted());
}

TEST(BufferTest, VarintRoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             std::numeric_limits<uint64_t>::max()};
  Buffer buf;
  for (uint64_t v : values) buf.PutVarint(v);
  BufferReader reader(buf.data(), buf.size());
  for (uint64_t v : values) {
    uint64_t out;
    ASSERT_TRUE(reader.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(reader.exhausted());
}

TEST(BufferTest, VarintIsCompactForSmallValues) {
  Buffer buf;
  buf.PutVarint(5);
  EXPECT_EQ(buf.size(), 1u);
  buf.Clear();
  buf.PutVarint(300);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(BufferTest, StringRoundTrip) {
  Buffer buf;
  buf.PutString("hello");
  buf.PutString("");
  buf.PutString(std::string("\0binary\xFF", 8));
  BufferReader reader(buf.data(), buf.size());
  std::string a, b, c;
  ASSERT_TRUE(reader.GetString(&a).ok());
  ASSERT_TRUE(reader.GetString(&b).ok());
  ASSERT_TRUE(reader.GetString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string("\0binary\xFF", 8));
}

TEST(BufferTest, TruncatedReadsReturnOutOfRange) {
  Buffer buf;
  buf.PutUint32(42);
  BufferReader reader(buf.data(), 2);  // truncate
  uint32_t v;
  EXPECT_TRUE(reader.GetUint32(&v).IsOutOfRange());

  uint64_t u;
  BufferReader empty(nullptr, 0);
  EXPECT_TRUE(empty.GetVarint(&u).IsOutOfRange());
  double d;
  EXPECT_TRUE(empty.GetDouble(&d).IsOutOfRange());
  std::string s;
  EXPECT_TRUE(empty.GetString(&s).IsOutOfRange());
}

TEST(BufferTest, TruncatedStringPayloadReturnsOutOfRange) {
  Buffer buf;
  buf.PutVarint(100);  // claims 100 bytes follow
  buf.PutBytes("abc", 3);
  BufferReader reader(buf.data(), buf.size());
  std::string s;
  EXPECT_TRUE(reader.GetString(&s).IsOutOfRange());
}

TEST(BufferTest, AppendConcatenates) {
  Buffer a, b;
  a.PutUint8(1);
  b.PutUint8(2);
  a.Append(b);
  EXPECT_EQ(a.size(), 2u);
  BufferReader reader(a.data(), a.size());
  uint8_t x, y;
  ASSERT_TRUE(reader.GetUint8(&x).ok());
  ASSERT_TRUE(reader.GetUint8(&y).ok());
  EXPECT_EQ(x, 1);
  EXPECT_EQ(y, 2);
}

TEST(BufferTest, TakeBytesMovesAndClears) {
  Buffer buf;
  buf.PutUint32(7);
  auto bytes = buf.TakeBytes();
  EXPECT_EQ(bytes.size(), 4u);
}

}  // namespace
}  // namespace spq
