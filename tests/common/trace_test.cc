// Tests for the scoped-span tracer (common/trace.h), run under the
// "observability" ctest label and the tsan preset:
//   - disabled tracing records nothing (the default state);
//   - captured spans carry their names, nesting, and plausible durations;
//   - the chrome://tracing export is valid JSON with complete events;
//   - the JSONL export is one valid object per line;
//   - concurrent recorders lose nothing below ring capacity;
//   - ring overflow drops newest and counts the drops.
//
// The tracer is process-global state shared by every test in this binary,
// so each test starts from Clear() and leaves tracing disabled.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "testing/json_lite.h"

namespace spq::trace {
namespace {

/// RAII guard: every test starts from a clean, disabled tracer and leaves
/// it that way regardless of assertion failures.
struct TracerSandbox {
  TracerSandbox() {
    SetEnabled(false);
    Clear();
  }
  ~TracerSandbox() {
    SetEnabled(false);
    Clear();
  }
};

std::vector<SpanEvent> SpansNamed(const std::vector<SpanEvent>& events,
                                  const std::string& name) {
  std::vector<SpanEvent> out;
  for (const SpanEvent& event : events) {
    if (name == event.name) out.push_back(event);
  }
  return out;
}

TEST(TraceTest, DisabledRecordsNothing) {
  TracerSandbox sandbox;
  ASSERT_FALSE(Enabled());
  {
    TRACE_SPAN("test.disabled");
    TRACE_SPAN("test.disabled.inner");
  }
  EXPECT_TRUE(Collect().empty());
  EXPECT_EQ(DroppedSpans(), 0u);
}

TEST(TraceTest, CapturesNamesNestingAndDurations) {
  TracerSandbox sandbox;
  SetEnabled(true);
  {
    TRACE_SPAN("test.outer");
    {
      TRACE_SPAN("test.inner");
    }
  }
  SetEnabled(false);

  const std::vector<SpanEvent> events = Collect();
  const auto outer = SpansNamed(events, "test.outer");
  const auto inner = SpansNamed(events, "test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  // Nesting: the inner span's interval sits inside the outer's.
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
  // Same thread records into the same ring.
  EXPECT_EQ(inner[0].tid, outer[0].tid);
}

TEST(TraceTest, CollectIsSortedByStartTime) {
  TracerSandbox sandbox;
  SetEnabled(true);
  for (int i = 0; i < 50; ++i) {
    TRACE_SPAN("test.seq");
  }
  SetEnabled(false);
  const std::vector<SpanEvent> events = Collect();
  ASSERT_EQ(events.size(), 50u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns) << i;
  }
}

TEST(TraceTest, ChromeExportIsValidJson) {
  TracerSandbox sandbox;
  SetEnabled(true);
  {
    TRACE_SPAN("test.chrome.a");
    TRACE_SPAN("test.chrome.b");
  }
  SetEnabled(false);

  std::ostringstream os;
  ExportChromeTrace(os);
  testing::JsonValue doc;
  ASSERT_TRUE(testing::JsonLite::Parse(os.str(), &doc)) << os.str();
  ASSERT_TRUE(doc.IsObject());
  const testing::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  ASSERT_EQ(events->array.size(), 2u);
  for (const testing::JsonValue& event : events->array) {
    ASSERT_TRUE(event.IsObject());
    const testing::JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string_value, "X");  // complete events only
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const testing::JsonValue* field = event.Find(key);
      ASSERT_NE(field, nullptr) << key;
      EXPECT_TRUE(field->IsNumber()) << key;
    }
    const testing::JsonValue* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(name->IsString());
    EXPECT_EQ(name->string_value.rfind("test.chrome.", 0), 0u)
        << name->string_value;
  }
}

TEST(TraceTest, EmptyChromeExportIsValidJson) {
  TracerSandbox sandbox;
  std::ostringstream os;
  ExportChromeTrace(os);
  testing::JsonValue doc;
  ASSERT_TRUE(testing::JsonLite::Parse(os.str(), &doc)) << os.str();
  const testing::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

TEST(TraceTest, JsonlIsOneValidObjectPerLine) {
  TracerSandbox sandbox;
  SetEnabled(true);
  for (int i = 0; i < 3; ++i) {
    TRACE_SPAN("test.jsonl");
  }
  SetEnabled(false);

  std::ostringstream os;
  ExportJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    testing::JsonValue doc;
    ASSERT_TRUE(testing::JsonLite::Parse(line, &doc)) << line;
    ASSERT_TRUE(doc.IsObject());
    EXPECT_EQ(doc.Find("name")->string_value, "test.jsonl");
    EXPECT_NE(doc.Find("start_ns"), nullptr);
    EXPECT_NE(doc.Find("dur_ns"), nullptr);
    EXPECT_NE(doc.Find("tid"), nullptr);
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
}

// Below ring capacity, concurrent recorders lose nothing, and each
// thread's spans carry one consistent ring id (the tsan preset re-runs
// this as the recorder/collector race proof).
TEST(TraceTest, ConcurrentSpansAllCaptured) {
  TracerSandbox sandbox;
  SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        TRACE_SPAN("test.concurrent");
      }
    });
  }
  // Collect() while recorders run must be safe (a capture can be drained
  // mid-flight); the result is some prefix of each ring.
  (void)Collect();
  for (std::thread& thread : threads) thread.join();
  SetEnabled(false);

  const auto spans = SpansNamed(Collect(), "test.concurrent");
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(DroppedSpans(), 0u);
}

TEST(TraceTest, RingOverflowDropsNewestAndCounts) {
  TracerSandbox sandbox;
  SetEnabled(true);
  constexpr std::size_t kOverflow = 300;
  constexpr std::size_t kRingCapacity = 16384;  // SpanRing::kCapacity
  for (std::size_t i = 0; i < kRingCapacity + kOverflow; ++i) {
    TRACE_SPAN("test.overflow");
  }
  SetEnabled(false);

  const auto spans = SpansNamed(Collect(), "test.overflow");
  EXPECT_EQ(spans.size(), kRingCapacity);  // head of the window intact
  EXPECT_EQ(DroppedSpans(), kOverflow);
  // Clear() resets the drop tally with the buffers.
  Clear();
  EXPECT_EQ(DroppedSpans(), 0u);
  EXPECT_TRUE(Collect().empty());
}

}  // namespace
}  // namespace spq::trace
