#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace spq::index {
namespace {

using text::KeywordSet;

TEST(InvertedIndexTest, EmptyCorpus) {
  InvertedIndex index{std::vector<KeywordSet>{}};
  EXPECT_EQ(index.num_documents(), 0u);
  EXPECT_TRUE(index.CandidatesFor(KeywordSet({1, 2})).empty());
  EXPECT_TRUE(index.Postings(5).empty());
}

TEST(InvertedIndexTest, PostingsAreSortedDocumentIds) {
  std::vector<KeywordSet> docs{KeywordSet({1, 2}), KeywordSet({2, 3}),
                               KeywordSet({1, 3})};
  InvertedIndex index(docs);
  EXPECT_EQ(index.Postings(1), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(index.Postings(2), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(index.Postings(3), (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(index.Postings(9).empty());
}

TEST(InvertedIndexTest, CandidatesAreUnionWithoutDuplicates) {
  std::vector<KeywordSet> docs{KeywordSet({1, 2}), KeywordSet({2}),
                               KeywordSet({3}), KeywordSet({4})};
  InvertedIndex index(docs);
  // Query {1, 2}: docs 0 (both terms — must appear once) and 1.
  EXPECT_EQ(index.CandidatesFor(KeywordSet({1, 2})),
            (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(index.CandidatesFor(KeywordSet({9})).empty());
  EXPECT_TRUE(index.CandidatesFor(KeywordSet()).empty());
}

TEST(InvertedIndexTest, CandidatesMatchLinearScan) {
  Rng rng(77);
  std::vector<KeywordSet> docs;
  for (int d = 0; d < 500; ++d) {
    std::vector<text::TermId> ids;
    const int n = 1 + static_cast<int>(rng.NextUint32(10));
    for (int i = 0; i < n; ++i) ids.push_back(rng.NextUint32(60));
    docs.emplace_back(std::move(ids));
  }
  InvertedIndex index(docs);
  for (int trial = 0; trial < 50; ++trial) {
    KeywordSet query({rng.NextUint32(60), rng.NextUint32(60)});
    std::vector<uint32_t> expected;
    for (uint32_t d = 0; d < docs.size(); ++d) {
      if (docs[d].Intersects(query)) expected.push_back(d);
    }
    EXPECT_EQ(index.CandidatesFor(query), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace spq::index
