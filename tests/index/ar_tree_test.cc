#include "index/ar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace spq::index {
namespace {

std::vector<ArTree::Entry> RandomEntries(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ArTree::Entry> entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries[i] = {{rng.NextDouble(), rng.NextDouble()},
                  0.01 + rng.NextDouble(),  // positive scores
                  static_cast<uint64_t>(i)};
  }
  return entries;
}

double BruteMaxWithin(const std::vector<ArTree::Entry>& entries,
                      const geo::Point& q, double r) {
  double best = 0.0;
  for (const auto& e : entries) {
    if (e.score > best && geo::Distance(q, e.pos) <= r) best = e.score;
  }
  return best;
}

TEST(ArTreeTest, EmptyTree) {
  ArTree tree = ArTree::Build({});
  EXPECT_TRUE(tree.empty());
  EXPECT_DOUBLE_EQ(tree.MaxScoreWithin({0.5, 0.5}, 1.0), 0.0);
  EXPECT_TRUE(tree.IdsWithin({0.5, 0.5}, 1.0).empty());
}

TEST(ArTreeTest, SingleEntry) {
  ArTree tree = ArTree::Build({{{0.5, 0.5}, 0.7, 42}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree.MaxScoreWithin({0.5, 0.5}, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(tree.MaxScoreWithin({0.9, 0.5}, 0.3), 0.0);
  EXPECT_EQ(tree.IdsWithin({0.6, 0.5}, 0.2),
            (std::vector<uint64_t>{42}));
}

TEST(ArTreeTest, MaxScoreMatchesBruteForce) {
  auto entries = RandomEntries(2000, 3);
  ArTree tree = ArTree::Build(entries);
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    geo::Point q{rng.NextDouble(), rng.NextDouble()};
    const double r = rng.NextDouble() * 0.2;
    EXPECT_DOUBLE_EQ(tree.MaxScoreWithin(q, r), BruteMaxWithin(entries, q, r))
        << "trial " << trial;
  }
}

TEST(ArTreeTest, IdsWithinMatchesBruteForce) {
  auto entries = RandomEntries(1000, 5);
  ArTree tree = ArTree::Build(entries);
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    geo::Point q{rng.NextDouble(), rng.NextDouble()};
    const double r = rng.NextDouble() * 0.15;
    auto got = tree.IdsWithin(q, r);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expected;
    for (const auto& e : entries) {
      if (geo::Distance(q, e.pos) <= r) expected.push_back(e.id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(ArTreeTest, FloorPruningPreservesAnswersAboveFloor) {
  auto entries = RandomEntries(1500, 7);
  ArTree tree = ArTree::Build(entries);
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    geo::Point q{rng.NextDouble(), rng.NextDouble()};
    const double r = rng.NextDouble() * 0.2;
    const double floor = rng.NextDouble();
    const double truth = BruteMaxWithin(entries, q, r);
    const double got = tree.MaxScoreWithin(q, r, floor);
    if (truth > floor) {
      EXPECT_DOUBLE_EQ(got, truth) << "trial " << trial;
    } else {
      EXPECT_LE(got, floor) << "trial " << trial;  // "cannot improve"
    }
  }
}

TEST(ArTreeTest, VariousFanoutsAgree) {
  auto entries = RandomEntries(777, 9);
  ArTree wide = ArTree::Build(entries, 64, 64);
  ArTree narrow = ArTree::Build(entries, 2, 2);
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    geo::Point q{rng.NextDouble(), rng.NextDouble()};
    const double r = rng.NextDouble() * 0.3;
    EXPECT_DOUBLE_EQ(wide.MaxScoreWithin(q, r), narrow.MaxScoreWithin(q, r));
  }
}

TEST(ArTreeTest, ZeroAndNegativeRadius) {
  auto entries = RandomEntries(100, 11);
  entries[0].pos = {0.5, 0.5};
  entries[0].score = 0.9;
  ArTree tree = ArTree::Build(entries);
  // r = 0 is inclusive at the exact point.
  EXPECT_GE(tree.MaxScoreWithin({0.5, 0.5}, 0.0), 0.9);
  EXPECT_DOUBLE_EQ(tree.MaxScoreWithin({0.5, 0.5}, -1.0), 0.0);
}

TEST(ArTreeTest, DuplicatePositionsKeepBestScore) {
  std::vector<ArTree::Entry> entries{
      {{0.3, 0.3}, 0.2, 1}, {{0.3, 0.3}, 0.8, 2}, {{0.3, 0.3}, 0.5, 3}};
  ArTree tree = ArTree::Build(entries);
  EXPECT_DOUBLE_EQ(tree.MaxScoreWithin({0.3, 0.3}, 0.01), 0.8);
  EXPECT_EQ(tree.IdsWithin({0.3, 0.3}, 0.01).size(), 3u);
}

}  // namespace
}  // namespace spq::index
