#include "index/centralized.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "datagen/generator.h"
#include "spq/engine.h"
#include "spq/sequential.h"

namespace spq::index {
namespace {

using core::BruteForceSpq;
using core::Dataset;
using core::Query;

Dataset TestDataset(uint64_t seed, uint64_t n, uint32_t vocab) {
  auto dataset = datagen::MakeUniformDataset(
      {.num_objects = n, .seed = seed, .vocab_size = vocab,
       .min_keywords = 1, .max_keywords = 10});
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

TEST(CentralizedSpqIndexTest, MatchesBruteForceScores) {
  const uint32_t vocab = 50;
  Dataset dataset = TestDataset(31, 3000, vocab);
  CentralizedSpqIndex evaluator(&dataset);
  Rng rng(32);
  for (int trial = 0; trial < 25; ++trial) {
    Query q;
    q.k = 1 + rng.NextUint32(12);
    q.radius = 0.005 + rng.NextDouble() * 0.08;
    q.keywords = text::KeywordSet(
        {rng.NextUint32(vocab), rng.NextUint32(vocab), rng.NextUint32(vocab)});
    auto got = evaluator.Execute(q);
    auto oracle = BruteForceSpq(dataset, q);
    ASSERT_EQ(got.size(), oracle.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Same score at every rank (ids may differ among exact ties).
      EXPECT_DOUBLE_EQ(got[i].score, oracle[i].score)
          << "trial " << trial << " rank " << i;
    }
    // Truthfulness of every reported pair.
    for (const auto& e : got) {
      const core::DataObject* obj = nullptr;
      for (const auto& p : dataset.data) {
        if (p.id == e.id) {
          obj = &p;
          break;
        }
      }
      ASSERT_NE(obj, nullptr);
      EXPECT_DOUBLE_EQ(e.score, core::BruteForceScore(*obj, dataset, q));
    }
  }
}

TEST(CentralizedSpqIndexTest, EmptyQueryKeywords) {
  Dataset dataset = TestDataset(33, 500, 20);
  CentralizedSpqIndex evaluator(&dataset);
  Query q;
  q.k = 5;
  q.radius = 0.1;
  EXPECT_TRUE(evaluator.Execute(q).empty());
}

TEST(CentralizedSpqIndexTest, StatsReflectPostingsAndScoring) {
  Dataset dataset = TestDataset(34, 2000, 30);
  CentralizedSpqIndex evaluator(&dataset);
  Query q;
  q.k = 5;
  q.radius = 0.05;
  q.keywords = text::KeywordSet({1, 2});
  evaluator.Execute(q);
  const auto& stats = evaluator.last_stats();
  EXPECT_GT(stats.candidate_features, 0u);
  // Candidate set == scored set (any shared term gives Jaccard > 0).
  EXPECT_EQ(stats.scored_features, stats.candidate_features);
  EXPECT_LT(stats.candidate_features, dataset.features.size());
}

TEST(CentralizedSpqIndexTest, MatchesParallelEngineScores) {
  Dataset dataset = TestDataset(35, 2500, 40);
  CentralizedSpqIndex evaluator(&dataset);
  core::SpqEngine engine(dataset, core::EngineOptions{.grid_size = 6});
  Query q;
  q.k = 10;
  q.radius = 0.04;
  q.keywords = text::KeywordSet({3, 7, 9});
  auto central = evaluator.Execute(q);
  auto parallel = engine.Execute(q, core::Algorithm::kESPQSco);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(central.size(), parallel->entries.size());
  for (std::size_t i = 0; i < central.size(); ++i) {
    EXPECT_DOUBLE_EQ(central[i].score, parallel->entries[i].score);
  }
}

}  // namespace
}  // namespace spq::index
