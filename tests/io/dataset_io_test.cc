#include "io/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datagen/generator.h"

namespace spq::io {
namespace {

using core::Dataset;

Dataset SampleDataset() {
  auto dataset = datagen::MakeUniformDataset(
      {.num_objects = 500, .seed = 21, .vocab_size = 40,
       .min_keywords = 1, .max_keywords = 6});
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.bounds, b.bounds);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    EXPECT_EQ(a.data[i].id, b.data[i].id);
    EXPECT_EQ(a.data[i].pos, b.data[i].pos);
  }
  ASSERT_EQ(a.features.size(), b.features.size());
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_EQ(a.features[i].id, b.features[i].id);
    EXPECT_EQ(a.features[i].pos, b.features[i].pos);
    EXPECT_EQ(a.features[i].keywords, b.features[i].keywords);
  }
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BinaryFormatTest, EncodeDecodeRoundTrip) {
  Dataset dataset = SampleDataset();
  auto decoded = DecodeDataset(EncodeDataset(dataset));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectDatasetsEqual(dataset, *decoded);
}

TEST(BinaryFormatTest, EmptyDatasetRoundTrip) {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  auto decoded = DecodeDataset(EncodeDataset(dataset));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->data.empty());
  EXPECT_TRUE(decoded->features.empty());
}

TEST(BinaryFormatTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes = EncodeDataset(SampleDataset());
  bytes[0] = 'X';
  EXPECT_TRUE(DecodeDataset(bytes).status().IsInvalidArgument());
}

TEST(BinaryFormatTest, RejectsTruncation) {
  std::vector<uint8_t> bytes = EncodeDataset(SampleDataset());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DecodeDataset(bytes).ok());
}

TEST(BinaryFormatTest, RejectsTrailingGarbage) {
  std::vector<uint8_t> bytes = EncodeDataset(SampleDataset());
  bytes.push_back(0xFF);
  EXPECT_TRUE(DecodeDataset(bytes).status().IsInvalidArgument());
}

TEST(DfsDatasetTest, StoreAndLoadThroughDfs) {
  dfs::MiniDfs dfs({.num_datanodes = 5, .block_size = 4096,
                    .replication = 3});
  Dataset dataset = SampleDataset();
  ASSERT_TRUE(StoreDataset(dfs, "datasets/un", dataset).ok());
  auto loaded = LoadDataset(dfs, "datasets/un");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsEqual(dataset, *loaded);
  // Dataset spans multiple blocks (block_size is small).
  auto meta = dfs.GetMetadata("datasets/un");
  ASSERT_TRUE(meta.ok());
  EXPECT_GT(meta->blocks.size(), 1u);
}

TEST(DfsDatasetTest, LoadSurvivesNodeFailures) {
  dfs::MiniDfs dfs({.num_datanodes = 6, .block_size = 2048,
                    .replication = 3, .seed = 5});
  Dataset dataset = SampleDataset();
  ASSERT_TRUE(StoreDataset(dfs, "d", dataset).ok());
  dfs.datanode(0).Kill();
  dfs.datanode(3).Kill();
  auto loaded = LoadDataset(dfs, "d");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsEqual(dataset, *loaded);
}

TEST(TsvFormatTest, RoundTripWithNumericIds) {
  const std::string path = TempPath("spq_tsv_numeric.tsv");
  Dataset dataset = SampleDataset();
  ASSERT_TRUE(SaveDatasetTsv(path, dataset).ok());
  auto loaded = LoadDatasetTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsEqual(dataset, *loaded);
  std::remove(path.c_str());
}

TEST(TsvFormatTest, RoundTripWithVocabulary) {
  const std::string path = TempPath("spq_tsv_vocab.tsv");
  text::Vocabulary vocab;
  Dataset dataset;
  dataset.bounds = {0, 0, 10, 10};
  dataset.data = {{1, {4.6, 4.8}}};
  core::FeatureObject f;
  f.id = 2;
  f.pos = {3.8, 5.5};
  f.keywords = text::KeywordSet(
      {vocab.Intern("italian"), vocab.Intern("gourmet")});
  dataset.features.push_back(f);
  ASSERT_TRUE(SaveDatasetTsv(path, dataset, &vocab).ok());

  text::Vocabulary fresh;
  auto loaded = LoadDatasetTsv(path, &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->features.size(), 1u);
  EXPECT_EQ(loaded->features[0].keywords.size(), 2u);
  EXPECT_TRUE(fresh.Lookup("italian").ok());
  EXPECT_TRUE(fresh.Lookup("gourmet").ok());
  std::remove(path.c_str());
}

TEST(TsvFormatTest, MissingBoundsHeaderRejected) {
  const std::string path = TempPath("spq_tsv_nobounds.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("D\t1\t0.5\t0.5\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(LoadDatasetTsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(TsvFormatTest, BadRowsRejected) {
  const std::string path = TempPath("spq_tsv_bad.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# bounds\t0\t0\t1\t1\n", f);
    std::fputs("Q\t1\t0.5\t0.5\n", f);  // unknown tag
    std::fclose(f);
  }
  EXPECT_TRUE(LoadDatasetTsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(TsvFormatTest, NonNumericTermWithoutVocabRejected) {
  const std::string path = TempPath("spq_tsv_terms.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# bounds\t0\t0\t1\t1\n", f);
    std::fputs("F\t1\t0.5\t0.5\titalian\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(LoadDatasetTsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(TsvFormatTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadDatasetTsv("/nonexistent/path.tsv").status().IsIOError());
}

TEST(MakeEngineFromDfsTest, LoadsAndAnswersQueries) {
  dfs::MiniDfs cluster({.num_datanodes = 4, .block_size = 8192,
                        .replication = 2});
  Dataset dataset = SampleDataset();
  ASSERT_TRUE(StoreDataset(cluster, "d", dataset).ok());
  auto engine = MakeEngineFromDfs(cluster, "d",
                                  core::EngineOptions{.grid_size = 5});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  core::Query q;
  q.k = 3;
  q.radius = 0.05;
  q.keywords = text::KeywordSet({1, 2});
  auto result = (*engine)->Execute(q, core::Algorithm::kESPQSco);
  ASSERT_TRUE(result.ok());
  // Matches an engine built directly from the dataset.
  core::SpqEngine direct(dataset, core::EngineOptions{.grid_size = 5});
  auto expected = direct.Execute(q, core::Algorithm::kESPQSco);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(result->entries.size(), expected->entries.size());
  for (std::size_t i = 0; i < result->entries.size(); ++i) {
    EXPECT_EQ(result->entries[i].id, expected->entries[i].id);
    EXPECT_DOUBLE_EQ(result->entries[i].score, expected->entries[i].score);
  }
}

TEST(MakeEngineFromDfsTest, MissingFilePropagates) {
  dfs::MiniDfs cluster;
  EXPECT_TRUE(MakeEngineFromDfs(cluster, "nope").status().IsNotFound());
}

}  // namespace
}  // namespace spq::io
