#include "spq/duplication.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geo/grid.h"

namespace spq::core {
namespace {

TEST(CellAreasTest, PartitionTheCell) {
  // A1 + A2 + A3 + A4 must tile the full cell for any r <= a/2 (Sec 6.2).
  for (double a : {1.0, 2.5, 10.0}) {
    for (double frac : {0.0, 0.1, 0.25, 0.5}) {
      const double r = frac * a;
      CellAreas areas = ComputeCellAreas(r, a);
      EXPECT_NEAR(areas.total(), a * a, 1e-9) << "a=" << a << " r=" << r;
      EXPECT_GE(areas.a1, 0.0);
      EXPECT_GE(areas.a2, 0.0);
      EXPECT_GE(areas.a3, 0.0);
      EXPECT_GE(areas.a4, 0.0);
    }
  }
}

TEST(CellAreasTest, ClosedForms) {
  const double r = 0.1, a = 1.0;
  CellAreas areas = ComputeCellAreas(r, a);
  EXPECT_DOUBLE_EQ(areas.a1, M_PI * r * r);
  EXPECT_DOUBLE_EQ(areas.a2, (4.0 - M_PI) * r * r);
  EXPECT_DOUBLE_EQ(areas.a3, 4.0 * (a - 2 * r) * r);
  EXPECT_DOUBLE_EQ(areas.a4, (a - 2 * r) * (a - 2 * r));
}

TEST(DuplicationFactorTest, ZeroRadiusMeansNoDuplication) {
  EXPECT_DOUBLE_EQ(AnalyticDuplicationFactor(0.0, 1.0), 1.0);
}

TEST(DuplicationFactorTest, WorstCaseAtHalfCell) {
  // df at a = 2r is 3 + π/4 (Section 6.2).
  EXPECT_NEAR(AnalyticDuplicationFactor(0.5, 1.0), MaxDuplicationFactor(),
              1e-12);
  EXPECT_NEAR(MaxDuplicationFactor(), 3.0 + M_PI / 4.0, 1e-12);
}

TEST(DuplicationFactorTest, MonotoneIncreasingInRadius) {
  double prev = 1.0;
  for (double r = 0.01; r <= 0.5; r += 0.01) {
    const double df = AnalyticDuplicationFactor(r, 1.0);
    EXPECT_GT(df, prev);
    prev = df;
  }
}

TEST(DuplicationFactorTest, DependsOnlyOnRatio) {
  EXPECT_NEAR(AnalyticDuplicationFactor(0.1, 1.0),
              AnalyticDuplicationFactor(1.0, 10.0), 1e-12);
  EXPECT_NEAR(AnalyticDuplicationFactor(0.05, 0.25),
              AnalyticDuplicationFactor(2.0, 10.0), 1e-12);
}

TEST(DuplicationFactorTest, EqualsExpectedDuplicatesFromAreas) {
  // df = (3·P(A1) + 2·P(A2) + P(A3) + 1) per the derivation.
  for (double r : {0.05, 0.2, 0.4}) {
    const double a = 1.0;
    CellAreas areas = ComputeCellAreas(r, a);
    const double df_from_areas =
        (3 * areas.a1 + 2 * areas.a2 + areas.a3) / (a * a) + 1.0;
    EXPECT_NEAR(AnalyticDuplicationFactor(r, a), df_from_areas, 1e-12);
  }
}

TEST(DuplicationFactorTest, MatchesMeasuredDuplicationOnUniformPoints) {
  // Empirical check of the Section 6.2 estimate: place uniform points in an
  // interior cell of a grid and count actual Lemma-1 duplicates.
  auto grid_or = geo::UniformGrid::Make(geo::Rect{0, 0, 1, 1}, 10, 10);
  ASSERT_TRUE(grid_or.ok());
  const geo::UniformGrid& grid = *grid_or;
  const double a = grid.cell_width();
  Rng rng(2024);
  for (double frac : {0.1, 0.25, 0.5}) {
    const double r = frac * a;
    // Interior cell (4,4): all neighbors exist, matching the analysis.
    const geo::Rect cell = grid.CellRect(grid.CellAt(4, 4));
    uint64_t copies = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      geo::Point p{rng.NextDouble(cell.min_x, cell.max_x),
                   rng.NextDouble(cell.min_y, cell.max_y)};
      copies += 1 + grid.CellsWithinDist(p, r).size();
    }
    const double measured = static_cast<double>(copies) / n;
    const double predicted = AnalyticDuplicationFactor(r, a);
    EXPECT_NEAR(measured, predicted, predicted * 0.01)
        << "r/a=" << frac;
  }
}

TEST(ReducerCostModelTest, IncreasesWithCellSize) {
  // Section 6.3: for fixed r, df·a⁴ grows with a — bigger cells cost more.
  const double r = 0.01;
  double prev = 0.0;
  for (double a = 0.02; a <= 1.0; a += 0.02) {
    const double cost = ReducerCostModel(r, a);
    EXPECT_GT(cost, prev) << "a=" << a;
    prev = cost;
  }
}

TEST(ReducerCostModelTest, ClosedForm) {
  const double r = 0.1, a = 0.5;
  EXPECT_NEAR(ReducerCostModel(r, a),
              M_PI * r * r * a * a + 4 * r * a * a * a + a * a * a * a,
              1e-12);
}

TEST(AdviseGridSizeTest, RespectsTwoRLowerBound) {
  // a = extent/G >= 2r  =>  G <= extent/(2r).
  EXPECT_EQ(AdviseGridSize(0.01, 1.0, 1000), 50u);
  EXPECT_EQ(AdviseGridSize(0.005, 1.0, 1000), 100u);
}

TEST(AdviseGridSizeTest, ClampsToMax) {
  EXPECT_EQ(AdviseGridSize(0.0001, 1.0, 128), 128u);
}

TEST(AdviseGridSizeTest, HugeRadiusFallsBackToOneCell) {
  EXPECT_EQ(AdviseGridSize(0.9, 1.0, 128), 1u);
}

TEST(AdviseGridSizeTest, DegenerateInputs) {
  EXPECT_EQ(AdviseGridSize(0.0, 1.0, 64), 64u);
  EXPECT_EQ(AdviseGridSize(0.01, 0.0, 64), 64u);
}

}  // namespace
}  // namespace spq::core
