// A/B pins for this PR's two knobs:
//
//  - EngineOptions::kernel_mode: the batched (SIMD) distance kernel vs the
//    historical one-candidate-at-a-time scalar loop. Must be bit-identical
//    in results AND in every SPQ counter, including reduce.pairs_tested
//    (the batched path replicates the scalar loop's counting exactly —
//    speculative lane evaluations past eSPQsco's stop point are not
//    counted).
//  - EngineOptions::signature_prefilter: the keyword-signature screens
//    (map-side per-feature, warm-serving per-cell). Pure screening: only
//    reduce.cells_pruned / reduce.signature_checks may differ from the
//    off-state; everything else must be bit-identical, including the
//    counter footprint of skipped warm groups.
//
// Plus direct lane-for-lane tests pinning the AVX2 kernel backend against
// the portable reference on adversarial inputs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <random>
#include <tuple>
#include <vector>

#include "common/simd.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/cell_store.h"
#include "spq/engine.h"

namespace spq::core {
namespace {

using mapreduce::ShuffleMode;

// ---------------------------------------------------------------- kernel

TEST(DistanceKernelTest, MatchesScalarReferenceLaneForLane) {
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> coord(-2.0, 2.0);
  // Unaligned lengths around the 4-lane width, plus larger buffers.
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 63u, 256u}) {
    std::vector<double> xs(n), ys(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = coord(rng);
      ys[i] = coord(rng);
    }
    const double qx = coord(rng), qy = coord(rng);
    for (double r2 : {0.0, 1e-12, 0.25, 4.0, 64.0}) {
      std::vector<uint8_t> got(n, 0xCD), want(n, 0xAB);
      simd::DistanceWithinMask(xs.data(), ys.data(), n, qx, qy, r2,
                               got.data());
      simd::DistanceWithinMaskScalar(xs.data(), ys.data(), n, qx, qy, r2,
                                     want.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(want[i], got[i]) << "n=" << n << " r2=" << r2 << " i=" << i;
      }
    }
  }
}

TEST(DistanceKernelTest, ExactBoundaryIsInside) {
  // d2 == r2 must report 1 (the scalar `<=`): candidate at distance 3-4-5.
  const double xs[] = {3.0, 3.0, 3.0, 3.0, 3.0};
  const double ys[] = {4.0, 4.0, 4.0, 4.0, 4.0};
  uint8_t out[5];
  simd::DistanceWithinMask(xs, ys, 5, 0.0, 0.0, 25.0, out);
  for (uint8_t o : out) EXPECT_EQ(1, o);
  simd::DistanceWithinMask(xs, ys, 5, 0.0, 0.0,
                           std::nextafter(25.0, 0.0), out);
  for (uint8_t o : out) EXPECT_EQ(0, o);
}

TEST(DistanceKernelTest, NanAndSignedZeroMatchScalarSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double xs[] = {nan, 0.0, -0.0, 1.0, nan};
  const double ys[] = {0.0, nan, -0.0, 1.0, nan};
  uint8_t got[5], want[5];
  simd::DistanceWithinMask(xs, ys, 5, -0.0, 0.0, 10.0, got);
  simd::DistanceWithinMaskScalar(xs, ys, 5, -0.0, 0.0, 10.0, want);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(want[i], got[i]) << i;
  // NaN never satisfies <= — lanes 0, 1 and 4 must be outside.
  EXPECT_EQ(0, got[0]);
  EXPECT_EQ(0, got[1]);
  EXPECT_EQ(0, got[4]);
  EXPECT_EQ(1, got[2]);  // -0.0 vs -0.0: distance 0
}

TEST(DistanceKernelTest, KernelNameReflectsMode) {
  EXPECT_STREQ("scalar", simd::KernelName(simd::KernelMode::kScalar));
  const char* auto_name = simd::KernelName(simd::KernelMode::kAuto);
  if (simd::Avx2Available()) {
    EXPECT_STREQ("avx2", auto_name);
  } else {
    EXPECT_STREQ("scalar", auto_name);
  }
}

// ---------------------------------------------------------- engine matrix

constexpr uint32_t kGridSize = 7;

Dataset MakeDataset(uint64_t seed) {
  datagen::ClusteredSpec spec;
  spec.num_objects = 2'500;
  spec.seed = seed;
  spec.vocab_size = 120;
  spec.min_keywords = 2;
  spec.max_keywords = 16;
  spec.num_clusters = 5;
  auto dataset = datagen::MakeClusteredDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

Query MakeTestQuery(uint64_t seed, uint32_t num_keywords, double radius) {
  datagen::WorkloadSpec spec;
  spec.num_keywords = num_keywords;
  spec.radius = radius;
  spec.k = 5;
  spec.vocab_size = 120;
  spec.seed = seed;
  Query q = datagen::MakeQuery(spec, 0);
  q.radius = radius;
  return q;
}

void ExpectSameRun(const SpqResult& base, const SpqResult& var,
                   const std::string& label) {
  ASSERT_EQ(base.entries.size(), var.entries.size()) << label;
  for (std::size_t i = 0; i < base.entries.size(); ++i) {
    EXPECT_EQ(base.entries[i].id, var.entries[i].id) << label << " @" << i;
    EXPECT_EQ(base.entries[i].score, var.entries[i].score)
        << label << " @" << i;
  }
  const SpqRunInfo& a = base.info;
  const SpqRunInfo& b = var.info;
  EXPECT_EQ(a.features_kept, b.features_kept) << label;
  EXPECT_EQ(a.features_pruned, b.features_pruned) << label;
  EXPECT_EQ(a.feature_duplicates, b.feature_duplicates) << label;
  EXPECT_EQ(a.features_examined, b.features_examined) << label;
  EXPECT_EQ(a.pairs_tested, b.pairs_tested) << label;
  EXPECT_EQ(a.early_terminations, b.early_terminations) << label;
  EXPECT_EQ(a.reduce_groups, b.reduce_groups) << label;
  // cells_pruned / signature_checks deliberately NOT compared: they are
  // the knob's own bookkeeping and legitimately differ across variants.
}

/// The "faults"-labeled ctest entries set SPQ_TEST_FAULTS: the suite then
/// runs under injected task + storage faults with a generous retry budget
/// — kernel/signature equivalence must survive the retry machinery too.
void ApplyEnvFaults(EngineOptions& options) {
  const char* env = std::getenv("SPQ_TEST_FAULTS");
  if (env == nullptr || *env == '\0' || *env == '0') return;
  options.faults.map_failure_prob = 0.15;
  options.faults.reduce_failure_prob = 0.15;
  options.faults.storage_fault_prob = 0.05;
  options.faults.seed = 1307;
  options.max_task_attempts = 50;
}

class KernelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, bool>> {};

TEST_P(KernelEquivalenceTest, VariantsMatchScalarNoSigBaseline) {
  const auto [algo, spill] = GetParam();

  EngineOptions base_options;
  base_options.grid_size = kGridSize;
  base_options.num_workers = 4;
  base_options.num_map_tasks = 5;
  base_options.num_reduce_tasks = 6;  // < cells: multi-cell partitions
  base_options.kernel_mode = simd::KernelMode::kScalar;
  base_options.signature_prefilter = false;
  std::string spill_dir;
  if (spill) {
    std::string unique =
        "spq_kernel_equivalence-" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "-" + std::to_string(static_cast<int>(::getpid()));
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
    spill_dir = (std::filesystem::temp_directory_path() / unique).string();
    base_options.spill_dir = spill_dir;
  }
  ApplyEnvFaults(base_options);

  const double cell_edge = 1.0 / kGridSize;
  const double max_radius = 0.6 * cell_edge;
  const Dataset dataset = MakeDataset(73);

  struct Variant {
    simd::KernelMode kernel;
    bool signature;
    const char* name;
  };
  const Variant variants[] = {
      {simd::KernelMode::kAuto, false, "auto_nosig"},
      {simd::KernelMode::kScalar, true, "scalar_sig"},
      {simd::KernelMode::kAuto, true, "auto_sig"},
  };

  for (const bool prefilter : {true, false}) {
    base_options.keyword_prefilter = prefilter;
    SpqEngine base_engine(dataset, base_options);
    ASSERT_TRUE(base_engine.BuildStore(max_radius).ok());
    const Query query =
        MakeTestQuery(500 + (prefilter ? 1 : 0), 3, 0.8 * max_radius);
    auto base_cold = base_engine.Execute(query, algo);
    auto base_warm = base_engine.Query(query, algo);
    ASSERT_TRUE(base_cold.ok()) << base_cold.status().ToString();
    ASSERT_TRUE(base_warm.ok()) << base_warm.status().ToString();
    EXPECT_EQ(0u, base_cold->info.signature_checks);
    EXPECT_EQ(0u, base_warm->info.cells_pruned);

    for (const Variant& v : variants) {
      EngineOptions options = base_options;
      options.kernel_mode = v.kernel;
      options.signature_prefilter = v.signature;
      SpqEngine engine(dataset, options);
      ASSERT_TRUE(engine.BuildStore(max_radius).ok());
      const std::string label = std::string(v.name) +
                                (prefilter ? " prefilter" : " ablation");
      auto cold = engine.Execute(query, algo);
      auto warm = engine.Query(query, algo);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      ExpectSameRun(*base_cold, *cold, label + " cold");
      ExpectSameRun(*base_warm, *warm, label + " warm");
      EXPECT_TRUE(warm->info.warm_path) << label;
    }
  }
  if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, KernelEquivalenceTest,
    ::testing::Combine(::testing::Values(Algorithm::kPSPQ,
                                         Algorithm::kESPQLen,
                                         Algorithm::kESPQSco),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      name += std::get<1>(info.param) ? "_spill" : "_mem";
      return name;
    });

TEST(KernelEquivalenceTest, BatchVariantsMatchBaseline) {
  const Dataset dataset = MakeDataset(91);
  const double max_radius = 0.6 / kGridSize;
  std::vector<Query> queries;
  for (uint32_t i = 0; i < 3; ++i) {
    Query q = MakeTestQuery(800 + i, 1 + i, (0.3 + 0.3 * i) * max_radius);
    q.k = 3 + i;
    queries.push_back(q);
  }

  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    SpqBatchResult base;
    bool have_base = false;
    for (const bool sig : {false, true}) {
      for (simd::KernelMode kernel :
           {simd::KernelMode::kScalar, simd::KernelMode::kAuto}) {
        EngineOptions options;
        options.grid_size = kGridSize;
        options.num_workers = 4;
        options.num_reduce_tasks = 6;
        options.kernel_mode = kernel;
        options.signature_prefilter = sig;
        ApplyEnvFaults(options);
        SpqEngine engine(dataset, options);
        ASSERT_TRUE(engine.BuildStore(max_radius).ok());
        auto cold = engine.ExecuteBatch(queries, algo);
        auto warm = engine.QueryBatch(queries, algo);
        ASSERT_TRUE(cold.ok()) << cold.status().ToString();
        ASSERT_TRUE(warm.ok()) << warm.status().ToString();
        for (const auto* run : {&*cold, &*warm}) {
          if (!have_base) {
            base = *run;
            have_base = true;
            continue;
          }
          ASSERT_EQ(base.per_query.size(), run->per_query.size());
          for (std::size_t q = 0; q < base.per_query.size(); ++q) {
            const auto& be = base.per_query[q];
            const auto& re = run->per_query[q];
            ASSERT_EQ(be.size(), re.size()) << "query " << q;
            for (std::size_t i = 0; i < be.size(); ++i) {
              EXPECT_EQ(be[i].id, re[i].id) << "query " << q << " @" << i;
              EXPECT_EQ(be[i].score, re[i].score)
                  << "query " << q << " @" << i;
            }
          }
          for (const char* c :
               {counter::kPairsTested, counter::kFeaturesExamined,
                counter::kEarlyTerminations, counter::kGroups}) {
            EXPECT_EQ(base.job.counters.Get(c), run->job.counters.Get(c))
                << AlgorithmName(algo) << " " << c;
          }
        }
      }
    }
  }
}

// ------------------------------------------------- cell-summary pruning

/// A hand-built dataset with spatially disjoint vocabularies: data objects
/// everywhere, left-half features talk about terms 0-9, right-half about
/// terms 100-109. A right-half query with the keyword prefilter DISABLED
/// (the reduce-side analogue of Algorithm 1 line 9 — with the prefilter
/// on, groups that would prune never form) must skip left-half cells via
/// their summaries, with results and legacy counters untouched.
TEST(KernelEquivalenceTest, CellSummarySkipsKeywordDisjointCells) {
  Dataset dataset;
  dataset.bounds = geo::Rect{0.0, 0.0, 1.0, 1.0};
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> unit(0.01, 0.99);
  for (ObjectId i = 0; i < 600; ++i) {
    dataset.data.push_back({i, {unit(rng), unit(rng)}});
  }
  std::uniform_int_distribution<text::TermId> left_term(0, 9);
  std::uniform_int_distribution<text::TermId> right_term(100, 109);
  for (ObjectId i = 0; i < 400; ++i) {
    const double x = unit(rng), y = unit(rng);
    const bool left = x < 0.5;
    std::vector<text::TermId> terms;
    for (int t = 0; t < 4; ++t) {
      terms.push_back(left ? left_term(rng) : right_term(rng));
    }
    dataset.features.push_back(
        {1000 + i, {x, y}, text::KeywordSet(std::move(terms))});
  }

  Query query;
  query.k = 5;
  query.radius = 0.05;
  query.keywords = text::KeywordSet{100, 101, 102};

  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    EngineOptions options;
    options.grid_size = 8;
    options.num_workers = 2;
    options.keyword_prefilter = false;  // ablation: groups form everywhere
    options.signature_prefilter = false;
    SpqEngine off_engine(dataset, options);
    ASSERT_TRUE(off_engine.BuildStore(query.radius).ok());
    auto off = off_engine.Query(query, algo);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    EXPECT_EQ(0u, off->info.cells_pruned);
    EXPECT_EQ(0u, off->info.signature_checks);

    options.signature_prefilter = true;
    SpqEngine on_engine(dataset, options);
    ASSERT_TRUE(on_engine.BuildStore(query.radius).ok());
    auto on = on_engine.Query(query, algo);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    // The left half's cells carry only terms 0-9: their groups must prune.
    EXPECT_GT(on->info.cells_pruned, 0u) << AlgorithmName(algo);
    EXPECT_GT(on->info.signature_checks, on->info.cells_pruned)
        << AlgorithmName(algo);
    ExpectSameRun(*off, *on, "summary-skip " + AlgorithmName(algo));
  }
}

}  // namespace
}  // namespace spq::core
