// End-to-end integration: every optional runtime feature enabled at once
// (fault injection + retries, out-of-core shuffle, balanced partitioner,
// DFS-hosted dataset, batched queries) must still produce exactly the
// oracle's answers.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "io/dataset_io.h"
#include "spq/engine.h"
#include "spq/sequential.h"

namespace spq::core {
namespace {

TEST(IntegrationTest, EverythingOnAtOnce) {
  // Clustered dataset on a DFS cluster with dead nodes.
  auto generated = datagen::MakeClusteredDataset(
      {.num_objects = 8000, .seed = 71, .vocab_size = 50,
       .min_keywords = 1, .max_keywords = 9, .num_clusters = 5,
       .cluster_sigma = 0.03});
  ASSERT_TRUE(generated.ok());
  dfs::MiniDfs cluster({.num_datanodes = 6, .block_size = 32768,
                        .replication = 3, .seed = 7});
  ASSERT_TRUE(io::StoreDataset(cluster, "d", *generated).ok());
  cluster.datanode(1).Kill();
  cluster.datanode(4).Kill();

  EngineOptions options;
  options.grid_size = 10;
  options.num_reduce_tasks = 7;  // fewer reducers than cells
  options.partitioner = PartitionerKind::kBalanced;
  options.faults.map_failure_prob = 0.25;
  options.faults.reduce_failure_prob = 0.25;
  options.faults.seed = 3;
  options.max_task_attempts = 40;
  options.spill_dir =
      (std::filesystem::temp_directory_path() / "spq_integration").string();

  auto engine = io::MakeEngineFromDfs(cluster, "d", options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // A batch of heterogeneous queries, every algorithm.
  datagen::WorkloadSpec spec;
  spec.num_keywords = 3;
  spec.radius = 0.01;
  spec.k = 7;
  spec.vocab_size = 50;
  spec.seed = 9;
  auto queries = datagen::MakeQueries(spec, 4);
  queries[1].k = 1;
  queries[2].radius = 0.03;

  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    auto batch = (*engine)->ExecuteBatch(queries, algo);
    ASSERT_TRUE(batch.ok()) << AlgorithmName(algo) << ": "
                            << batch.status().ToString();
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto oracle = BruteForceSpq(*generated, queries[q]);
      ASSERT_EQ(batch->per_query[q].size(), oracle.size())
          << AlgorithmName(algo) << " query " << q;
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_DOUBLE_EQ(batch->per_query[q][i].score, oracle[i].score)
            << AlgorithmName(algo) << " query " << q << " rank " << i;
      }
    }
    // Faults actually fired and were retried.
    EXPECT_GT(batch->job.map_task_failures + batch->job.reduce_task_failures,
              0u)
        << AlgorithmName(algo);
  }
  std::filesystem::remove_all(options.spill_dir);
}

TEST(IntegrationTest, SingleQueriesUnderSameConditions) {
  auto generated = datagen::MakeUniformDataset(
      {.num_objects = 5000, .seed = 72, .vocab_size = 30,
       .min_keywords = 1, .max_keywords = 8});
  ASSERT_TRUE(generated.ok());

  EngineOptions options;
  options.grid_size = 8;
  options.num_reduce_tasks = 5;
  options.partitioner = PartitionerKind::kBalanced;
  options.faults.map_failure_prob = 0.3;
  options.faults.seed = 4;
  options.max_task_attempts = 40;
  options.spill_dir =
      (std::filesystem::temp_directory_path() / "spq_integration2").string();
  SpqEngine engine(*generated, options);

  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    Query q;
    q.k = 1 + rng.NextUint32(8);
    q.radius = 0.01 + rng.NextDouble() * 0.05;
    q.keywords = text::KeywordSet({rng.NextUint32(30), rng.NextUint32(30)});
    auto oracle = BruteForceSpq(*generated, q);
    for (Algorithm algo :
         {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
      auto result = engine.Execute(q, algo);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->entries.size(), oracle.size());
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_DOUBLE_EQ(result->entries[i].score, oracle[i].score);
      }
    }
  }
  std::filesystem::remove_all(options.spill_dir);
}

}  // namespace
}  // namespace spq::core
