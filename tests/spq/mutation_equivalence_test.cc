// Randomized churn-equivalence property tests for the mutable CellStore
// (cell_store.h invariants M1-M5): interleaved Insert/Delete/Query/
// CompactStore schedules against the live engine must stay BIT-IDENTICAL
// — results and every SPQ counter — to a fresh BuildStore() over the
// logically-equivalent dataset (surviving base rows in original order,
// then inserts in insert order). Runs across all three algorithms,
// spill/mem shuffles and compaction on/off, plus directed edge cases:
// delete-all-in-cell, re-insert-after-delete, mutation at the
// max-radius boundary, and the mutation-before-BuildStore /
// duplicate-id / missing-id error contracts.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/cell_store.h"
#include "spq/engine.h"

namespace spq::core {
namespace {

constexpr uint32_t kGridSize = 7;
constexpr double kCellEdge = 1.0 / kGridSize;
constexpr double kMaxRadius = 0.6 * kCellEdge;

/// Same contract as the store-equivalence suite: the "faults"-labeled
/// ctest entry sets SPQ_TEST_FAULTS and the whole schedule then runs
/// under injected task + storage faults — churn equivalence must survive
/// task retries too (mutations themselves are synchronous engine calls;
/// it is the warm query jobs on both engines that retry).
void ApplyEnvFaults(EngineOptions& options) {
  const char* env = std::getenv("SPQ_TEST_FAULTS");
  if (env == nullptr || *env == '\0' || *env == '0') return;
  options.faults.map_failure_prob = 0.15;
  options.faults.reduce_failure_prob = 0.15;
  options.faults.storage_fault_prob = 0.05;
  options.faults.seed = 1409;
  options.max_task_attempts = 50;
}

Dataset MakeMutationDataset(uint64_t seed) {
  datagen::ClusteredSpec spec;
  spec.num_objects = 1'400;
  spec.seed = seed;
  spec.vocab_size = 130;
  spec.min_keywords = 2;
  spec.max_keywords = 14;
  spec.num_clusters = 5;
  auto dataset = datagen::MakeClusteredDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

Query MakeMutationQuery(uint64_t seed, uint32_t num_keywords, double radius) {
  datagen::WorkloadSpec spec;
  spec.num_keywords = num_keywords;
  spec.radius = radius;
  spec.k = 6;
  spec.vocab_size = 130;
  spec.seed = seed;
  Query q = datagen::MakeQuery(spec, 0);
  q.radius = radius;
  return q;
}

EngineOptions MakeMutationOptions(bool spill, bool auto_compact,
                                  const std::string& tag) {
  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 4;
  options.num_map_tasks = 5;
  // Fewer reducers than cells: mutations must keep the multi-cell
  // partition bookkeeping (data-only group accounting) exact.
  options.num_reduce_tasks = 5;
  // > 1.0 disables auto-compaction: tombstones then accumulate and the
  // dead-row masking + dead-masked index geometry carry equivalence alone.
  options.compact_dead_fraction = auto_compact ? 0.25 : 2.0;
  if (spill) {
    std::string unique = "spq_mutation_equivalence-" + tag + "-" +
                         std::to_string(static_cast<int>(::getpid()));
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
    options.spill_dir =
        (std::filesystem::temp_directory_path() / unique).string();
  }
  ApplyEnvFaults(options);
  return options;
}

void ExpectBitIdentical(const SpqResult& want, const SpqResult& got,
                        const std::string& label) {
  EXPECT_TRUE(got.info.warm_path) << label;
  EXPECT_FALSE(got.info.cold_fallback) << label;
  ASSERT_EQ(want.entries.size(), got.entries.size()) << label;
  for (std::size_t i = 0; i < want.entries.size(); ++i) {
    EXPECT_EQ(want.entries[i].id, got.entries[i].id) << label << " @" << i;
    EXPECT_EQ(want.entries[i].score, got.entries[i].score)
        << label << " @" << i;
  }
  const SpqRunInfo& a = want.info;
  const SpqRunInfo& b = got.info;
  // ALL SPQ counters, not just results: the acceptance bar is that a
  // mutated store is indistinguishable from a fresh rebuild, down to how
  // many pairs the probes tested and which cells the summaries pruned.
  EXPECT_EQ(a.features_kept, b.features_kept) << label;
  EXPECT_EQ(a.features_pruned, b.features_pruned) << label;
  EXPECT_EQ(a.feature_duplicates, b.feature_duplicates) << label;
  EXPECT_EQ(a.features_examined, b.features_examined) << label;
  EXPECT_EQ(a.pairs_tested, b.pairs_tested) << label;
  EXPECT_EQ(a.early_terminations, b.early_terminations) << label;
  EXPECT_EQ(a.reduce_groups, b.reduce_groups) << label;
  EXPECT_EQ(a.cells_pruned, b.cells_pruned) << label;
  EXPECT_EQ(a.signature_checks, b.signature_checks) << label;
}

/// Queries the mutated engine and a fresh reference engine built over the
/// logically-equivalent dataset (shadow data, same features/bounds) and
/// demands bit-identity across a small radius/keyword mix.
void ExpectMatchesFreshRebuild(SpqEngine& mutated,
                               const std::vector<DataObject>& shadow,
                               const Dataset& base, const EngineOptions& opts,
                               Algorithm algo, uint64_t query_seed,
                               const std::string& label) {
  Dataset logical;
  logical.data = shadow;
  logical.features = base.features;
  logical.bounds = base.bounds;
  EngineOptions ref_opts = opts;
  if (!ref_opts.spill_dir.empty()) ref_opts.spill_dir += "-ref";
  SpqEngine reference(std::move(logical), ref_opts);
  ASSERT_TRUE(reference.BuildStore(kMaxRadius).ok()) << label;
  for (double frac : {0.4, 1.0}) {  // mid-range and exactly at the boundary
    for (uint32_t kw : {1u, 3u}) {
      const Query q =
          MakeMutationQuery(query_seed + kw + (frac < 1.0 ? 0 : 40), kw,
                            frac * kMaxRadius);
      auto want = reference.Query(q, algo);
      auto got = mutated.Query(q, algo);
      ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
      ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
      ExpectBitIdentical(*want, *got,
                         label + " kw=" + std::to_string(kw) +
                             " r=" + std::to_string(frac * kMaxRadius));
    }
  }
  if (!ref_opts.spill_dir.empty()) {
    std::filesystem::remove_all(ref_opts.spill_dir);
  }
}

class MutationEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, bool, bool>> {};

TEST_P(MutationEquivalenceTest, RandomizedChurnMatchesFreshRebuild) {
  const auto [algo, spill, auto_compact] = GetParam();
  const std::string tag =
      std::string(
          ::testing::UnitTest::GetInstance()->current_test_info()->name());
  EngineOptions options = MakeMutationOptions(spill, auto_compact, tag);

  const Dataset base = MakeMutationDataset(71);
  SpqEngine engine(base, options);
  ASSERT_TRUE(engine.BuildStore(kMaxRadius).ok());

  // The shadow logical dataset the engine must stay equivalent to:
  // survivors keep original order, inserts append (invariant M2).
  std::vector<DataObject> shadow = base.data;
  ObjectId next_id = 0;
  for (const DataObject& o : shadow) next_id = std::max(next_id, o.id);
  next_id += 1'000;  // clearly outside the generator's id space

  std::mt19937_64 rng(4'100 + static_cast<uint64_t>(algo) * 10 +
                      (spill ? 2 : 0) + (auto_compact ? 1 : 0));
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  constexpr int kOps = 36;
  for (int op = 1; op <= kOps; ++op) {
    if (rng() % 10 < 4 && !shadow.empty()) {
      const std::size_t victim = rng() % shadow.size();
      const ObjectId id = shadow[victim].id;
      ASSERT_TRUE(engine.Delete(id).ok()) << "op " << op;
      shadow.erase(shadow.begin() + static_cast<std::ptrdiff_t>(victim));
      ++deletes;
    } else {
      DataObject object;
      object.id = next_id++;
      if (op % 9 == 0) {
        // Out-of-bounds insert: lands in the clamped edge cell, the same
        // placement the rebuild's map phase derives (invariant M1), and
        // exercises the index's out-of-bbox handling.
        object.pos = {1.0 + 0.5 * static_cast<double>(op % 3),
                      -0.25 * static_cast<double>(1 + op % 2)};
      } else {
        std::uniform_real_distribution<double> coord(0.0, 1.0);
        object.pos = {coord(rng), coord(rng)};
      }
      ASSERT_TRUE(engine.Insert(object).ok()) << "op " << op;
      shadow.push_back(object);
      ++inserts;
    }
    if (op == 2 * kOps / 3) {
      // Tombstone-then-compact mid-schedule: explicit CompactStore() must
      // be invisible to every subsequent comparison (invariant M4).
      ASSERT_TRUE(engine.CompactStore().ok());
    }
    if (op % 12 == 0) {
      ExpectMatchesFreshRebuild(engine, shadow, base, options, algo,
                                8'000 + static_cast<uint64_t>(op) * 10,
                                "op " + std::to_string(op));
    }
  }

  // Mutation bookkeeping is cumulative across the generation chain.
  ASSERT_NE(engine.store(), nullptr);
  EXPECT_TRUE(engine.store()->mutated());
  EXPECT_EQ(engine.store()->inserts_applied(), inserts);
  EXPECT_EQ(engine.store()->deletes_applied(), deletes);
  EXPECT_EQ(engine.store()->data_objects(), shadow.size());
  if (auto_compact) {
    // The aggressive threshold plus the explicit CompactStore() must have
    // compacted something under this much churn.
    EXPECT_GT(engine.store()->cells_compacted(), 0u);
  }
  if (!options.spill_dir.empty()) {
    std::filesystem::remove_all(options.spill_dir);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, MutationEquivalenceTest,
    ::testing::Combine(::testing::Values(Algorithm::kPSPQ,
                                         Algorithm::kESPQLen,
                                         Algorithm::kESPQSco),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      name += std::get<1>(info.param) ? "_spill" : "_mem";
      name += std::get<2>(info.param) ? "_compact" : "_nocompact";
      return name;
    });

// Directed edge case: every object of one cell deleted. The all-dead cell
// must leave the resident-data group accounting (a rebuild has no such
// cell) while still serving feature-visited groups with the counter
// footprint of an empty cell, under both compaction settings.
TEST(MutationEquivalenceTest, DeleteAllInCellMatchesFreshRebuild) {
  const Dataset base = MakeMutationDataset(72);
  for (const bool auto_compact : {false, true}) {
    EngineOptions options = MakeMutationOptions(
        /*spill=*/false, auto_compact,
        auto_compact ? "delall_c" : "delall_nc");
    SpqEngine engine(base, options);
    ASSERT_TRUE(engine.BuildStore(kMaxRadius).ok());
    const geo::UniformGrid& grid = engine.store()->grid();

    // Pick the most populated cell and delete every object in it.
    std::vector<std::vector<ObjectId>> per_cell(grid.num_cells());
    for (const DataObject& o : base.data) {
      per_cell[grid.CellOf(o.pos)].push_back(o.id);
    }
    std::size_t target = 0;
    for (std::size_t c = 0; c < per_cell.size(); ++c) {
      if (per_cell[c].size() > per_cell[target].size()) target = c;
    }
    ASSERT_FALSE(per_cell[target].empty());

    std::vector<DataObject> shadow = base.data;
    for (ObjectId id : per_cell[target]) {
      ASSERT_TRUE(engine.Delete(id).ok());
      for (std::size_t i = 0; i < shadow.size(); ++i) {
        if (shadow[i].id == id) {
          shadow.erase(shadow.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    EXPECT_EQ(
        engine.store()->live_record_count(static_cast<geo::CellId>(target)),
        0u);
    for (Algorithm algo :
         {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
      ExpectMatchesFreshRebuild(
          engine, shadow, base, options, algo, 9'100,
          std::string("delete-all-in-cell ") + AlgorithmName(algo) +
              (auto_compact ? " compact" : " nocompact"));
    }
  }
}

// Directed edge case: delete an object, then insert a NEW object with the
// SAME id. The logical dataset has the id's new row appended at the end
// (not restored in place), and a later delete of that id must remove the
// re-inserted row.
TEST(MutationEquivalenceTest, ReinsertAfterDeleteMatchesFreshRebuild) {
  const Dataset base = MakeMutationDataset(73);
  EngineOptions options =
      MakeMutationOptions(/*spill=*/false, /*auto_compact=*/false, "reins");
  SpqEngine engine(base, options);
  ASSERT_TRUE(engine.BuildStore(kMaxRadius).ok());

  std::vector<DataObject> shadow = base.data;
  // Warm the store first so the ready-partition mutation paths run.
  auto warmup = engine.Query(MakeMutationQuery(9'000, 2, kMaxRadius),
                             Algorithm::kPSPQ);
  ASSERT_TRUE(warmup.ok());

  const DataObject original = shadow[shadow.size() / 2];
  ASSERT_TRUE(engine.Delete(original.id).ok());
  shadow.erase(shadow.begin() +
               static_cast<std::ptrdiff_t>(shadow.size() / 2));

  // Same id, same CELL (a nearby position): the re-inserted row lands
  // after its tombstoned predecessor in the same partition.
  DataObject reborn = original;
  reborn.pos.x = std::min(1.0, original.pos.x + 0.2 * kCellEdge);
  ASSERT_TRUE(engine.Insert(reborn).ok());
  shadow.push_back(reborn);

  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    ExpectMatchesFreshRebuild(engine, shadow, base, options, algo, 9'200,
                              std::string("re-insert ") +
                                  AlgorithmName(algo));
  }

  // Deleting the id again must remove the REBORN row (the back-scan finds
  // the live instance), leaving the id fully gone.
  ASSERT_TRUE(engine.Delete(reborn.id).ok());
  shadow.pop_back();
  EXPECT_TRUE(engine.Delete(reborn.id).IsNotFound());
  ExpectMatchesFreshRebuild(engine, shadow, base, options,
                            Algorithm::kESPQSco, 9'300,
                            "re-insert then delete-again");
}

// Directed edge case: an inserted object at EXACTLY distance r from a
// feature (the paper's dist <= r is inclusive). The insert must score on
// the boundary identically to a fresh rebuild — across the mutation path
// (delta log vs materialized append).
TEST(MutationEquivalenceTest, InsertAtMaxRadiusBoundaryMatchesFreshRebuild) {
  const Dataset base = MakeMutationDataset(74);
  EngineOptions options =
      MakeMutationOptions(/*spill=*/false, /*auto_compact=*/false, "bound");
  for (const bool warm_first : {false, true}) {
    SpqEngine engine(base, options);
    ASSERT_TRUE(engine.BuildStore(kMaxRadius).ok());
    if (warm_first) {
      // Materialize partitions so the insert takes the ready-cell path.
      auto warmup = engine.Query(MakeMutationQuery(9'400, 2, kMaxRadius),
                                 Algorithm::kPSPQ);
      ASSERT_TRUE(warmup.ok());
    }
    std::vector<DataObject> shadow = base.data;
    // Place inserts exactly max_radius away from real features, axis-
    // aligned so the distance is exact in floating point.
    ObjectId next_id = 50'000'000;
    const std::size_t stride = std::max<std::size_t>(
        1, base.features.size() / 6);
    for (std::size_t j = 0; j < 6 && j * stride < base.features.size();
         ++j) {
      DataObject object;
      object.id = next_id++;
      object.pos = base.features[j * stride].pos;
      object.pos.x += kMaxRadius;
      ASSERT_TRUE(engine.Insert(object).ok());
      shadow.push_back(object);
    }
    for (Algorithm algo :
         {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
      ExpectMatchesFreshRebuild(
          engine, shadow, base, options, algo, 9'500,
          std::string("boundary ") + AlgorithmName(algo) +
              (warm_first ? " ready" : " lazy"));
    }
  }
}

TEST(MutationEquivalenceTest, MutationErrorContracts) {
  const Dataset base = MakeMutationDataset(75);
  EngineOptions options =
      MakeMutationOptions(/*spill=*/false, /*auto_compact=*/false, "err");
  SpqEngine engine(base, options);

  DataObject object;
  object.id = 123'456'789;
  object.pos = {0.5, 0.5};
  // Mutations before BuildStore are errors, not queued intents.
  EXPECT_TRUE(engine.Insert(object).IsInvalidArgument());
  EXPECT_TRUE(engine.Delete(base.data.front().id).IsInvalidArgument());
  EXPECT_TRUE(engine.CompactStore().IsInvalidArgument());

  ASSERT_TRUE(engine.BuildStore(kMaxRadius).ok());
  ASSERT_TRUE(engine.Insert(object).ok());
  // Duplicate live id: rejected, store untouched.
  EXPECT_TRUE(engine.Insert(object).IsInvalidArgument());
  EXPECT_TRUE(engine.Insert(DataObject{base.data.front().id, {0.1, 0.1}})
                  .IsInvalidArgument());
  // Non-finite positions never reach the store.
  DataObject bad;
  bad.id = 987'654'321;
  bad.pos = {std::numeric_limits<double>::infinity(), 0.5};
  EXPECT_TRUE(engine.Insert(bad).IsInvalidArgument());
  // Deleting an id that never existed (or is already gone) is NotFound.
  EXPECT_TRUE(engine.Delete(424'242'424).IsNotFound());
  ASSERT_TRUE(engine.Delete(object.id).ok());
  EXPECT_TRUE(engine.Delete(object.id).IsNotFound());
  EXPECT_EQ(engine.store()->inserts_applied(), 1u);
  EXPECT_EQ(engine.store()->deletes_applied(), 1u);
  EXPECT_EQ(engine.store()->data_objects(), base.data.size());
}

}  // namespace
}  // namespace spq::core
