// Property test for the sort-free cell-bucketed shuffle: across all three
// algorithms, both partitioners, spill/no-spill and both single-query and
// batched execution, the flat-arena path must return results identical to
// the legacy comparison-sort path — same ids, bit-identical scores — and
// identical SpqRunInfo counters (the reducers must have examined exactly
// the same records in exactly the same order).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <tuple>
#include <vector>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"
#include "spq/shuffle_types.h"

namespace spq::core {
namespace {

using mapreduce::ShuffleMode;

core::Dataset UniformDataset(uint64_t seed) {
  datagen::UniformSpec spec;
  spec.num_objects = 4'000;
  spec.seed = seed;
  spec.vocab_size = 200;
  spec.min_keywords = 2;
  spec.max_keywords = 30;
  auto dataset = datagen::MakeUniformDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

core::Dataset ClusteredDataset(uint64_t seed) {
  datagen::ClusteredSpec spec;
  spec.num_objects = 4'000;
  spec.seed = seed;
  spec.vocab_size = 200;
  spec.min_keywords = 2;
  spec.max_keywords = 30;
  spec.num_clusters = 8;
  auto dataset = datagen::MakeClusteredDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

Query MakeTestQuery(uint64_t seed, uint32_t num_keywords) {
  datagen::WorkloadSpec spec;
  spec.num_keywords = num_keywords;
  spec.radius = datagen::RadiusFromCellFraction(0.5, 1.0, 10);
  spec.k = 5;
  spec.vocab_size = 200;
  spec.seed = seed;
  return datagen::MakeQuery(spec, 0);
}

void ExpectSameRun(const SpqResult& legacy, const SpqResult& flat,
                   const std::string& label) {
  ASSERT_EQ(legacy.entries.size(), flat.entries.size()) << label;
  for (std::size_t i = 0; i < legacy.entries.size(); ++i) {
    EXPECT_EQ(legacy.entries[i].id, flat.entries[i].id) << label << " @" << i;
    // Bit-identical, not approximately equal: both paths must feed the
    // reducers the same records in the same order.
    EXPECT_EQ(legacy.entries[i].score, flat.entries[i].score)
        << label << " @" << i;
  }
  const SpqRunInfo& a = legacy.info;
  const SpqRunInfo& b = flat.info;
  EXPECT_EQ(a.features_kept, b.features_kept) << label;
  EXPECT_EQ(a.features_pruned, b.features_pruned) << label;
  EXPECT_EQ(a.feature_duplicates, b.feature_duplicates) << label;
  EXPECT_EQ(a.features_examined, b.features_examined) << label;
  EXPECT_EQ(a.pairs_tested, b.pairs_tested) << label;
  EXPECT_EQ(a.early_terminations, b.early_terminations) << label;
  EXPECT_EQ(a.reduce_groups, b.reduce_groups) << label;
  EXPECT_EQ(a.job.map_output_records, b.job.map_output_records) << label;
  EXPECT_EQ(a.job.reduce_input_records, b.job.reduce_input_records) << label;
}

class ShuffleEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, PartitionerKind, bool>> {};

TEST_P(ShuffleEquivalenceTest, FlatPathMatchesLegacy) {
  const auto [algo, partitioner, spill] = GetParam();

  EngineOptions base;
  base.grid_size = 10;
  base.num_workers = 4;
  base.num_map_tasks = 5;
  // Fewer reducers than cells so the partitioner choice matters.
  base.num_reduce_tasks = 7;
  base.partitioner = partitioner;
  std::string spill_dir;
  if (spill) {
    // Unique per test instance and process: parallel ctest runs must not
    // share (and tear down) each other's spill directories.
    std::string unique =
        "spq_shuffle_equivalence-" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "-" + std::to_string(static_cast<int>(::getpid()));
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
    spill_dir =
        (std::filesystem::temp_directory_path() / unique).string();
    base.spill_dir = spill_dir;
  }

  EngineOptions legacy_options = base;
  legacy_options.shuffle_mode = ShuffleMode::kLegacySort;
  EngineOptions flat_options = base;
  flat_options.shuffle_mode = ShuffleMode::kCellBucketed;

  for (uint64_t seed : {11ull, 12ull}) {
    for (const core::Dataset& dataset :
         {UniformDataset(seed), ClusteredDataset(seed)}) {
      SpqEngine legacy_engine(dataset, legacy_options);
      SpqEngine flat_engine(dataset, flat_options);
      for (uint32_t kw : {1u, 4u}) {
        const Query query = MakeTestQuery(seed * 100 + kw, kw);
        auto legacy = legacy_engine.Execute(query, algo);
        auto flat = flat_engine.Execute(query, algo);
        ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
        ASSERT_TRUE(flat.ok()) << flat.status().ToString();
        ExpectSameRun(*legacy, *flat,
                      "seed=" + std::to_string(seed) +
                          " kw=" + std::to_string(kw));
      }
    }
  }
  if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ShuffleEquivalenceTest,
    ::testing::Combine(::testing::Values(Algorithm::kPSPQ,
                                         Algorithm::kESPQLen,
                                         Algorithm::kESPQSco),
                       ::testing::Values(PartitionerKind::kModulo,
                                         PartitionerKind::kBalanced),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      name += std::get<1>(info.param) == PartitionerKind::kModulo
                  ? "_modulo"
                  : "_balanced";
      name += std::get<2>(info.param) ? "_spill" : "_mem";
      return name;
    });

TEST(ShuffleEquivalenceTest, BatchFlatPathMatchesLegacy) {
  const core::Dataset dataset = ClusteredDataset(77);
  std::vector<Query> queries;
  for (uint32_t i = 0; i < 4; ++i) {
    Query q = MakeTestQuery(500 + i, 1 + i % 3);
    q.k = 3 + i;
    queries.push_back(q);
  }

  EngineOptions base;
  base.grid_size = 8;
  base.num_workers = 4;
  base.num_map_tasks = 3;
  base.num_reduce_tasks = 5;

  for (bool spill : {false, true}) {
    EngineOptions legacy_options = base;
    legacy_options.shuffle_mode = ShuffleMode::kLegacySort;
    EngineOptions flat_options = base;
    flat_options.shuffle_mode = ShuffleMode::kCellBucketed;
    std::string spill_dir;
    if (spill) {
      spill_dir = (std::filesystem::temp_directory_path() /
                   ("spq_shuffle_equivalence_batch-" +
                    std::to_string(static_cast<int>(::getpid()))))
                      .string();
      legacy_options.spill_dir = spill_dir;
      flat_options.spill_dir = spill_dir;
    }
    SpqEngine legacy_engine(dataset, legacy_options);
    SpqEngine flat_engine(dataset, flat_options);
    for (Algorithm algo : {Algorithm::kPSPQ, Algorithm::kESPQLen,
                           Algorithm::kESPQSco}) {
      auto legacy = legacy_engine.ExecuteBatch(queries, algo);
      auto flat = flat_engine.ExecuteBatch(queries, algo);
      ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
      ASSERT_TRUE(flat.ok()) << flat.status().ToString();
      ASSERT_EQ(legacy->per_query.size(), flat->per_query.size());
      for (std::size_t q = 0; q < legacy->per_query.size(); ++q) {
        const auto& le = legacy->per_query[q];
        const auto& fe = flat->per_query[q];
        ASSERT_EQ(le.size(), fe.size()) << "query " << q;
        for (std::size_t i = 0; i < le.size(); ++i) {
          EXPECT_EQ(le[i].id, fe[i].id) << "query " << q << " @" << i;
          EXPECT_EQ(le[i].score, fe[i].score) << "query " << q << " @" << i;
        }
      }
      EXPECT_EQ(legacy->job.map_output_records, flat->job.map_output_records);
      EXPECT_EQ(legacy->job.reduce_input_records,
                flat->job.reduce_input_records);
    }
    if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
  }
}

// The double <-> sortable-uint64 key flip must be order-preserving and
// invertible for every order value the mappers produce.
TEST(OrderedDoubleKeyTest, PreservesOrderAndRoundTrips) {
  const std::vector<double> values = {
      kDataOrderScore, -1.0, -0.75, -0.5, -1.0 / 3.0, -1e-9, -0.0,
      0.0,  1e-9, 0.5, 1.0, 2.0, 55.0, 1e17};
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = 0; j < values.size(); ++j) {
      EXPECT_EQ(values[i] < values[j],
                OrderedDoubleKey(values[i]) < OrderedDoubleKey(values[j]))
          << values[i] << " vs " << values[j];
    }
    const double round = OrderedKeyToDouble(OrderedDoubleKey(values[i]));
    EXPECT_EQ(round, values[i]);  // -0.0 == 0.0 under ==, as required
  }
}

}  // namespace
}  // namespace spq::core
