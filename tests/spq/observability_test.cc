// End-to-end tests for the unified observability layer, run under the
// "observability" ctest label and the tsan preset:
//   - a warm query leaves the expected footprint in the global registry
//     (latency histograms, job counters) without touching its results;
//   - ServingStats is internally consistent under concurrent readers:
//     submitted == admitted + rejected for EVERY read (the torn-read fix);
//   - cold fallbacks bump spq.query.cold_fallbacks once per cold query;
//   - the slow-query log threshold drives spq.query.slow;
//   - a traced coalesced batch yields the full span chain and a valid
//     chrome://tracing export;
//   - SpqEngine::MetricsSnapshot()/DumpMetrics() expose the surface.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"
#include "spq/serving.h"
#include "testing/json_lite.h"

namespace spq::core {
namespace {

constexpr uint32_t kGridSize = 7;
constexpr double kStoreRadius = 0.9 / kGridSize;

Dataset MakeObsDataset() {
  datagen::UniformSpec spec;
  spec.num_objects = 1'000;
  spec.seed = 97;
  spec.vocab_size = 100;
  spec.min_keywords = 2;
  spec.max_keywords = 10;
  auto dataset = datagen::MakeUniformDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

EngineOptions MakeObsOptions() {
  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 2;
  options.num_map_tasks = 3;
  options.num_reduce_tasks = 5;
  options.serving.max_batch = 8;
  options.serving.max_wait_ms = 5.0;
  options.serving.queue_capacity = 64;
  options.serving.num_executors = 1;
  return options;
}

Query MakeObsQuery(uint64_t seed, double radius_scale = 0.5) {
  datagen::WorkloadSpec spec;
  spec.num_keywords = 2;
  spec.radius = kStoreRadius * radius_scale;
  spec.k = 5;
  spec.vocab_size = 100;
  spec.seed = seed;
  return datagen::MakeQuery(spec, 0);
}

/// Every test starts from zeroed global metrics and a clean, disabled
/// tracer; the logger is silenced for the noisy (cold/slow) scenarios.
struct ObservabilitySandbox {
  ObservabilitySandbox() {
    trace::SetEnabled(false);
    trace::Clear();
    metrics::MetricsRegistry::Global().ResetForTest();
  }
  ~ObservabilitySandbox() {
    trace::SetEnabled(false);
    trace::Clear();
    Logger::SetMinLevel(LogLevel::kInfo);
  }
};

TEST(ObservabilityTest, WarmQueryLeavesRegistryFootprint) {
  ObservabilitySandbox sandbox;
  SpqEngine engine(MakeObsDataset(), MakeObsOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());
  metrics::MetricsRegistry::Global().ResetForTest();

  auto result = engine.Query(MakeObsQuery(11), Algorithm::kPSPQ);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->info.warm_path);

  const metrics::RegistrySnapshot snap = engine.MetricsSnapshot();
  const metrics::HistogramSnapshot warm =
      snap.HistogramValue("spq.query.warm_ns");
  EXPECT_EQ(warm.count, 1u);
  EXPECT_GT(warm.sum, 0u);
  EXPECT_EQ(snap.CounterValue("spq.job.runs"), 1u);  // one warm reduce job
  EXPECT_EQ(snap.HistogramValue("spq.job.total_ns").count, 1u);
  EXPECT_EQ(snap.CounterValue("spq.query.cold_fallbacks"), 0u);
  EXPECT_EQ(snap.CounterValue("spq.query.slow"), 0u);
}

// Instrumentation must never alter results: the same query answered with
// tracing + metrics hot is bit-identical to the quiet answer.
TEST(ObservabilityTest, TracingDoesNotChangeResults) {
  ObservabilitySandbox sandbox;
  SpqEngine engine(MakeObsDataset(), MakeObsOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  const Query query = MakeObsQuery(23);
  auto quiet = engine.Query(query, Algorithm::kESPQSco);
  ASSERT_TRUE(quiet.ok());

  trace::SetEnabled(true);
  auto traced = engine.Query(query, Algorithm::kESPQSco);
  trace::SetEnabled(false);
  ASSERT_TRUE(traced.ok());

  ASSERT_EQ(quiet->entries.size(), traced->entries.size());
  for (std::size_t i = 0; i < quiet->entries.size(); ++i) {
    EXPECT_EQ(quiet->entries[i].id, traced->entries[i].id) << i;
    EXPECT_EQ(quiet->entries[i].score, traced->entries[i].score) << i;
  }
  EXPECT_EQ(quiet->info.reduce_groups, traced->info.reduce_groups);
  EXPECT_FALSE(trace::Collect().empty());
}

// The torn-read fix: stats() derives `submitted` from the same counter
// reads it reports, so EVERY observed snapshot satisfies
// submitted == admitted + rejected — even while submitters are mid-burst
// against a zero-capacity (always-rejecting) sibling door.
TEST(ObservabilityTest, ServingStatsNeverTear) {
  ObservabilitySandbox sandbox;
  SpqEngine engine(MakeObsDataset(), MakeObsOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());
  SpqFrontDoor door(engine);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ServingStats stats = door.stats();
      if (stats.submitted != stats.admitted + stats.rejected) {
        ADD_FAILURE() << "torn stats: submitted=" << stats.submitted
                      << " admitted=" << stats.admitted
                      << " rejected=" << stats.rejected;
        return;
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto result =
            door.Submit(MakeObsQuery(100 + t * kPerThread + i),
                        Algorithm::kPSPQ)
                .get();
        EXPECT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const ServingStats stats = door.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.admitted, stats.submitted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(reads.load(), 0u);
}

TEST(ObservabilityTest, ColdFallbacksCountedPerColdQuery) {
  ObservabilitySandbox sandbox;
  Logger::SetMinLevel(LogLevel::kOff);  // cold fallbacks warn on purpose
  SpqEngine engine(MakeObsDataset(), MakeObsOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());
  metrics::MetricsRegistry::Global().ResetForTest();

  constexpr int kCold = 3;
  for (int i = 0; i < kCold; ++i) {
    // Radius beyond the store's contract forces the cold path.
    auto result = engine.Query(MakeObsQuery(200 + i, 2.0), Algorithm::kPSPQ);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->info.cold_fallback);
  }
  auto warm = engine.Query(MakeObsQuery(300), Algorithm::kPSPQ);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->info.warm_path);

  const metrics::RegistrySnapshot snap = engine.MetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("spq.query.cold_fallbacks"),
            static_cast<uint64_t>(kCold));
  EXPECT_EQ(snap.HistogramValue("spq.query.warm_ns").count, 1u);
}

TEST(ObservabilityTest, SlowQueryThresholdDrivesCounter) {
  ObservabilitySandbox sandbox;
  Logger::SetMinLevel(LogLevel::kOff);  // the slow-query WARN is the point
  EngineOptions slow_options = MakeObsOptions();
  slow_options.slow_query_ms = 1e-6;  // everything is "slow"
  SpqEngine slow_engine(MakeObsDataset(), slow_options);
  ASSERT_TRUE(slow_engine.BuildStore(kStoreRadius).ok());
  metrics::MetricsRegistry::Global().ResetForTest();

  ASSERT_TRUE(slow_engine.Query(MakeObsQuery(41), Algorithm::kPSPQ).ok());
  EXPECT_EQ(slow_engine.MetricsSnapshot().CounterValue("spq.query.slow"), 1u);

  // Threshold <= 0 disables the slow-query path entirely.
  EngineOptions quiet_options = MakeObsOptions();
  quiet_options.slow_query_ms = 0.0;
  SpqEngine quiet_engine(MakeObsDataset(), quiet_options);
  ASSERT_TRUE(quiet_engine.BuildStore(kStoreRadius).ok());
  metrics::MetricsRegistry::Global().ResetForTest();
  ASSERT_TRUE(quiet_engine.Query(MakeObsQuery(43), Algorithm::kPSPQ).ok());
  EXPECT_EQ(quiet_engine.MetricsSnapshot().CounterValue("spq.query.slow"), 0u);
}

// The acceptance capture: a coalesced front-door burst traced end to end
// produces the whole span chain (admission → batch close → serve →
// warm batch → job phases → reduce groups) and a valid chrome export.
TEST(ObservabilityTest, CoalescedBatchTraceCapture) {
  ObservabilitySandbox sandbox;
  SpqEngine engine(MakeObsDataset(), MakeObsOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());
  SpqFrontDoor door(engine);

  trace::Clear();
  trace::SetEnabled(true);
  std::vector<std::future<StatusOr<SpqResult>>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(door.Submit(MakeObsQuery(400 + i), Algorithm::kPSPQ));
  }
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().ok());
  }
  // Quiesce before collecting: a fulfilled future only proves the batch's
  // RESULTS are ready — the executor may still be inside the tail of its
  // door.serve_batch span, and a span recorded between Collect() and the
  // export below would break the size equality. Shutdown joins it.
  door.Shutdown();
  trace::SetEnabled(false);

  const std::vector<trace::SpanEvent> events = trace::Collect();
  auto count_named = [&events](const char* name) {
    std::size_t n = 0;
    for (const auto& event : events) {
      if (std::string(name) == event.name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_named("door.admit"), 12u);
  EXPECT_GE(count_named("door.batch_close"), 1u);
  EXPECT_GE(count_named("door.serve_batch"), 1u);
  EXPECT_GE(count_named("query.warm_batch"), 1u);
  EXPECT_GE(count_named("query.snapshot_pin"), 1u);
  EXPECT_GE(count_named("job.run"), 1u);
  EXPECT_GE(count_named("job.map"), 1u);
  EXPECT_GE(count_named("job.reduce"), 1u);
  EXPECT_GE(count_named("reduce.join"), 1u);  // per reduce group

  std::ostringstream os;
  trace::ExportChromeTrace(os);
  testing::JsonValue doc;
  ASSERT_TRUE(testing::JsonLite::Parse(os.str(), &doc));
  const testing::JsonValue* trace_events = doc.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_EQ(trace_events->array.size(), events.size());

  const ServingStats stats = door.stats();
  EXPECT_GE(stats.coalesced, 2u);  // the burst genuinely coalesced
  const metrics::RegistrySnapshot snap = engine.MetricsSnapshot();
  EXPECT_GE(snap.HistogramValue("spq.serving.queue_wait_ns").count, 12u);
  EXPECT_GE(snap.HistogramValue("spq.serving.batch_size").count, 1u);
  EXPECT_EQ(snap.CounterValue("spq.serving.admitted"), 12u);
}

TEST(ObservabilityTest, DumpMetricsExposesPrometheusText) {
  ObservabilitySandbox sandbox;
  SpqEngine engine(MakeObsDataset(), MakeObsOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());
  ASSERT_TRUE(engine.Query(MakeObsQuery(51), Algorithm::kPSPQ).ok());

  std::ostringstream os;
  engine.DumpMetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("spq_query_warm_ns_count"), std::string::npos);
  EXPECT_NE(text.find("spq_job_runs"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
}

}  // namespace
}  // namespace spq::core
