// Durability tests for the CellStore checkpoint / WAL / recovery path
// (cell_store.h "Durability & recovery invariants"). The keystone is the
// crash-point matrix: a checkpoint killed at EVERY write-path boundary
// must leave a store that recovers — from the prior committed epoch, or
// by falling back to a fresh build when nothing ever committed — with
// warm results and ALL SPQ counters bit-identical to a never-crashed
// store, across the three algorithms and both spill modes. Corruption
// tests pin the replica-failover and rebuild-from-dataset fallbacks:
// detected loudly, counted, never served as garbage.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "dfs/mini_dfs.h"
#include "spq/cell_store.h"
#include "spq/engine.h"
#include "spq/wal.h"

namespace spq::core {
namespace {

// ------------------------------------------------------------ WAL unit

TEST(StoreWalTest, AppendReplayRoundTrip) {
  dfs::MiniDfs dfs({.num_datanodes = 4, .block_size = 256, .replication = 2});
  StoreWal wal(&dfs, "log");
  WalRecord built;
  built.type = WalRecordType::kStoreBuilt;
  built.payload = {1, 2, 3};
  ASSERT_TRUE(wal.Append(built).ok());
  WalRecord begin;
  begin.type = WalRecordType::kCheckpointBegin;
  begin.epoch = 1;
  ASSERT_TRUE(wal.Append(begin).ok());

  StoreWal reader(&dfs, "log");
  auto replay = reader.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->torn_records, 0u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].type, WalRecordType::kStoreBuilt);
  EXPECT_EQ(replay->records[0].payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(replay->records[1].type, WalRecordType::kCheckpointBegin);
  EXPECT_EQ(replay->records[1].epoch, 1u);
  EXPECT_EQ(reader.next_seq(), 3u);
}

TEST(StoreWalTest, TornFrameIsSkippedAndLaterRecordsSurvive) {
  dfs::MiniDfs dfs({.num_datanodes = 4, .block_size = 256, .replication = 2});
  StoreWal wal(&dfs, "log");
  WalRecord begin;
  begin.type = WalRecordType::kCheckpointBegin;
  begin.epoch = 1;
  ASSERT_TRUE(wal.Append(begin).ok());
  WalRecord commit;
  commit.type = WalRecordType::kCheckpointCommit;
  commit.epoch = 1;
  ASSERT_TRUE(wal.AppendTorn(commit).ok());  // crashed mid-append

  // A writer that recovered from the crash appends past the hole.
  StoreWal writer2(&dfs, "log");
  ASSERT_TRUE(writer2.Replay().ok());
  WalRecord begin2 = begin;
  begin2.epoch = 2;
  ASSERT_TRUE(writer2.Append(begin2).ok());
  WalRecord commit2 = commit;
  commit2.epoch = 2;
  ASSERT_TRUE(writer2.Append(commit2).ok());

  // Replay skips the torn slot (counted) and sees the later records —
  // the torn commit(1) is gone, the intact epoch-2 pair is visible.
  StoreWal reader(&dfs, "log");
  auto replay = reader.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->torn_records, 1u);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].epoch, 1u);
  EXPECT_EQ(replay->records[1].epoch, 2u);
  EXPECT_EQ(replay->records[1].type, WalRecordType::kCheckpointBegin);
  EXPECT_EQ(replay->records[2].epoch, 2u);
  EXPECT_EQ(replay->records[2].type, WalRecordType::kCheckpointCommit);
}

// --------------------------------------------------- engine-level setup

constexpr uint32_t kGridSize = 9;
constexpr double kMaxRadius = 0.6 / kGridSize;

const Dataset& TestDataset() {
  static const Dataset dataset = [] {
    datagen::ClusteredSpec spec;
    spec.num_objects = 2'500;
    spec.seed = 91;
    spec.vocab_size = 120;
    spec.min_keywords = 2;
    spec.max_keywords = 16;
    spec.num_clusters = 5;
    auto d = datagen::MakeClusteredDataset(spec);
    EXPECT_TRUE(d.ok());
    return *std::move(d);
  }();
  return dataset;
}

EngineOptions MakeOptions(bool spill, const std::string& tag) {
  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 4;
  options.num_map_tasks = 5;
  options.num_reduce_tasks = 7;  // < cells: multi-cell reduce partitions
  if (spill) {
    options.spill_dir =
        (std::filesystem::temp_directory_path() /
         ("spq_durability_" + tag + "_" +
          std::to_string(static_cast<int>(::getpid()))))
            .string();
  }
  return options;
}

std::vector<Query> SuiteQueries() {
  std::vector<Query> queries;
  uint64_t seed = 400;
  for (uint32_t kw : {1u, 3u}) {
    for (double radius : {0.5 * kMaxRadius, kMaxRadius}) {
      datagen::WorkloadSpec spec;
      spec.num_keywords = kw;
      spec.radius = radius;
      spec.k = 5;
      spec.vocab_size = 120;
      spec.seed = ++seed;
      Query q = datagen::MakeQuery(spec, 0);
      q.radius = radius;
      queries.push_back(q);
    }
  }
  return queries;
}

constexpr Algorithm kAlgos[] = {Algorithm::kPSPQ, Algorithm::kESPQLen,
                                Algorithm::kESPQSco};

/// Runs every (algorithm, query) pair warm and returns the results in a
/// fixed order; failures surface as EXPECT + empty slots.
std::vector<SpqResult> RunSuite(SpqEngine& engine) {
  std::vector<SpqResult> out;
  for (Algorithm algo : kAlgos) {
    for (const Query& q : SuiteQueries()) {
      auto r = engine.Query(q, algo);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(r.ok() ? *std::move(r) : SpqResult{});
    }
  }
  return out;
}

/// Bit-identical results AND counters: the recovered store must be
/// indistinguishable from the baseline in everything a query observes.
void ExpectSuitesIdentical(const std::vector<SpqResult>& baseline,
                           const std::vector<SpqResult>& got,
                           const std::string& label) {
  ASSERT_EQ(baseline.size(), got.size()) << label;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    const SpqResult& a = baseline[i];
    const SpqResult& b = got[i];
    const std::string where = label + " run " + std::to_string(i);
    EXPECT_TRUE(b.info.warm_path) << where;
    EXPECT_FALSE(b.info.cold_fallback) << where;
    ASSERT_EQ(a.entries.size(), b.entries.size()) << where;
    for (std::size_t j = 0; j < a.entries.size(); ++j) {
      EXPECT_EQ(a.entries[j].id, b.entries[j].id) << where << " @" << j;
      EXPECT_EQ(a.entries[j].score, b.entries[j].score) << where << " @" << j;
    }
    EXPECT_EQ(a.info.features_kept, b.info.features_kept) << where;
    EXPECT_EQ(a.info.features_pruned, b.info.features_pruned) << where;
    EXPECT_EQ(a.info.feature_duplicates, b.info.feature_duplicates) << where;
    EXPECT_EQ(a.info.features_examined, b.info.features_examined) << where;
    EXPECT_EQ(a.info.pairs_tested, b.info.pairs_tested) << where;
    EXPECT_EQ(a.info.early_terminations, b.info.early_terminations) << where;
    EXPECT_EQ(a.info.reduce_groups, b.info.reduce_groups) << where;
    EXPECT_EQ(a.info.cells_pruned, b.info.cells_pruned) << where;
    EXPECT_EQ(a.info.signature_checks, b.info.signature_checks) << where;
  }
}

dfs::DfsOptions SmallDfs() {
  return {.num_datanodes = 5, .block_size = 2048, .replication = 2,
          .seed = 11};
}

// ------------------------------------------------- the crash-point matrix

constexpr CellStore::CheckpointCrash kAllCrashes[] = {
    CellStore::CheckpointCrash::kNone,
    CellStore::CheckpointCrash::kMidWalBegin,
    CellStore::CheckpointCrash::kAfterWalBegin,
    CellStore::CheckpointCrash::kMidCells,
    CellStore::CheckpointCrash::kAfterCells,
    CellStore::CheckpointCrash::kAfterManifest,
    CellStore::CheckpointCrash::kMidWalCommit,
};

const char* CrashName(CellStore::CheckpointCrash crash) {
  switch (crash) {
    case CellStore::CheckpointCrash::kNone: return "none";
    case CellStore::CheckpointCrash::kMidWalBegin: return "mid_wal_begin";
    case CellStore::CheckpointCrash::kAfterWalBegin: return "after_wal_begin";
    case CellStore::CheckpointCrash::kMidCells: return "mid_cells";
    case CellStore::CheckpointCrash::kAfterCells: return "after_cells";
    case CellStore::CheckpointCrash::kAfterManifest: return "after_manifest";
    case CellStore::CheckpointCrash::kMidWalCommit: return "mid_wal_commit";
  }
  return "?";
}

class DurabilityCrashTest : public ::testing::TestWithParam<bool> {};

// One committed checkpoint, then a re-checkpoint killed at each boundary:
// recovery must serve the committed epoch (the crashed epoch only when it
// actually committed) with bit-identical warm behavior.
TEST_P(DurabilityCrashTest, CrashedRecheckpointRecoversCommittedEpoch) {
  const bool spill = GetParam();
  const EngineOptions options = MakeOptions(spill, "matrix");

  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  const std::vector<SpqResult> baseline = RunSuite(builder);

  for (CellStore::CheckpointCrash crash : kAllCrashes) {
    const std::string label = std::string("crash=") + CrashName(crash);
    dfs::MiniDfs dfs(SmallDfs());
    auto first = builder.store()->Checkpoint(dfs, "store");
    ASSERT_TRUE(first.ok()) << label << ": " << first.status().ToString();
    EXPECT_EQ(first->epoch, 1u) << label;
    EXPECT_GT(first->cells_written, 0u) << label;

    auto second = builder.store()->Checkpoint(dfs, "store", crash);
    if (crash == CellStore::CheckpointCrash::kNone) {
      ASSERT_TRUE(second.ok()) << second.status().ToString();
      EXPECT_EQ(second->epoch, 2u);
    } else {
      ASSERT_TRUE(second.status().IsAborted()) << label;
    }

    SpqEngine reader(TestDataset(), options);
    ASSERT_TRUE(reader.OpenStore(dfs, "store").ok()) << label;
    ASSERT_TRUE(reader.has_store());
    EXPECT_TRUE(reader.store()->recovered()) << label;
    EXPECT_EQ(reader.store()->checkpoint_epoch(),
              crash == CellStore::CheckpointCrash::kNone ? 2u : 1u)
        << label;
    ExpectSuitesIdentical(baseline, RunSuite(reader), label);
    // Every partition a query touched was restored intact — corruption
    // was never injected here, so nothing may have been rebuilt.
    EXPECT_GT(reader.store()->cells_restored(), 0u) << label;
    EXPECT_EQ(reader.store()->cells_rebuilt(), 0u) << label;
  }
  if (!options.spill_dir.empty()) {
    std::filesystem::remove_all(options.spill_dir);
  }
}

INSTANTIATE_TEST_SUITE_P(SpillModes, DurabilityCrashTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "spill" : "mem";
                         });

// A crash during the FIRST checkpoint leaves nothing committed: OpenStore
// must say NotFound (never serve a partial epoch), and the build fallback
// must behave exactly like the baseline.
TEST(DurabilityTest, NothingCommittedIsNotFoundAndBuildFallbackMatches) {
  const EngineOptions options = MakeOptions(false, "nothing_committed");
  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  const std::vector<SpqResult> baseline = RunSuite(builder);

  for (CellStore::CheckpointCrash crash : kAllCrashes) {
    if (crash == CellStore::CheckpointCrash::kNone) continue;
    const std::string label = std::string("crash=") + CrashName(crash);
    dfs::MiniDfs dfs(SmallDfs());
    ASSERT_TRUE(
        builder.store()->Checkpoint(dfs, "store", crash).status().IsAborted())
        << label;
    SpqEngine reader(TestDataset(), options);
    EXPECT_TRUE(reader.OpenStore(dfs, "store").IsNotFound()) << label;
    EXPECT_FALSE(reader.has_store()) << label;
    if (crash == CellStore::CheckpointCrash::kAfterManifest) {
      // The nastiest prefix — manifest durable, commit missing. The
      // fallback path the caller takes must be bit-identical too.
      ASSERT_TRUE(reader.BuildStore(kMaxRadius).ok());
      ExpectSuitesIdentical(baseline, RunSuite(reader), label + " rebuild");
    }
  }
}

// ------------------------------------------------------ corruption paths

/// All files of the newest committed epoch holding cell payloads.
std::vector<std::string> CellFilesOf(const dfs::MiniDfs& dfs, uint64_t epoch) {
  std::vector<std::string> files;
  const std::string prefix =
      CellStore::EpochDir("store", epoch) + "/cell-";
  for (const std::string& f : dfs.ListFiles()) {
    if (f.rfind(prefix, 0) == 0) files.push_back(f);
  }
  return files;
}

TEST(DurabilityTest, CorruptReplicaFailsOverWithoutRebuild) {
  const EngineOptions options = MakeOptions(false, "failover");
  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  const std::vector<SpqResult> baseline = RunSuite(builder);

  dfs::MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(builder.store()->Checkpoint(dfs, "store").ok());

  // Flip one byte in the FIRST replica of every block of every cell file:
  // reads must detect the bad CRC and fail over to the intact replica.
  const std::vector<std::string> cell_files = CellFilesOf(dfs, 1);
  ASSERT_FALSE(cell_files.empty());
  for (const std::string& file : cell_files) {
    auto meta = dfs.GetMetadata(file);
    ASSERT_TRUE(meta.ok());
    for (const auto& block : meta->blocks) {
      ASSERT_FALSE(block.replicas.empty());
      ASSERT_TRUE(
          dfs.datanode(block.replicas[0]).CorruptReplica(block.block, 3).ok());
    }
  }

  SpqEngine reader(TestDataset(), options);
  ASSERT_TRUE(reader.OpenStore(dfs, "store").ok());
  ExpectSuitesIdentical(baseline, RunSuite(reader), "one replica corrupt");
  EXPECT_GT(dfs.corrupt_replicas_detected(), 0u);
  EXPECT_GT(reader.store()->cells_restored(), 0u);
  EXPECT_EQ(reader.store()->cells_rebuilt(), 0u);  // failover sufficed
}

TEST(DurabilityTest, AllReplicasCorruptRebuildsFromDataset) {
  const EngineOptions options = MakeOptions(false, "rebuild");
  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  const std::vector<SpqResult> baseline = RunSuite(builder);

  dfs::MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(builder.store()->Checkpoint(dfs, "store").ok());

  // Corrupt EVERY replica of every cell-file block: restore cannot
  // succeed anywhere, so every touched cell must take the loud
  // rebuild-from-dataset fallback — and still serve identical results.
  for (const std::string& file : CellFilesOf(dfs, 1)) {
    auto meta = dfs.GetMetadata(file);
    ASSERT_TRUE(meta.ok());
    for (const auto& block : meta->blocks) {
      for (auto node : block.replicas) {
        ASSERT_TRUE(dfs.datanode(node).CorruptReplica(block.block, 7).ok());
      }
    }
  }

  SpqEngine reader(TestDataset(), options);
  ASSERT_TRUE(reader.OpenStore(dfs, "store").ok());
  ExpectSuitesIdentical(baseline, RunSuite(reader), "all replicas corrupt");
  EXPECT_GT(reader.store()->cells_rebuilt(), 0u);
  EXPECT_EQ(reader.store()->cells_restored(), 0u);
  EXPECT_GT(dfs.corrupt_replicas_detected(), 0u);
}

// A recovered store — some cells touched (materialized), some restored
// but untouched, some never loaded — must checkpoint correctly from every
// partition state (SegmentImageOf's three sources), and a store opened
// from THAT checkpoint must still be bit-identical.
TEST(DurabilityTest, RecoveredStoreRecheckpointsFromMixedPartitionStates) {
  const EngineOptions options = MakeOptions(false, "recheckpoint");
  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  const std::vector<SpqResult> baseline = RunSuite(builder);

  dfs::MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(builder.store()->Checkpoint(dfs, "store").ok());

  SpqEngine reader(TestDataset(), options);
  ASSERT_TRUE(reader.OpenStore(dfs, "store").ok());
  // Touch a few cells only: one small-radius query materializes its
  // cells; the rest of the store stays unloaded (lazy, invariant 3).
  Query probe = SuiteQueries()[0];
  ASSERT_TRUE(reader.Query(probe, Algorithm::kPSPQ).ok());

  dfs::MiniDfs dfs2(SmallDfs());
  auto epoch = reader.CheckpointStore(dfs2, "store");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1u);  // fresh WAL on dfs2

  SpqEngine reader2(TestDataset(), options);
  ASSERT_TRUE(reader2.OpenStore(dfs2, "store").ok());
  ExpectSuitesIdentical(baseline, RunSuite(reader2), "re-checkpointed");
}

// ------------------------------------------------------------- contracts

TEST(DurabilityTest, DatasetMismatchIsInvalidArgument) {
  const EngineOptions options = MakeOptions(false, "mismatch");
  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  dfs::MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(builder.store()->Checkpoint(dfs, "store").ok());

  datagen::UniformSpec spec;
  spec.num_objects = 900;  // different object count => fingerprint differs
  spec.seed = 5;
  spec.vocab_size = 120;
  spec.min_keywords = 1;
  spec.max_keywords = 4;
  auto other = datagen::MakeUniformDataset(spec);
  ASSERT_TRUE(other.ok());
  SpqEngine reader(*std::move(other), options);
  EXPECT_TRUE(reader.OpenStore(dfs, "store").IsInvalidArgument());
}

TEST(DurabilityTest, RecheckpointGarbageCollectsOldEpochs) {
  const EngineOptions options = MakeOptions(false, "gc");
  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  dfs::MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(builder.store()->Checkpoint(dfs, "store").ok());
  ASSERT_FALSE(CellFilesOf(dfs, 1).empty());
  auto second = builder.store()->Checkpoint(dfs, "store");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->epoch, 2u);
  // Epoch 1 is dead weight once epoch 2 committed (invariant 5).
  EXPECT_TRUE(CellFilesOf(dfs, 1).empty());
  EXPECT_FALSE(dfs.FileExists(CellStore::ManifestFile("store", 1)));
  ASSERT_FALSE(CellFilesOf(dfs, 2).empty());

  SpqEngine reader(TestDataset(), options);
  ASSERT_TRUE(reader.OpenStore(dfs, "store").ok());
  EXPECT_EQ(reader.store()->checkpoint_epoch(), 2u);
}

TEST(DurabilityTest, OpenMissingStoreIsNotFound) {
  dfs::MiniDfs dfs(SmallDfs());
  SpqEngine engine(TestDataset(), MakeOptions(false, "missing"));
  EXPECT_TRUE(engine.OpenStore(dfs, "nope").IsNotFound());
}

TEST(DurabilityTest, CheckpointWithoutStoreIsInvalidArgument) {
  dfs::MiniDfs dfs(SmallDfs());
  SpqEngine engine(TestDataset(), MakeOptions(false, "nostore"));
  EXPECT_TRUE(engine.CheckpointStore(dfs, "store").status()
                  .IsInvalidArgument());
}

// Mutation invariant M5: a mutated store no longer matches any image the
// checkpoint format can express against the engine's dataset fingerprint,
// so Checkpoint must refuse loudly with FailedPrecondition — never persist
// a drifted layout. The refusal is sticky across further mutations and
// purely-physical compaction; only a fresh BuildStore clears it.
TEST(DurabilityTest, MutatedStoreRefusesCheckpointUntilRebuilt) {
  const EngineOptions options = MakeOptions(false, "mutated_refuse");
  SpqEngine engine(TestDataset(), options);
  ASSERT_TRUE(engine.BuildStore(kMaxRadius).ok());

  dfs::MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(engine.CheckpointStore(dfs, "store").ok());  // pristine: fine

  DataObject extra;
  extra.id = 77'000'001;
  extra.pos = {0.31, 0.62};
  ASSERT_TRUE(engine.Insert(extra).ok());
  EXPECT_TRUE(engine.store()->mutated());
  EXPECT_TRUE(engine.CheckpointStore(dfs, "store").status()
                  .IsFailedPrecondition());

  // Deleting the insert restores the LOGICAL dataset, and compaction is
  // purely physical — neither un-mutates the store, and both keep the
  // engine-level refusal in force.
  ASSERT_TRUE(engine.Delete(extra.id).ok());
  ASSERT_TRUE(engine.CompactStore().ok());
  EXPECT_TRUE(engine.store()->mutated());
  EXPECT_TRUE(engine.CheckpointStore(dfs, "store").status()
                  .IsFailedPrecondition());
  // The store-level contract holds independently of the engine wrapper.
  EXPECT_TRUE(engine.store()->Checkpoint(dfs, "store").status()
                  .IsFailedPrecondition());

  // A fresh build is checkpointable again and the new epoch round-trips.
  ASSERT_TRUE(engine.BuildStore(kMaxRadius).ok());
  const std::vector<SpqResult> baseline = RunSuite(engine);
  auto epoch = engine.CheckpointStore(dfs, "store");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  SpqEngine reader(TestDataset(), options);
  ASSERT_TRUE(reader.OpenStore(dfs, "store").ok());
  ExpectSuitesIdentical(baseline, RunSuite(reader), "post-rebuild epoch");

  // A RECOVERED store accepts mutations and serves them warm, but refuses
  // checkpoint exactly like a locally-built-and-mutated one.
  ASSERT_TRUE(reader.Insert(extra).ok());
  auto r = reader.Query(SuiteQueries()[0], Algorithm::kPSPQ);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->info.warm_path);
  EXPECT_TRUE(reader.CheckpointStore(dfs, "store").status()
                  .IsFailedPrecondition());
}

// Whole checkpoint + recovery cycle under deterministic injected storage
// faults (torn writes, short reads, bit flips on block replicas): every
// fault is caught by the per-block CRC + length checks and absorbed by
// replica failover or the per-cell rebuild fallback — results stay
// bit-identical. Replication 3 keeps whole-file loss out of this seed.
TEST(DurabilityTest, RecoveryUnderInjectedStorageFaults) {
  const EngineOptions options = MakeOptions(false, "faulty_dfs");
  SpqEngine builder(TestDataset(), options);
  ASSERT_TRUE(builder.BuildStore(kMaxRadius).ok());
  const std::vector<SpqResult> baseline = RunSuite(builder);

  dfs::DfsOptions dfs_options{.num_datanodes = 8, .block_size = 1024,
                              .replication = 3, .seed = 11};
  dfs_options.faults.storage_fault_prob = 0.15;
  dfs_options.faults.seed = 1234;
  dfs::MiniDfs dfs(dfs_options);

  auto info = builder.store()->Checkpoint(dfs, "store");
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  SpqEngine reader(TestDataset(), options);
  ASSERT_TRUE(reader.OpenStore(dfs, "store").ok());
  ExpectSuitesIdentical(baseline, RunSuite(reader), "faulty dfs");
  // p=0.15 per replica I/O across dozens of blocks: this seed must have
  // injected (and the CRCs must have caught) at least one fault.
  EXPECT_GT(dfs.corrupt_replicas_detected() + dfs.faulty_replica_writes(),
            0u);
}

}  // namespace
}  // namespace spq::core
