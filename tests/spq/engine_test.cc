#include "spq/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "datagen/generator.h"
#include "spq/sequential.h"

namespace spq::core {
namespace {

Dataset TestDataset(uint64_t n = 2000) {
  auto dataset = datagen::MakeUniformDataset(
      {.num_objects = n, .seed = 3, .vocab_size = 30,
       .min_keywords = 1, .max_keywords = 8});
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

Query TestQuery() {
  Query q;
  q.k = 5;
  q.radius = 0.03;
  q.keywords = text::KeywordSet({1, 2});
  return q;
}

TEST(ValidateQueryTest, AcceptsReasonableQuery) {
  EXPECT_TRUE(ValidateQuery(TestQuery()).ok());
}

TEST(ValidateQueryTest, RejectsZeroK) {
  Query q = TestQuery();
  q.k = 0;
  EXPECT_TRUE(ValidateQuery(q).IsInvalidArgument());
}

TEST(ValidateQueryTest, RejectsBadRadius) {
  Query q = TestQuery();
  q.radius = -0.5;
  EXPECT_TRUE(ValidateQuery(q).IsInvalidArgument());
  q.radius = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ValidateQuery(q).IsInvalidArgument());
  q.radius = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(ValidateQuery(q).IsInvalidArgument());
}

TEST(EngineTest, ExecuteRejectsInvalidQuery) {
  SpqEngine engine(TestDataset(100), {});
  Query q = TestQuery();
  q.k = 0;
  EXPECT_TRUE(engine.Execute(q, Algorithm::kPSPQ).status()
                  .IsInvalidArgument());
}

TEST(EngineTest, GridOverrideChangesPartitioning) {
  SpqEngine engine(TestDataset(), EngineOptions{.grid_size = 4});
  auto coarse = engine.Execute(TestQuery(), Algorithm::kESPQSco);
  auto fine = engine.Execute(TestQuery(), Algorithm::kESPQSco, 12);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(coarse->info.grid_size, 4u);
  EXPECT_EQ(fine->info.grid_size, 12u);
  EXPECT_EQ(coarse->info.num_reduce_tasks, 16u);
  EXPECT_EQ(fine->info.num_reduce_tasks, 144u);
  // Finer grids never reduce duplication.
  EXPECT_GE(fine->info.feature_duplicates, coarse->info.feature_duplicates);
  // Results identical regardless of grid.
  ASSERT_EQ(coarse->entries.size(), fine->entries.size());
  for (std::size_t i = 0; i < coarse->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(coarse->entries[i].score, fine->entries[i].score);
  }
}

TEST(EngineTest, AutomaticGridSizeUsesAdvisor) {
  SpqEngine engine(TestDataset(), EngineOptions{.grid_size = 0});
  Query q = TestQuery();
  q.radius = 0.01;  // advisor: floor(1 / 0.02) = 50
  auto result = engine.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->info.grid_size, 50u);
}

TEST(EngineTest, ExplicitReduceTaskCount) {
  EngineOptions options;
  options.grid_size = 10;
  options.num_reduce_tasks = 7;  // fewer reducers than cells
  SpqEngine engine(TestDataset(), options);
  auto result = engine.Execute(TestQuery(), Algorithm::kESPQSco);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->info.num_reduce_tasks, 7u);
  // Still correct versus the oracle.
  auto oracle = BruteForceSpq(engine.dataset(), TestQuery());
  ASSERT_EQ(result->entries.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->entries[i].score, oracle[i].score);
  }
}

TEST(EngineTest, RunInfoIsConsistent) {
  SpqEngine engine(TestDataset(), EngineOptions{.grid_size = 8});
  auto result = engine.Execute(TestQuery(), Algorithm::kESPQLen);
  ASSERT_TRUE(result.ok());
  const SpqRunInfo& info = result->info;
  EXPECT_EQ(info.algorithm, Algorithm::kESPQLen);
  // Kept + pruned = all features.
  EXPECT_EQ(info.features_kept + info.features_pruned,
            engine.dataset().features.size());
  // Map output = all data objects + kept features + duplicates.
  EXPECT_EQ(info.job.map_output_records,
            engine.dataset().data.size() + info.features_kept +
                info.feature_duplicates);
  EXPECT_GE(info.MeasuredDuplicationFactor(), 1.0);
  EXPECT_GE(info.FeatureExaminationRatio(), 0.0);
  EXPECT_LE(info.FeatureExaminationRatio(), 1.0);
  EXPECT_GT(info.job.shuffle_bytes, 0u);
  EXPECT_GT(info.reduce_groups, 0u);
}

TEST(EngineTest, FaultInjectionThroughEngineStillCorrect) {
  EngineOptions options;
  options.grid_size = 6;
  options.faults.map_failure_prob = 0.3;
  options.faults.reduce_failure_prob = 0.3;
  options.faults.seed = 11;
  options.max_task_attempts = 30;
  Dataset dataset = TestDataset();
  SpqEngine faulty(dataset, options);
  SpqEngine clean(dataset, EngineOptions{.grid_size = 6});
  auto a = faulty.Execute(TestQuery(), Algorithm::kESPQSco);
  auto b = clean.Execute(TestQuery(), Algorithm::kESPQSco);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->entries.size(), b->entries.size());
  for (std::size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_EQ(a->entries[i].id, b->entries[i].id);
    EXPECT_DOUBLE_EQ(a->entries[i].score, b->entries[i].score);
  }
  EXPECT_GT(a->info.job.map_task_failures +
                a->info.job.reduce_task_failures,
            0u);
}

TEST(EngineTest, EmptyDatasetYieldsEmptyResult) {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  SpqEngine engine(dataset, EngineOptions{.grid_size = 4});
  auto result = engine.Execute(TestQuery(), Algorithm::kPSPQ);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entries.empty());
}

TEST(EngineTest, DataWithoutFeaturesYieldsEmptyResult) {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  dataset.data = {{1, {0.5, 0.5}}};
  SpqEngine engine(dataset, EngineOptions{.grid_size = 4});
  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    auto result = engine.Execute(TestQuery(), algo);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->entries.empty()) << AlgorithmName(algo);
  }
}

TEST(EngineTest, SpilledShuffleMatchesInMemory) {
  Dataset dataset = TestDataset();
  EngineOptions in_memory;
  in_memory.grid_size = 8;
  EngineOptions spilled = in_memory;
  spilled.spill_dir =
      (std::filesystem::temp_directory_path() / "spq_engine_spill").string();
  SpqEngine a(dataset, in_memory), b(dataset, spilled);
  auto ra = a.Execute(TestQuery(), Algorithm::kESPQLen);
  auto rb = b.Execute(TestQuery(), Algorithm::kESPQLen);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_EQ(ra->entries.size(), rb->entries.size());
  for (std::size_t i = 0; i < ra->entries.size(); ++i) {
    EXPECT_EQ(ra->entries[i].id, rb->entries[i].id);
    EXPECT_DOUBLE_EQ(ra->entries[i].score, rb->entries[i].score);
  }
  EXPECT_EQ(ra->info.job.shuffle_bytes, rb->info.job.shuffle_bytes);
  std::filesystem::remove_all(spilled.spill_dir);
}

TEST(EngineTest, DeterministicAcrossWorkerCounts) {
  Dataset dataset = TestDataset();
  EngineOptions serial;
  serial.grid_size = 8;
  serial.num_workers = 1;
  EngineOptions parallel;
  parallel.grid_size = 8;
  parallel.num_workers = 8;
  SpqEngine a(dataset, serial), b(dataset, parallel);
  auto ra = a.Execute(TestQuery(), Algorithm::kESPQSco);
  auto rb = b.Execute(TestQuery(), Algorithm::kESPQSco);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->entries.size(), rb->entries.size());
  for (std::size_t i = 0; i < ra->entries.size(); ++i) {
    EXPECT_EQ(ra->entries[i].id, rb->entries[i].id);
    EXPECT_DOUBLE_EQ(ra->entries[i].score, rb->entries[i].score);
  }
}

}  // namespace
}  // namespace spq::core
