#include "spq/balanced_partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/generator.h"
#include "spq/engine.h"
#include "spq/sequential.h"

namespace spq::core {
namespace {

TEST(CellCostTest, FollowsSection61Model) {
  // |O_i| * (|F_i|+1) + |O_i| + |F_i|
  EXPECT_EQ(CellCost(0, 0), 0u);
  EXPECT_EQ(CellCost(10, 0), 10u * 1 + 10);
  EXPECT_EQ(CellCost(0, 10), 10u);
  EXPECT_EQ(CellCost(100, 50), 100u * 51 + 150);
}

TEST(ComputeCellLoadTest, CountsPerCell) {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  dataset.data = {{1, {0.1, 0.1}}, {2, {0.1, 0.15}}, {3, {0.9, 0.9}}};
  dataset.features = {{4, {0.9, 0.85}, text::KeywordSet({1})}};
  auto grid = geo::UniformGrid::Make(dataset.bounds, 2, 2);
  ASSERT_TRUE(grid.ok());
  CellLoad load = ComputeCellLoad(dataset, *grid);
  EXPECT_EQ(load.data_count[grid->CellAt(0, 0)], 2u);
  EXPECT_EQ(load.data_count[grid->CellAt(1, 1)], 1u);
  EXPECT_EQ(load.feature_count[grid->CellAt(1, 1)], 1u);
  EXPECT_EQ(load.feature_count[grid->CellAt(0, 0)], 0u);
}

uint64_t MaxPartitionCost(const CellLoad& load,
                          const std::vector<uint32_t>& assignment,
                          uint32_t parts) {
  std::vector<uint64_t> totals(parts, 0);
  for (std::size_t c = 0; c < assignment.size(); ++c) {
    totals[assignment[c]] +=
        CellCost(load.data_count[c], load.feature_count[c]);
  }
  return *std::max_element(totals.begin(), totals.end());
}

TEST(BalancedAssignmentTest, CoversAllPartitionsUnderUniformLoad) {
  CellLoad load;
  load.data_count.assign(100, 10);
  load.feature_count.assign(100, 10);
  auto assignment = BalancedAssignment(load, 4);
  ASSERT_EQ(assignment.size(), 100u);
  std::vector<int> counts(4, 0);
  for (uint32_t p : assignment) {
    ASSERT_LT(p, 4u);
    ++counts[p];
  }
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(BalancedAssignmentTest, SinglePartitionIsTrivial) {
  CellLoad load;
  load.data_count.assign(10, 5);
  load.feature_count.assign(10, 5);
  auto assignment = BalancedAssignment(load, 1);
  for (uint32_t p : assignment) EXPECT_EQ(p, 0u);
}

TEST(BalancedAssignmentTest, HotCellsSpreadAcrossPartitions) {
  // 4 hot cells + 60 cold ones, 4 partitions: each hot cell must land on a
  // different partition (LPT places the 4 biggest first).
  CellLoad load;
  load.data_count.assign(64, 1);
  load.feature_count.assign(64, 1);
  for (std::size_t hot : {3u, 17u, 33u, 48u}) {
    load.data_count[hot] = 1000;
    load.feature_count[hot] = 1000;
  }
  auto assignment = BalancedAssignment(load, 4);
  std::vector<uint32_t> hot_parts = {assignment[3], assignment[17],
                                     assignment[33], assignment[48]};
  std::sort(hot_parts.begin(), hot_parts.end());
  EXPECT_EQ(hot_parts, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(BalancedAssignmentTest, BeatsModuloOnSkewedLoad) {
  // Adversarial for modulo: all heavy cells share cell % 4 == 0.
  const uint32_t parts = 4;
  CellLoad load;
  load.data_count.assign(64, 1);
  load.feature_count.assign(64, 0);
  for (std::size_t c = 0; c < 64; c += 4) load.data_count[c] = 500;
  std::vector<uint32_t> modulo(64);
  for (std::size_t c = 0; c < 64; ++c) modulo[c] = c % parts;
  auto balanced = BalancedAssignment(load, parts);
  EXPECT_LT(MaxPartitionCost(load, balanced, parts),
            MaxPartitionCost(load, modulo, parts) / 2);
}

TEST(BalancedAssignmentTest, DeterministicForEqualCosts) {
  CellLoad load;
  load.data_count.assign(20, 7);
  load.feature_count.assign(20, 7);
  EXPECT_EQ(BalancedAssignment(load, 3), BalancedAssignment(load, 3));
}

// ---- through the engine ----

TEST(BalancedEngineTest, ResultsIdenticalToModulo) {
  auto dataset = datagen::MakeClusteredDataset(
      {.num_objects = 5000, .seed = 13, .vocab_size = 40,
       .min_keywords = 1, .max_keywords = 8, .num_clusters = 4,
       .cluster_sigma = 0.02});
  ASSERT_TRUE(dataset.ok());
  Query q;
  q.k = 10;
  q.radius = 0.02;
  q.keywords = text::KeywordSet({1, 2, 3});

  EngineOptions modulo;
  modulo.grid_size = 12;
  modulo.num_reduce_tasks = 8;
  EngineOptions balanced = modulo;
  balanced.partitioner = PartitionerKind::kBalanced;

  SpqEngine a(*dataset, modulo), b(*dataset, balanced);
  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    auto ra = a.Execute(q, algo);
    auto rb = b.Execute(q, algo);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_EQ(ra->entries.size(), rb->entries.size()) << AlgorithmName(algo);
    for (std::size_t i = 0; i < ra->entries.size(); ++i) {
      EXPECT_EQ(ra->entries[i].id, rb->entries[i].id);
      EXPECT_DOUBLE_EQ(ra->entries[i].score, rb->entries[i].score);
    }
  }
}

TEST(BalancedEngineTest, ReducesRecordSkewOnClusteredData) {
  auto dataset = datagen::MakeClusteredDataset(
      {.num_objects = 40000, .seed = 14, .num_clusters = 4,
       .cluster_sigma = 0.015});
  ASSERT_TRUE(dataset.ok());
  Query q;
  q.k = 10;
  q.radius = 0.005;
  q.keywords = text::KeywordSet({1, 2, 3});

  EngineOptions modulo;
  modulo.grid_size = 20;
  modulo.num_reduce_tasks = 8;
  EngineOptions balanced = modulo;
  balanced.partitioner = PartitionerKind::kBalanced;

  SpqEngine a(*dataset, modulo), b(*dataset, balanced);
  auto ra = a.Execute(q, Algorithm::kESPQSco);
  auto rb = b.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_LT(rb->info.job.ReduceSkew(), ra->info.job.ReduceSkew());
}

TEST(BalancedEngineTest, FallsBackWhenReducersCoverCells) {
  // R == cells: balanced mode must not change anything.
  auto dataset = datagen::MakeUniformDataset({.num_objects = 1000, .seed = 15});
  ASSERT_TRUE(dataset.ok());
  EngineOptions options;
  options.grid_size = 4;
  options.partitioner = PartitionerKind::kBalanced;
  SpqEngine engine(*dataset, options);
  Query q;
  q.k = 3;
  q.radius = 0.05;
  q.keywords = text::KeywordSet({1});
  auto result = engine.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(result.ok());
  auto oracle = BruteForceSpq(*dataset, q);
  ASSERT_EQ(result->entries.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->entries[i].score, oracle[i].score);
  }
}

}  // namespace
}  // namespace spq::core
