// Reproduces Example 1 of the paper (Figure 1 / Table 2): five hotels
// (data objects), eight restaurants (feature objects), query "italian"
// with k=1 and r=1.5 over a [0,10]² space. The paper's stated answer:
// p4 scores 0.5 (via f1), p1 scores 1.0 (via f4), p5 scores 0.5 (via f7),
// and the top-1 result is p1.

#include <gtest/gtest.h>

#include "spq/engine.h"
#include "spq/sequential.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace spq::core {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_.bounds = {0, 0, 10, 10};
    dataset_.data = {
        {1, {4.6, 4.8}},  // p1
        {2, {7.5, 1.7}},  // p2
        {3, {8.9, 5.2}},  // p3
        {4, {1.8, 1.8}},  // p4
        {5, {1.9, 9.0}},  // p5
    };
    auto feature = [this](ObjectId id, double x, double y,
                          const std::string& text) {
      FeatureObject f;
      f.id = id;
      f.pos = {x, y};
      f.keywords = text::TokenizeToSet(text, vocab_);
      dataset_.features.push_back(std::move(f));
    };
    feature(101, 2.8, 1.2, "italian,gourmet");      // f1
    feature(102, 5.0, 3.8, "chinese,cheap");        // f2
    feature(103, 8.7, 1.9, "sushi,wine");           // f3
    feature(104, 3.8, 5.5, "italian");              // f4
    feature(105, 5.2, 5.1, "mexican,exotic");       // f5
    feature(106, 7.4, 5.4, "greek,traditional");    // f6
    feature(107, 3.0, 8.1, "italian,spaghetti");    // f7
    feature(108, 9.5, 7.0, "indian");               // f8
  }

  Query ItalianQuery(uint32_t k) const {
    Query q;
    q.k = k;
    q.radius = 1.5;
    q.keywords = text::TokenizeToSetReadOnly("italian", vocab_);
    return q;
  }

  text::Vocabulary vocab_;
  Dataset dataset_;
};

TEST_F(PaperExampleTest, BruteForceTop1IsP1) {
  auto results = BruteForceSpq(dataset_, ItalianQuery(1));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);
}

TEST_F(PaperExampleTest, BruteForceScoresMatchTable2) {
  Query q = ItalianQuery(5);
  // τ(p1)=1 (f4), τ(p4)=0.5 (f1), τ(p5)=0.5 (f7); p2, p3 score 0.
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset_.data[0], dataset_, q), 1.0);
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset_.data[1], dataset_, q), 0.0);
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset_.data[2], dataset_, q), 0.0);
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset_.data[3], dataset_, q), 0.5);
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset_.data[4], dataset_, q), 0.5);
}

TEST_F(PaperExampleTest, AllThreeAlgorithmsReturnP1) {
  EngineOptions options;
  options.grid_size = 4;  // the 4x4 grid of Figure 2
  options.num_workers = 4;
  SpqEngine engine(dataset_, options);
  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    auto result = engine.Execute(ItalianQuery(1), algo);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    ASSERT_EQ(result->entries.size(), 1u) << AlgorithmName(algo);
    EXPECT_EQ(result->entries[0].id, 1u) << AlgorithmName(algo);
    EXPECT_DOUBLE_EQ(result->entries[0].score, 1.0) << AlgorithmName(algo);
  }
}

TEST_F(PaperExampleTest, Top3IsP1ThenP4ThenP5) {
  EngineOptions options;
  options.grid_size = 4;
  SpqEngine engine(dataset_, options);
  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    auto result = engine.Execute(ItalianQuery(3), algo);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    ASSERT_EQ(result->entries.size(), 3u) << AlgorithmName(algo);
    EXPECT_EQ(result->entries[0].id, 1u);
    EXPECT_DOUBLE_EQ(result->entries[0].score, 1.0);
    // p4 and p5 tie at 0.5; id ascending breaks the tie.
    EXPECT_EQ(result->entries[1].id, 4u);
    EXPECT_DOUBLE_EQ(result->entries[1].score, 0.5);
    EXPECT_EQ(result->entries[2].id, 5u);
    EXPECT_DOUBLE_EQ(result->entries[2].score, 0.5);
  }
}

TEST_F(PaperExampleTest, OnlyRelevantFeaturesAreShuffled) {
  // Only f1, f4, f7 share a term with {italian}; the other five features
  // must be pruned map-side (line 9 of Algorithm 1).
  EngineOptions options;
  options.grid_size = 4;
  SpqEngine engine(dataset_, options);
  auto result = engine.Execute(ItalianQuery(1), Algorithm::kPSPQ);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->info.features_kept, 3u);
  EXPECT_EQ(result->info.features_pruned, 5u);
}

TEST_F(PaperExampleTest, F7DuplicationMatchesFigure2) {
  // The paper walks through f7=(3.0, 8.1): with r=1.5 on the 4x4 grid it
  // must be duplicated into exactly 3 neighboring cells (C9, C10, C13).
  // f1=(2.8,1.2) touches C1's neighbors C2, C5, C6 (3 copies);
  // f4=(3.8,5.5) sits near the C10/C11 border (…). Rather than hardcode
  // every feature, check the total duplicate count against geometry.
  auto grid_or = geo::UniformGrid::Make(dataset_.bounds, 4, 4);
  ASSERT_TRUE(grid_or.ok());
  uint64_t expected_duplicates = 0;
  for (const auto& f : dataset_.features) {
    if (!f.keywords.Intersects(ItalianQuery(1).keywords)) continue;
    expected_duplicates += grid_or->CellsWithinDist(f.pos, 1.5).size();
  }
  EngineOptions options;
  options.grid_size = 4;
  SpqEngine engine(dataset_, options);
  auto result = engine.Execute(ItalianQuery(1), Algorithm::kESPQSco);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->info.feature_duplicates, expected_duplicates);
  // And f7 specifically contributes 3 (the paper's walkthrough).
  EXPECT_EQ(grid_or->CellsWithinDist({3.0, 8.1}, 1.5).size(), 3u);
}

TEST_F(PaperExampleTest, UnknownQueryTermMatchesNothing) {
  Query q;
  q.k = 3;
  q.radius = 1.5;
  q.keywords = text::TokenizeToSetReadOnly("klingon", vocab_);
  SpqEngine engine(dataset_, EngineOptions{.grid_size = 4});
  auto result = engine.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->entries.empty());
}

}  // namespace
}  // namespace spq::core
