// Concurrency property tests for the warm serving layer (run under the
// tsan preset and via the "concurrency" ctest label):
//
//   1. N threads hammering Query() concurrently get results bit-identical
//      to the same queries run serially — per-query scratch isolation and
//      the latched first-touch materialization must not perturb scores,
//      order, or counters.
//   2. The documented cold_fallback contract under concurrency: an
//      oversized-radius query served WHILE the store is live never
//      touches snapshot-mutable state (a recovered store's lazy
//      restore counters stay at zero) and stays loud (cold_fallback set).
//   3. Queries keep serving, bit-identically, while the store is
//      checkpointed and swapped out underneath them (CheckpointStore +
//      OpenStore's RCU publication).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "dfs/mini_dfs.h"
#include "geo/point.h"
#include "spq/cell_store.h"
#include "spq/engine.h"

namespace spq::core {
namespace {

constexpr uint32_t kGridSize = 7;
constexpr double kCellEdge = 1.0 / kGridSize;
constexpr double kStoreRadius = 0.9 * kCellEdge;

Dataset MakeConcurrencyDataset() {
  datagen::ClusteredSpec spec;
  spec.num_objects = 1'200;
  spec.seed = 77;
  spec.vocab_size = 120;
  spec.min_keywords = 2;
  spec.max_keywords = 12;
  spec.num_clusters = 5;
  auto dataset = datagen::MakeClusteredDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

EngineOptions MakeConcurrencyOptions() {
  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 2;
  options.num_map_tasks = 3;
  // Fewer reducers than cells so partitions interleave several cells.
  options.num_reduce_tasks = 5;
  return options;
}

std::vector<Query> MakeQueryMix(std::size_t count) {
  std::vector<Query> queries;
  for (std::size_t i = 0; i < count; ++i) {
    datagen::WorkloadSpec spec;
    spec.num_keywords = 2 + (i % 3);
    spec.radius = kStoreRadius * (0.3 + 0.1 * static_cast<double>(i % 7));
    spec.k = 4 + (i % 4);
    spec.vocab_size = 120;
    spec.seed = 900 + i;
    queries.push_back(datagen::MakeQuery(spec, 0));
  }
  return queries;
}

Algorithm AlgoFor(std::size_t i) {
  switch (i % 3) {
    case 0: return Algorithm::kPSPQ;
    case 1: return Algorithm::kESPQLen;
    default: return Algorithm::kESPQSco;
  }
}

void ExpectSameResult(const SpqResult& expected, const SpqResult& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << label;
  for (std::size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].id, actual.entries[i].id)
        << label << " @" << i;
    // Bit-identical, not approximately equal: concurrency must not change
    // the order data objects are scored in.
    EXPECT_EQ(expected.entries[i].score, actual.entries[i].score)
        << label << " @" << i;
  }
  EXPECT_EQ(expected.info.features_examined, actual.info.features_examined)
      << label;
  EXPECT_EQ(expected.info.pairs_tested, actual.info.pairs_tested) << label;
  EXPECT_EQ(expected.info.reduce_groups, actual.info.reduce_groups) << label;
}

TEST(ConcurrencyTest, ConcurrentQueriesMatchSerialBitIdentically) {
  SpqEngine engine(MakeConcurrencyDataset(), MakeConcurrencyOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  const std::vector<Query> queries = MakeQueryMix(6);
  std::vector<SpqResult> serial;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto result = engine.Query(queries[i], AlgoFor(i));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    serial.push_back(*std::move(result));
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 2;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the mix at a different phase so distinct
        // queries overlap in time.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t q = (i + static_cast<std::size_t>(t)) %
                                queries.size();
          auto result = engine.Query(queries[q], AlgoFor(q));
          if (!result.ok()) {
            ADD_FAILURE() << "thread " << t << " query " << q << ": "
                          << result.status().ToString();
            failures.fetch_add(1);
            return;
          }
          ExpectSameResult(serial[q], *result,
                           "thread " + std::to_string(t) + " query " +
                               std::to_string(q));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// Satellite contract: the documented cold fallback (radius > max_radius)
// under concurrent callers. Served from a RECOVERED store whose cells are
// all still lazy, so "never touches snapshot-mutable state" is observable:
// cells_restored/cells_rebuilt stay 0 through any number of fallbacks.
TEST(ConcurrencyTest, ColdFallbackIsLoudAndTouchesNoStoreState) {
  Dataset dataset = MakeConcurrencyDataset();
  dfs::MiniDfs dfs({.num_datanodes = 4, .block_size = 4096, .replication = 2});
  {
    SpqEngine writer(dataset, MakeConcurrencyOptions());
    ASSERT_TRUE(writer.BuildStore(kStoreRadius).ok());
    ASSERT_TRUE(writer.CheckpointStore(dfs, "store").ok());
  }
  SpqEngine engine(dataset, MakeConcurrencyOptions());
  ASSERT_TRUE(engine.OpenStore(dfs, "store").ok());
  ASSERT_EQ(engine.store()->cells_restored(), 0u);
  ASSERT_EQ(engine.store()->cells_rebuilt(), 0u);

  Query oversized = MakeQueryMix(1).front();
  oversized.radius = 2.0 * kStoreRadius;  // > build radius: must fall back
  auto reference = engine.Execute(oversized, Algorithm::kPSPQ);
  ASSERT_TRUE(reference.ok());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = engine.Query(oversized, Algorithm::kPSPQ);
      if (!result.ok()) {
        ADD_FAILURE() << "thread " << t << ": "
                      << result.status().ToString();
        return;
      }
      EXPECT_TRUE(result->info.cold_fallback) << "thread " << t;
      EXPECT_FALSE(result->info.warm_path) << "thread " << t;
      ExpectSameResult(*reference, *result,
                       "fallback thread " + std::to_string(t));
    });
  }
  for (std::thread& thread : threads) thread.join();

  // The loud fallback ran entirely on the cold path: no cell of the
  // recovered store was materialized (restored or rebuilt) on its behalf.
  EXPECT_EQ(engine.store()->cells_restored(), 0u);
  EXPECT_EQ(engine.store()->cells_rebuilt(), 0u);
}

// Rebuild/checkpoint/recovery proceed under traffic: query threads hammer
// the engine while the main thread checkpoints the live store and then
// swaps in a recovered generation via OpenStore. Every query — on either
// generation — must stay bit-identical to the serial baseline.
TEST(ConcurrencyTest, QueriesServeAcrossCheckpointAndStoreSwap) {
  Dataset dataset = MakeConcurrencyDataset();
  SpqEngine engine(dataset, MakeConcurrencyOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  const std::vector<Query> queries = MakeQueryMix(4);
  std::vector<SpqResult> serial;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto result = engine.Query(queries[i], AlgoFor(i));
    ASSERT_TRUE(result.ok());
    serial.push_back(*std::move(result));
  }

  dfs::MiniDfs dfs({.num_datanodes = 4, .block_size = 4096, .replication = 2});
  std::atomic<bool> stop{false};
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t q = i++ % queries.size();
        auto result = engine.Query(queries[q], AlgoFor(q));
        if (!result.ok()) {
          ADD_FAILURE() << "in-flight query " << q << ": "
                        << result.status().ToString();
          return;
        }
        ExpectSameResult(serial[q], *result,
                         "swap thread " + std::to_string(t) + " query " +
                             std::to_string(q));
      }
    });
  }

  // Under live traffic: persist the current generation, then publish a
  // recovered one (lazy cells — queries drive concurrent materialization),
  // then checkpoint THAT and swap again.
  auto epoch1 = engine.CheckpointStore(dfs, "store");
  ASSERT_TRUE(epoch1.ok()) << epoch1.status().ToString();
  ASSERT_TRUE(engine.OpenStore(dfs, "store").ok());
  auto epoch2 = engine.CheckpointStore(dfs, "store");
  ASSERT_TRUE(epoch2.ok()) << epoch2.status().ToString();
  EXPECT_GT(*epoch2, *epoch1);
  ASSERT_TRUE(engine.OpenStore(dfs, "store").ok());

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();
}

// Mutation layer under live readers (tentpole contract, PR "Mutable
// CellStore"): Insert/Delete/CompactStore publish new RCU generations
// while reader threads hammer Query(). A reader pins whatever generation
// is current when it starts and finishes on it untouched. The mutations
// insert objects provably outside every query's influence — farther than
// the store build radius from EVERY feature, so they can never score and
// never enter any top-k — which makes the result ENTRIES
// generation-invariant and comparable to the pre-mutation serial
// baseline from any pinned generation (counters legitimately differ per
// generation: extra resident rows change pairs_tested/groups). After the
// churn deletes everything it inserted, the logical dataset equals the
// original again and FULL bit-identity — counters included — must hold.
TEST(ConcurrencyTest, ReadersStayBitIdenticalAcrossMutationPublishes) {
  Dataset dataset = MakeConcurrencyDataset();
  SpqEngine engine(dataset, MakeConcurrencyOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  const std::vector<Query> queries = MakeQueryMix(4);
  std::vector<SpqResult> serial;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto result = engine.Query(queries[i], AlgoFor(i));
    ASSERT_TRUE(result.ok());
    serial.push_back(*std::move(result));
  }

  // Quiet positions: beyond the build radius (every query radius is
  // smaller) from every feature.
  std::vector<geo::Point> quiet;
  const double safe2 = (1.05 * kStoreRadius) * (1.05 * kStoreRadius);
  for (int gx = 0; gx < 40 && quiet.size() < 6; ++gx) {
    for (int gy = 0; gy < 40 && quiet.size() < 6; ++gy) {
      const geo::Point p{(gx + 0.5) / 40.0, (gy + 0.5) / 40.0};
      double min2 = std::numeric_limits<double>::infinity();
      for (const FeatureObject& f : dataset.features) {
        min2 = std::min(min2, geo::Distance2(p, f.pos));
      }
      if (min2 > safe2) quiet.push_back(p);
    }
  }
  ASSERT_FALSE(quiet.empty()) << "dataset has no feature-free region";

  std::atomic<bool> stop{false};
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t q = i++ % queries.size();
        auto result = engine.Query(queries[q], AlgoFor(q));
        if (!result.ok()) {
          ADD_FAILURE() << "in-flight query " << q << ": "
                        << result.status().ToString();
          return;
        }
        const auto& want = serial[q].entries;
        const auto& got = result->entries;
        if (want.size() != got.size()) {
          ADD_FAILURE() << "entry count drift under mutation, query " << q;
          continue;
        }
        for (std::size_t e = 0; e < want.size(); ++e) {
          EXPECT_EQ(want[e].id, got[e].id) << "query " << q << " @" << e;
          EXPECT_EQ(want[e].score, got[e].score) << "query " << q << " @" << e;
        }
      }
    });
  }

  // Mutator (this thread): waves of insert / compact / checkpoint-attempt
  // / delete, each op an RCU publish under the readers.
  dfs::MiniDfs dfs({.num_datanodes = 4, .block_size = 4096, .replication = 2});
  constexpr int kWaves = 8;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<ObjectId> ids;
    for (std::size_t j = 0; j < quiet.size(); ++j) {
      DataObject object;
      object.id = 90'000'000 + static_cast<ObjectId>(wave) * 100 + j;
      object.pos = quiet[j];
      ASSERT_TRUE(engine.Insert(object).ok());
      ids.push_back(object.id);
    }
    if (wave % 3 == 1) {
      ASSERT_TRUE(engine.CompactStore().ok());
    }
    // A checkpoint racing mutations either persists the clean generation
    // it pinned or refuses loudly — never a torn state, never a crash.
    auto epoch = engine.CheckpointStore(dfs, "mut-race");
    EXPECT_TRUE(epoch.ok() || epoch.status().IsFailedPrecondition())
        << epoch.status().ToString();
    for (ObjectId id : ids) {
      ASSERT_TRUE(engine.Delete(id).ok());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();

  // Logical dataset is back to the original: full bit-identity, counters
  // included, against the pre-mutation baseline (invariant M2 — the store
  // still carries tombstones, masked out of geometry and scratch).
  EXPECT_TRUE(engine.store()->mutated());
  EXPECT_EQ(engine.store()->data_objects(), dataset.data.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto result = engine.Query(queries[i], AlgoFor(i));
    ASSERT_TRUE(result.ok());
    ExpectSameResult(serial[i], *result,
                     "post-churn query " + std::to_string(i));
    EXPECT_EQ(serial[i].info.early_terminations,
              result->info.early_terminations);
    EXPECT_EQ(serial[i].info.cells_pruned, result->info.cells_pruned);
    EXPECT_EQ(serial[i].info.signature_checks, result->info.signature_checks);
  }
  // And a mutated store keeps refusing checkpoints deterministically once
  // no pre-mutation generation can be pinned.
  auto refused = engine.CheckpointStore(dfs, "mut-final");
  EXPECT_TRUE(refused.status().IsFailedPrecondition())
      << refused.status().ToString();
}

}  // namespace
}  // namespace spq::core
