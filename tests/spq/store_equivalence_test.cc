// Property test for the resident CellStore serving layer: across all
// three algorithms, both shuffle modes and spill/no-spill, the warm path
// (BuildStore() once + Query()/QueryBatch() joining feature streams
// against the resident per-cell partitions) must return results
// bit-identical to the cold single-shot path, with identical SPQ counters
// — including reduce.groups, which the warm path must account even for
// cells the feature stream never visits. Only the map-phase dataset-side
// figures (map.data_objects, map_output_records, shuffle_bytes) may
// differ: the warm path legitimately skips mapping and shuffling the data
// objects — that is the point of the store.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <tuple>
#include <vector>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/cell_store.h"
#include "spq/engine.h"

namespace spq::core {
namespace {

using mapreduce::ShuffleMode;

constexpr uint32_t kGridSize = 9;

/// The "faults"-labeled ctest entries set SPQ_TEST_FAULTS: the whole
/// suite then runs under injected task + storage faults with a generous
/// retry budget — warm/cold equivalence must survive the full retry
/// machinery (task re-execution, spill verify-after-write, page-CRC
/// re-reads) too.
void ApplyEnvFaults(EngineOptions& options) {
  const char* env = std::getenv("SPQ_TEST_FAULTS");
  if (env == nullptr || *env == '\0' || *env == '0') return;
  options.faults.map_failure_prob = 0.15;
  options.faults.reduce_failure_prob = 0.15;
  options.faults.storage_fault_prob = 0.05;
  options.faults.seed = 1307;
  options.max_task_attempts = 50;
}

Dataset MakeDataset(uint64_t seed, bool clustered) {
  if (clustered) {
    datagen::ClusteredSpec spec;
    spec.num_objects = 3'000;
    spec.seed = seed;
    spec.vocab_size = 150;
    spec.min_keywords = 2;
    spec.max_keywords = 20;
    spec.num_clusters = 6;
    auto dataset = datagen::MakeClusteredDataset(spec);
    EXPECT_TRUE(dataset.ok());
    return *std::move(dataset);
  }
  datagen::UniformSpec spec;
  spec.num_objects = 3'000;
  spec.seed = seed;
  spec.vocab_size = 150;
  spec.min_keywords = 2;
  spec.max_keywords = 20;
  auto dataset = datagen::MakeUniformDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

Query MakeStoreQuery(uint64_t seed, uint32_t num_keywords, double radius) {
  datagen::WorkloadSpec spec;
  spec.num_keywords = num_keywords;
  spec.radius = radius;
  spec.k = 5;
  spec.vocab_size = 150;
  spec.seed = seed;
  Query q = datagen::MakeQuery(spec, 0);
  q.radius = radius;  // pin exactly (boundary cases below)
  return q;
}

void ExpectWarmMatchesCold(const SpqResult& cold, const SpqResult& warm,
                           const std::string& label) {
  EXPECT_TRUE(warm.info.warm_path) << label;
  EXPECT_FALSE(warm.info.cold_fallback) << label;
  ASSERT_EQ(cold.entries.size(), warm.entries.size()) << label;
  for (std::size_t i = 0; i < cold.entries.size(); ++i) {
    EXPECT_EQ(cold.entries[i].id, warm.entries[i].id) << label << " @" << i;
    // Bit-identical: the warm join must feed each reduce core the same
    // data objects in the same order as the cold stream did.
    EXPECT_EQ(cold.entries[i].score, warm.entries[i].score)
        << label << " @" << i;
  }
  const SpqRunInfo& a = cold.info;
  const SpqRunInfo& b = warm.info;
  // Feature-side map counters: the warm path maps the same features.
  EXPECT_EQ(a.features_kept, b.features_kept) << label;
  EXPECT_EQ(a.features_pruned, b.features_pruned) << label;
  EXPECT_EQ(a.feature_duplicates, b.feature_duplicates) << label;
  // Reduce counters must match exactly — including groups for data-only
  // cells, which the warm path accounts without running a core.
  EXPECT_EQ(a.features_examined, b.features_examined) << label;
  EXPECT_EQ(a.pairs_tested, b.pairs_tested) << label;
  EXPECT_EQ(a.early_terminations, b.early_terminations) << label;
  EXPECT_EQ(a.reduce_groups, b.reduce_groups) << label;
}

class StoreEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, ShuffleMode, bool>> {};

TEST_P(StoreEquivalenceTest, WarmPathMatchesCold) {
  const auto [algo, shuffle_mode, spill] = GetParam();

  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 4;
  options.num_map_tasks = 5;
  // Fewer reducers than cells: partitions hold several cells each, so the
  // warm data-only group accounting and cell interleaving get exercised.
  options.num_reduce_tasks = 7;
  options.shuffle_mode = shuffle_mode;
  std::string spill_dir;
  if (spill) {
    std::string unique =
        "spq_store_equivalence-" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "-" + std::to_string(static_cast<int>(::getpid()));
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
    spill_dir = (std::filesystem::temp_directory_path() / unique).string();
    options.spill_dir = spill_dir;
  }
  ApplyEnvFaults(options);

  const double cell_edge = 1.0 / kGridSize;
  const double max_radius = 0.6 * cell_edge;

  for (uint64_t seed : {21ull, 22ull}) {
    for (const bool clustered : {false, true}) {
      const Dataset dataset = MakeDataset(seed, clustered);
      SpqEngine engine(dataset, options);
      ASSERT_TRUE(engine.BuildStore(max_radius).ok());
      // Radii below, at a fraction of, and exactly AT the store's build
      // radius (the boundary must still serve warm: the contract is
      // radius <= max_radius).
      for (double radius : {0.15 * max_radius, 0.7 * max_radius, max_radius}) {
        for (uint32_t kw : {1u, 4u}) {
          const Query query = MakeStoreQuery(seed * 100 + kw, kw, radius);
          auto cold = engine.Execute(query, algo);
          auto warm = engine.Query(query, algo);
          ASSERT_TRUE(cold.ok()) << cold.status().ToString();
          ASSERT_TRUE(warm.ok()) << warm.status().ToString();
          ExpectWarmMatchesCold(
              *cold, *warm,
              "seed=" + std::to_string(seed) +
                  (clustered ? " clustered" : " uniform") +
                  " kw=" + std::to_string(kw) +
                  " r=" + std::to_string(radius));
          // Repeat the warm query: the cached per-cell indexes and score
          // scratch must not leak state across queries.
          auto warm2 = engine.Query(query, algo);
          ASSERT_TRUE(warm2.ok());
          ExpectWarmMatchesCold(*cold, *warm2, "repeat");
        }
      }
    }
  }
  if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, StoreEquivalenceTest,
    ::testing::Combine(::testing::Values(Algorithm::kPSPQ,
                                         Algorithm::kESPQLen,
                                         Algorithm::kESPQSco),
                       ::testing::Values(ShuffleMode::kLegacySort,
                                         ShuffleMode::kCellBucketed),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      name += std::get<1>(info.param) == ShuffleMode::kLegacySort
                  ? "_legacy"
                  : "_bucketed";
      name += std::get<2>(info.param) ? "_spill" : "_mem";
      return name;
    });

TEST(StoreEquivalenceTest, WarmBatchMatchesColdBatch) {
  const Dataset dataset = MakeDataset(31, /*clustered=*/true);
  const double max_radius = 0.6 / kGridSize;
  std::vector<Query> queries;
  for (uint32_t i = 0; i < 4; ++i) {
    Query q = MakeStoreQuery(700 + i, 1 + i % 3,
                             (0.2 + 0.2 * i) * max_radius);
    q.k = 3 + i;
    queries.push_back(q);
  }
  queries[3].radius = max_radius;  // boundary inside the batch

  for (ShuffleMode mode :
       {ShuffleMode::kLegacySort, ShuffleMode::kCellBucketed}) {
    EngineOptions options;
    options.grid_size = kGridSize;
    options.num_workers = 4;
    options.num_map_tasks = 3;
    options.num_reduce_tasks = 5;
    options.shuffle_mode = mode;
    ApplyEnvFaults(options);
    SpqEngine engine(dataset, options);
    ASSERT_TRUE(engine.BuildStore(max_radius).ok());
    for (Algorithm algo : {Algorithm::kPSPQ, Algorithm::kESPQLen,
                           Algorithm::kESPQSco}) {
      auto cold = engine.ExecuteBatch(queries, algo);
      auto warm = engine.QueryBatch(queries, algo);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      EXPECT_TRUE(warm->warm_path);
      ASSERT_EQ(cold->per_query.size(), warm->per_query.size());
      for (std::size_t q = 0; q < cold->per_query.size(); ++q) {
        const auto& ce = cold->per_query[q];
        const auto& we = warm->per_query[q];
        ASSERT_EQ(ce.size(), we.size()) << "query " << q;
        for (std::size_t i = 0; i < ce.size(); ++i) {
          EXPECT_EQ(ce[i].id, we[i].id) << "query " << q << " @" << i;
          EXPECT_EQ(ce[i].score, we[i].score) << "query " << q << " @" << i;
        }
      }
      EXPECT_EQ(cold->job.counters.Get(counter::kGroups),
                warm->job.counters.Get(counter::kGroups));
      EXPECT_EQ(cold->job.counters.Get(counter::kPairsTested),
                warm->job.counters.Get(counter::kPairsTested));
      EXPECT_EQ(cold->job.counters.Get(counter::kFeaturesExamined),
                warm->job.counters.Get(counter::kFeaturesExamined));
      EXPECT_EQ(cold->job.counters.Get(counter::kEarlyTerminations),
                warm->job.counters.Get(counter::kEarlyTerminations));
    }
  }
}

// The balanced partitioner (cached at BuildStore, reused per query) must
// route the warm feature stream and the resident-cell group accounting
// identically to the cold path's per-call assignment.
TEST(StoreEquivalenceTest, BalancedPartitionerWarmMatchesCold) {
  const Dataset dataset = MakeDataset(61, /*clustered=*/true);
  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 4;
  options.num_map_tasks = 5;
  options.num_reduce_tasks = 7;  // < cells, so the LPT assignment engages
  options.partitioner = PartitionerKind::kBalanced;
  ApplyEnvFaults(options);
  SpqEngine engine(dataset, options);
  const double max_radius = 0.6 / kGridSize;
  ASSERT_TRUE(engine.BuildStore(max_radius).ok());
  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    for (double radius : {0.3 * max_radius, max_radius}) {
      const Query query = MakeStoreQuery(600 + static_cast<uint64_t>(algo),
                                         3, radius);
      auto cold = engine.Execute(query, algo);
      auto warm = engine.Query(query, algo);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      ExpectWarmMatchesCold(*cold, *warm,
                            "balanced " + AlgorithmName(algo) +
                                " r=" + std::to_string(radius));
    }
  }
}

// The max-radius contract: a query beyond the store's radius class cannot
// be served warm — it must take the cold path (flagged, still correct).
TEST(StoreEquivalenceTest, RadiusBeyondStoreFallsBackCold) {
  const Dataset dataset = MakeDataset(41, /*clustered=*/false);
  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 4;
  SpqEngine engine(dataset, options);
  const double max_radius = 0.5 / kGridSize;
  ASSERT_TRUE(engine.BuildStore(max_radius).ok());

  const Query big = MakeStoreQuery(99, 3, 1.5 * max_radius);
  auto cold = engine.Execute(big, Algorithm::kPSPQ);
  auto warm = engine.Query(big, Algorithm::kPSPQ);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->info.cold_fallback);
  EXPECT_FALSE(warm->info.warm_path);
  ASSERT_EQ(cold->entries.size(), warm->entries.size());
  for (std::size_t i = 0; i < cold->entries.size(); ++i) {
    EXPECT_EQ(cold->entries[i].id, warm->entries[i].id);
    EXPECT_EQ(cold->entries[i].score, warm->entries[i].score);
  }

  // Batch: one oversized radius poisons the whole batch to the cold path.
  std::vector<Query> queries{MakeStoreQuery(98, 2, 0.5 * max_radius), big};
  auto warm_batch = engine.QueryBatch(queries, Algorithm::kESPQLen);
  ASSERT_TRUE(warm_batch.ok());
  EXPECT_TRUE(warm_batch->cold_fallback);
  EXPECT_FALSE(warm_batch->warm_path);
}

TEST(StoreEquivalenceTest, QueryWithoutStoreIsAnError) {
  const Dataset dataset = MakeDataset(51, /*clustered=*/false);
  SpqEngine engine(dataset, EngineOptions{});
  const Query query = MakeStoreQuery(1, 2, 0.01);
  EXPECT_FALSE(engine.Query(query, Algorithm::kPSPQ).ok());
  EXPECT_FALSE(engine.QueryBatch({query}, Algorithm::kPSPQ).ok());
  ASSERT_TRUE(engine.BuildStore(0.05).ok());
  EXPECT_TRUE(engine.has_store());
  EXPECT_TRUE(engine.Query(query, Algorithm::kPSPQ).ok());
}

}  // namespace
}  // namespace spq::core
