#include "spq/batch.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "datagen/generator.h"
#include "spq/engine.h"
#include "spq/sequential.h"

namespace spq::core {
namespace {

Dataset TestDataset(uint64_t seed = 51, uint64_t n = 3000,
                    uint32_t vocab = 40) {
  auto dataset = datagen::MakeUniformDataset(
      {.num_objects = n, .seed = seed, .vocab_size = vocab,
       .min_keywords = 1, .max_keywords = 10});
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

std::vector<Query> RandomBatch(Rng& rng, std::size_t count, uint32_t vocab) {
  std::vector<Query> queries;
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.k = 1 + rng.NextUint32(10);
    q.radius = 0.005 + rng.NextDouble() * 0.05;
    q.keywords = text::KeywordSet(
        {rng.NextUint32(vocab), rng.NextUint32(vocab)});
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(BatchKeyTest, SortAndGroupSemantics) {
  // cell primary, query secondary, order tertiary.
  EXPECT_TRUE(BatchKeySortLess({1, 5, 9.0}, {2, 0, 0.0}));
  EXPECT_TRUE(BatchKeySortLess({1, 0, 9.0}, {1, 1, 0.0}));
  EXPECT_TRUE(BatchKeySortLess({1, 1, 0.0}, {1, 1, 1.0}));
  EXPECT_FALSE(BatchKeySortLess({1, 1, 1.0}, {1, 1, 1.0}));
  EXPECT_TRUE(BatchKeyGroupEqual({3, 2, 0.1}, {3, 2, 0.9}));
  EXPECT_FALSE(BatchKeyGroupEqual({3, 2, 0.1}, {3, 1, 0.1}));
  EXPECT_FALSE(BatchKeyGroupEqual({3, 2, 0.1}, {4, 2, 0.1}));
  // Partitioner routes by cell only: a cell's groups share a reducer.
  EXPECT_EQ(BatchPartitioner({7, 0, 0.0}, 4), BatchPartitioner({7, 3, -1.0}, 4));
}

TEST(BatchKeyTest, CodecRoundTrip) {
  BatchCellKey key{42, 7, -0.375};
  Buffer buf;
  mapreduce::Codec<BatchCellKey>::Encode(key, buf);
  BufferReader reader(buf.data(), buf.size());
  BatchCellKey out;
  ASSERT_TRUE(mapreduce::Codec<BatchCellKey>::Decode(reader, &out).ok());
  EXPECT_EQ(out.cell, 42u);
  EXPECT_EQ(out.query, 7u);
  EXPECT_DOUBLE_EQ(out.order, -0.375);
  EXPECT_TRUE(reader.exhausted());
}

class BatchAlgorithmTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BatchAlgorithmTest, BatchMatchesPerQueryExecution) {
  const Algorithm algo = GetParam();
  const uint32_t vocab = 40;
  Dataset dataset = TestDataset();
  SpqEngine engine(dataset, EngineOptions{.grid_size = 8});
  Rng rng(99);
  const auto queries = RandomBatch(rng, 6, vocab);

  auto batch = engine.ExecuteBatch(queries, algo);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->per_query.size(), queries.size());

  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto single = engine.Execute(queries[q], algo);
    ASSERT_TRUE(single.ok());
    const auto& got = batch->per_query[q];
    const auto& expected = single->entries;
    ASSERT_EQ(got.size(), expected.size())
        << AlgorithmName(algo) << " query " << q;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i].score, expected[i].score)
          << AlgorithmName(algo) << " query " << q << " rank " << i;
    }
    // Truthful scores vs the oracle.
    for (const auto& e : got) {
      for (const auto& p : dataset.data) {
        if (p.id == e.id) {
          EXPECT_DOUBLE_EQ(e.score,
                           BruteForceScore(p, dataset, queries[q]));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, BatchAlgorithmTest,
                         ::testing::Values(Algorithm::kPSPQ,
                                           Algorithm::kESPQLen,
                                           Algorithm::kESPQSco),
                         [](const auto& info) {
                           return AlgorithmName(info.param);
                         });

TEST(BatchTest, SingleQueryBatchMatchesExecute) {
  Dataset dataset = TestDataset(52);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 6});
  Query q;
  q.k = 5;
  q.radius = 0.03;
  q.keywords = text::KeywordSet({1, 2});
  auto batch = engine.ExecuteBatch({q}, Algorithm::kESPQSco);
  auto single = engine.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(batch->per_query.size(), 1u);
  ASSERT_EQ(batch->per_query[0].size(), single->entries.size());
  for (std::size_t i = 0; i < single->entries.size(); ++i) {
    EXPECT_EQ(batch->per_query[0][i].id, single->entries[i].id);
    EXPECT_DOUBLE_EQ(batch->per_query[0][i].score, single->entries[i].score);
  }
}

TEST(BatchTest, EmptyBatchRejected) {
  Dataset dataset = TestDataset(53, 100);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 4});
  EXPECT_TRUE(engine.ExecuteBatch({}, Algorithm::kPSPQ)
                  .status()
                  .IsInvalidArgument());
}

TEST(BatchTest, InvalidQueryInBatchRejected) {
  Dataset dataset = TestDataset(54, 100);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 4});
  Query good;
  good.k = 1;
  good.radius = 0.1;
  good.keywords = text::KeywordSet({1});
  Query bad = good;
  bad.k = 0;
  EXPECT_TRUE(engine.ExecuteBatch({good, bad}, Algorithm::kPSPQ)
                  .status()
                  .IsInvalidArgument());
}

TEST(BatchTest, HeterogeneousKRadiusAndKeywords) {
  Dataset dataset = TestDataset(55);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 8});
  std::vector<Query> queries(3);
  queries[0] = {.k = 1, .radius = 0.01, .keywords = text::KeywordSet({1})};
  queries[1] = {.k = 20, .radius = 0.08,
                .keywords = text::KeywordSet({2, 3, 4})};
  queries[2] = {.k = 5, .radius = 0.0, .keywords = text::KeywordSet({5})};
  auto batch = engine.ExecuteBatch(queries, Algorithm::kESPQLen);
  ASSERT_TRUE(batch.ok());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto oracle = BruteForceSpq(dataset, queries[q]);
    ASSERT_EQ(batch->per_query[q].size(), oracle.size()) << "query " << q;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch->per_query[q][i].score, oracle[i].score);
    }
  }
}

TEST(BatchTest, SharedScanShipsDataObjectsOnce) {
  Dataset dataset = TestDataset(56);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 6});
  Rng rng(1);
  const auto queries = RandomBatch(rng, 4, 40);
  auto batch = engine.ExecuteBatch(queries, Algorithm::kESPQSco);
  ASSERT_TRUE(batch.ok());
  // The input is scanned once regardless of batch size...
  EXPECT_EQ(batch->job.input_records,
            dataset.data.size() + dataset.features.size());
  // ...and each data object crosses the shuffle exactly once (the cached
  // sentinel-group design), not once per query.
  EXPECT_EQ(batch->job.counters.Get(counter::kDataObjects),
            dataset.data.size());
  const uint64_t features_shuffled =
      batch->job.counters.Get(counter::kFeaturesKept) +
      batch->job.counters.Get(counter::kFeatureDuplicates);
  EXPECT_EQ(batch->job.map_output_records,
            dataset.data.size() + features_shuffled);
}

}  // namespace
}  // namespace spq::core
