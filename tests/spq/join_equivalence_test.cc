// Property tests for the reduce-side grid-indexed spatial join
// (JoinMode::kGridIndex): across all three algorithms, both shuffle
// pipelines, single-query and batched execution and spill/no-spill, the
// indexed join must return results bit-identical to the paper's linear
// scan (JoinMode::kLinearScan) — same ids, same scores, and identical
// counters for everything the join strategy must not change (features
// examined, early terminations, groups, shuffle volume). The only
// permitted difference is `reduce.pairs_tested`, which counts the
// distance evaluations actually performed: the quantity the index exists
// to shrink, so the tests assert indexed <= linear.
//
// Workloads deliberately include the shapes the index must not get wrong:
// coarse grids (many objects per cell), r = a/2 (the duplication-regime
// boundary), r close to a (nearly every feature duplicated), and cells
// holding features but zero data objects.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "datagen/workload.h"
#include "spq/engine.h"
#include "spq/reduce_core.h"
#include "text/keyword_set.h"

namespace spq::core {
namespace {

using mapreduce::ShuffleMode;

/// Uniform features everywhere; data objects either uniform too, or
/// confined to the left half of the space (`data_gap`), so roughly half
/// the grid's cells receive feature-only reduce groups — the 0-data
/// degenerate shape.
Dataset MakeJoinDataset(uint64_t seed, bool data_gap) {
  Rng rng(seed);
  Dataset dataset;
  dataset.bounds = geo::Rect{0.0, 0.0, 1.0, 1.0};
  for (uint32_t i = 0; i < 1'500; ++i) {
    DataObject p;
    p.id = i;
    p.pos = {data_gap ? rng.NextDouble() * 0.5 : rng.NextDouble(),
             rng.NextDouble()};
    dataset.data.push_back(p);
  }
  for (uint32_t i = 0; i < 1'500; ++i) {
    FeatureObject f;
    f.id = 100'000 + i;
    f.pos = {rng.NextDouble(), rng.NextDouble()};
    std::vector<text::TermId> terms;
    const uint32_t n = 2 + rng.NextUint32(6);
    for (uint32_t t = 0; t < n; ++t) terms.push_back(rng.NextUint32(50));
    f.keywords = text::KeywordSet(std::move(terms));
    dataset.features.push_back(f);
  }
  return dataset;
}

Query MakeJoinQuery(uint64_t seed, double radius) {
  Rng rng(seed);
  Query q;
  q.k = 5 + rng.NextUint32(10);
  q.radius = radius;
  q.keywords = text::KeywordSet(
      {rng.NextUint32(50), rng.NextUint32(50), rng.NextUint32(50)});
  return q;
}

void ExpectEquivalent(const SpqResult& linear, const SpqResult& indexed,
                      const std::string& label) {
  ASSERT_EQ(linear.entries.size(), indexed.entries.size()) << label;
  for (std::size_t i = 0; i < linear.entries.size(); ++i) {
    EXPECT_EQ(linear.entries[i].id, indexed.entries[i].id)
        << label << " @" << i;
    // Bit-identical, not approximately equal: the index may only change
    // which pairs get a distance test, never any score computation.
    EXPECT_EQ(linear.entries[i].score, indexed.entries[i].score)
        << label << " @" << i;
  }
  const SpqRunInfo& a = linear.info;
  const SpqRunInfo& b = indexed.info;
  EXPECT_EQ(a.features_kept, b.features_kept) << label;
  EXPECT_EQ(a.features_pruned, b.features_pruned) << label;
  EXPECT_EQ(a.feature_duplicates, b.feature_duplicates) << label;
  EXPECT_EQ(a.features_examined, b.features_examined) << label;
  EXPECT_EQ(a.early_terminations, b.early_terminations) << label;
  EXPECT_EQ(a.reduce_groups, b.reduce_groups) << label;
  EXPECT_EQ(a.job.map_output_records, b.job.map_output_records) << label;
  EXPECT_EQ(a.job.reduce_input_records, b.job.reduce_input_records) << label;
  // The one legitimate difference: the indexed join performs at most as
  // many distance evaluations as the full scan.
  EXPECT_LE(b.pairs_tested, a.pairs_tested) << label;
}

class JoinEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, ShuffleMode, bool>> {};

TEST_P(JoinEquivalenceTest, GridIndexMatchesLinearScan) {
  const auto [algo, shuffle_mode, spill] = GetParam();

  EngineOptions base;
  // Coarse grid: 4x4 cells over 3000 objects puts ~200 objects in every
  // reduce group — the workload whose |O_i|·|F_i| blowup the index
  // attacks, and big enough that probe/bucket edge cases get exercised.
  base.grid_size = 4;
  base.num_workers = 4;
  // >= FlatMergeStream::kLoserTreeMinFanIn map tasks, so the flat runs
  // also cover the loser-tree merge end to end.
  base.num_map_tasks = 9;
  base.num_reduce_tasks = 7;  // fewer reducers than cells
  base.shuffle_mode = shuffle_mode;
  std::string spill_dir;
  if (spill) {
    std::string unique =
        "spq_join_equivalence-" +
        std::string(
            ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "-" + std::to_string(static_cast<int>(::getpid()));
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
    spill_dir = (std::filesystem::temp_directory_path() / unique).string();
    base.spill_dir = spill_dir;
  }

  EngineOptions linear_options = base;
  linear_options.join_mode = JoinMode::kLinearScan;
  EngineOptions indexed_options = base;
  indexed_options.join_mode = JoinMode::kGridIndex;

  const double cell_edge = 1.0 / base.grid_size;
  for (uint64_t seed : {21ull, 22ull}) {
    for (const bool data_gap : {false, true}) {
      const Dataset dataset = MakeJoinDataset(seed, data_gap);
      SpqEngine linear_engine(dataset, linear_options);
      SpqEngine indexed_engine(dataset, indexed_options);
      // r = 0.1a (probe covers a small part of the cell, the index's win
      // case), r = a/2 (the paper's duplication-regime boundary) and
      // r = 0.95a (nearly every feature duplicated into neighbor cells).
      for (const double radius :
           {0.1 * cell_edge, 0.5 * cell_edge, 0.95 * cell_edge}) {
        const Query query = MakeJoinQuery(seed * 31 + radius * 100, radius);
        auto linear = linear_engine.Execute(query, algo);
        auto indexed = indexed_engine.Execute(query, algo);
        ASSERT_TRUE(linear.ok()) << linear.status().ToString();
        ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
        ExpectEquivalent(*linear, *indexed,
                         "seed=" + std::to_string(seed) +
                             " gap=" + std::to_string(data_gap) +
                             " r=" + std::to_string(radius));
      }
    }
  }
  if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, JoinEquivalenceTest,
    ::testing::Combine(::testing::Values(Algorithm::kPSPQ,
                                         Algorithm::kESPQLen,
                                         Algorithm::kESPQSco),
                       ::testing::Values(ShuffleMode::kCellBucketed,
                                         ShuffleMode::kLegacySort),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      name += std::get<1>(info.param) == ShuffleMode::kCellBucketed
                  ? "_bucketed"
                  : "_legacy";
      name += std::get<2>(info.param) ? "_spill" : "_mem";
      return name;
    });

TEST(JoinEquivalenceTest, BatchGridIndexMatchesLinearScan) {
  const Dataset dataset = MakeJoinDataset(91, /*data_gap=*/true);
  const double cell_edge = 1.0 / 4;
  std::vector<Query> queries;
  for (uint32_t i = 0; i < 4; ++i) {
    Query q = MakeJoinQuery(700 + i, (0.3 + 0.2 * i) * cell_edge);
    q.k = 3 + i;
    queries.push_back(q);
  }

  EngineOptions base;
  base.grid_size = 4;
  base.num_workers = 4;
  base.num_map_tasks = 9;
  base.num_reduce_tasks = 5;

  for (const ShuffleMode shuffle_mode :
       {ShuffleMode::kCellBucketed, ShuffleMode::kLegacySort}) {
    for (const bool spill : {false, true}) {
      EngineOptions linear_options = base;
      linear_options.shuffle_mode = shuffle_mode;
      linear_options.join_mode = JoinMode::kLinearScan;
      EngineOptions indexed_options = linear_options;
      indexed_options.join_mode = JoinMode::kGridIndex;
      std::string spill_dir;
      if (spill) {
        spill_dir = (std::filesystem::temp_directory_path() /
                     ("spq_join_equivalence_batch-" +
                      std::to_string(static_cast<int>(::getpid()))))
                        .string();
        linear_options.spill_dir = spill_dir;
        indexed_options.spill_dir = spill_dir;
      }
      SpqEngine linear_engine(dataset, linear_options);
      SpqEngine indexed_engine(dataset, indexed_options);
      for (Algorithm algo : {Algorithm::kPSPQ, Algorithm::kESPQLen,
                             Algorithm::kESPQSco}) {
        auto linear = linear_engine.ExecuteBatch(queries, algo);
        auto indexed = indexed_engine.ExecuteBatch(queries, algo);
        ASSERT_TRUE(linear.ok()) << linear.status().ToString();
        ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
        ASSERT_EQ(linear->per_query.size(), indexed->per_query.size());
        for (std::size_t q = 0; q < linear->per_query.size(); ++q) {
          const auto& le = linear->per_query[q];
          const auto& ie = indexed->per_query[q];
          ASSERT_EQ(le.size(), ie.size()) << "query " << q;
          for (std::size_t i = 0; i < le.size(); ++i) {
            EXPECT_EQ(le[i].id, ie[i].id) << "query " << q << " @" << i;
            EXPECT_EQ(le[i].score, ie[i].score)
                << "query " << q << " @" << i;
          }
        }
        EXPECT_EQ(linear->job.map_output_records,
                  indexed->job.map_output_records);
        EXPECT_EQ(linear->job.reduce_input_records,
                  indexed->job.reduce_input_records);
        EXPECT_LE(
            indexed->job.counters.Get(counter::kPairsTested),
            linear->job.counters.Get(counter::kPairsTested));
        EXPECT_EQ(
            indexed->job.counters.Get(counter::kFeaturesExamined),
            linear->job.counters.Get(counter::kFeaturesExamined));
        EXPECT_EQ(
            indexed->job.counters.Get(counter::kEarlyTerminations),
            linear->job.counters.Get(counter::kEarlyTerminations));
      }
      if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
    }
  }
}

// The indexed join must actually skip work on coarse cells, not merely
// tie the scan — otherwise the default would be pure overhead.
TEST(JoinEquivalenceTest, GridIndexTestsStrictlyFewerPairsOnCoarseGrid) {
  const Dataset dataset = MakeJoinDataset(5, /*data_gap=*/false);
  EngineOptions linear_options;
  linear_options.grid_size = 4;
  linear_options.num_workers = 4;
  linear_options.join_mode = JoinMode::kLinearScan;
  EngineOptions indexed_options = linear_options;
  indexed_options.join_mode = JoinMode::kGridIndex;
  SpqEngine linear_engine(dataset, linear_options);
  SpqEngine indexed_engine(dataset, indexed_options);
  // A realistic coarse-grid shape: query radius well below the (large)
  // cell edge, so each probe's r-disk covers a small fraction of the cell.
  const Query query = MakeJoinQuery(17, 0.1 * (1.0 / 4));
  auto linear = linear_engine.Execute(query, Algorithm::kPSPQ);
  auto indexed = indexed_engine.Execute(query, Algorithm::kPSPQ);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_LT(indexed->info.pairs_tested, linear->info.pairs_tested / 2)
      << "expected the r-disk probe to skip most of each coarse cell";
}

// ---------------------------------------------------------------------------
// CellGridIndex unit tests: the probe must be a superset of the exact
// r-disk under any bucket geometry, and SortedCandidates must come back
// ascending and duplicate-free (eSPQsco's report order depends on it).
// ---------------------------------------------------------------------------

TEST(CellGridIndexTest, CandidatesCoverDiskAndVisitOnce) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.NextUint32(300);
    std::vector<geo::Point> positions;
    positions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back({rng.NextDouble(), rng.NextDouble() * 0.3});
    }
    reduce_core::CellGridIndex index;
    index.Build(positions);
    for (int probe = 0; probe < 30; ++probe) {
      // Probe points wander outside the data bounding box, as duplicated
      // features do.
      const geo::Point p{rng.NextDouble(-0.3, 1.3), rng.NextDouble(-0.3, 1.3)};
      const double r = rng.NextDouble() * 0.4;
      const double r2 = r * r;
      std::vector<uint32_t> sorted;
      index.SortedCandidates(p, r, &sorted);
      for (std::size_t i = 1; i < sorted.size(); ++i) {
        ASSERT_LT(sorted[i - 1], sorted[i]) << "not ascending/unique";
      }
      std::vector<bool> is_candidate(n, false);
      for (uint32_t i : sorted) {
        ASSERT_LT(i, n);
        is_candidate[i] = true;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (geo::Distance2(positions[i], p) <= r2) {
          EXPECT_TRUE(is_candidate[i])
              << "in-disk point " << i << " missing from probe";
        }
      }
    }
  }
}

TEST(CellGridIndexTest, DegenerateGeometries) {
  reduce_core::CellGridIndex index;

  // Empty build: probes yield nothing.
  index.Build({});
  std::vector<uint32_t> out{7};
  index.SortedCandidates({0.5, 0.5}, 1.0, &out);
  EXPECT_TRUE(out.empty());

  // All positions identical (zero-area bounding box).
  std::vector<geo::Point> same(5, geo::Point{0.25, 0.75});
  index.Build(same);
  index.SortedCandidates({0.25, 0.75}, 0.0, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  index.SortedCandidates({0.9, 0.9}, 0.01, &out);
  // Bucket-granular: one bucket, so everything is a candidate even though
  // nothing is in range — the exact distance test belongs to the caller.
  EXPECT_EQ(out.size(), 5u);

  // r = 0: the probe still finds the exact point.
  std::vector<geo::Point> line;
  for (int i = 0; i < 64; ++i) {
    line.push_back({static_cast<double>(i) / 64.0, 0.5});
  }
  index.Build(line);
  index.SortedCandidates({10.0 / 64.0, 0.5}, 0.0, &out);
  bool found = false;
  for (uint32_t i : out) found = found || i == 10;
  EXPECT_TRUE(found);
}

// Incremental append (the replacement for the stale-rebuild path):
// interleaved Sync/probe rounds must behave exactly like an index built
// fresh over the full position set — probes cover the r-disk, visit each
// index once, and SortedCandidates stays ascending — across pending-list
// sizes below and far above the fold threshold, with appended points both
// inside and outside the originally built bounding box.
TEST(CellGridIndexTest, InterleavedAppendAndProbeMatchesFreshBuild) {
  Rng rng(2017);
  for (int round = 0; round < 15; ++round) {
    std::vector<geo::Point> positions;
    const std::size_t initial = 1 + rng.NextUint32(120);
    for (std::size_t i = 0; i < initial; ++i) {
      positions.push_back({rng.NextDouble(), rng.NextDouble()});
    }
    reduce_core::CellGridIndex incremental;
    incremental.Sync(positions);  // initial build

    for (int step = 0; step < 8; ++step) {
      // Append a batch: sometimes tiny (stays pending), sometimes large
      // (forces a fold), sometimes outside the built bounding box (lands
      // clamped in a boundary bucket).
      const std::size_t batch = 1 + rng.NextUint32(step % 3 == 2 ? 60 : 6);
      for (std::size_t i = 0; i < batch; ++i) {
        const double spread = step % 2 == 0 ? 1.0 : 1.6;
        positions.push_back({rng.NextDouble() * spread - 0.3 * (spread - 1.0),
                             rng.NextDouble() * spread});
      }
      incremental.Sync(positions);
      ASSERT_EQ(incremental.built_size(), positions.size());

      reduce_core::CellGridIndex fresh;
      fresh.Build(positions);

      for (int probe = 0; probe < 10; ++probe) {
        const geo::Point p{rng.NextDouble(-0.3, 1.3),
                           rng.NextDouble(-0.3, 1.3)};
        const double r = rng.NextDouble() * 0.3;
        const double r2 = r * r;
        std::vector<uint32_t> got;
        incremental.SortedCandidates(p, r, &got);
        for (std::size_t i = 1; i < got.size(); ++i) {
          ASSERT_LT(got[i - 1], got[i]) << "not ascending/unique";
        }
        std::vector<bool> is_candidate(positions.size(), false);
        for (uint32_t i : got) {
          ASSERT_LT(i, positions.size());
          is_candidate[i] = true;
        }
        // Correctness: the probe is a superset of the exact r-disk.
        for (std::size_t i = 0; i < positions.size(); ++i) {
          if (geo::Distance2(positions[i], p) <= r2) {
            EXPECT_TRUE(is_candidate[i])
                << "in-disk point " << i << " missing after append";
          }
        }
        // ForEachCandidate agrees with SortedCandidates (same set, each
        // visited exactly once).
        std::vector<uint32_t> walked;
        incremental.ForEachCandidate(p, r,
                                     [&](uint32_t i) { walked.push_back(i); });
        std::sort(walked.begin(), walked.end());
        EXPECT_EQ(walked, got);
      }
    }

    // A Sync over a shrunk vector falls back to a rebuild.
    positions.resize(positions.size() / 2);
    incremental.Sync(positions);
    EXPECT_EQ(incremental.built_size(), positions.size());
    std::vector<uint32_t> out;
    incremental.SortedCandidates({0.5, 0.5}, 2.0, &out);
    EXPECT_EQ(out.size(), positions.size());
  }
}

// Appends ARBITRARILY far outside the built bounding box: bucket
// coordinates for such points overflow any naive double→int cast, so this
// pins the clamp-before-cast contract (finite huge magnitudes land in a
// boundary bucket, never UB) — the latent Append bug this suite fixed.
// Probes at matching extreme coordinates must still cover the r-disk.
TEST(CellGridIndexTest, ExtremeOutOfBboxAppendsStayClamped) {
  Rng rng(4099);
  std::vector<geo::Point> positions;
  for (int i = 0; i < 80; ++i) {
    positions.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  reduce_core::CellGridIndex incremental;
  incremental.Sync(positions);

  const double extremes[] = {1e12, -1e9, 3.5e15, -2.75e13};
  for (double mag : extremes) {
    positions.push_back({mag, mag * 0.5});
    positions.push_back({-mag * 0.25, mag});
  }
  incremental.Sync(positions);
  ASSERT_EQ(incremental.built_size(), positions.size());

  std::vector<geo::Point> probes{{0.5, 0.5}, {1e12, 0.5e12}, {-1e9, 0.0},
                                 {-2.5e14, -2.75e13},         {0.0, 3.5e15}};
  for (const geo::Point& p : probes) {
    for (double r : {0.0, 0.3, 1e10, 5e15}) {
      const double r2 = r * r;
      std::vector<uint32_t> got;
      incremental.SortedCandidates(p, r, &got);
      for (std::size_t i = 1; i < got.size(); ++i) {
        ASSERT_LT(got[i - 1], got[i]) << "not ascending/unique";
      }
      std::vector<bool> is_candidate(positions.size(), false);
      for (uint32_t i : got) {
        ASSERT_LT(i, positions.size());
        is_candidate[i] = true;
      }
      for (std::size_t i = 0; i < positions.size(); ++i) {
        if (geo::Distance2(positions[i], p) <= r2) {
          EXPECT_TRUE(is_candidate[i])
              << "in-disk point " << i << " missing at extreme coordinates";
        }
      }
    }
  }

  // A fresh Build over the same extreme set must agree with itself under
  // a full-cover probe: every point, exactly once.
  reduce_core::CellGridIndex fresh;
  fresh.Build(positions);
  std::vector<uint32_t> all;
  fresh.SortedCandidates({0.0, 0.0}, 1e16, &all);
  EXPECT_EQ(all.size(), positions.size());
}

// The dead-masked Build overload is the geometry backbone of mutation
// invariant M2 (cell_store.h): an index built over physical rows with the
// dead ones masked OUT must present EXACTLY the bucket geometry of a
// fresh index built over the surviving rows alone — same bbox, same side,
// same bucket assignment — with candidates reported as physical indices.
// Because the live→physical mapping is strictly increasing, the masked
// index's sorted candidates must equal the survivor-built index's
// candidates mapped through it, element for element. Dead rows must never
// surface, even when they would dominate the physical bounding box.
TEST(CellGridIndexTest, DeadMaskedBuildMatchesFreshBuildOverSurvivors) {
  Rng rng(6151);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 1 + rng.NextUint32(250);
    std::vector<geo::Point> positions;
    std::vector<uint8_t> dead;
    for (std::size_t i = 0; i < n; ++i) {
      // A fifth of the rows — including dead ones — sit far outside the
      // unit square, so a geometry leak (dead rows stretching the bbox)
      // would shift every bucket boundary and fail the exact comparison.
      const bool wild = rng.NextUint32(5) == 0;
      const double spread = wild ? 40.0 : 1.0;
      positions.push_back({rng.NextDouble() * spread - (wild ? 20.0 : 0.0),
                           rng.NextDouble() * spread});
      dead.push_back(rng.NextUint32(3) == 0 ? 1 : 0);
    }

    std::vector<geo::Point> survivors;
    std::vector<uint32_t> live_phys;  // survivor slot -> physical row
    for (std::size_t i = 0; i < n; ++i) {
      if (!dead[i]) {
        survivors.push_back(positions[i]);
        live_phys.push_back(static_cast<uint32_t>(i));
      }
    }

    reduce_core::CellGridIndex masked;
    masked.Build(positions, &dead);
    reduce_core::CellGridIndex reference;
    reference.Build(survivors);

    for (int probe = 0; probe < 25; ++probe) {
      const geo::Point p{rng.NextDouble(-0.5, 1.5), rng.NextDouble(-0.5, 1.5)};
      const double r = rng.NextDouble() * 0.5;
      std::vector<uint32_t> got;
      masked.SortedCandidates(p, r, &got);
      std::vector<uint32_t> want;
      reference.SortedCandidates(p, r, &want);
      for (uint32_t& slot : want) slot = live_phys[slot];
      EXPECT_EQ(got, want) << "round " << round << " probe " << probe
                           << ": masked geometry drifted from survivors";
      for (uint32_t i : got) {
        ASSERT_LT(i, n);
        EXPECT_FALSE(dead[i]) << "dead row " << i << " surfaced";
      }
    }

    // Everything-dead: the masked index must stay probe-safe and empty.
    std::vector<uint8_t> all_dead(n, 1);
    reduce_core::CellGridIndex empty;
    empty.Build(positions, &all_dead);
    std::vector<uint32_t> none{42};
    empty.SortedCandidates({0.5, 0.5}, 100.0, &none);
    EXPECT_TRUE(none.empty());
  }
}

}  // namespace
}  // namespace spq::core
