#include "spq/sequential.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/workload.h"

namespace spq::core {
namespace {

Dataset SmallDataset() {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  dataset.data = {{1, {0.1, 0.1}}, {2, {0.5, 0.5}}, {3, {0.9, 0.9}}};
  dataset.features = {
      {10, {0.12, 0.1}, text::KeywordSet({0})},        // near p1, w=1 for q={0}
      {11, {0.5, 0.52}, text::KeywordSet({0, 1})},     // near p2, w=0.5
      {12, {0.9, 0.88}, text::KeywordSet({5})},        // near p3, w=0
  };
  return dataset;
}

Query MakeQuery(uint32_t k, double r) {
  Query q;
  q.k = k;
  q.radius = r;
  q.keywords = text::KeywordSet({0});
  return q;
}

TEST(BruteForceTest, ScoresAndRanksCorrectly) {
  auto results = BruteForceSpq(SmallDataset(), MakeQuery(3, 0.05));
  ASSERT_EQ(results.size(), 2u);  // p3 has no relevant feature in range
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);
  EXPECT_EQ(results[1].id, 2u);
  EXPECT_DOUBLE_EQ(results[1].score, 0.5);
}

TEST(BruteForceTest, RadiusIsInclusive) {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  dataset.data = {{1, {0.0, 0.0}}};
  dataset.features = {{2, {0.3, 0.4}, text::KeywordSet({0})}};  // dist 0.5
  auto at = BruteForceSpq(dataset, MakeQuery(1, 0.5));
  ASSERT_EQ(at.size(), 1u);
  auto below = BruteForceSpq(dataset, MakeQuery(1, 0.499));
  EXPECT_TRUE(below.empty());
}

TEST(BruteForceTest, KTruncates) {
  auto results = BruteForceSpq(SmallDataset(), MakeQuery(1, 0.05));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
}

TEST(BruteForceTest, EmptyQueryKeywordsGiveEmptyResult) {
  Query q;
  q.k = 5;
  q.radius = 1.0;
  auto results = BruteForceSpq(SmallDataset(), q);
  EXPECT_TRUE(results.empty());
}

TEST(BruteForceTest, ZeroRadiusOnlyCoLocated) {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  dataset.data = {{1, {0.5, 0.5}}, {2, {0.6, 0.6}}};
  dataset.features = {{3, {0.5, 0.5}, text::KeywordSet({0})}};
  auto results = BruteForceSpq(dataset, MakeQuery(2, 0.0));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
}

TEST(BruteForceScoreTest, MatchesPerObjectMax) {
  Dataset dataset = SmallDataset();
  Query q = MakeQuery(3, 0.05);
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset.data[0], dataset, q), 1.0);
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset.data[1], dataset, q), 0.5);
  EXPECT_DOUBLE_EQ(BruteForceScore(dataset.data[2], dataset, q), 0.0);
}

TEST(SequentialGridTest, AgreesWithBruteForceOnRandomData) {
  auto dataset_or = datagen::MakeUniformDataset(
      {.num_objects = 2000, .seed = 7, .vocab_size = 50,
       .min_keywords = 2, .max_keywords = 8});
  ASSERT_TRUE(dataset_or.ok());
  const Dataset& dataset = *dataset_or;
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    Query q;
    q.k = 1 + rng.NextUint32(10);
    q.radius = 0.01 + rng.NextDouble() * 0.1;
    q.keywords = text::KeywordSet(
        {rng.NextUint32(50), rng.NextUint32(50), rng.NextUint32(50)});
    auto brute = BruteForceSpq(dataset, q);
    for (uint32_t grid : {1u, 5u, 20u}) {
      auto seq = SequentialGridSpq(dataset, q, grid);
      ASSERT_TRUE(seq.ok());
      ASSERT_EQ(seq->size(), brute.size()) << "trial " << trial
                                           << " grid " << grid;
      for (std::size_t i = 0; i < brute.size(); ++i) {
        EXPECT_EQ((*seq)[i].id, brute[i].id) << "trial " << trial;
        EXPECT_DOUBLE_EQ((*seq)[i].score, brute[i].score);
      }
    }
  }
}

TEST(SequentialGridTest, RejectsZeroGrid) {
  EXPECT_FALSE(SequentialGridSpq(SmallDataset(), MakeQuery(1, 0.1), 0).ok());
}

}  // namespace
}  // namespace spq::core
