// Tests for the admission/batching front door (spq/serving.h), also run
// under the "concurrency" ctest label and the tsan preset:
//   - coalesced serving returns exactly what direct engine.Query() returns
//     (per-query entries bit-identical), with the coalescing visible in
//     ServingStats;
//   - backpressure: a zero-capacity queue rejects every submission with
//     Unavailable, deterministically, and counts it;
//   - oversized-radius queries are routed individually through the loud
//     cold fallback instead of dragging their batchmates cold;
//   - Shutdown() fulfills every admitted future.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"
#include "spq/serving.h"

namespace spq::core {
namespace {

constexpr uint32_t kGridSize = 7;
constexpr double kStoreRadius = 0.9 / kGridSize;

Dataset MakeServingDataset() {
  datagen::UniformSpec spec;
  spec.num_objects = 1'000;
  spec.seed = 41;
  spec.vocab_size = 100;
  spec.min_keywords = 2;
  spec.max_keywords = 10;
  auto dataset = datagen::MakeUniformDataset(spec);
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

EngineOptions MakeServingOptions() {
  EngineOptions options;
  options.grid_size = kGridSize;
  options.num_workers = 2;
  options.num_map_tasks = 3;
  options.num_reduce_tasks = 5;
  options.serving.max_batch = 8;
  options.serving.max_wait_ms = 5.0;
  options.serving.queue_capacity = 64;
  options.serving.num_executors = 1;
  return options;
}

std::vector<Query> MakeServingQueries(std::size_t count) {
  std::vector<Query> queries;
  for (std::size_t i = 0; i < count; ++i) {
    datagen::WorkloadSpec spec;
    spec.num_keywords = 2 + (i % 3);
    spec.radius = kStoreRadius * (0.4 + 0.08 * static_cast<double>(i % 6));
    spec.k = 5;
    spec.vocab_size = 100;
    spec.seed = 500 + i;
    queries.push_back(datagen::MakeQuery(spec, 0));
  }
  return queries;
}

void ExpectSameEntries(const SpqResult& expected, const SpqResult& actual,
                       const std::string& label) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << label;
  for (std::size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].id, actual.entries[i].id)
        << label << " @" << i;
    EXPECT_EQ(expected.entries[i].score, actual.entries[i].score)
        << label << " @" << i;
  }
}

TEST(FrontDoorTest, CoalescedResultsMatchDirectQueries) {
  SpqEngine engine(MakeServingDataset(), MakeServingOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  const std::vector<Query> queries = MakeServingQueries(12);
  std::vector<SpqResult> direct;
  for (const Query& query : queries) {
    auto result = engine.Query(query, Algorithm::kPSPQ);
    ASSERT_TRUE(result.ok());
    direct.push_back(*std::move(result));
  }

  SpqFrontDoor door(engine);
  // Submit the whole burst before any future is waited on: with one
  // executor and a 5 ms budget the burst coalesces into shared batches.
  std::vector<std::future<StatusOr<SpqResult>>> futures;
  futures.reserve(queries.size());
  for (const Query& query : queries) {
    futures.push_back(door.Submit(query, Algorithm::kPSPQ));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    StatusOr<SpqResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->info.warm_path) << "query " << i;
    ExpectSameEntries(direct[i], *result, "query " + std::to_string(i));
  }

  const ServingStats stats = door.stats();
  EXPECT_EQ(stats.submitted, queries.size());
  EXPECT_EQ(stats.admitted, queries.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  // A 12-query burst against a 1-executor door must have shared at least
  // one job (the first query may run alone while the rest queue).
  EXPECT_GE(stats.coalesced, 2u);
  uint64_t histogram_total = 0;
  for (std::size_t s = 1; s < stats.batch_size_hist.size(); ++s) {
    histogram_total += s * stats.batch_size_hist[s];
  }
  EXPECT_EQ(histogram_total, queries.size());  // every query lands in a batch
}

TEST(FrontDoorTest, ZeroCapacityQueueRejectsDeterministically) {
  EngineOptions options = MakeServingOptions();
  options.serving.queue_capacity = 0;
  SpqEngine engine(MakeServingDataset(), options);
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  SpqFrontDoor door(engine);
  const std::vector<Query> queries = MakeServingQueries(5);
  for (const Query& query : queries) {
    StatusOr<SpqResult> result = door.Submit(query, Algorithm::kPSPQ).get();
    EXPECT_TRUE(result.status().IsUnavailable())
        << result.status().ToString();
  }
  const ServingStats stats = door.stats();
  EXPECT_EQ(stats.submitted, queries.size());
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.rejected, queries.size());
  EXPECT_EQ(stats.batches, 0u);
}

TEST(FrontDoorTest, OversizedRadiusRoutedIndividually) {
  SpqEngine engine(MakeServingDataset(), MakeServingOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  std::vector<Query> queries = MakeServingQueries(4);
  queries[1].radius = 2.0 * kStoreRadius;  // out of the store's contract
  std::vector<SpqResult> direct;
  for (const Query& query : queries) {
    auto result = engine.Query(query, Algorithm::kESPQLen);
    ASSERT_TRUE(result.ok());
    direct.push_back(*std::move(result));
  }
  ASSERT_TRUE(direct[1].info.cold_fallback);

  SpqFrontDoor door(engine);
  std::vector<std::future<StatusOr<SpqResult>>> futures;
  for (const Query& query : queries) {
    futures.push_back(door.Submit(query, Algorithm::kESPQLen));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    StatusOr<SpqResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The oversized query stays loud; its batchmates stay warm.
    EXPECT_EQ(result->info.cold_fallback, i == 1) << "query " << i;
    EXPECT_EQ(result->info.warm_path, i != 1) << "query " << i;
    ExpectSameEntries(direct[i], *result, "query " + std::to_string(i));
  }
  EXPECT_EQ(door.stats().cold_routed, 1u);
}

TEST(FrontDoorTest, ShutdownFulfillsEveryAdmittedFuture) {
  SpqEngine engine(MakeServingDataset(), MakeServingOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  auto door = std::make_unique<SpqFrontDoor>(engine);
  const std::vector<Query> queries = MakeServingQueries(6);
  std::vector<std::future<StatusOr<SpqResult>>> futures;
  for (const Query& query : queries) {
    futures.push_back(door->Submit(query, Algorithm::kPSPQ));
  }
  door->Shutdown();  // admitted queries are served, not dropped
  for (std::size_t i = 0; i < futures.size(); ++i) {
    StatusOr<SpqResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->entries.empty() && queries[i].k > 0 &&
                 result->info.reduce_groups == 0)
        << "query " << i << " looks unserved";
  }
  // Submissions after shutdown are rejected, not queued forever.
  StatusOr<SpqResult> late = door->Submit(queries[0], Algorithm::kPSPQ).get();
  EXPECT_TRUE(late.status().IsUnavailable());
}

// The front door under true multi-threaded submission: callers from many
// threads get exactly their own query's results back (no cross-wiring of
// promises under contention).
TEST(FrontDoorTest, ConcurrentSubmittersGetTheirOwnResults) {
  SpqEngine engine(MakeServingDataset(), MakeServingOptions());
  ASSERT_TRUE(engine.BuildStore(kStoreRadius).ok());

  const std::vector<Query> queries = MakeServingQueries(6);
  std::vector<SpqResult> direct;
  for (const Query& query : queries) {
    auto result = engine.Query(query, Algorithm::kPSPQ);
    ASSERT_TRUE(result.ok());
    direct.push_back(*std::move(result));
  }

  SpqFrontDoor door(engine);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const std::size_t q = (i + static_cast<std::size_t>(t)) %
                              queries.size();
        StatusOr<SpqResult> result =
            door.Query(queries[q], Algorithm::kPSPQ);
        if (!result.ok()) {
          ADD_FAILURE() << "thread " << t << " query " << q << ": "
                        << result.status().ToString();
          return;
        }
        ExpectSameEntries(direct[q], *result,
                          "thread " + std::to_string(t) + " query " +
                              std::to_string(q));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const ServingStats stats = door.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kThreads) * queries.size());
  EXPECT_EQ(stats.rejected, 0u);
}

}  // namespace
}  // namespace spq::core
