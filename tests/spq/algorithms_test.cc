// Integration/property tests: the three parallel algorithms must agree
// with the centralized brute-force oracle on randomized datasets across
// grid sizes, radii, k and keyword counts. With deterministic tie-breaking
// the *scores* are always identical; ids can differ only among equal-score
// ties, so we check (a) the score multiset matches and (b) every reported
// (id, score) pair is the object's true τ(p).

#include "spq/algorithms.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "datagen/generator.h"
#include "spq/engine.h"
#include "spq/sequential.h"

namespace spq::core {
namespace {

Dataset RandomDataset(uint64_t seed, uint64_t n, uint32_t vocab) {
  auto dataset = datagen::MakeUniformDataset(
      {.num_objects = n, .seed = seed, .vocab_size = vocab,
       .min_keywords = 1, .max_keywords = 12});
  EXPECT_TRUE(dataset.ok());
  return *std::move(dataset);
}

Query RandomQuery(Rng& rng, uint32_t vocab, uint32_t max_k,
                  double max_radius) {
  Query q;
  q.k = 1 + rng.NextUint32(max_k);
  q.radius = 0.005 + rng.NextDouble() * max_radius;
  std::vector<text::TermId> ids;
  const uint32_t nkw = 1 + rng.NextUint32(4);
  for (uint32_t i = 0; i < nkw; ++i) ids.push_back(rng.NextUint32(vocab));
  q.keywords = text::KeywordSet(std::move(ids));
  return q;
}

void ExpectMatchesOracle(const std::vector<ResultEntry>& got,
                         const std::vector<ResultEntry>& oracle,
                         const Dataset& dataset, const Query& query,
                         const std::string& label) {
  ASSERT_EQ(got.size(), oracle.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Same score at every rank.
    ASSERT_DOUBLE_EQ(got[i].score, oracle[i].score)
        << label << " rank " << i;
  }
  // Every reported pair is truthful: score == τ(id).
  for (const auto& e : got) {
    const DataObject* obj = nullptr;
    for (const auto& p : dataset.data) {
      if (p.id == e.id) {
        obj = &p;
        break;
      }
    }
    ASSERT_NE(obj, nullptr) << label << " unknown id " << e.id;
    EXPECT_DOUBLE_EQ(e.score, BruteForceScore(*obj, dataset, query))
        << label << " id " << e.id;
  }
}

// ---- parameterized agreement sweep: algorithm x grid size ----

class AlgorithmAgreementTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, uint32_t>> {};

TEST_P(AlgorithmAgreementTest, MatchesBruteForceOnRandomQueries) {
  const auto [algo, grid_size] = GetParam();
  const uint32_t vocab = 60;
  Dataset dataset = RandomDataset(/*seed=*/101, /*n=*/3000, vocab);
  EngineOptions options;
  options.grid_size = grid_size;
  options.num_workers = 4;
  SpqEngine engine(dataset, options);
  Rng rng(999);
  for (int trial = 0; trial < 15; ++trial) {
    Query q = RandomQuery(rng, vocab, /*max_k=*/15, /*max_radius=*/0.08);
    auto oracle = BruteForceSpq(dataset, q);
    auto result = engine.Execute(q, algo);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectMatchesOracle(result->entries, oracle, dataset, q,
                        AlgorithmName(algo) + "/grid" +
                            std::to_string(grid_size) + "/trial" +
                            std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByGrid, AlgorithmAgreementTest,
    ::testing::Combine(::testing::Values(Algorithm::kPSPQ,
                                         Algorithm::kESPQLen,
                                         Algorithm::kESPQSco),
                       ::testing::Values(1u, 3u, 8u, 16u)),
    [](const auto& info) {
      return AlgorithmName(std::get<0>(info.param)) + "_grid" +
             std::to_string(std::get<1>(info.param));
    });

// ---- radius stress: up to and beyond a full cell edge ----

class RadiusSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(RadiusSweepTest, AllAlgorithmsCorrectEvenWithHeavyDuplication) {
  const double cell_fraction = GetParam();
  const uint32_t grid_size = 8;
  const uint32_t vocab = 40;
  Dataset dataset = RandomDataset(/*seed=*/77, /*n=*/1500, vocab);
  EngineOptions options;
  options.grid_size = grid_size;
  SpqEngine engine(dataset, options);
  Query q;
  q.k = 10;
  q.radius = cell_fraction * (1.0 / grid_size);
  q.keywords = text::KeywordSet({1, 2, 3});
  auto oracle = BruteForceSpq(dataset, q);
  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    auto result = engine.Execute(q, algo);
    ASSERT_TRUE(result.ok());
    ExpectMatchesOracle(result->entries, oracle, dataset, q,
                        AlgorithmName(algo) + "/rfrac" +
                            std::to_string(cell_fraction));
  }
}

INSTANTIATE_TEST_SUITE_P(RadiusFractions, RadiusSweepTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 1.0, 1.5));

// ---- k stress ----

class KSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KSweepTest, TopKSizesHonored) {
  const uint32_t k = GetParam();
  const uint32_t vocab = 30;
  Dataset dataset = RandomDataset(/*seed=*/31, /*n=*/2000, vocab);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 6});
  Query q;
  q.k = k;
  q.radius = 0.05;
  q.keywords = text::KeywordSet({0, 5});
  auto oracle = BruteForceSpq(dataset, q);
  for (Algorithm algo :
       {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
    auto result = engine.Execute(q, algo);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->entries.size(), k);
    ExpectMatchesOracle(result->entries, oracle, dataset, q,
                        AlgorithmName(algo) + "/k" + std::to_string(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KSweepTest,
                         ::testing::Values(1u, 2u, 5u, 10u, 50u, 100u));

// ---- early termination behaviour ----

TEST(EarlyTerminationTest, EspqScoExaminesFewerFeaturesThanPspq) {
  const uint32_t vocab = 50;
  Dataset dataset = RandomDataset(/*seed=*/55, /*n=*/20000, vocab);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 5});
  Query q;
  q.k = 5;
  q.radius = 0.04;
  q.keywords = text::KeywordSet({2, 7, 11});

  auto pspq = engine.Execute(q, Algorithm::kPSPQ);
  auto sco = engine.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(pspq.ok());
  ASSERT_TRUE(sco.ok());
  // pSPQ examines every shuffled feature copy.
  EXPECT_EQ(pspq->info.features_examined,
            pspq->info.features_kept + pspq->info.feature_duplicates);
  // eSPQsco reads only a handful per cell.
  EXPECT_LT(sco->info.features_examined, pspq->info.features_examined / 5);
  EXPECT_GT(sco->info.early_terminations, 0u);
}

TEST(EarlyTerminationTest, EspqLenExaminesNoMoreThanPspq) {
  const uint32_t vocab = 50;
  Dataset dataset = RandomDataset(/*seed=*/56, /*n=*/10000, vocab);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 5});
  Query q;
  q.k = 5;
  q.radius = 0.04;
  q.keywords = text::KeywordSet({1});
  auto pspq = engine.Execute(q, Algorithm::kPSPQ);
  auto len = engine.Execute(q, Algorithm::kESPQLen);
  ASSERT_TRUE(pspq.ok());
  ASSERT_TRUE(len.ok());
  EXPECT_LE(len->info.features_examined, pspq->info.features_examined);
}

TEST(EarlyTerminationTest, ShuffleVolumeIdenticalAcrossAlgorithms) {
  // All three ship the same objects (same pruning + duplication); only the
  // composite key differs.
  const uint32_t vocab = 50;
  Dataset dataset = RandomDataset(/*seed=*/57, /*n=*/5000, vocab);
  SpqEngine engine(dataset, EngineOptions{.grid_size = 6});
  Query q;
  q.k = 10;
  q.radius = 0.03;
  q.keywords = text::KeywordSet({3, 4});
  auto a = engine.Execute(q, Algorithm::kPSPQ);
  auto b = engine.Execute(q, Algorithm::kESPQLen);
  auto c = engine.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->info.features_kept, b->info.features_kept);
  EXPECT_EQ(b->info.features_kept, c->info.features_kept);
  EXPECT_EQ(a->info.feature_duplicates, b->info.feature_duplicates);
  EXPECT_EQ(b->info.feature_duplicates, c->info.feature_duplicates);
  EXPECT_EQ(a->info.job.map_output_records, b->info.job.map_output_records);
  EXPECT_EQ(b->info.job.map_output_records, c->info.job.map_output_records);
}

// ---- prefilter ablation ----

TEST(PrefilterAblationTest, DisabledPrefilterStillCorrect) {
  const uint32_t vocab = 40;
  Dataset dataset = RandomDataset(/*seed=*/61, /*n=*/3000, vocab);
  EngineOptions no_filter;
  no_filter.grid_size = 6;
  no_filter.keyword_prefilter = false;
  SpqEngine engine(dataset, no_filter);
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Query q = RandomQuery(rng, vocab, 10, 0.06);
    auto oracle = BruteForceSpq(dataset, q);
    for (Algorithm algo :
         {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
      auto result = engine.Execute(q, algo);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->info.features_pruned, 0u);
      // Every feature is shuffled now.
      EXPECT_EQ(result->info.features_kept, dataset.features.size());
      ExpectMatchesOracle(result->entries, oracle, dataset, q,
                          AlgorithmName(algo) + "/nofilter" +
                              std::to_string(trial));
    }
  }
}

TEST(PrefilterAblationTest, PrefilterShrinksShuffle) {
  const uint32_t vocab = 50;
  Dataset dataset = RandomDataset(/*seed=*/62, /*n=*/4000, vocab);
  Query q;
  q.k = 5;
  q.radius = 0.03;
  q.keywords = text::KeywordSet({7});
  EngineOptions with;
  with.grid_size = 6;
  EngineOptions without = with;
  without.keyword_prefilter = false;
  SpqEngine filtered(dataset, with);
  SpqEngine unfiltered(dataset, without);
  auto a = filtered.Execute(q, Algorithm::kESPQSco);
  auto b = unfiltered.Execute(q, Algorithm::kESPQSco);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->info.job.shuffle_bytes, b->info.job.shuffle_bytes / 2);
  // Identical answers.
  ASSERT_EQ(a->entries.size(), b->entries.size());
  for (std::size_t i = 0; i < a->entries.size(); ++i) {
    EXPECT_EQ(a->entries[i].id, b->entries[i].id);
    EXPECT_DOUBLE_EQ(a->entries[i].score, b->entries[i].score);
  }
}

// ---- clustered data correctness ----

TEST(ClusteredDataTest, AlgorithmsAgreeOnSkewedData) {
  auto dataset_or = datagen::MakeClusteredDataset(
      {.num_objects = 4000, .seed = 9, .vocab_size = 40,
       .min_keywords = 1, .max_keywords = 10, .num_clusters = 5,
       .cluster_sigma = 0.03});
  ASSERT_TRUE(dataset_or.ok());
  const Dataset& dataset = *dataset_or;
  SpqEngine engine(dataset, EngineOptions{.grid_size = 10});
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    Query q = RandomQuery(rng, 40, 10, 0.05);
    auto oracle = BruteForceSpq(dataset, q);
    for (Algorithm algo :
         {Algorithm::kPSPQ, Algorithm::kESPQLen, Algorithm::kESPQSco}) {
      auto result = engine.Execute(q, algo);
      ASSERT_TRUE(result.ok());
      ExpectMatchesOracle(result->entries, oracle, dataset, q,
                          AlgorithmName(algo) + "/clustered" +
                              std::to_string(trial));
    }
  }
}

// ---- misc unit checks ----

TEST(AlgorithmNameTest, PaperNames) {
  EXPECT_EQ(AlgorithmName(Algorithm::kPSPQ), "pSPQ");
  EXPECT_EQ(AlgorithmName(Algorithm::kESPQLen), "eSPQlen");
  EXPECT_EQ(AlgorithmName(Algorithm::kESPQSco), "eSPQsco");
}

TEST(FlattenDatasetTest, TagsAndCountsPreserved) {
  Dataset dataset;
  dataset.bounds = {0, 0, 1, 1};
  dataset.data = {{1, {0.2, 0.2}}, {2, {0.4, 0.4}}};
  dataset.features = {{3, {0.6, 0.6}, text::KeywordSet({1, 2})}};
  auto flat = FlattenDataset(dataset);
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_TRUE(flat[0].is_data());
  EXPECT_TRUE(flat[1].is_data());
  EXPECT_TRUE(flat[2].is_feature());
  EXPECT_EQ(flat[2].keywords, (std::vector<text::TermId>{1, 2}));
}

}  // namespace
}  // namespace spq::core
