#include "spq/shuffle_types.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace spq::core {
namespace {

TEST(CellKeySortTest, CellIsThePrimaryComponent) {
  EXPECT_TRUE(CellKeySortLess({1, 9.0}, {2, 0.0}));
  EXPECT_FALSE(CellKeySortLess({2, 0.0}, {1, 9.0}));
}

TEST(CellKeySortTest, OrderBreaksTiesWithinCell) {
  EXPECT_TRUE(CellKeySortLess({5, 0.0}, {5, 1.0}));
  EXPECT_FALSE(CellKeySortLess({5, 1.0}, {5, 0.0}));
  EXPECT_FALSE(CellKeySortLess({5, 1.0}, {5, 1.0}));  // irreflexive
}

TEST(CellKeySortTest, GroupEqualIgnoresOrder) {
  EXPECT_TRUE(CellKeyGroupEqual({3, 0.1}, {3, 0.9}));
  EXPECT_FALSE(CellKeyGroupEqual({3, 0.1}, {4, 0.1}));
}

TEST(CellKeySortTest, PspqTagOrderPutsDataFirst) {
  // pSPQ: data objects carry 0, features 1.
  std::vector<CellKey> keys{{7, 1.0}, {7, 0.0}, {7, 1.0}, {7, 0.0}};
  std::sort(keys.begin(), keys.end(), CellKeySortLess);
  EXPECT_DOUBLE_EQ(keys[0].order, 0.0);
  EXPECT_DOUBLE_EQ(keys[1].order, 0.0);
  EXPECT_DOUBLE_EQ(keys[2].order, 1.0);
}

TEST(CellKeySortTest, EspqLenOrderIsIncreasingKeywordLength) {
  // eSPQlen: data 0, features |f.W| >= 1; shorter feature lists first.
  std::vector<CellKey> keys{{7, 12.0}, {7, 0.0}, {7, 3.0}, {7, 1.0}};
  std::sort(keys.begin(), keys.end(), CellKeySortLess);
  EXPECT_DOUBLE_EQ(keys[0].order, 0.0);   // the data object
  EXPECT_DOUBLE_EQ(keys[1].order, 1.0);
  EXPECT_DOUBLE_EQ(keys[2].order, 3.0);
  EXPECT_DOUBLE_EQ(keys[3].order, 12.0);
}

TEST(CellKeySortTest, EspqScoOrderIsDecreasingScoreWithDataFirst) {
  // eSPQsco: data objects carry kDataOrderScore (< -1), features -w.
  std::vector<CellKey> keys{
      {7, -0.25}, {7, kDataOrderScore}, {7, -1.0}, {7, -0.5}};
  std::sort(keys.begin(), keys.end(), CellKeySortLess);
  EXPECT_DOUBLE_EQ(keys[0].order, kDataOrderScore);  // data first
  EXPECT_DOUBLE_EQ(keys[1].order, -1.0);             // score 1.0
  EXPECT_DOUBLE_EQ(keys[2].order, -0.5);             // score 0.5
  EXPECT_DOUBLE_EQ(keys[3].order, -0.25);            // score 0.25
}

TEST(CellKeySortTest, DataSentinelPrecedesAnyFeatureScore) {
  // Jaccard lies in (0, 1], so feature orders lie in [-1, 0).
  for (double w : {1e-9, 0.5, 1.0}) {
    EXPECT_TRUE(CellKeySortLess({1, kDataOrderScore}, {1, -w})) << w;
  }
}

TEST(CellPartitionerTest, StaysInRangeAndIsDeterministic) {
  for (uint32_t parts : {1u, 3u, 16u, 2500u}) {
    for (geo::CellId cell = 0; cell < 100; ++cell) {
      const uint32_t p = CellPartitioner({cell, 0.5}, parts);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, CellPartitioner({cell, -0.7}, parts))
          << "partition must ignore the secondary key";
    }
  }
}

TEST(CellPartitionerTest, IdentityWhenOnePartitionPerCell) {
  // The paper's setting: R == number of cells.
  for (geo::CellId cell = 0; cell < 2500; ++cell) {
    EXPECT_EQ(CellPartitioner({cell, 0.0}, 2500), cell);
  }
}

TEST(ShuffleObjectTest, KindPredicates) {
  ShuffleObject obj;
  obj.kind = ShuffleObject::kData;
  EXPECT_TRUE(obj.is_data());
  EXPECT_FALSE(obj.is_feature());
  obj.kind = ShuffleObject::kFeature;
  EXPECT_TRUE(obj.is_feature());
  EXPECT_FALSE(obj.is_data());
}

}  // namespace
}  // namespace spq::core
