#include "spq/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"

namespace spq::core {
namespace {

TEST(TopKListTest, ThresholdIsZeroUntilFull) {
  TopKList lk(3);
  EXPECT_DOUBLE_EQ(lk.Threshold(), 0.0);
  lk.Update(1, 0.9);
  lk.Update(2, 0.8);
  EXPECT_DOUBLE_EQ(lk.Threshold(), 0.0);
  EXPECT_FALSE(lk.full());
  lk.Update(3, 0.7);
  EXPECT_TRUE(lk.full());
  EXPECT_DOUBLE_EQ(lk.Threshold(), 0.7);
}

TEST(TopKListTest, KeepsBestK) {
  TopKList lk(2);
  lk.Update(1, 0.1);
  lk.Update(2, 0.5);
  lk.Update(3, 0.3);
  lk.Update(4, 0.9);
  const auto& entries = lk.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 4u);
  EXPECT_DOUBLE_EQ(entries[0].score, 0.9);
  EXPECT_EQ(entries[1].id, 2u);
  EXPECT_DOUBLE_EQ(entries[1].score, 0.5);
}

TEST(TopKListTest, UpdatingExistingObjectRaisesScore) {
  TopKList lk(2);
  lk.Update(1, 0.2);
  lk.Update(2, 0.4);
  lk.Update(1, 0.8);  // object 1 improves
  const auto& entries = lk.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 1u);
  EXPECT_DOUBLE_EQ(entries[0].score, 0.8);
  // No duplicate entry for object 1.
  EXPECT_EQ(entries[1].id, 2u);
}

TEST(TopKListTest, LowerUpdateForTrackedObjectIgnored) {
  TopKList lk(2);
  lk.Update(1, 0.8);
  lk.Update(1, 0.3);
  ASSERT_EQ(lk.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(lk.entries()[0].score, 0.8);
}

TEST(TopKListTest, TieBreaksByIdAscending) {
  TopKList lk(2);
  lk.Update(9, 0.5);
  lk.Update(3, 0.5);
  lk.Update(6, 0.5);
  const auto& entries = lk.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 3u);
  EXPECT_EQ(entries[1].id, 6u);
}

TEST(TopKListTest, EvictedObjectCanReturn) {
  TopKList lk(1);
  lk.Update(1, 0.5);
  lk.Update(2, 0.7);  // evicts 1
  lk.Update(1, 0.9);  // 1 returns with a higher score
  ASSERT_EQ(lk.entries().size(), 1u);
  EXPECT_EQ(lk.entries()[0].id, 1u);
  EXPECT_DOUBLE_EQ(lk.entries()[0].score, 0.9);
}

TEST(TopKListTest, MatchesSortReferenceUnderRandomUpdates) {
  // Property: after any sequence of monotone score updates, the list equals
  // the top-k of the per-object max scores.
  Rng rng(91);
  for (int trial = 0; trial < 100; ++trial) {
    const uint32_t k = 1 + rng.NextUint32(5);
    TopKList lk(k);
    std::map<ObjectId, double> best;
    for (int u = 0; u < 200; ++u) {
      ObjectId id = rng.NextUint64(30);
      auto it = best.find(id);
      // Scores only increase, mirroring τ(p) = max over features.
      double score = it == best.end() ? rng.NextDouble()
                                      : it->second + rng.NextDouble() * 0.2;
      best[id] = std::max(best.count(id) ? best[id] : 0.0, score);
      lk.Update(id, best[id]);
    }
    std::vector<ResultEntry> reference;
    for (const auto& [id, score] : best) reference.push_back({id, score});
    std::sort(reference.begin(), reference.end(), ResultBetter);
    if (reference.size() > k) reference.resize(k);
    const auto& entries = lk.entries();
    ASSERT_EQ(entries.size(), reference.size()) << "trial " << trial;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].id, reference[i].id) << "trial " << trial;
      EXPECT_DOUBLE_EQ(entries[i].score, reference[i].score);
    }
  }
}

TEST(MergeTopKTest, MergesAndTruncates) {
  std::vector<ResultEntry> candidates{
      {1, 0.5}, {2, 0.9}, {3, 0.1}, {4, 0.9}, {5, 0.7}};
  auto merged = MergeTopK(candidates, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 2u);  // 0.9, id tie-break
  EXPECT_EQ(merged[1].id, 4u);
  EXPECT_EQ(merged[2].id, 5u);
}

TEST(MergeTopKTest, FewerThanKKeepsAll) {
  auto merged = MergeTopK({{1, 0.5}}, 10);
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeTopKTest, EmptyInput) {
  EXPECT_TRUE(MergeTopK({}, 5).empty());
}

}  // namespace
}  // namespace spq::core
