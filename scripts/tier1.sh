#!/usr/bin/env sh
# Tier-1 verification in one command: the default build runs the FULL
# suite (which includes the `concurrency` and `faults` ctest labels),
# then the ThreadSanitizer build re-runs those two labels — the
# concurrent-serving and fault-injection suites are exactly the tests
# whose guarantees tsan can falsify.
#
# Usage: scripts/tier1.sh   (from the repo root)
set -e
cmake --workflow --preset tier1-default
cmake --workflow --preset tier1-tsan
