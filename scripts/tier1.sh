#!/usr/bin/env sh
# Tier-1 verification in one command: the default build runs the FULL
# suite (which includes the `concurrency`, `faults` and `mutation` ctest
# labels), then the ThreadSanitizer build re-runs those labels — the
# concurrent-serving, fault-injection and churn-equivalence suites are
# exactly the tests whose guarantees tsan can falsify.
#
# Usage: scripts/tier1.sh              (from the repo root: full tier-1)
#        scripts/tier1.sh --label L    (default build, then only the
#                                       ctest entries carrying label L,
#                                       e.g. mutation | concurrency |
#                                       faults | observability)
#        scripts/tier1.sh --metrics-dump
#                                      (default build, then the store
#                                       equivalence suite with tracing
#                                       enabled; archives the chrome
#                                       trace + Prometheus metrics dump
#                                       under build/artifacts/)
set -e

if [ "$1" = "--metrics-dump" ]; then
  cmake --preset default
  cmake --build --preset default
  mkdir -p build/artifacts
  # SPQ_TRACE=1 turns the span rings on at process start; the two file
  # variables make the process write its chrome://tracing export and the
  # Prometheus text dump at exit (see EnvObservability in common/trace.cc).
  SPQ_TRACE=1 \
  SPQ_TRACE_FILE=build/artifacts/store_equivalence_trace.json \
  SPQ_METRICS_FILE=build/artifacts/store_equivalence_metrics.prom \
    ./build/tests/spq_tests --gtest_filter='*StoreEquivalence*'
  for artifact in build/artifacts/store_equivalence_trace.json \
                  build/artifacts/store_equivalence_metrics.prom; do
    if [ ! -s "$artifact" ]; then
      echo "metrics-dump: expected non-empty $artifact" >&2
      exit 1
    fi
  done
  echo "metrics-dump artifacts:"
  ls -l build/artifacts/store_equivalence_trace.json \
        build/artifacts/store_equivalence_metrics.prom
  exit 0
fi

if [ "$1" = "--label" ]; then
  label="$2"
  if [ -z "$label" ]; then
    echo "usage: scripts/tier1.sh [--label <ctest-label>]" >&2
    exit 2
  fi
  cmake --preset default
  cmake --build --preset default
  ctest --test-dir build -L "$label" --output-on-failure
  exit 0
fi

cmake --workflow --preset tier1-default
cmake --workflow --preset tier1-tsan
