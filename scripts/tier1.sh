#!/usr/bin/env sh
# Tier-1 verification in one command: the default build runs the FULL
# suite (which includes the `concurrency`, `faults` and `mutation` ctest
# labels), then the ThreadSanitizer build re-runs those labels — the
# concurrent-serving, fault-injection and churn-equivalence suites are
# exactly the tests whose guarantees tsan can falsify.
#
# Usage: scripts/tier1.sh              (from the repo root: full tier-1)
#        scripts/tier1.sh --label L    (default build, then only the
#                                       ctest entries carrying label L,
#                                       e.g. mutation | concurrency |
#                                       faults)
set -e

if [ "$1" = "--label" ]; then
  label="$2"
  if [ -z "$label" ]; then
    echo "usage: scripts/tier1.sh [--label <ctest-label>]" >&2
    exit 2
  fi
  cmake --preset default
  cmake --build --preset default
  ctest --test-dir build -L "$label" --output-on-failure
  exit 0
fi

cmake --workflow --preset tier1-default
cmake --workflow --preset tier1-tsan
