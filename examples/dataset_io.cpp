// Dataset persistence end to end: generate a dataset, store it on the
// simulated HDFS cluster (blocks + 3-way replication), kill datanodes,
// load it back through replica failover, and query it. Also round-trips
// the TSV interchange format.
//
//   ./build/examples/dataset_io

#include <cstdio>
#include <filesystem>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "io/dataset_io.h"

int main() {
  using namespace spq;

  auto dataset = datagen::MakeUniformDataset({.num_objects = 50'000,
                                              .seed = 11});
  if (!dataset.ok()) return 1;

  // --- store on the DFS cluster ---
  dfs::MiniDfs cluster({.num_datanodes = 16,
                        .block_size = 1 << 20,
                        .replication = 3});
  if (auto st = io::StoreDataset(cluster, "datasets/un_50k", *dataset);
      !st.ok()) {
    std::fprintf(stderr, "store failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto meta = cluster.GetMetadata("datasets/un_50k");
  if (!meta.ok()) return 1;
  std::printf("stored datasets/un_50k: %llu bytes in %zu blocks, "
              "replication %u, on %u datanodes\n",
              static_cast<unsigned long long>(meta->size),
              meta->blocks.size(), cluster.options().replication,
              cluster.num_datanodes());

  // --- kill two datanodes; the file must still be readable ---
  cluster.datanode(2).Kill();
  cluster.datanode(7).Kill();
  std::printf("killed datanodes 2 and 7 (%u still alive)\n",
              cluster.alive_datanodes());

  auto engine = io::MakeEngineFromDfs(cluster, "datasets/un_50k",
                                      core::EngineOptions{.grid_size = 20});
  if (!engine.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded dataset back through replica failover: |O|=%zu "
              "|F|=%zu\n",
              (*engine)->dataset().data.size(),
              (*engine)->dataset().features.size());

  core::Query query;
  query.k = 5;
  query.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 20);
  query.keywords = text::KeywordSet({1, 2, 3});
  auto result = (*engine)->Execute(query, core::Algorithm::kESPQSco);
  if (!result.ok()) return 1;
  std::printf("top-%zu over the DFS-loaded dataset:\n",
              result->entries.size());
  for (const auto& e : result->entries) {
    std::printf("  object %-8llu score %.4f\n",
                static_cast<unsigned long long>(e.id), e.score);
  }

  // --- TSV interchange ---
  const std::string tsv =
      (std::filesystem::temp_directory_path() / "spq_example.tsv").string();
  if (auto st = io::SaveDatasetTsv(tsv, *dataset); !st.ok()) return 1;
  auto reloaded = io::LoadDatasetTsv(tsv);
  if (!reloaded.ok()) return 1;
  std::printf("TSV round trip: %zu data + %zu feature rows at %s\n",
              reloaded->data.size(), reloaded->features.size(), tsv.c_str());
  std::remove(tsv.c_str());
  return 0;
}
