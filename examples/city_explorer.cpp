// City explorer: a Flickr-like skewed dataset (hotspot "cities", Zipf tag
// frequencies) queried for photogenic spots near relevant tags — the
// scenario the paper's introduction motivates. Compares the three
// algorithms on the same queries and prints the early-termination effect.
//
//   ./build/examples/city_explorer [num_objects]

#include <cstdio>
#include <cstdlib>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main(int argc, char** argv) {
  using namespace spq;

  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;

  std::printf("Generating Flickr-like dataset with %llu objects...\n",
              static_cast<unsigned long long>(n));
  auto dataset = datagen::MakeRealLikeDataset(datagen::FlickrLikeSpec(n));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  core::EngineOptions options;
  options.grid_size = 50;
  core::SpqEngine engine(*std::move(dataset), options);

  datagen::WorkloadSpec workload;
  workload.num_keywords = 3;
  workload.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
  workload.k = 10;
  workload.term_zipf = 1.0;
  workload.vocab_size = 34'716;
  workload.seed = 2017;

  const auto queries = datagen::MakeQueries(workload, 3);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    std::printf("\n=== query %zu (3 keywords, r=10%% of cell, k=10) ===\n",
                qi + 1);
    std::printf("%-8s %10s %14s %14s %12s\n", "algo", "time(s)",
                "shuffled", "examined", "results");
    for (core::Algorithm algo :
         {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
          core::Algorithm::kESPQSco}) {
      auto result = engine.Execute(queries[qi], algo);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& info = result->info;
      std::printf("%-8s %10.3f %14llu %14llu %12zu\n",
                  core::AlgorithmName(algo).c_str(), info.job.total_seconds,
                  static_cast<unsigned long long>(info.features_kept +
                                                  info.feature_duplicates),
                  static_cast<unsigned long long>(info.features_examined),
                  result->entries.size());
    }
  }
  std::printf("\nNote: all three always return identical score lists; the "
              "early-termination algorithms just read far less input.\n");
  return 0;
}
