// Quickstart: generate a small synthetic dataset, run one spatial
// preference query using keywords with each algorithm, print the top-k.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;

  // 1. A dataset: 20k objects, half data / half features, uniform in [0,1]².
  auto dataset = datagen::MakeUniformDataset({
      .num_objects = 20'000,
      .seed = 7,
      .vocab_size = 1'000,
      .min_keywords = 10,
      .max_keywords = 100,
  });
  if (!dataset.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 2. An engine over the dataset (50x50 query-time grid by default).
  core::EngineOptions options;
  options.grid_size = 20;
  core::SpqEngine engine(*std::move(dataset), options);

  // 3. A query: top-5 data objects with a highly "italian gourmet pizza"-
  //    flavored feature within r = 10% of a grid cell.
  core::Query query;
  query.k = 5;
  query.radius = datagen::RadiusFromCellFraction(0.10, 1.0, options.grid_size);
  query.keywords = text::KeywordSet({1, 17, 23});  // synthetic term ids

  // 4. Run all three algorithms of the paper and compare their work.
  for (core::Algorithm algo :
       {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
        core::Algorithm::kESPQSco}) {
    auto result = engine.Execute(query, algo);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s examined %6llu / %6llu shuffled feature copies, "
                "job %.3fs\n",
                core::AlgorithmName(algo).c_str(),
                static_cast<unsigned long long>(
                    result->info.features_examined),
                static_cast<unsigned long long>(
                    result->info.features_kept +
                    result->info.feature_duplicates),
                result->info.job.total_seconds);
    for (const auto& entry : result->entries) {
      std::printf("    object %-6llu score %.4f\n",
                  static_cast<unsigned long long>(entry.id), entry.score);
    }
  }
  return 0;
}
