// Cluster simulation: demonstrates the distributed-systems side of the
// runtime — worker scaling (simulated cluster size) and task fault
// injection with deterministic retries, on a clustered (skewed) dataset.
//
//   ./build/examples/cluster_simulation [num_objects]

#include <cstdio>
#include <cstdlib>

#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main(int argc, char** argv) {
  using namespace spq;

  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;

  auto dataset = datagen::MakeClusteredDataset({
      .num_objects = n,
      .seed = 1234,
      .num_clusters = 16,
  });
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  core::Query query;
  query.k = 10;
  query.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
  query.keywords = text::KeywordSet({1, 5, 9});

  // --- 1: scale the simulated cluster ---
  std::printf("Worker scaling on the clustered dataset (eSPQsco, 50x50 "
              "grid):\n%-10s %12s %12s\n", "workers", "time(s)",
              "reduce skew");
  for (uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
    core::EngineOptions options;
    options.grid_size = 50;
    options.num_workers = workers;
    core::SpqEngine engine(*dataset, options);
    auto result = engine.Execute(query, core::Algorithm::kESPQSco);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10u %12.3f %12.1f\n", workers,
                result->info.job.total_seconds,
                result->info.job.ReduceSkew());
  }

  // --- 2: inject task failures, verify identical answers ---
  std::printf("\nFault injection (30%% map, 30%% reduce attempt failure):\n");
  core::EngineOptions clean_opts;
  clean_opts.grid_size = 50;
  core::SpqEngine clean(*dataset, clean_opts);
  auto expected = clean.Execute(query, core::Algorithm::kESPQSco);

  core::EngineOptions faulty_opts = clean_opts;
  faulty_opts.faults.map_failure_prob = 0.3;
  faulty_opts.faults.reduce_failure_prob = 0.3;
  faulty_opts.faults.seed = 99;
  faulty_opts.max_task_attempts = 25;
  core::SpqEngine faulty(*dataset, faulty_opts);
  auto result = faulty.Execute(query, core::Algorithm::kESPQSco);
  if (!expected.ok() || !result.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("  map attempts failed:    %u\n",
              result->info.job.map_task_failures);
  std::printf("  reduce attempts failed: %u\n",
              result->info.job.reduce_task_failures);
  bool identical = expected->entries.size() == result->entries.size();
  for (std::size_t i = 0; identical && i < expected->entries.size(); ++i) {
    identical = expected->entries[i].id == result->entries[i].id &&
                expected->entries[i].score == result->entries[i].score;
  }
  std::printf("  results identical to fault-free run: %s\n",
              identical ? "yes" : "NO (bug!)");
  return identical ? 0 : 1;
}
