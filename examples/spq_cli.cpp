// Command-line SPQ tool: load a TSV dataset (or generate one), run one
// query, print the ranked results and job measurements. The adoption
// surface a downstream user would script against.
//
// Usage:
//   spq_cli --dataset file.tsv --keywords "italian gourmet" \
//           [--k 10] [--radius 0.01] [--grid 50] [--algo eSPQsco]
//   spq_cli --generate uniform|clustered|flickr|twitter --objects 100000 ...
//
// With --dataset, keyword tokens are vocabulary terms from the file; with
// --generate, keywords are numeric term ids (e.g. --keywords "1 17 23").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/generator.h"
#include "datagen/stats.h"
#include "io/dataset_io.h"
#include "mapreduce/job.h"
#include "spq/engine.h"
#include "text/tokenizer.h"

namespace {

struct CliArgs {
  std::string dataset_path;
  std::string generate;
  uint64_t objects = 100'000;
  std::string keywords;
  uint32_t k = 10;
  double radius = 0.0;  // 0 = default to 10% of a grid cell
  uint32_t grid = 50;
  std::string algo = "eSPQsco";
  bool verbose = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--dataset <file.tsv> | --generate "
               "uniform|clustered|flickr|twitter) [--objects N]\n"
               "          --keywords \"<terms>\" [--k K] [--radius R] "
               "[--grid G] [--algo pSPQ|eSPQlen|eSPQsco] [--verbose]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      const char* v = next("--dataset");
      if (!v) return false;
      args->dataset_path = v;
    } else if (!std::strcmp(argv[i], "--generate")) {
      const char* v = next("--generate");
      if (!v) return false;
      args->generate = v;
    } else if (!std::strcmp(argv[i], "--objects")) {
      const char* v = next("--objects");
      if (!v) return false;
      args->objects = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--keywords")) {
      const char* v = next("--keywords");
      if (!v) return false;
      args->keywords = v;
    } else if (!std::strcmp(argv[i], "--k")) {
      const char* v = next("--k");
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::atoi(v));
    } else if (!std::strcmp(argv[i], "--radius")) {
      const char* v = next("--radius");
      if (!v) return false;
      args->radius = std::atof(v);
    } else if (!std::strcmp(argv[i], "--grid")) {
      const char* v = next("--grid");
      if (!v) return false;
      args->grid = static_cast<uint32_t>(std::atoi(v));
    } else if (!std::strcmp(argv[i], "--algo")) {
      const char* v = next("--algo");
      if (!v) return false;
      args->algo = v;
    } else if (!std::strcmp(argv[i], "--verbose")) {
      args->verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spq;

  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  if (args.dataset_path.empty() == args.generate.empty()) {
    std::fprintf(stderr, "need exactly one of --dataset / --generate\n");
    return Usage(argv[0]);
  }
  if (args.keywords.empty()) {
    std::fprintf(stderr, "--keywords is required\n");
    return Usage(argv[0]);
  }

  core::Algorithm algo;
  if (args.algo == "pSPQ") {
    algo = core::Algorithm::kPSPQ;
  } else if (args.algo == "eSPQlen") {
    algo = core::Algorithm::kESPQLen;
  } else if (args.algo == "eSPQsco") {
    algo = core::Algorithm::kESPQSco;
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", args.algo.c_str());
    return Usage(argv[0]);
  }

  // --- obtain the dataset + query keywords ---
  core::Dataset dataset;
  core::Query query;
  text::Vocabulary vocab;
  if (!args.dataset_path.empty()) {
    auto loaded = io::LoadDatasetTsv(args.dataset_path, &vocab);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = *std::move(loaded);
    query.keywords = text::TokenizeToSetReadOnly(args.keywords, vocab);
  } else {
    StatusOr<core::Dataset> generated = [&]() -> StatusOr<core::Dataset> {
      if (args.generate == "uniform") {
        return datagen::MakeUniformDataset({.num_objects = args.objects});
      }
      if (args.generate == "clustered") {
        return datagen::MakeClusteredDataset({.num_objects = args.objects});
      }
      if (args.generate == "flickr") {
        return datagen::MakeRealLikeDataset(
            datagen::FlickrLikeSpec(args.objects));
      }
      if (args.generate == "twitter") {
        return datagen::MakeRealLikeDataset(
            datagen::TwitterLikeSpec(args.objects));
      }
      return Status::InvalidArgument("unknown --generate " + args.generate);
    }();
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    dataset = *std::move(generated);
    // Numeric term ids for synthetic data.
    std::vector<text::TermId> ids;
    for (const auto& token : text::Tokenize(args.keywords)) {
      ids.push_back(static_cast<text::TermId>(std::strtoul(
          token.c_str(), nullptr, 10)));
    }
    query.keywords = text::KeywordSet(std::move(ids));
  }

  query.k = args.k;
  query.radius = args.radius > 0.0
                     ? args.radius
                     : 0.10 * dataset.bounds.width() / args.grid;

  std::printf("dataset: %s\n",
              datagen::ComputeStats(dataset).ToString().c_str());
  std::printf("query: k=%u r=%.6g |q.W|=%zu, algorithm %s, grid %ux%u\n\n",
              query.k, query.radius, query.keywords.size(),
              args.algo.c_str(), args.grid, args.grid);

  core::EngineOptions options;
  options.grid_size = args.grid;
  core::SpqEngine engine(std::move(dataset), options);
  auto result = engine.Execute(query, algo);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  if (result->entries.empty()) {
    std::printf("no data object has a matching feature within r\n");
  }
  for (std::size_t i = 0; i < result->entries.size(); ++i) {
    std::printf("%2zu. object %-10llu score %.4f\n", i + 1,
                static_cast<unsigned long long>(result->entries[i].id),
                result->entries[i].score);
  }
  std::printf("\njob: %.3fs (%.1f%% of shuffled features examined)\n",
              result->info.job.total_seconds,
              100.0 * result->info.FeatureExaminationRatio());
  if (args.verbose) {
    std::printf("%s", mapreduce::FormatJobStats(result->info.job).c_str());
  }
  return 0;
}
