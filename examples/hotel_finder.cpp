// The paper's Example 1 (Figure 1 / Table 2) end to end: five hotels,
// eight restaurants, query "find the best hotels with an italian
// restaurant nearby" (k, r=1.5). Prints the same scores as Table 2 and
// the winning hotel p1.
//
//   ./build/examples/hotel_finder [k]

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "spq/engine.h"
#include "spq/sequential.h"
#include "text/jaccard.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace {

struct NamedPlace {
  const char* name;
  double x, y;
  const char* description;  // nullptr for hotels (data objects)
};

constexpr NamedPlace kHotels[] = {
    {"p1", 4.6, 4.8, nullptr}, {"p2", 7.5, 1.7, nullptr},
    {"p3", 8.9, 5.2, nullptr}, {"p4", 1.8, 1.8, nullptr},
    {"p5", 1.9, 9.0, nullptr},
};

constexpr NamedPlace kRestaurants[] = {
    {"f1", 2.8, 1.2, "italian,gourmet"},   {"f2", 5.0, 3.8, "chinese,cheap"},
    {"f3", 8.7, 1.9, "sushi,wine"},        {"f4", 3.8, 5.5, "italian"},
    {"f5", 5.2, 5.1, "mexican,exotic"},    {"f6", 7.4, 5.4, "greek,traditional"},
    {"f7", 3.0, 8.1, "italian,spaghetti"}, {"f8", 9.5, 7.0, "indian"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spq;

  const uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 1;

  text::Vocabulary vocab;
  core::Dataset dataset;
  dataset.bounds = {0, 0, 10, 10};
  for (std::size_t i = 0; i < std::size(kHotels); ++i) {
    dataset.data.push_back(
        {static_cast<core::ObjectId>(i + 1), {kHotels[i].x, kHotels[i].y}});
  }
  for (std::size_t i = 0; i < std::size(kRestaurants); ++i) {
    core::FeatureObject f;
    f.id = static_cast<core::ObjectId>(100 + i + 1);
    f.pos = {kRestaurants[i].x, kRestaurants[i].y};
    f.keywords = text::TokenizeToSet(kRestaurants[i].description, vocab);
    dataset.features.push_back(std::move(f));
  }

  core::Query query;
  query.k = k;
  query.radius = 1.5;
  query.keywords = text::TokenizeToSetReadOnly("italian", vocab);

  std::printf("Query: top-%u hotels with an 'italian' restaurant within "
              "%.1f units\n\n", k, query.radius);

  // Per-restaurant Jaccard scores, as in Table 2.
  std::printf("%-4s %-22s %s\n", "id", "keywords", "Jaccard(q, f)");
  for (std::size_t i = 0; i < std::size(kRestaurants); ++i) {
    std::printf("%-4s %-22s %.2f\n", kRestaurants[i].name,
                kRestaurants[i].description,
                text::Jaccard(dataset.features[i].keywords, query.keywords));
  }

  // Run on the simulated cluster with the paper's 4x4 grid (Figure 2).
  core::EngineOptions options;
  options.grid_size = 4;
  core::SpqEngine engine(dataset, options);
  auto result = engine.Execute(query, core::Algorithm::kESPQSco);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nTop-%u hotels (eSPQsco on a 4x4 grid, %u reducers):\n", k,
              result->info.num_reduce_tasks);
  for (const auto& entry : result->entries) {
    std::printf("  %s  score %.2f\n",
                kHotels[entry.id - 1].name, entry.score);
  }
  std::printf("\nrelevant restaurants shuffled: %llu (+%llu duplicates), "
              "examined by reducers: %llu\n",
              static_cast<unsigned long long>(result->info.features_kept),
              static_cast<unsigned long long>(
                  result->info.feature_duplicates),
              static_cast<unsigned long long>(
                  result->info.features_examined));
  return 0;
}
