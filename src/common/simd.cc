// Distance-kernel backends. This translation unit is the only one compiled
// with -mavx2 (see the SPQ_SIMD handling in the root CMakeLists), so the
// intrinsics stay behind a function-call boundary and the rest of the
// library keeps the baseline x86-64 instruction set.

#include "common/simd.h"

#if defined(SPQ_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace spq::simd {

void DistanceWithinMaskScalar(const double* xs, const double* ys,
                              std::size_t n, double qx, double qy, double r2,
                              uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    out[i] = (dx * dx + dy * dy <= r2) ? 1 : 0;
  }
}

#if defined(SPQ_SIMD_AVX2)

namespace {

/// 4 candidates per iteration. _CMP_LE_OQ is ordered like the scalar `<=`
/// (NaN compares false), and mul/add (not fmadd) keeps each lane's rounding
/// identical to the scalar expression.
void DistanceWithinMaskAvx2(const double* xs, const double* ys, std::size_t n,
                            double qx, double qy, double r2, uint8_t* out) {
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  const __m256d vr2 = _mm256_set1_pd(r2);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vqx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vqy);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(d2, vr2, _CMP_LE_OQ));
    out[i] = static_cast<uint8_t>(mask & 1);
    out[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
    out[i + 2] = static_cast<uint8_t>((mask >> 2) & 1);
    out[i + 3] = static_cast<uint8_t>((mask >> 3) & 1);
  }
  if (i < n) DistanceWithinMaskScalar(xs + i, ys + i, n - i, qx, qy, r2,
                                      out + i);
}

}  // namespace

bool Avx2Available() {
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
}

void DistanceWithinMask(const double* xs, const double* ys, std::size_t n,
                        double qx, double qy, double r2, uint8_t* out) {
  if (Avx2Available()) {
    DistanceWithinMaskAvx2(xs, ys, n, qx, qy, r2, out);
    return;
  }
  DistanceWithinMaskScalar(xs, ys, n, qx, qy, r2, out);
}

#else  // !SPQ_SIMD_AVX2

bool Avx2Available() { return false; }

void DistanceWithinMask(const double* xs, const double* ys, std::size_t n,
                        double qx, double qy, double r2, uint8_t* out) {
  DistanceWithinMaskScalar(xs, ys, n, qx, qy, r2, out);
}

#endif  // SPQ_SIMD_AVX2

const char* KernelName(KernelMode mode) {
  if (mode == KernelMode::kScalar) return "scalar";
  return Avx2Available() ? "avx2" : "scalar";
}

}  // namespace spq::simd
