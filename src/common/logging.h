#ifndef SPQ_COMMON_LOGGING_H_
#define SPQ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace spq {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Minimal thread-safe logger writing to stderr.
///
/// Global minimum level is settable at runtime (e.g. benches silence kInfo).
/// Messages are assembled in a per-statement stream and emitted atomically.
class Logger {
 public:
  static LogLevel MinLevel();
  static void SetMinLevel(LogLevel level);

  /// Emits one formatted line: "[LEVEL] message\n".
  static void Write(LogLevel level, const std::string& message);
};

namespace logging_internal {

/// One log statement; flushes on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose level is below the minimum.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace logging_internal

#define SPQ_LOG(level)                                              \
  if (::spq::LogLevel::level < ::spq::Logger::MinLevel()) {         \
  } else                                                            \
    ::spq::logging_internal::LogMessage(::spq::LogLevel::level).stream()

#define SPQ_LOG_DEBUG SPQ_LOG(kDebug)
#define SPQ_LOG_INFO SPQ_LOG(kInfo)
#define SPQ_LOG_WARN SPQ_LOG(kWarn)
#define SPQ_LOG_ERROR SPQ_LOG(kError)

}  // namespace spq

#endif  // SPQ_COMMON_LOGGING_H_
