#ifndef SPQ_COMMON_LOGGING_H_
#define SPQ_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace spq {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Minimal thread-safe logger writing to stderr.
///
/// Global minimum level is settable at runtime (e.g. benches silence kInfo).
/// Messages are assembled in a per-statement stream and emitted atomically.
class Logger {
 public:
  static LogLevel MinLevel();
  static void SetMinLevel(LogLevel level);

  /// Emits one formatted line: "[LEVEL] message\n".
  static void Write(LogLevel level, const std::string& message);
};

/// \brief Every-Nth admission gate for noisy log sites (typically one
/// static instance per site). Thread-safe and lock-free; occurrences the
/// gate swallows are reported as a suppressed-count with the next
/// admitted occurrence, so no signal is silently lost:
///
///   static LogRateLimiter limiter(/*every_n=*/64);
///   uint64_t suppressed = 0;
///   if (limiter.ShouldLog(&suppressed)) {
///     SPQ_LOG_WARN << "... (" << suppressed << " similar suppressed)";
///   }
class LogRateLimiter {
 public:
  /// Admits the 1st, (N+1)th, (2N+1)th ... occurrence. every_n == 1
  /// admits everything; 0 is treated as 1.
  explicit LogRateLimiter(uint64_t every_n)
      : every_n_(every_n == 0 ? 1 : every_n) {}

  LogRateLimiter(const LogRateLimiter&) = delete;
  LogRateLimiter& operator=(const LogRateLimiter&) = delete;

  /// True when this occurrence should be logged. When true and
  /// `suppressed` is non-null, it receives the number of occurrences
  /// swallowed since the previously admitted one.
  bool ShouldLog(uint64_t* suppressed = nullptr) {
    const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    if (n % every_n_ != 0) return false;
    if (suppressed != nullptr) *suppressed = n == 0 ? 0 : every_n_ - 1;
    return true;
  }

  /// Total occurrences observed (admitted + suppressed).
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

 private:
  const uint64_t every_n_;
  std::atomic<uint64_t> count_{0};
};

namespace logging_internal {

/// One log statement; flushes on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose level is below the minimum.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace logging_internal

#define SPQ_LOG(level)                                              \
  if (::spq::LogLevel::level < ::spq::Logger::MinLevel()) {         \
  } else                                                            \
    ::spq::logging_internal::LogMessage(::spq::LogLevel::level).stream()

#define SPQ_LOG_DEBUG SPQ_LOG(kDebug)
#define SPQ_LOG_INFO SPQ_LOG(kInfo)
#define SPQ_LOG_WARN SPQ_LOG(kWarn)
#define SPQ_LOG_ERROR SPQ_LOG(kError)

}  // namespace spq

#endif  // SPQ_COMMON_LOGGING_H_
