#ifndef SPQ_COMMON_STOPWATCH_H_
#define SPQ_COMMON_STOPWATCH_H_

#include <cstdint>

#include "common/metrics.h"

namespace spq {

/// \brief Wall-clock stopwatch used for job/phase timing.
///
/// A thin convenience over the process's single steady-clock source
/// (metrics::NowNanos — see common/metrics.h): stopwatch readings, span
/// timestamps, histogram samples and the front door's admission clock all
/// come from the same clock and are directly comparable.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(metrics::NowNanos()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ns_ = metrics::NowNanos(); }

  /// Elapsed time in seconds since construction or last Reset().
  double ElapsedSeconds() const { return metrics::SecondsSince(start_ns_); }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in nanoseconds (histogram-ready).
  uint64_t ElapsedNanos() const { return metrics::NowNanos() - start_ns_; }

 private:
  uint64_t start_ns_;
};

}  // namespace spq

#endif  // SPQ_COMMON_STOPWATCH_H_
