#ifndef SPQ_COMMON_STATUSOR_H_
#define SPQ_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace spq {

/// \brief Holds either a value of type T or an error Status.
///
/// The OK state always holds a value; the error state never does. Accessing
/// the value of an error StatusOr aborts in debug builds (assert) — callers
/// must check ok() first, mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK state).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a StatusOr expression, or assigns its value.
/// Usage: SPQ_ASSIGN_OR_RETURN(auto x, ComputeX());
#define SPQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define SPQ_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SPQ_ASSIGN_OR_RETURN_NAME(a, b) SPQ_ASSIGN_OR_RETURN_CONCAT(a, b)
#define SPQ_ASSIGN_OR_RETURN(lhs, expr) \
  SPQ_ASSIGN_OR_RETURN_IMPL(            \
      SPQ_ASSIGN_OR_RETURN_NAME(_statusor_, __LINE__), lhs, expr)

}  // namespace spq

#endif  // SPQ_COMMON_STATUSOR_H_
