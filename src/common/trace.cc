#include "common/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace spq::trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

/// Per-thread span buffer. Writes come only from the owner thread;
/// Collect()/Clear() read from any thread — the per-ring mutex covers
/// that handoff (taken only when tracing is ON, so it never touches the
/// disabled fast path).
struct SpanRing {
  static constexpr std::size_t kCapacity = 16384;

  std::mutex mu;
  uint32_t tid = 0;
  std::vector<SpanEvent> events;
  uint64_t dropped = 0;
};

/// Owns every ring ever created (shared_ptrs, so a ring outlives its
/// thread and a capture can be drained after worker pools wind down).
struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<SpanRing>> rings;
  uint32_t next_tid = 0;
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();  // never destroyed
  return *registry;
}

SpanRing& ThreadRing() {
  thread_local std::shared_ptr<SpanRing> ring = [] {
    auto created = std::make_shared<SpanRing>();
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    created->tid = registry.next_tid++;
    created->events.reserve(SpanRing::kCapacity);
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

}  // namespace

namespace internal {

void RecordSpan(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  SpanRing& ring = ThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.events.size() >= SpanRing::kCapacity) {
    ++ring.dropped;  // drop-newest: the capture window's head stays intact
    return;
  }
  SpanEvent event;
  event.name = name;
  event.tid = ring.tid;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  ring.events.push_back(event);
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Clear() {
  RingRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& ring : registry.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->dropped = 0;
  }
}

std::vector<SpanEvent> Collect() {
  std::vector<SpanEvent> out;
  RingRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& ring : registry.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    out.insert(out.end(), ring->events.begin(), ring->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

uint64_t DroppedSpans() {
  uint64_t dropped = 0;
  RingRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& ring : registry.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    dropped += ring->dropped;
  }
  return dropped;
}

namespace {

/// Span names are literals from our own TRACE_SPAN sites, but escape
/// defensively so the export is valid JSON for any name.
void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
  os << '"';
}

void WriteChromeEvent(std::ostream& os, const SpanEvent& event) {
  // Complete event ("ph":"X"); chrome://tracing wants microseconds.
  os << "{\"name\":";
  WriteJsonString(os, event.name);
  os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid
     << ",\"ts\":" << static_cast<double>(event.start_ns) / 1e3
     << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1e3 << "}";
}

}  // namespace

void ExportChromeTrace(std::ostream& os) {
  const std::vector<SpanEvent> events = Collect();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n";
    WriteChromeEvent(os, events[i]);
  }
  os << "\n]}\n";
}

void ExportJsonl(std::ostream& os) {
  for (const SpanEvent& event : Collect()) {
    os << "{\"name\":";
    WriteJsonString(os, event.name);
    os << ",\"tid\":" << event.tid << ",\"start_ns\":" << event.start_ns
       << ",\"dur_ns\":" << event.dur_ns << "}\n";
  }
}

namespace {

/// Environment-driven capture, so any binary linking spq_core can be
/// traced without code changes (scripts/tier1.sh --metrics-dump):
///   SPQ_TRACE=1            start with tracing enabled
///   SPQ_TRACE_FILE=p.json  write the chrome://tracing export at exit
///   SPQ_METRICS_FILE=p     write the Prometheus metrics dump at exit
struct EnvObservability {
  EnvObservability() {
    // Touch the never-destroyed globals BEFORE registering the atexit
    // hook: handlers run in reverse registration order, so anything the
    // hook reads must be constructed first.
    Registry();
    metrics::MetricsRegistry::Global();
    const char* enabled = std::getenv("SPQ_TRACE");
    if (enabled != nullptr && enabled[0] == '1') SetEnabled(true);
    if (std::getenv("SPQ_TRACE_FILE") != nullptr ||
        std::getenv("SPQ_METRICS_FILE") != nullptr) {
      std::atexit(&DumpAtExit);
    }
  }

  static void DumpAtExit() {
    if (const char* path = std::getenv("SPQ_TRACE_FILE")) {
      std::ofstream os(path);
      if (os) ExportChromeTrace(os);
    }
    if (const char* path = std::getenv("SPQ_METRICS_FILE")) {
      std::ofstream os(path);
      if (os) metrics::MetricsRegistry::Global().DumpPrometheus(os);
    }
  }
};

const EnvObservability g_env_observability;

}  // namespace

}  // namespace spq::trace
