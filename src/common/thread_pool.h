#ifndef SPQ_COMMON_THREAD_POOL_H_
#define SPQ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spq {

/// \brief Fixed-size worker pool.
///
/// Tasks are arbitrary std::function<void()>; submission is thread-safe.
/// The pool is used by the MapReduce runtime to model a cluster of worker
/// slots: the number of threads is the number of concurrently executing
/// map/reduce tasks.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks and joins all workers (via Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers. Idempotent; called by
  /// the destructor. After Shutdown(), Submit() rejects new tasks.
  /// Must be externally serialized against destruction (as with any
  /// member call): the idempotent early-return does not wait for a
  /// Shutdown() still joining on another thread.
  void Shutdown();

  /// Enqueues a task. Calling after Shutdown() is a caller bug: it asserts
  /// in debug builds and is a no-op (the task is dropped, never silently
  /// queued behind dead workers) in release builds.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n) on `pool`, blocking until all complete.
/// Work is claimed in contiguous chunks off a shared cursor; the calling
/// thread participates as a worker, so n == 1 (and any call racing a busy
/// pool) degrades to an inline loop instead of a submit/wake round trip.
/// Safe for CONCURRENT callers sharing one pool: completion is tracked by a
/// per-call latch, not pool.Wait(), so independent jobs never block on each
/// other's outstanding tasks.
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace spq

#endif  // SPQ_COMMON_THREAD_POOL_H_
