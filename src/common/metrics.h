#ifndef SPQ_COMMON_METRICS_H_
#define SPQ_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spq::metrics {

// ------------------------------------------------------ metric inventory ---
// Every registry metric the request path records, by component. Counters
// unless marked (histogram) / (gauge); `_ns` histograms record NowNanos()
// durations. Registered lazily (a metric exists once its code path has
// run), surfaced via SpqEngine::MetricsSnapshot() / DumpMetrics() and the
// SPQ_METRICS_FILE at-exit dump (trace.h).
//
//   spq.serving.*   — SpqFrontDoor (spq/serving.cc), summed across doors;
//                     per-door exact views live in ServingStats.
//     admitted / rejected / coalesced / batches / cold_routed
//     queue_depth (gauge)       admitted-but-not-yet-drained entries
//     queue_wait_ns (histogram) admission → executor drain, per query
//     batch_size (histogram)    warm queries per dispatched batch job
//   spq.query.*     — SpqEngine::Query / QueryBatch (spq/engine.cc).
//     cold_fallbacks            queries served by the loud cold path
//     slow                      queries over EngineOptions::slow_query_ms
//     warm_ns / warm_batch_ns (histograms)  end-to-end warm latency
//   spq.store.*     — CellStore (spq/cell_store.cc) + engine publishes.
//     publishes                 snapshot swaps (build/mutation/open)
//     cells_materialized        first-touch Serve() materializations
//     cells_restored / cells_rebuilt   recovery restores / fallbacks
//     delta_folds               Serve() folds of a non-empty delta log
//     cells_compacted           partition compactions (auto + explicit)
//     checkpoints / recoveries  whole-store persistence round-trips
//     materialize_ns / checkpoint_ns / recover_ns (histograms)
//   spq.job.*       — mapreduce runtime (mapreduce/runtime.h), every job.
//     runs                      jobs completed (cold, build, warm, batch)
//     map_ns / reduce_ns / total_ns (histograms)  per-job phase walltime
//   spq.wal.*       — StoreWal (spq/wal.cc).
//     appends / replays / records_replayed / torn_records
//     append_ns / replay_ns (histograms)
//
// Recording contract: metrics observe, never steer — no counter or
// histogram value feeds back into control flow, and none of them touch
// mapreduce::Counters or query results (the equivalence suites stay
// bit-identical with metrics hot). The span inventory lives in
// common/trace.h.

// ---------------------------------------------------------------- clock ---
// The ONE steady-clock source of the codebase. Every timing consumer —
// Stopwatch (common/stopwatch.h), the front door's admission timestamps
// and deadlines (spq/serving.cc), the benches' latency samples, and the
// histograms/spans below — derives from this alias, so two measurements
// taken anywhere in the process are always comparable.

using Clock = std::chrono::steady_clock;

/// Monotonic now, in nanoseconds since an arbitrary process-local origin.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Elapsed seconds since a NowNanos() reading.
inline double SecondsSince(uint64_t start_ns) {
  return static_cast<double>(NowNanos() - start_ns) * 1e-9;
}

/// Exact percentile of a sample vector (nearest-rank with linear
/// interpolation), sorting a copy. This is the REFERENCE quantile the
/// histogram estimator is tested against, and the shared helper behind
/// the benches' p50/p99 reporting (one definition instead of a local
/// copy per bench).
double PercentileOfSamples(std::vector<double> samples, double q);

// -------------------------------------------------------------- counters ---

/// Monotonic event tally. Relaxed atomics: counters are reporting-only —
/// no counter ever gates control flow, so no ordering is needed.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, resident cells). Same relaxed
/// contract as Counter; Add() takes signed deltas.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// ------------------------------------------------------------- histogram ---

/// Aggregated view of one Histogram: merged over every shard at read
/// time. count/sum/max are exact; quantiles are log₂-bucket estimates
/// (the estimate lands in the same power-of-two bucket as the true
/// quantile, so it is within a factor of 2 — see Percentile()).
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 64;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// buckets[i] = number of recorded values v with BucketOf(v) == i,
  /// i.e. bucket 0 holds {0, 1} and bucket i holds [2^i, 2^(i+1)).
  std::array<uint64_t, kNumBuckets> buckets{};

  /// Estimated q-quantile (q in [0, 1]), linearly interpolated inside the
  /// rank's bucket. Exact for max (q == 1 returns the tracked maximum);
  /// 0 when empty.
  double Percentile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log₂ histogram with lock-free per-thread shards.
///
/// Record() touches only the calling thread's shard (relaxed fetch_add on
/// the bucket, sum, and a CAS max), so concurrent recorders never contend
/// on a shared line; Read() merges every shard. The trade: count/sum/max
/// are exact, quantiles are bucket-resolution estimates — the right trade
/// for latency tails, where "p99 is ~2ms" is the question and a factor-2
/// bucket is plenty.
///
/// Values are raw uint64s; by convention the registry's `*_ns` histograms
/// record nanoseconds (from NowNanos()) and unit-free ones (batch sizes)
/// record counts.
class Histogram {
 public:
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// log₂ bucket index: 0 for {0, 1}, floor(log2(v)) otherwise.
  static int BucketOf(uint64_t value) {
    if (value <= 1) return 0;
    return 63 - __builtin_clzll(value);
  }
  /// Inclusive lower / exclusive upper value bound of bucket i.
  static uint64_t BucketLow(int i) { return i == 0 ? 0 : (uint64_t{1} << i); }
  static uint64_t BucketHigh(int i) {
    return i >= 63 ? ~uint64_t{0} : (uint64_t{1} << (i + 1));
  }

  void Record(uint64_t value);
  /// Merged point-in-time view over all shards.
  HistogramSnapshot Read() const;
  void Reset();

 private:
  /// One cache line per shard keeps recorders on different cores from
  /// false-sharing; the shard count is a fixed small power of two —
  /// threads hash onto shards, they do not own them exclusively, so a
  /// shard's atomics still must be atomics.
  static constexpr int kNumShards = 16;
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::array<Shard, kNumShards> shards_;
};

// -------------------------------------------------------------- registry ---

/// Point-in-time copy of every registered metric, name-sorted.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// The named counter's value, 0 when absent (snapshots are sparse:
  /// a metric exists only once some code path has touched it).
  uint64_t CounterValue(const std::string& name) const;
  /// The named histogram, empty when absent.
  HistogramSnapshot HistogramValue(const std::string& name) const;
};

/// Process-wide named-metric registry.
///
/// Naming scheme: `spq.<component>.<measurement>`, dot-separated, with
/// `_ns` suffixing nanosecond histograms (e.g. `spq.serving.queue_wait_ns`,
/// `spq.store.cells_materialized`). DumpPrometheus() sanitizes names to
/// the Prometheus charset (dots become underscores).
///
/// Usage contract: look a metric up ONCE (the returned reference is
/// stable for the process lifetime — metrics are never unregistered) and
/// cache it, typically in a function-local static:
///
///   static metrics::Counter& folds =
///       metrics::MetricsRegistry::Global().counter("spq.store.delta_folds");
///   folds.Increment();
///
/// Lookup takes a mutex (registration is rare and cold); recording on the
/// returned object is lock-free. ResetForTest() zeroes every value but
/// keeps the objects registered, so cached references stay valid.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  RegistrySnapshot Snapshot() const;
  /// Prometheus text exposition format: counter/gauge samples plus
  /// cumulative `_bucket{le="..."}` / `_sum` / `_count` series per
  /// histogram (le bounds in the histogram's raw unit).
  void DumpPrometheus(std::ostream& os) const;
  /// Zeroes every registered value in place (objects stay registered and
  /// cached references stay valid). For tests and bench section resets.
  void ResetForTest();

 private:
  struct Impl;
  Impl* impl_;
};

/// RAII latency probe: records NowNanos()-elapsed into `hist` on scope
/// exit. `hist` may be null (disabled knob) — then the timer is inert.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist)
      : hist_(hist), start_ns_(hist != nullptr ? NowNanos() : 0) {}
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) hist_->Record(NowNanos() - start_ns_);
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_ns_;
};

}  // namespace spq::metrics

#endif  // SPQ_COMMON_METRICS_H_
