#ifndef SPQ_COMMON_SIMD_H_
#define SPQ_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace spq::simd {

/// \brief Which distance-kernel implementation the reduce cores use for the
/// candidate-bucket distance test (reduce_core.h).
///
/// The knob exists for the same reason as ShuffleMode/JoinMode: every fast
/// path in this repo lands A/B-testable against the code it replaces.
/// `kScalar` runs the pre-kernel inline loop verbatim (one candidate at a
/// time, distance computed straight off CellData's positions); `kAuto`
/// gathers each probe's candidates into a small coordinate buffer and
/// tests them through DistanceWithinMask in lanes of 4 (AVX2 when compiled
/// in and supported by the CPU, a portable scalar loop otherwise). Results
/// and every SPQ counter are bit-identical across modes — see
/// kernel_equivalence_test.cc.
enum class KernelMode {
  kAuto,
  kScalar,
};

/// True when the AVX2 backend was compiled in (SPQ_SIMD=ON and the
/// compiler supports -mavx2) AND the running CPU reports AVX2. The
/// batched path silently uses the portable loop when false, so a binary
/// built with SPQ_SIMD=ON stays correct on any x86-64.
bool Avx2Available();

/// Backend that `mode` resolves to at runtime: "avx2" or "scalar" for
/// kAuto (depending on Avx2Available), always "scalar" for kScalar.
/// Benches emit this so BENCH_*.json records what actually ran.
const char* KernelName(KernelMode mode);

/// \brief The batched distance kernel: for each candidate i in [0, n),
///   out[i] = ((xs[i] - qx)² + (ys[i] - qy)² <= r2) ? 1 : 0.
///
/// Bit-compatibility contract: each lane performs exactly the scalar
/// sequence sub/sub/mul/mul/add/compare of geo::Distance2 — no FMA
/// contraction, no reassociation — so a lane's verdict always equals the
/// scalar expression's (including NaN => 0, matching `<=` on NaN). The
/// AVX2 backend is used when available, otherwise the portable loop.
void DistanceWithinMask(const double* xs, const double* ys, std::size_t n,
                        double qx, double qy, double r2, uint8_t* out);

/// The portable reference loop, exposed so tests can pin the AVX2 backend
/// against it lane-for-lane.
void DistanceWithinMaskScalar(const double* xs, const double* ys,
                              std::size_t n, double qx, double qy, double r2,
                              uint8_t* out);

}  // namespace spq::simd

#endif  // SPQ_COMMON_SIMD_H_
