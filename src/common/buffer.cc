#include "common/buffer.h"

namespace spq {

void Buffer::PutUint32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
}

void Buffer::PutUint64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
}

void Buffer::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutUint64(bits);
}

void Buffer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(v));
}

void Buffer::PutString(const std::string& s) {
  PutVarint(s.size());
  PutBytes(s.data(), s.size());
}

void Buffer::PutBytes(const void* data, std::size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

void Buffer::Append(const Buffer& other) {
  bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
}

Status BufferReader::GetUint8(uint8_t* out) {
  if (remaining() < 1) return Status::OutOfRange("GetUint8 past end");
  *out = data_[pos_++];
  return Status::OK();
}

Status BufferReader::GetUint32(uint32_t* out) {
  if (remaining() < 4) return Status::OutOfRange("GetUint32 past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status BufferReader::GetUint64(uint64_t* out) {
  if (remaining() < 8) return Status::OutOfRange("GetUint64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status BufferReader::GetDouble(double* out) {
  uint64_t bits;
  SPQ_RETURN_NOT_OK(GetUint64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status BufferReader::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (exhausted()) return Status::OutOfRange("GetVarint past end");
    if (shift >= 64) return Status::OutOfRange("GetVarint overflow");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status BufferReader::GetString(std::string* out) {
  uint64_t n;
  SPQ_RETURN_NOT_OK(GetVarint(&n));
  if (remaining() < n) return Status::OutOfRange("GetString past end");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return Status::OK();
}

Status BufferReader::GetBytes(void* out, std::size_t n) {
  if (remaining() < n) return Status::OutOfRange("GetBytes past end");
  // n == 0 must not reach memcpy: `out` may be the null data() of an empty
  // container, and memcpy's arguments are declared nonnull.
  if (n == 0) return Status::OK();
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace spq
