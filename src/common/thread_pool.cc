#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace spq {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;  // idempotent (destructor after explicit call)
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // A task enqueued now would never run (workers are gone) and a
      // subsequent Wait() could block forever on it.
      assert(false && "ThreadPool::Submit called after Shutdown()");
      return;
    }
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The caller claims chunks too, so a single-item loop (or a pool whose
  // workers are busy with another caller's job) runs inline with no
  // submit/wake round trip.
  const std::size_t helpers = std::min(pool.num_threads(), n - 1);
  std::atomic<std::size_t> next{0};
  // Dynamic chunking: each worker repeatedly claims a small contiguous block
  // so that skewed per-item costs (e.g. hot reducers) still balance.
  const std::size_t chunk = std::max<std::size_t>(1, n / ((helpers + 1) * 8));
  auto run_chunks = [&next, n, chunk, &fn] {
    for (;;) {
      std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };
  // Per-call completion latch instead of pool.Wait(): Wait() observes the
  // whole pool (queue empty AND no active task from *any* caller), which
  // would make concurrent ParallelFor calls on a shared pool block on each
  // other's unrelated work.
  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  std::size_t pending = helpers;
  for (std::size_t w = 0; w < helpers; ++w) {
    pool.Submit([&run_chunks, &latch_mutex, &latch_cv, &pending] {
      run_chunks();
      // Notify while holding the lock: the caller may destroy the latch the
      // instant it observes pending == 0, so the helper must not touch it
      // after releasing the mutex.
      std::lock_guard<std::mutex> lock(latch_mutex);
      if (--pending == 0) latch_cv.notify_one();
    });
  }
  run_chunks();
  std::unique_lock<std::mutex> lock(latch_mutex);
  latch_cv.wait(lock, [&pending] { return pending == 0; });
}

}  // namespace spq
