#ifndef SPQ_COMMON_BUFFER_H_
#define SPQ_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace spq {

/// \brief Growable byte sink with primitive encoders.
///
/// The MapReduce shuffle serializes every emitted record through a Buffer,
/// which gives byte-accurate shuffle accounting (what HDFS/network traffic
/// would have been) and forces map outputs through a realistic
/// encode/decode boundary instead of sharing pointers between "machines".
///
/// Encoding: fixed-width little-endian for 32/64-bit scalars and doubles,
/// LEB128 varints for lengths and small counts.
class Buffer {
 public:
  Buffer() = default;

  void Clear() { bytes_.clear(); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const uint8_t* data() const { return bytes_.data(); }

  void PutUint8(uint8_t v) { bytes_.push_back(v); }
  void PutUint32(uint32_t v);
  void PutUint64(uint64_t v);
  void PutDouble(double v);
  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(uint64_t v);
  /// Varint length followed by raw bytes.
  void PutString(const std::string& s);
  void PutBytes(const void* data, std::size_t n);

  /// Appends the full contents of another buffer (no length prefix).
  void Append(const Buffer& other);

  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// \brief Sequential reader over a byte span produced by Buffer.
///
/// All Get* methods return Status::OutOfRange on truncated input instead of
/// reading past the end, so corrupted shuffle segments surface as errors.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& bytes)
      : BufferReader(bytes.data(), bytes.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }
  std::size_t position() const { return pos_; }

  Status GetUint8(uint8_t* out);
  Status GetUint32(uint32_t* out);
  Status GetUint64(uint64_t* out);
  Status GetDouble(double* out);
  Status GetVarint(uint64_t* out);
  Status GetString(std::string* out);
  Status GetBytes(void* out, std::size_t n);

 private:
  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace spq

#endif  // SPQ_COMMON_BUFFER_H_
