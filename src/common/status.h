#ifndef SPQ_COMMON_STATUS_H_
#define SPQ_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace spq {

/// \brief Error-code based result of an operation, in the RocksDB/Arrow
/// tradition: library code never throws; every fallible call returns a
/// Status (or a StatusOr<T>, see statusor.h).
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus a human-readable message otherwise.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kIOError = 3,
    kAborted = 4,
    kOutOfRange = 5,
    kInternal = 6,
    kNotSupported = 7,
    kUnavailable = 8,
    kFailedPrecondition = 9,
  };

  /// Creates an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory functions, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  /// Transient overload: the caller may retry later (admission-queue
  /// backpressure, serving shutdown).
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// The operation is valid in general but not against the object's
  /// current state (e.g. checkpointing a mutated store); the caller must
  /// change the state first, not merely retry.
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Evaluates an expression returning Status and propagates any error to the
/// caller. Usage: SPQ_RETURN_NOT_OK(DoThing());
#define SPQ_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::spq::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace spq

#endif  // SPQ_COMMON_STATUS_H_
