#ifndef SPQ_COMMON_HASH_H_
#define SPQ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace spq {

/// 64-bit finalizer-grade mixer (MurmurHash3 fmix64). Used to spread cell
/// ids over reduce partitions when R < number of cells.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

/// boost-style hash combiner.
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace spq

#endif  // SPQ_COMMON_HASH_H_
