#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spq {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

uint32_t Rng::NextUint32(uint32_t bound) {
  return static_cast<uint32_t>(NextUint64(bound));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box–Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

uint32_t Rng::NextPoisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's algorithm.
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint32_t count = 0;
    while (prod > limit) {
      ++count;
      prod *= NextDouble();
    }
    return count;
  }
  // Normal approximation for large means.
  double v = NextGaussian(mean, std::sqrt(mean));
  return v <= 0.0 ? 0u : static_cast<uint32_t>(std::lround(v));
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t state = NextUint64() ^ (salt * 0x9E3779B97F4A7C15ULL);
  return Rng(SplitMix64(state));
}

ZipfSampler::ZipfSampler(uint32_t n, double s) : n_(n), s_(s), cdf_(n) {
  assert(n > 0);
  double sum = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (uint32_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace spq
