#ifndef SPQ_COMMON_TRACE_H_
#define SPQ_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/metrics.h"

namespace spq::trace {

// -------------------------------------------------------- span inventory ---
// Every TRACE_SPAN site on the request path, by component (names follow
// the metric naming scheme of common/metrics.h; the matching metrics are
// inventoried there). One traced warm batch shows the whole chain nested:
// door.admit → door.batch_close → door.serve_batch → query.warm_batch →
// job.run → job.map/shuffle/reduce → reduce.join per group.
//
//   door.admit / door.batch_close / door.serve_batch
//                     — SpqFrontDoor: admission, executor batch cutoff
//                       (locked drain), batch dispatch (spq/serving.cc)
//   query.warm / query.warm_batch / query.snapshot_pin
//                     — SpqEngine::Query / QueryBatch, and the RCU
//                       snapshot pin inside each (spq/engine.cc)
//   store.build / store.publish
//                     — BuildStore dataset job; snapshot swap publication
//   store.materialize / store.fold_delta / store.compact
//                     — CellStore::Serve first-touch pipeline
//   store.checkpoint / store.recover
//                     — whole-store persistence (spq/cell_store.cc)
//   job.run / job.map / job.shuffle / job.reduce / map.task / reduce.task
//                     — mapreduce runtime phases and per-task spans
//                       (mapreduce/runtime.h)
//   reduce.join       — one per reduce GROUP (spq/reduce_core.h): the
//                       finest-grained span, which is why the disabled
//                       cost — one relaxed load + branch — is gated in
//                       bench_store at <= 3% of warm p50.
//   wal.append / wal.replay
//                     — StoreWal record I/O (spq/wal.cc)

/// One completed span. `name` must be a string literal (or otherwise
/// outlive the tracer) — the ring stores the pointer, not a copy, so a
/// disabled-then-drained tracer never owns heap strings.
struct SpanEvent {
  const char* name = nullptr;
  uint32_t tid = 0;       ///< per-thread ring id (dense, first-touch order)
  uint64_t start_ns = 0;  ///< metrics::NowNanos() at span open
  uint64_t dur_ns = 0;
};

namespace internal {
extern std::atomic<bool> g_enabled;
void RecordSpan(const char* name, uint64_t start_ns, uint64_t dur_ns);
}  // namespace internal

/// Whether spans are being captured. The disabled fast path — one relaxed
/// load and a branch — is the tracer's entire cost on the warm hot loop
/// (gated in bench_store: unmeasurable against warm p50).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns capture on/off. Off is the default; SPQ_TRACE=1 in the
/// environment turns it on at process start (see EnvObservability).
void SetEnabled(bool enabled);

/// Discards every buffered span (capture state unchanged). Typical
/// capture protocol: Clear(); SetEnabled(true); …work…; SetEnabled(false);
/// ExportChromeTrace(os).
void Clear();

/// Merged copy of every thread's buffered spans, sorted by start time.
std::vector<SpanEvent> Collect();

/// Spans dropped because a thread's ring was full (rings keep the
/// EARLIEST spans of a capture — drop-newest — so the head of a capture
/// window is always intact).
uint64_t DroppedSpans();

/// chrome://tracing / Perfetto-loadable JSON: one complete event
/// ("ph":"X") per span, timestamps in microseconds.
void ExportChromeTrace(std::ostream& os);

/// One JSON object per line (jq/grep-friendly): name, tid, start_ns,
/// dur_ns.
void ExportJsonl(std::ostream& os);

/// RAII span: captures NowNanos() at construction and records on scope
/// exit — when tracing was enabled at construction (a capture toggling
/// mid-span records it; one toggled off mid-span is still recorded —
/// harmless either way, the enable check is construction-time only).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Enabled()) {
      name_ = name;
      start_ns_ = metrics::NowNanos();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, metrics::NowNanos() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

#define SPQ_TRACE_CONCAT_INNER(a, b) a##b
#define SPQ_TRACE_CONCAT(a, b) SPQ_TRACE_CONCAT_INNER(a, b)

/// Scoped span over the rest of the enclosing block. `name` must be a
/// string literal; use dotted lowercase ("reduce.join", "store.compact")
/// matching the metric naming scheme.
#define TRACE_SPAN(name) \
  ::spq::trace::ScopedSpan SPQ_TRACE_CONCAT(spq_trace_span_, __LINE__)(name)

}  // namespace spq::trace

#endif  // SPQ_COMMON_TRACE_H_
