#ifndef SPQ_COMMON_CRC32C_H_
#define SPQ_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spq {

/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the
/// checksum HDFS uses per block chunk.
///
/// Two backends behind a runtime cpu check (same scheme as the distance
/// kernels in common/simd.h): the SSE4.2 `crc32` instruction when the
/// build enables it (SPQ_SIMD=ON) and the cpu has it, a software
/// slice-by-4 table loop otherwise. Both compute the same polynomial in
/// the same reflected convention, so checksums written by one backend
/// always verify under the other.
///
/// `seed` is a previous Crc32c result, so checksums can be computed
/// incrementally over split buffers:
///   Crc32c(ab) == Crc32c(b, len_b, Crc32c(a, len_a)).
uint32_t Crc32c(const uint8_t* data, std::size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(const std::vector<uint8_t>& bytes, uint32_t seed = 0) {
  return Crc32c(bytes.data(), bytes.size(), seed);
}

/// "sse4.2" or "software" — which backend Crc32c dispatches to here.
const char* Crc32cBackend();

}  // namespace spq

#endif  // SPQ_COMMON_CRC32C_H_
