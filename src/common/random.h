#ifndef SPQ_COMMON_RANDOM_H_
#define SPQ_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace spq {

/// \brief Deterministic 64-bit PRNG (xoshiro256**) seeded via SplitMix64.
///
/// Every source of randomness in the library flows through this class so
/// that datasets, workloads and fault injection are reproducible from a
/// single seed. Not cryptographically secure; not thread-safe — use one
/// instance per thread (Fork() derives independent streams).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [0, bound). bound must be > 0.
  uint32_t NextUint32(uint32_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Poisson-distributed count (Knuth for small mean, normal approx above).
  uint32_t NextPoisson(double mean);

  /// Derives an independent generator (stream-split by re-seeding through
  /// SplitMix64 of the current state and a salt).
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
};

/// \brief Zipf(s) sampler over ranks {0, ..., n-1} with exponent `s`.
///
/// Rank 0 is the most frequent. Uses the inverse-CDF method over a
/// precomputed cumulative table — O(n) memory, O(log n) per sample; fine up
/// to the ~100k-term vocabularies used by the generators.
class ZipfSampler {
 public:
  /// \param n number of ranks (> 0)
  /// \param s skew exponent (>= 0); s=0 degenerates to uniform
  ZipfSampler(uint32_t n, double s);

  /// Draws one rank in [0, n).
  uint32_t Sample(Rng& rng) const;

  uint32_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint32_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace spq

#endif  // SPQ_COMMON_RANDOM_H_
