// CRC-32C backends. Like common/simd.cc, this is the only translation
// unit compiled with its extra ISA flag (-msse4.2, see the SPQ_SIMD
// handling in the root CMakeLists), so the `crc32` intrinsics stay behind
// a function-call boundary and the rest of the library keeps the baseline
// instruction set.

#include "common/crc32c.h"

#include <array>

#if defined(SPQ_CRC32C_SSE42)
#include <nmmintrin.h>
#endif

namespace spq {

namespace {

/// 4 tables of 256 entries: table[0] is the classic byte-at-a-time CRC-32C
/// table, table[k] advances a byte through k additional zero bytes, which
/// lets the hot loop fold 4 input bytes per iteration (slice-by-4).
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  constexpr Crc32cTables() : t{} {
    constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 4; ++k) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Crc32cTables kTables{};

/// Software slice-by-4 on the running (pre-finalization) crc state.
uint32_t UpdateSoftware(uint32_t crc, const uint8_t* data, std::size_t n) {
  const auto& t = kTables.t;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(data[0]) |
           (static_cast<uint32_t>(data[1]) << 8) |
           (static_cast<uint32_t>(data[2]) << 16) |
           (static_cast<uint32_t>(data[3]) << 24);
    crc = t[3][crc & 0xffu] ^ t[2][(crc >> 8) & 0xffu] ^
          t[1][(crc >> 16) & 0xffu] ^ t[0][crc >> 24];
    data += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *data) & 0xffu] ^ (crc >> 8);
    ++data;
    --n;
  }
  return crc;
}

#if defined(SPQ_CRC32C_SSE42)

/// The SSE4.2 `crc32` instruction computes exactly this polynomial in
/// this reflected convention, 8 bytes per issue, on the same running
/// state the table loop carries — the two backends are bit-identical.
uint32_t UpdateSse42(uint32_t crc, const uint8_t* data, std::size_t n) {
  uint64_t state = crc;
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    state = _mm_crc32_u64(state, word);
    data += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(state);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *data);
    ++data;
    --n;
  }
  return crc;
}

bool Sse42Available() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

#else

bool Sse42Available() { return false; }

#endif  // SPQ_CRC32C_SSE42

}  // namespace

uint32_t Crc32c(const uint8_t* data, std::size_t n, uint32_t seed) {
  const uint32_t crc = ~seed;
#if defined(SPQ_CRC32C_SSE42)
  if (Sse42Available()) return ~UpdateSse42(crc, data, n);
#endif
  return ~UpdateSoftware(crc, data, n);
}

const char* Crc32cBackend() {
  return Sse42Available() ? "sse4.2" : "software";
}

}  // namespace spq
