#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace spq {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::MinLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logger::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace spq
