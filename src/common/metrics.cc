#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>

namespace spq::metrics {

double PercentileOfSamples(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return static_cast<double>(max);
  // Nearest-rank walk over the cumulative bucket counts, then linear
  // interpolation inside the rank's bucket (the estimate therefore lands
  // in the same log₂ bucket as the true quantile).
  const double rank = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t in_bucket = buckets[i];
    if (rank < static_cast<double>(seen + in_bucket)) {
      const double lo = static_cast<double>(Histogram::BucketLow(i));
      const double hi = std::min(static_cast<double>(Histogram::BucketHigh(i)),
                                 static_cast<double>(max) + 1.0);
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * within;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

namespace {

/// Stable per-thread shard pick: threads are striped over shards
/// round-robin at first touch, so shard collisions only appear beyond
/// kNumShards concurrent recorders (and stay correct — shards are atomic).
uint32_t ThreadShardIndex() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const uint32_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace

void Histogram::Record(uint64_t value) {
  Shard& shard = shards_[ThreadShardIndex() % kNumShards];
  shard.buckets[static_cast<std::size_t>(BucketOf(value))].fetch_add(
      1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = shard.max.load(std::memory_order_relaxed);
  while (value > prev && !shard.max.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Read() const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      const uint64_t n = shard.buckets[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
      snap.buckets[static_cast<std::size_t>(i)] += n;
      snap.count += n;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

uint64_t RegistrySnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

HistogramSnapshot RegistrySnapshot::HistogramValue(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return v;
  }
  return HistogramSnapshot{};
}

// std::map keeps iteration name-sorted (stable dump/snapshot order) and
// never invalidates element addresses — the returned references survive
// any later registration.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms) {
    snap.histograms.emplace_back(name, histogram->Read());
  }
  return snap;
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z0-9_:]; everything else (the
/// registry's dots) becomes '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void MetricsRegistry::DumpPrometheus(std::ostream& os) const {
  const RegistrySnapshot snap = Snapshot();
  for (const auto& [name, value] : snap.counters) {
    const std::string pname = PrometheusName(name);
    os << "# TYPE " << pname << " counter\n" << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pname = PrometheusName(name);
    os << "# TYPE " << pname << " gauge\n" << pname << " " << value << "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string pname = PrometheusName(name);
    os << "# TYPE " << pname << " histogram\n";
    uint64_t cumulative = 0;
    for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (hist.buckets[static_cast<std::size_t>(i)] == 0) continue;
      cumulative += hist.buckets[static_cast<std::size_t>(i)];
      os << pname << "_bucket{le=\"" << Histogram::BucketHigh(i) << "\"} "
         << cumulative << "\n";
    }
    os << pname << "_bucket{le=\"+Inf\"} " << hist.count << "\n";
    os << pname << "_sum " << hist.sum << "\n";
    os << pname << "_count " << hist.count << "\n";
  }
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, counter] : impl_->counters) counter->Reset();
  for (auto& [name, gauge] : impl_->gauges) gauge->Reset();
  for (auto& [name, histogram] : impl_->histograms) histogram->Reset();
}

}  // namespace spq::metrics
