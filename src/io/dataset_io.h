#ifndef SPQ_IO_DATASET_IO_H_
#define SPQ_IO_DATASET_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "dfs/mini_dfs.h"
#include "spq/engine.h"
#include "spq/types.h"
#include "text/vocabulary.h"

namespace spq::io {

/// \brief Dataset persistence.
///
/// Two formats:
///  - a compact binary format ("SPQD1") used to host datasets on the
///    MiniDfs cluster, mirroring how the paper's input lives in HDFS and
///    gets consumed block-wise by map tasks;
///  - a human-readable TSV for interchange with external tools:
///      D <id> <x> <y>
///      F <id> <x> <y> <kw1,kw2,...>
///    Keywords are vocabulary terms when a Vocabulary is supplied,
///    numeric term ids otherwise.

/// Serializes a dataset to the binary format.
std::vector<uint8_t> EncodeDataset(const core::Dataset& dataset);

/// Parses the binary format. Corrupt or truncated input yields an error.
StatusOr<core::Dataset> DecodeDataset(const std::vector<uint8_t>& bytes);

/// Writes the binary format to a DFS file (write-once).
Status StoreDataset(dfs::MiniDfs& dfs, const std::string& name,
                    const core::Dataset& dataset);

/// Reads a dataset back from DFS (tolerates datanode failures up to the
/// replication factor, like any DFS read).
StatusOr<core::Dataset> LoadDataset(const dfs::MiniDfs& dfs,
                                    const std::string& name);

/// Writes the TSV format to a local file.
Status SaveDatasetTsv(const std::string& path, const core::Dataset& dataset,
                      const text::Vocabulary* vocab = nullptr);

/// Reads the TSV format from a local file. With a Vocabulary, keyword
/// tokens are interned; otherwise they must be numeric term ids.
StatusOr<core::Dataset> LoadDatasetTsv(const std::string& path,
                                       text::Vocabulary* vocab = nullptr);

/// Convenience: loads `name` from the DFS cluster and builds a query
/// engine over it — the "job input lives in HDFS" deployment shape of the
/// paper (data is read once per engine, then queried many times).
StatusOr<std::unique_ptr<core::SpqEngine>> MakeEngineFromDfs(
    const dfs::MiniDfs& dfs, const std::string& name,
    core::EngineOptions options = {});

}  // namespace spq::io

#endif  // SPQ_IO_DATASET_IO_H_
