#include "io/dataset_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/buffer.h"
#include "mapreduce/codec.h"

namespace spq::io {

namespace {

constexpr char kMagic[] = "SPQD1";
constexpr std::size_t kMagicLen = 5;

}  // namespace

std::vector<uint8_t> EncodeDataset(const core::Dataset& dataset) {
  Buffer buf;
  buf.PutBytes(kMagic, kMagicLen);
  buf.PutDouble(dataset.bounds.min_x);
  buf.PutDouble(dataset.bounds.min_y);
  buf.PutDouble(dataset.bounds.max_x);
  buf.PutDouble(dataset.bounds.max_y);
  buf.PutVarint(dataset.data.size());
  for (const auto& p : dataset.data) {
    buf.PutVarint(p.id);
    buf.PutDouble(p.pos.x);
    buf.PutDouble(p.pos.y);
  }
  buf.PutVarint(dataset.features.size());
  for (const auto& f : dataset.features) {
    buf.PutVarint(f.id);
    buf.PutDouble(f.pos.x);
    buf.PutDouble(f.pos.y);
    mapreduce::Codec<std::vector<text::TermId>>::Encode(f.keywords.ids(),
                                                        buf);
  }
  return buf.TakeBytes();
}

StatusOr<core::Dataset> DecodeDataset(const std::vector<uint8_t>& bytes) {
  BufferReader reader(bytes.data(), bytes.size());
  char magic[kMagicLen];
  SPQ_RETURN_NOT_OK(reader.GetBytes(magic, kMagicLen));
  if (std::string(magic, kMagicLen) != kMagic) {
    return Status::InvalidArgument("not an SPQD1 dataset");
  }
  core::Dataset dataset;
  SPQ_RETURN_NOT_OK(reader.GetDouble(&dataset.bounds.min_x));
  SPQ_RETURN_NOT_OK(reader.GetDouble(&dataset.bounds.min_y));
  SPQ_RETURN_NOT_OK(reader.GetDouble(&dataset.bounds.max_x));
  SPQ_RETURN_NOT_OK(reader.GetDouble(&dataset.bounds.max_y));
  uint64_t num_data;
  SPQ_RETURN_NOT_OK(reader.GetVarint(&num_data));
  dataset.data.reserve(num_data);
  for (uint64_t i = 0; i < num_data; ++i) {
    core::DataObject p;
    SPQ_RETURN_NOT_OK(reader.GetVarint(&p.id));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&p.pos.x));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&p.pos.y));
    dataset.data.push_back(p);
  }
  uint64_t num_features;
  SPQ_RETURN_NOT_OK(reader.GetVarint(&num_features));
  dataset.features.reserve(num_features);
  for (uint64_t i = 0; i < num_features; ++i) {
    core::FeatureObject f;
    SPQ_RETURN_NOT_OK(reader.GetVarint(&f.id));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&f.pos.x));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&f.pos.y));
    std::vector<text::TermId> ids;
    SPQ_RETURN_NOT_OK(
        mapreduce::Codec<std::vector<text::TermId>>::Decode(reader, &ids));
    f.keywords = text::KeywordSet(std::move(ids));
    dataset.features.push_back(std::move(f));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after dataset payload");
  }
  return dataset;
}

Status StoreDataset(dfs::MiniDfs& dfs, const std::string& name,
                    const core::Dataset& dataset) {
  return dfs.WriteFile(name, EncodeDataset(dataset));
}

StatusOr<core::Dataset> LoadDataset(const dfs::MiniDfs& dfs,
                                    const std::string& name) {
  SPQ_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, dfs.ReadFile(name));
  return DecodeDataset(bytes);
}

StatusOr<std::unique_ptr<core::SpqEngine>> MakeEngineFromDfs(
    const dfs::MiniDfs& dfs, const std::string& name,
    core::EngineOptions options) {
  SPQ_ASSIGN_OR_RETURN(core::Dataset dataset, LoadDataset(dfs, name));
  return std::make_unique<core::SpqEngine>(std::move(dataset), options);
}

Status SaveDatasetTsv(const std::string& path, const core::Dataset& dataset,
                      const text::Vocabulary* vocab) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.precision(17);
  out << "# bounds\t" << dataset.bounds.min_x << '\t' << dataset.bounds.min_y
      << '\t' << dataset.bounds.max_x << '\t' << dataset.bounds.max_y << '\n';
  for (const auto& p : dataset.data) {
    out << "D\t" << p.id << '\t' << p.pos.x << '\t' << p.pos.y << '\n';
  }
  for (const auto& f : dataset.features) {
    out << "F\t" << f.id << '\t' << f.pos.x << '\t' << f.pos.y << '\t';
    bool first = true;
    for (text::TermId id : f.keywords.ids()) {
      if (!first) out << ',';
      first = false;
      if (vocab != nullptr) {
        auto term = vocab->Term(id);
        if (!term.ok()) return term.status();
        out << *term;
      } else {
        out << id;
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<core::Dataset> LoadDatasetTsv(const std::string& path,
                                       text::Vocabulary* vocab) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  core::Dataset dataset;
  bool saw_bounds = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    auto parse_error = [&](const std::string& what) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + what);
    };
    if (tag == "#") {
      std::string kind;
      fields >> kind;
      if (kind == "bounds") {
        fields >> dataset.bounds.min_x >> dataset.bounds.min_y >>
            dataset.bounds.max_x >> dataset.bounds.max_y;
        if (!fields) return parse_error("bad bounds header");
        saw_bounds = true;
      }
      continue;
    }
    if (tag == "D") {
      core::DataObject p;
      fields >> p.id >> p.pos.x >> p.pos.y;
      if (!fields) return parse_error("bad data object row");
      dataset.data.push_back(p);
    } else if (tag == "F") {
      core::FeatureObject f;
      std::string keywords;
      fields >> f.id >> f.pos.x >> f.pos.y >> keywords;
      if (!fields) return parse_error("bad feature object row");
      std::vector<text::TermId> ids;
      std::string token;
      std::istringstream kw_stream(keywords);
      while (std::getline(kw_stream, token, ',')) {
        if (token.empty()) continue;
        if (vocab != nullptr) {
          ids.push_back(vocab->Intern(token));
        } else {
          char* end = nullptr;
          unsigned long v = std::strtoul(token.c_str(), &end, 10);
          if (end == nullptr || *end != '\0') {
            return parse_error("non-numeric term id '" + token +
                               "' without vocabulary");
          }
          ids.push_back(static_cast<text::TermId>(v));
        }
      }
      f.keywords = text::KeywordSet(std::move(ids));
      dataset.features.push_back(std::move(f));
    } else {
      return parse_error("unknown row tag '" + tag + "'");
    }
  }
  if (!saw_bounds) {
    return Status::InvalidArgument(path + ": missing '# bounds' header");
  }
  return dataset;
}

}  // namespace spq::io
