#ifndef SPQ_SPQ_TOPK_H_
#define SPQ_SPQ_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "spq/types.h"

namespace spq::core {

/// \brief The sorted list L_k of Algorithms 2 and 4: the k data objects
/// with the best scores seen so far, plus the threshold τ (score of the
/// k-th best, 0 while fewer than k objects are tracked).
///
/// Scores only ever increase (τ(p) is a running max), so Update() either
/// raises an already-listed object or inserts a newcomer. O(k) per update;
/// k is small (≤ 100 in the paper's experiments).
class TopKList {
 public:
  explicit TopKList(uint32_t k) : k_(k) {}

  /// Records that object `id` reached `score`. No-op when the score cannot
  /// enter the current top-k.
  void Update(ObjectId id, double score) {
    // Already tracked? Raise its score and restore order.
    for (auto& e : entries_) {
      if (e.id == id) {
        if (score > e.score) {
          e.score = score;
          std::sort(entries_.begin(), entries_.end(), ResultBetter);
        }
        return;
      }
    }
    if (entries_.size() < k_) {
      entries_.push_back({id, score});
      std::sort(entries_.begin(), entries_.end(), ResultBetter);
      return;
    }
    if (ResultBetter({id, score}, entries_.back())) {
      entries_.back() = {id, score};
      std::sort(entries_.begin(), entries_.end(), ResultBetter);
    }
  }

  /// τ — the k-th best score so far; 0 until k objects are tracked.
  /// Any unseen feature with w(f,q) <= τ cannot change the membership of
  /// the top-k list (it could only create ties).
  double Threshold() const {
    return entries_.size() < k_ ? 0.0 : entries_.back().score;
  }

  const std::vector<ResultEntry>& entries() const { return entries_; }
  bool full() const { return entries_.size() >= k_; }
  uint32_t k() const { return k_; }

 private:
  uint32_t k_;
  std::vector<ResultEntry> entries_;  // kept sorted by ResultBetter
};

/// Merges per-cell result lists into the global top-k (the cheap
/// centralized final step of Section 4.2). Deduplication is unnecessary —
/// each data object belongs to exactly one cell — but entries are ordered
/// deterministically (score desc, id asc).
inline std::vector<ResultEntry> MergeTopK(std::vector<ResultEntry> candidates,
                                          uint32_t k) {
  std::sort(candidates.begin(), candidates.end(), ResultBetter);
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

}  // namespace spq::core

#endif  // SPQ_SPQ_TOPK_H_
