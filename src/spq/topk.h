#ifndef SPQ_SPQ_TOPK_H_
#define SPQ_SPQ_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "spq/types.h"

namespace spq::core {

/// \brief The sorted list L_k of Algorithms 2 and 4: the k data objects
/// with the best scores seen so far, plus the threshold τ (score of the
/// k-th best, 0 while fewer than k objects are tracked).
///
/// Scores only ever increase (τ(p) is a running max), so Update() either
/// raises an already-listed object or inserts a newcomer. The hot path —
/// a full list rejecting a candidate that cannot enter — is a single
/// comparison against the k-th entry; accepted updates sift into place
/// (no re-sort), so the worst case is O(k) with k ≤ 100 in the paper's
/// experiments. The selection is defined by the strict total order
/// ResultBetter, so the entries are independent of update order.
class TopKList {
 public:
  explicit TopKList(uint32_t k) : k_(k) {}

  /// Records that object `id` reached `score`. No-op when the score cannot
  /// enter the current top-k.
  void Update(ObjectId id, double score) {
    if (k_ == 0) return;  // degenerate list tracks nothing
    const ResultEntry candidate{id, score};
    if (entries_.size() >= k_ && !ResultBetter(candidate, entries_.back())) {
      // Cannot beat the k-th entry. A listed object is never rejected
      // here by mistake: its tracked score is >= entries_.back().score,
      // so any *raise* of it beats the back entry.
      return;
    }
    // Already tracked? Raise its score and restore order.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        if (score > entries_[i].score) {
          entries_[i].score = score;
          SiftUp(i);
        }
        return;
      }
    }
    if (entries_.size() < k_) {
      entries_.push_back(candidate);
    } else {
      entries_.back() = candidate;
    }
    SiftUp(entries_.size() - 1);
  }

  /// τ — the k-th best score so far; 0 until k objects are tracked.
  /// Any unseen feature with w(f,q) <= τ cannot change the membership of
  /// the top-k list (it could only create ties).
  double Threshold() const {
    return entries_.size() < k_ ? 0.0 : entries_.back().score;
  }

  const std::vector<ResultEntry>& entries() const { return entries_; }
  bool full() const { return entries_.size() >= k_; }
  uint32_t k() const { return k_; }

 private:
  /// Moves entry i forward to its sorted position (it can only have
  /// improved).
  void SiftUp(std::size_t i) {
    while (i > 0 && ResultBetter(entries_[i], entries_[i - 1])) {
      std::swap(entries_[i], entries_[i - 1]);
      --i;
    }
  }

  uint32_t k_;
  std::vector<ResultEntry> entries_;  // kept sorted by ResultBetter
};

/// Merges per-cell result lists into the global top-k (the cheap
/// centralized final step of Section 4.2). Deduplication is unnecessary —
/// each data object belongs to exactly one cell — but entries are ordered
/// deterministically (score desc, id asc).
inline std::vector<ResultEntry> MergeTopK(std::vector<ResultEntry> candidates,
                                          uint32_t k) {
  // Select-then-sort instead of a full sort: ResultBetter is a strict
  // total order (ids are distinct — each data object belongs to exactly
  // one cell), so the k selected entries and their order are identical to
  // the full sort's prefix, at O(n + k log k) instead of O(n log n). The
  // candidate list is every per-group top-k a query's reduce tasks
  // emitted, so n >> k on any multi-cell query.
  if (candidates.size() > k) {
    std::nth_element(candidates.begin(), candidates.begin() + k,
                     candidates.end(), ResultBetter);
    candidates.resize(k);
  }
  std::sort(candidates.begin(), candidates.end(), ResultBetter);
  return candidates;
}

}  // namespace spq::core

#endif  // SPQ_SPQ_TOPK_H_
