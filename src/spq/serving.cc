#include "spq/serving.h"

#include <algorithm>
#include <utility>

#include "common/trace.h"
#include "spq/cell_store.h"

namespace spq::core {

namespace {

/// Process-wide mirrors of the per-door tallies (cross-door totals for
/// DumpMetrics/Prometheus; the door's own Counters keep stats() exact
/// per instance). Looked up once, cached for the process lifetime.
struct DoorRegistryMetrics {
  metrics::Counter& admitted;
  metrics::Counter& rejected;
  metrics::Counter& coalesced;
  metrics::Counter& batches;
  metrics::Counter& cold_routed;
  metrics::Gauge& queue_depth;
  metrics::Histogram& queue_wait_ns;
  metrics::Histogram& batch_size;

  static DoorRegistryMetrics& Get() {
    static auto& registry = metrics::MetricsRegistry::Global();
    static DoorRegistryMetrics metrics_{
        registry.counter("spq.serving.admitted"),
        registry.counter("spq.serving.rejected"),
        registry.counter("spq.serving.coalesced"),
        registry.counter("spq.serving.batches"),
        registry.counter("spq.serving.cold_routed"),
        registry.gauge("spq.serving.queue_depth"),
        registry.histogram("spq.serving.queue_wait_ns"),
        registry.histogram("spq.serving.batch_size")};
    return metrics_;
  }
};

/// Defensive normalization so the executor loop can assume sane knobs.
ServingOptions Normalize(ServingOptions opts) {
  if (opts.max_batch == 0) opts.max_batch = 1;
  if (opts.num_executors == 0) opts.num_executors = 1;
  if (!(opts.max_wait_ms >= 0.0)) opts.max_wait_ms = 0.0;
  return opts;
}

/// The per-query view of one shared batch job: the query's own top-k
/// entries plus the batch job's stats (the aggregate counters are
/// batch-level — one shared map/shuffle cannot be attributed per query).
SpqResult MakeCoalescedResult(Algorithm algo, std::vector<ResultEntry> entries,
                              const SpqBatchResult& batch) {
  SpqResult result;
  result.entries = std::move(entries);
  SpqRunInfo& info = result.info;
  info.algorithm = algo;
  const mapreduce::Counters& counters = batch.job.counters;
  info.features_kept = counters.Get(counter::kFeaturesKept);
  info.features_pruned = counters.Get(counter::kFeaturesPruned);
  info.feature_duplicates = counters.Get(counter::kFeatureDuplicates);
  info.features_examined = counters.Get(counter::kFeaturesExamined);
  info.pairs_tested = counters.Get(counter::kPairsTested);
  info.early_terminations = counters.Get(counter::kEarlyTerminations);
  info.reduce_groups = counters.Get(counter::kGroups);
  info.cells_pruned = counters.Get(counter::kCellsPruned);
  info.signature_checks = counters.Get(counter::kSignatureChecks);
  info.warm_path = batch.warm_path;
  info.cold_fallback = batch.cold_fallback;
  info.job = batch.job;
  return result;
}

}  // namespace

SpqFrontDoor::SpqFrontDoor(const SpqEngine& engine)
    : engine_(engine),
      opts_(Normalize(engine.options().serving)),
      batch_size_hist_(opts_.max_batch + 1) {
  executors_.reserve(opts_.num_executors);
  for (uint32_t i = 0; i < opts_.num_executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

SpqFrontDoor::~SpqFrontDoor() { Shutdown(); }

std::future<StatusOr<SpqResult>> SpqFrontDoor::Submit(const core::Query& query,
                                                      Algorithm algo) {
  TRACE_SPAN("door.admit");
  Pending pending;
  pending.query = query;
  pending.algo = algo;
  pending.admitted_at = metrics::Clock::now();
  std::future<StatusOr<SpqResult>> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= opts_.queue_capacity) {
      // Backpressure is a loud, immediate, counted rejection — never an
      // unbounded buffer, never a silent drop.
      rejected_.Increment();
      DoorRegistryMetrics::Get().rejected.Increment();
      pending.promise.set_value(Status::Unavailable(
          stopping_ ? "serving front door is shut down"
                    : "admission queue full (" +
                          std::to_string(opts_.queue_capacity) + " waiting)"));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  admitted_.Increment();
  DoorRegistryMetrics::Get().admitted.Increment();
  DoorRegistryMetrics::Get().queue_depth.Add(1);
  queue_cv_.notify_one();
  return future;
}

StatusOr<SpqResult> SpqFrontDoor::Query(const core::Query& query,
                                        Algorithm algo) {
  return Submit(query, algo).get();
}

void SpqFrontDoor::ExecutorLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      // The batch-close span covers the coalescing window: from an
      // executor picking up queued work to the batch leaving the queue.
      TRACE_SPAN("door.batch_close");
      // Latency budget: hold the batch open until it fills or the OLDEST
      // admitted query has waited max_wait_ms. Shutdown closes it early —
      // admitted queries are served, just without further coalescing.
      if (opts_.max_wait_ms > 0.0) {
        const auto deadline =
            queue_.front().admitted_at +
            std::chrono::duration_cast<metrics::Clock::duration>(
                std::chrono::duration<double, std::milli>(opts_.max_wait_ms));
        queue_cv_.wait_until(lock, deadline, [this] {
          return stopping_ || queue_.size() >= opts_.max_batch;
        });
        if (queue_.empty()) continue;  // a peer drained it while we waited
      }
      // One batch = one algorithm: drain the same-algorithm prefix so a
      // mixed queue closes at the algorithm boundary (order preserved).
      const Algorithm algo = queue_.front().algo;
      const auto drained_at = metrics::Clock::now();
      while (!queue_.empty() && batch.size() < opts_.max_batch &&
             queue_.front().algo == algo) {
        DoorRegistryMetrics::Get().queue_wait_ns.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                drained_at - queue_.front().admitted_at)
                .count()));
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      DoorRegistryMetrics::Get().queue_depth.Add(
          -static_cast<int64_t>(batch.size()));
      if (!queue_.empty()) queue_cv_.notify_one();  // more work for a peer
    }
    ServeBatch(std::move(batch));
  }
}

void SpqFrontDoor::ServeBatch(std::vector<Pending> batch) {
  TRACE_SPAN("door.serve_batch");
  const Algorithm algo = batch.front().algo;
  // Oversized radii ride engine.Query()'s loud cold fallback individually,
  // so one out-of-contract query cannot drag its batchmates onto the cold
  // path. The fallback is snapshot-independent (see SpqEngine::Query), so
  // serving it from this executor is safe under concurrent traffic.
  const std::shared_ptr<const StoreSnapshot> snap = engine_.snapshot();
  const double max_radius =
      snap != nullptr ? snap->store->max_radius() : 0.0;
  std::vector<Pending> warm;
  warm.reserve(batch.size());
  for (Pending& pending : batch) {
    if (snap != nullptr && pending.query.radius > max_radius) {
      cold_routed_.Increment();
      DoorRegistryMetrics::Get().cold_routed.Increment();
      pending.promise.set_value(engine_.Query(pending.query, algo));
    } else {
      warm.push_back(std::move(pending));
    }
  }
  if (warm.empty()) return;

  batches_.Increment();
  batch_size_hist_[warm.size()].Increment();
  DoorRegistryMetrics::Get().batches.Increment();
  DoorRegistryMetrics::Get().batch_size.Record(warm.size());
  if (warm.size() == 1) {
    warm.front().promise.set_value(engine_.Query(warm.front().query, algo));
    return;
  }

  coalesced_.Increment(warm.size());
  DoorRegistryMetrics::Get().coalesced.Increment(warm.size());
  std::vector<core::Query> queries;
  queries.reserve(warm.size());
  for (const Pending& pending : warm) queries.push_back(pending.query);
  StatusOr<SpqBatchResult> result = engine_.QueryBatch(queries, algo);
  if (!result.ok()) {
    for (Pending& pending : warm) pending.promise.set_value(result.status());
    return;
  }
  for (std::size_t i = 0; i < warm.size(); ++i) {
    warm[i].promise.set_value(MakeCoalescedResult(
        algo, std::move(result->per_query[i]), *result));
  }
}

void SpqFrontDoor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(shutdown_mu_);
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
  executors_.clear();
}

ServingStats SpqFrontDoor::stats() const {
  ServingStats stats;
  stats.admitted = admitted_.Value();
  stats.rejected = rejected_.Value();
  // Derived, not stored: every Submit() bumps exactly one of the two
  // outcome counters, so this decomposition is consistent for any
  // interleaving — the old third `submitted` tally could be observed
  // incremented before either outcome was (the torn-read window).
  stats.submitted = stats.admitted + stats.rejected;
  stats.coalesced = coalesced_.Value();
  stats.batches = batches_.Value();
  stats.cold_routed = cold_routed_.Value();
  stats.batch_size_hist.reserve(batch_size_hist_.size());
  for (const metrics::Counter& bucket : batch_size_hist_) {
    stats.batch_size_hist.push_back(bucket.Value());
  }
  return stats;
}

}  // namespace spq::core
