#include "spq/batch.h"

#include <algorithm>
#include <array>
#include <bit>
#include <memory>
#include <utility>

#include "spq/reduce_core.h"
#include "text/keyword_set.h"

namespace spq::core {

namespace {

using BatchMapContext = mapreduce::MapContext<BatchCellKey, ShuffleObject>;
using BatchGroupValues = mapreduce::GroupValues<BatchCellKey, ShuffleObject>;
using BatchReduceContext = mapreduce::ReduceContext<BatchResultEntry>;

/// One input pass serving every query of the batch.
///
/// Key layout: data objects are emitted ONCE per cell under the sentinel
/// query index 0 (so they sort before every query's feature group within
/// the cell); query q's features go under query index q+1. The reducer
/// caches the cell's data objects from the sentinel group and replays them
/// into each query group, so the batch does not multiply the data-object
/// shuffle by the batch size.
class BatchMapper final
    : public mapreduce::Mapper<ShuffleObject, BatchCellKey, ShuffleObject> {
 public:
  BatchMapper(Algorithm algo, std::shared_ptr<const std::vector<Query>> queries,
              geo::UniformGrid grid, SpqJobOptions options)
      : algo_(algo),
        queries_(std::move(queries)),
        grid_(std::move(grid)),
        options_(options) {
    query_sigs_.reserve(queries_->size());
    for (const Query& query : *queries_) {
      query_sigs_.push_back(text::TermSignature(query.keywords.ids()));
    }
    BuildTermDict();
  }

  void Map(const ShuffleObject& x, BatchMapContext& ctx) override {
    const geo::CellId cell = grid_.CellOf(x.pos);
    if (x.is_data()) {
      ctx.counters().Increment(counter::kDataObjects);
      ctx.Emit(BatchCellKey{cell, kDataQuery, 0.0}, x);
      return;
    }
    // Exact dictionary screen: when the batch's distinct query terms fit
    // the dict (the common case — B queries with a few keywords each),
    // the per-(feature, query) keyword test collapses to a 2-word AND,
    // and popcount of the AND *is* |x.W ∩ q.W| — no sorted merge at all.
    // The 64-bit TermSignature screen below passes ~2/3 of truly disjoint
    // pairs on keyword-dense features, so at batch scale the merges it
    // fails to skip used to dominate the map phase.
    if (dict_enabled_ && options_.keyword_prefilter) {
      MapWithDict(x, cell, ctx);
      return;
    }
    // One borrowed alias serves every query's emissions: the batch
    // multiplies the per-feature emission count by the batch size, so the
    // O(1) span copy (vs. a keyword-vector clone per copy) matters even
    // more here than in the single-query mapper.
    const ShuffleObject borrowed = x.Borrowed();
    // Counter tallies for the whole query loop, flushed once per record:
    // Counters::Increment is a mutex + string-keyed map lookup, which at
    // one call per (feature, query) pair was the single largest map-phase
    // cost of a batch job — and the per-pair bookkeeping is exactly the
    // kind of work batching exists to amortize. Totals are unchanged.
    uint64_t pruned = 0, kept = 0, dups = 0;
    for (uint32_t q = 0; q < queries_->size(); ++q) {
      const Query& query = (*queries_)[q];
      // Signature screen (see SpqMapper): one AND replaces the exact merge
      // for queries this feature shares no term with — the common case in
      // a large batch. Same drop, same counter as the prefilter below.
      if (options_.keyword_prefilter && options_.signature_prefilter &&
          x.keyword_sig != 0 && (x.keyword_sig & query_sigs_[q]) == 0) {
        ++pruned;
        continue;
      }
      // Span accessors, not x.keywords: warm-path inputs are borrowed.
      const std::size_t common = text::SortedIntersectionSize(
          KeywordData(x), KeywordCount(x), query.keywords.ids().data(),
          query.keywords.ids().size());
      if (common == 0 && options_.keyword_prefilter) {
        ++pruned;
        continue;
      }
      ++kept;
      const double order = FeatureOrder(algo_, query, x, common);
      ctx.Emit(BatchCellKey{cell, q + 1, order}, borrowed);
      // Scratch overload: the per-(feature, query) target-list allocation
      // would otherwise multiply by the batch size.
      grid_.CellsWithinDist(x.pos, query.radius, targets_scratch_);
      for (geo::CellId target : targets_scratch_) {
        ctx.Emit(BatchCellKey{target, q + 1, order}, borrowed);
      }
      dups += targets_scratch_.size();
    }
    if (pruned > 0) {
      ctx.counters().Increment(counter::kFeaturesPruned, pruned);
    }
    if (kept > 0) {
      // kFeatureDuplicates flushes under the kept guard (not dups > 0):
      // the per-pair code incremented it by targets.size() for every kept
      // feature, so the counter existed whenever a feature was kept even
      // if no query ever needed Lemma-1 duplication.
      ctx.counters().Increment(counter::kFeaturesKept, kept);
      ctx.counters().Increment(counter::kFeatureDuplicates, dups);
    }
  }

  static constexpr uint32_t kDataQuery = 0;

 private:
  /// 256 dictionary bits: comfortably holds the distinct terms of a
  /// coalesced batch (B queries × a few keywords, minus overlap) — e.g. a
  /// 48-query batch of 5-keyword queries fits even with zero overlap —
  /// at four ANDs + popcounts per screen.
  static constexpr std::size_t kDictWords = 4;
  using TermMask = std::array<uint64_t, kDictWords>;

  /// Maps each distinct query term to one dictionary bit. Distinctness is
  /// what makes the screen exact: popcount(feature_mask & query_mask) is
  /// |x.W ∩ q.W| with no hash collisions, so the dict path prunes exactly
  /// the common == 0 pairs the merge path prunes and feeds FeatureOrder
  /// the same intersection size. Batches with more distinct terms than
  /// bits keep the signature + merge path.
  void BuildTermDict() {
    std::vector<uint32_t> terms;
    for (const Query& q : *queries_) {
      terms.insert(terms.end(), q.keywords.ids().begin(),
                   q.keywords.ids().end());
    }
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    if (terms.size() > kDictWords * 64) return;
    dict_terms_ = std::move(terms);
    query_masks_.assign(queries_->size(), TermMask{});
    for (std::size_t qi = 0; qi < queries_->size(); ++qi) {
      for (uint32_t id : (*queries_)[qi].keywords.ids()) {
        const std::size_t bit = static_cast<std::size_t>(
            std::lower_bound(dict_terms_.begin(), dict_terms_.end(), id) -
            dict_terms_.begin());
        query_masks_[qi][bit / 64] |= uint64_t{1} << (bit % 64);
      }
    }
    dict_enabled_ = true;
  }

  /// The dict-screened feature path: one linear walk tags the feature's
  /// dictionary terms, then every query costs two ANDs and a popcount.
  void MapWithDict(const ShuffleObject& x, geo::CellId cell,
                   BatchMapContext& ctx) {
    TermMask fmask{};
    const uint32_t* kw = KeywordData(x);
    const std::size_t n = KeywordCount(x);
    // Both lists are sorted; lockstep walk, O(|x.W| + |dict|).
    std::size_t di = 0;
    for (std::size_t i = 0; i < n && di < dict_terms_.size(); ++i) {
      while (di < dict_terms_.size() && dict_terms_[di] < kw[i]) ++di;
      if (di < dict_terms_.size() && dict_terms_[di] == kw[i]) {
        fmask[di / 64] |= uint64_t{1} << (di % 64);
        ++di;
      }
    }
    const ShuffleObject borrowed = x.Borrowed();
    uint64_t pruned = 0, kept = 0, dups = 0;
    for (uint32_t q = 0; q < queries_->size(); ++q) {
      int common_bits = 0;
      for (std::size_t w = 0; w < kDictWords; ++w) {
        common_bits += std::popcount(fmask[w] & query_masks_[q][w]);
      }
      const std::size_t common = static_cast<std::size_t>(common_bits);
      if (common == 0) {
        ++pruned;
        continue;
      }
      ++kept;
      const Query& query = (*queries_)[q];
      const double order = FeatureOrder(algo_, query, x, common);
      ctx.Emit(BatchCellKey{cell, q + 1, order}, borrowed);
      grid_.CellsWithinDist(x.pos, query.radius, targets_scratch_);
      for (geo::CellId target : targets_scratch_) {
        ctx.Emit(BatchCellKey{target, q + 1, order}, borrowed);
      }
      dups += targets_scratch_.size();
    }
    if (pruned > 0) {
      ctx.counters().Increment(counter::kFeaturesPruned, pruned);
    }
    if (kept > 0) {
      ctx.counters().Increment(counter::kFeaturesKept, kept);
      ctx.counters().Increment(counter::kFeatureDuplicates, dups);
    }
  }

  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  geo::UniformGrid grid_;
  SpqJobOptions options_;
  std::vector<uint64_t> query_sigs_;  ///< TermSignature per batch query
  std::vector<geo::CellId> targets_scratch_;  ///< CellsWithinDist reuse
  std::vector<uint32_t> dict_terms_;  ///< sorted distinct query terms
  std::vector<TermMask> query_masks_;  ///< per-query dictionary bits
  bool dict_enabled_ = false;
};

/// Shared group protocol of both shuffle paths: groups arrive per cell as
/// (cell, 0) = the cell's data objects, then (cell, q+1) = query q's
/// sorted features. The state outlives one group (it is owned by the
/// reducer / per-task closure), so the cache carries across the groups of
/// one cell and is invalidated when the cell changes — cells without data
/// objects produce no sentinel group.
///
/// The cache is a thin per-cell view shaped exactly like a CellStore
/// partition: the sentinel group's data objects land straight in a
/// CellData (SoA ids/positions — no retained ShuffleObjects or views) and
/// the lazily built CellGridIndex is SHARED by every query group of the
/// cell; the per-query state (scores / report bitmap) lives in the
/// QueryScratch the reduce cores re-initialize each group. Before this
/// refactor each query group replayed the raw records through the reduce
/// core, rebuilding CellData and the index per query.
struct BatchCellCache {
  reduce_core::CellData cell;
  reduce_core::CellGridIndex index;
  reduce_core::QueryScratch scratch;
  geo::CellId cache_cell = 0;
  bool has_cache = false;

  void Rebind(geo::CellId c) {
    cell.Clear();
    index.Reset();  // Sync compares sizes only; contents changed
    cache_cell = c;
    has_cache = true;
  }
};

template <typename Values>
void BatchReduceGroup(Algorithm algo, const SpqJobOptions& options,
                      const std::vector<Query>& queries,
                      BatchCellCache& state, const BatchCellKey& group_key,
                      Values& values, BatchReduceContext& ctx) {
  if (group_key.query == BatchMapper::kDataQuery) {
    state.Rebind(group_key.cell);
    while (values.Next()) state.cell.Add(values.value());
    return;
  }
  if (!state.has_cache || state.cache_cell != group_key.cell) {
    // No data objects in this cell: results are necessarily empty, but
    // the group must still be drained consistently (the runtime skips
    // leftovers anyway). Run with an empty cache for uniformity.
    state.Rebind(group_key.cell);
  }
  const uint32_t q = group_key.query - 1;
  if (q >= queries.size()) return;  // defensive
  const Query& query = queries[q];
  // Owned ref: the cache is private to this reduce task, and the index is
  // still allowed to build lazily at the cell's first probe.
  reduce_core::OwnedCellRef cell_ref{&state.cell, &state.index};
  reduce_core::RunReduce(algo, options, query, cell_ref, state.scratch,
                         values, ctx.counters(),
                         [&ctx, q](const ResultEntry& e) {
                           ctx.Emit(BatchResultEntry{q, e});
                         });
}

class BatchReducer final
    : public mapreduce::Reducer<BatchCellKey, ShuffleObject,
                                BatchResultEntry> {
 public:
  BatchReducer(Algorithm algo,
               std::shared_ptr<const std::vector<Query>> queries,
               SpqJobOptions options)
      : algo_(algo), queries_(std::move(queries)), options_(options) {}

  void Reduce(const BatchCellKey& group_key, BatchGroupValues& values,
              BatchReduceContext& ctx) override {
    BatchReduceGroup(algo_, options_, *queries_, state_, group_key, values,
                     ctx);
  }

 private:
  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  SpqJobOptions options_;
  BatchCellCache state_;
};

}  // namespace

mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                   BatchResultEntry>
MakeBatchSpqJobSpec(Algorithm algo, const std::vector<Query>& queries,
                    const geo::UniformGrid& grid, SpqJobOptions options) {
  auto shared_queries =
      std::make_shared<const std::vector<Query>>(queries);
  mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                     BatchResultEntry>
      spec;
  spec.mapper_factory = [algo, shared_queries, grid, options]() {
    return std::make_unique<BatchMapper>(algo, shared_queries, grid, options);
  };
  spec.reducer_factory = [algo, shared_queries, options]() {
    return std::make_unique<BatchReducer>(algo, shared_queries, options);
  };
  spec.partitioner = BatchPartitioner;
  spec.sort_less = BatchKeySortLess;
  spec.group_equal = BatchKeyGroupEqual;
  // Flat-arena path: the same group protocol with the per-cell cache in
  // per-task state captured by the closure (data views decay into the
  // cache's SoA arrays immediately, so no pool reference is retained).
  spec.flat_reducer_factory = [algo, shared_queries, options]() {
    auto state = std::make_shared<BatchCellCache>();
    return [algo, shared_queries, options, state](
               const BatchCellKey& group_key,
               mapreduce::FlatGroupCursor<BatchCellKey, ShuffleObject>& values,
               BatchReduceContext& ctx) {
      BatchReduceGroup(algo, options, *shared_queries, *state, group_key,
                       values, ctx);
    };
  };
  return spec;
}

}  // namespace spq::core
