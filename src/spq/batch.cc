#include "spq/batch.h"

#include <memory>
#include <utility>

#include "spq/reduce_core.h"
#include "text/keyword_set.h"

namespace spq::core {

namespace {

using BatchMapContext = mapreduce::MapContext<BatchCellKey, ShuffleObject>;
using BatchGroupValues = mapreduce::GroupValues<BatchCellKey, ShuffleObject>;
using BatchReduceContext = mapreduce::ReduceContext<BatchResultEntry>;

/// One input pass serving every query of the batch.
///
/// Key layout: data objects are emitted ONCE per cell under the sentinel
/// query index 0 (so they sort before every query's feature group within
/// the cell); query q's features go under query index q+1. The reducer
/// caches the cell's data objects from the sentinel group and replays them
/// into each query group, so the batch does not multiply the data-object
/// shuffle by the batch size.
class BatchMapper final
    : public mapreduce::Mapper<ShuffleObject, BatchCellKey, ShuffleObject> {
 public:
  BatchMapper(Algorithm algo, std::shared_ptr<const std::vector<Query>> queries,
              geo::UniformGrid grid, SpqJobOptions options)
      : algo_(algo),
        queries_(std::move(queries)),
        grid_(std::move(grid)),
        options_(options) {}

  void Map(const ShuffleObject& x, BatchMapContext& ctx) override {
    const geo::CellId cell = grid_.CellOf(x.pos);
    if (x.is_data()) {
      ctx.counters().Increment(counter::kDataObjects);
      ctx.Emit(BatchCellKey{cell, kDataQuery, 0.0}, x);
      return;
    }
    // One borrowed alias serves every query's emissions: the batch
    // multiplies the per-feature emission count by the batch size, so the
    // O(1) span copy (vs. a keyword-vector clone per copy) matters even
    // more here than in the single-query mapper.
    const ShuffleObject borrowed = x.Borrowed();
    for (uint32_t q = 0; q < queries_->size(); ++q) {
      const Query& query = (*queries_)[q];
      const std::size_t common =
          text::SortedIntersectionSize(x.keywords, query.keywords.ids());
      if (common == 0 && options_.keyword_prefilter) {
        ctx.counters().Increment(counter::kFeaturesPruned);
        continue;
      }
      ctx.counters().Increment(counter::kFeaturesKept);
      const double order = FeatureOrder(algo_, query, x, common);
      ctx.Emit(BatchCellKey{cell, q + 1, order}, borrowed);
      const auto targets = grid_.CellsWithinDist(x.pos, query.radius);
      for (geo::CellId target : targets) {
        ctx.Emit(BatchCellKey{target, q + 1, order}, borrowed);
      }
      ctx.counters().Increment(counter::kFeatureDuplicates, targets.size());
    }
  }

  static constexpr uint32_t kDataQuery = 0;

 private:
  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  geo::UniformGrid grid_;
  SpqJobOptions options_;
};

/// GroupValues adapter that replays a cached data-object list before
/// delegating to the real (feature-only) group stream. The reduce cores
/// never read the composite key of a *data* value, so the group key is a
/// valid stand-in during the replay phase.
class ReplayedGroupValues final : public BatchGroupValues {
 public:
  ReplayedGroupValues(const std::vector<ShuffleObject>* cached,
                      const BatchCellKey* group_key,
                      BatchGroupValues* features)
      : cached_(cached), group_key_(group_key), features_(features) {}

  bool Next() override {
    if (next_cached_ < cached_->size()) {
      current_ = &(*cached_)[next_cached_++];
      return true;
    }
    if (features_->Next()) {
      current_ = nullptr;
      return true;
    }
    return false;
  }

  const BatchCellKey& key() const override {
    return current_ != nullptr ? *group_key_ : features_->key();
  }
  const ShuffleObject& value() const override {
    return current_ != nullptr ? *current_ : features_->value();
  }
  /// The group's data-object count, known up front from the replayed
  /// cache — lets the reduce cores pre-size CellData (reduce_core.h).
  std::size_t data_count_hint() const { return cached_->size(); }

 private:
  const std::vector<ShuffleObject>* cached_;
  const BatchCellKey* group_key_;
  BatchGroupValues* features_;
  std::size_t next_cached_ = 0;
  const ShuffleObject* current_ = nullptr;  // non-null while replaying
};

/// Flat-path twin of ReplayedGroupValues: replays cached data-object
/// *views* (safe to retain — data views hold no pool reference) before
/// delegating to the live zero-copy group cursor.
class FlatReplayedValues {
 public:
  using Cursor = mapreduce::FlatGroupCursor<BatchCellKey, ShuffleObject>;

  FlatReplayedValues(const std::vector<ShuffleObjectView>* cached,
                     const BatchCellKey* group_key, Cursor* features)
      : cached_(cached), group_key_(group_key), features_(features) {}

  bool Next() {
    if (next_cached_ < cached_->size()) {
      replaying_ = true;
      ++next_cached_;
      return true;
    }
    replaying_ = false;
    return features_->Next();
  }

  const BatchCellKey& key() const {
    return replaying_ ? *group_key_ : features_->key();
  }
  ShuffleObjectView value() const {
    return replaying_ ? (*cached_)[next_cached_ - 1] : features_->value();
  }
  std::size_t data_count_hint() const { return cached_->size(); }

 private:
  const std::vector<ShuffleObjectView>* cached_;
  const BatchCellKey* group_key_;
  Cursor* features_;
  std::size_t next_cached_ = 0;
  bool replaying_ = false;
};

/// Shared group protocol of both shuffle paths: groups arrive per cell as
/// (cell, 0) = the cell's data objects, then (cell, q+1) = query q's
/// sorted features. The state outlives one group (it is owned by the
/// reducer / per-task closure), so the cache carries across the groups of
/// one cell and is invalidated when the cell changes — cells without data
/// objects produce no sentinel group. `CachedValue` is the record
/// representation the cache retains (owning ShuffleObject on the legacy
/// path, ShuffleObjectView on the flat path) and `Replay` the matching
/// replay adapter.
template <typename CachedValue>
struct BatchCacheState {
  std::vector<CachedValue> cached_data;
  geo::CellId cache_cell = 0;
  bool has_cache = false;
};

/// Severs any borrowed storage before a record enters the cross-group
/// cache. Owning ShuffleObjects need nothing; a ShuffleObjectView's
/// keyword span aliases the segment arena (or a streaming buffer), which
/// does not outlive the group — data objects carry no keywords, so
/// dropping the span loses nothing, and a mis-keyed keyword-bearing
/// record cannot dangle.
inline void DetachForCache(ShuffleObject&) {}
inline void DetachForCache(ShuffleObjectView& v) {
  v.keywords = nullptr;
  v.num_keywords = 0;
}

template <typename Replay, typename CachedValue, typename Values>
void BatchReduceGroup(Algorithm algo, JoinMode join_mode,
                      const std::vector<Query>& queries,
                      BatchCacheState<CachedValue>& state,
                      const BatchCellKey& group_key, Values& values,
                      BatchReduceContext& ctx) {
  if (group_key.query == BatchMapper::kDataQuery) {
    state.cached_data.clear();
    state.cache_cell = group_key.cell;
    state.has_cache = true;
    while (values.Next()) {
      CachedValue v = values.value();
      DetachForCache(v);
      state.cached_data.push_back(std::move(v));
    }
    return;
  }
  if (!state.has_cache || state.cache_cell != group_key.cell) {
    // No data objects in this cell: results are necessarily empty, but
    // the group must still be drained consistently (the runtime skips
    // leftovers anyway). Run with an empty cache for uniformity.
    state.cached_data.clear();
    state.cache_cell = group_key.cell;
    state.has_cache = true;
  }
  const uint32_t q = group_key.query - 1;
  if (q >= queries.size()) return;  // defensive
  const Query& query = queries[q];
  Replay replayed(&state.cached_data, &group_key, &values);
  reduce_core::RunReduce(algo, join_mode, query, replayed, ctx.counters(),
                         [&ctx, q](const ResultEntry& e) {
                           ctx.Emit(BatchResultEntry{q, e});
                         });
}

class BatchReducer final
    : public mapreduce::Reducer<BatchCellKey, ShuffleObject,
                                BatchResultEntry> {
 public:
  BatchReducer(Algorithm algo,
               std::shared_ptr<const std::vector<Query>> queries,
               JoinMode join_mode)
      : algo_(algo), queries_(std::move(queries)), join_mode_(join_mode) {}

  void Reduce(const BatchCellKey& group_key, BatchGroupValues& values,
              BatchReduceContext& ctx) override {
    BatchReduceGroup<ReplayedGroupValues>(algo_, join_mode_, *queries_,
                                          state_, group_key, values, ctx);
  }

 private:
  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  JoinMode join_mode_;
  BatchCacheState<ShuffleObject> state_;
};

}  // namespace

mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                   BatchResultEntry>
MakeBatchSpqJobSpec(Algorithm algo, const std::vector<Query>& queries,
                    const geo::UniformGrid& grid, SpqJobOptions options) {
  auto shared_queries =
      std::make_shared<const std::vector<Query>>(queries);
  mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                     BatchResultEntry>
      spec;
  spec.mapper_factory = [algo, shared_queries, grid, options]() {
    return std::make_unique<BatchMapper>(algo, shared_queries, grid, options);
  };
  const JoinMode join_mode = options.join_mode;
  spec.reducer_factory = [algo, shared_queries, join_mode]() {
    return std::make_unique<BatchReducer>(algo, shared_queries, join_mode);
  };
  spec.partitioner = BatchPartitioner;
  spec.sort_less = BatchKeySortLess;
  spec.group_equal = BatchKeyGroupEqual;
  // Flat-arena path: the same group protocol with the data-object cache
  // held as zero-copy views in per-task state captured by the closure.
  spec.flat_reducer_factory = [algo, shared_queries, join_mode]() {
    auto state = std::make_shared<BatchCacheState<ShuffleObjectView>>();
    return [algo, shared_queries, join_mode, state](
               const BatchCellKey& group_key,
               FlatReplayedValues::Cursor& values,
               BatchReduceContext& ctx) {
      BatchReduceGroup<FlatReplayedValues>(algo, join_mode, *shared_queries,
                                           *state, group_key, values, ctx);
    };
  };
  return spec;
}

}  // namespace spq::core
