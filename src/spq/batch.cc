#include "spq/batch.h"

#include <memory>
#include <utility>

#include "spq/reduce_core.h"
#include "text/keyword_set.h"

namespace spq::core {

namespace {

using BatchMapContext = mapreduce::MapContext<BatchCellKey, ShuffleObject>;
using BatchGroupValues = mapreduce::GroupValues<BatchCellKey, ShuffleObject>;
using BatchReduceContext = mapreduce::ReduceContext<BatchResultEntry>;

/// One input pass serving every query of the batch.
///
/// Key layout: data objects are emitted ONCE per cell under the sentinel
/// query index 0 (so they sort before every query's feature group within
/// the cell); query q's features go under query index q+1. The reducer
/// caches the cell's data objects from the sentinel group and replays them
/// into each query group, so the batch does not multiply the data-object
/// shuffle by the batch size.
class BatchMapper final
    : public mapreduce::Mapper<ShuffleObject, BatchCellKey, ShuffleObject> {
 public:
  BatchMapper(Algorithm algo, std::shared_ptr<const std::vector<Query>> queries,
              geo::UniformGrid grid, SpqJobOptions options)
      : algo_(algo),
        queries_(std::move(queries)),
        grid_(std::move(grid)),
        options_(options) {
    query_sigs_.reserve(queries_->size());
    for (const Query& query : *queries_) {
      query_sigs_.push_back(text::TermSignature(query.keywords.ids()));
    }
  }

  void Map(const ShuffleObject& x, BatchMapContext& ctx) override {
    const geo::CellId cell = grid_.CellOf(x.pos);
    if (x.is_data()) {
      ctx.counters().Increment(counter::kDataObjects);
      ctx.Emit(BatchCellKey{cell, kDataQuery, 0.0}, x);
      return;
    }
    // One borrowed alias serves every query's emissions: the batch
    // multiplies the per-feature emission count by the batch size, so the
    // O(1) span copy (vs. a keyword-vector clone per copy) matters even
    // more here than in the single-query mapper.
    const ShuffleObject borrowed = x.Borrowed();
    for (uint32_t q = 0; q < queries_->size(); ++q) {
      const Query& query = (*queries_)[q];
      // Signature screen (see SpqMapper): one AND replaces the exact merge
      // for queries this feature shares no term with — the common case in
      // a large batch. Same drop, same counter as the prefilter below.
      if (options_.keyword_prefilter && options_.signature_prefilter &&
          x.keyword_sig != 0 && (x.keyword_sig & query_sigs_[q]) == 0) {
        ctx.counters().Increment(counter::kFeaturesPruned);
        continue;
      }
      // Span accessors, not x.keywords: warm-path inputs are borrowed.
      const std::size_t common = text::SortedIntersectionSize(
          KeywordData(x), KeywordCount(x), query.keywords.ids().data(),
          query.keywords.ids().size());
      if (common == 0 && options_.keyword_prefilter) {
        ctx.counters().Increment(counter::kFeaturesPruned);
        continue;
      }
      ctx.counters().Increment(counter::kFeaturesKept);
      const double order = FeatureOrder(algo_, query, x, common);
      ctx.Emit(BatchCellKey{cell, q + 1, order}, borrowed);
      const auto targets = grid_.CellsWithinDist(x.pos, query.radius);
      for (geo::CellId target : targets) {
        ctx.Emit(BatchCellKey{target, q + 1, order}, borrowed);
      }
      ctx.counters().Increment(counter::kFeatureDuplicates, targets.size());
    }
  }

  static constexpr uint32_t kDataQuery = 0;

 private:
  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  geo::UniformGrid grid_;
  SpqJobOptions options_;
  std::vector<uint64_t> query_sigs_;  ///< TermSignature per batch query
};

/// Shared group protocol of both shuffle paths: groups arrive per cell as
/// (cell, 0) = the cell's data objects, then (cell, q+1) = query q's
/// sorted features. The state outlives one group (it is owned by the
/// reducer / per-task closure), so the cache carries across the groups of
/// one cell and is invalidated when the cell changes — cells without data
/// objects produce no sentinel group.
///
/// The cache is a thin per-cell view shaped exactly like a CellStore
/// partition: the sentinel group's data objects land straight in a
/// CellData (SoA ids/positions — no retained ShuffleObjects or views) and
/// the lazily built CellGridIndex is SHARED by every query group of the
/// cell; only the per-query score scratch is reset between groups. Before
/// this refactor each query group replayed the raw records through the
/// reduce core, rebuilding CellData and the index per query.
struct BatchCellCache {
  reduce_core::CellData cell;
  reduce_core::CellGridIndex index;
  geo::CellId cache_cell = 0;
  bool has_cache = false;

  void Rebind(geo::CellId c) {
    cell.Clear();
    index.Reset();  // Sync compares sizes only; contents changed
    cache_cell = c;
    has_cache = true;
  }
};

template <typename Values>
void BatchReduceGroup(Algorithm algo, const SpqJobOptions& options,
                      const std::vector<Query>& queries,
                      BatchCellCache& state, const BatchCellKey& group_key,
                      Values& values, BatchReduceContext& ctx) {
  if (group_key.query == BatchMapper::kDataQuery) {
    state.Rebind(group_key.cell);
    while (values.Next()) state.cell.Add(values.value());
    return;
  }
  if (!state.has_cache || state.cache_cell != group_key.cell) {
    // No data objects in this cell: results are necessarily empty, but
    // the group must still be drained consistently (the runtime skips
    // leftovers anyway). Run with an empty cache for uniformity.
    state.Rebind(group_key.cell);
  }
  const uint32_t q = group_key.query - 1;
  if (q >= queries.size()) return;  // defensive
  const Query& query = queries[q];
  // Per-query score scratch; eSPQsco tracks reports, not scores, so it
  // skips the O(n) reset.
  if (algo != Algorithm::kESPQSco) state.cell.ResetScores();
  reduce_core::RunReduce(algo, options, query, state.cell, state.index,
                         values, ctx.counters(),
                         [&ctx, q](const ResultEntry& e) {
                           ctx.Emit(BatchResultEntry{q, e});
                         });
}

class BatchReducer final
    : public mapreduce::Reducer<BatchCellKey, ShuffleObject,
                                BatchResultEntry> {
 public:
  BatchReducer(Algorithm algo,
               std::shared_ptr<const std::vector<Query>> queries,
               SpqJobOptions options)
      : algo_(algo), queries_(std::move(queries)), options_(options) {}

  void Reduce(const BatchCellKey& group_key, BatchGroupValues& values,
              BatchReduceContext& ctx) override {
    BatchReduceGroup(algo_, options_, *queries_, state_, group_key, values,
                     ctx);
  }

 private:
  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  SpqJobOptions options_;
  BatchCellCache state_;
};

}  // namespace

mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                   BatchResultEntry>
MakeBatchSpqJobSpec(Algorithm algo, const std::vector<Query>& queries,
                    const geo::UniformGrid& grid, SpqJobOptions options) {
  auto shared_queries =
      std::make_shared<const std::vector<Query>>(queries);
  mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                     BatchResultEntry>
      spec;
  spec.mapper_factory = [algo, shared_queries, grid, options]() {
    return std::make_unique<BatchMapper>(algo, shared_queries, grid, options);
  };
  spec.reducer_factory = [algo, shared_queries, options]() {
    return std::make_unique<BatchReducer>(algo, shared_queries, options);
  };
  spec.partitioner = BatchPartitioner;
  spec.sort_less = BatchKeySortLess;
  spec.group_equal = BatchKeyGroupEqual;
  // Flat-arena path: the same group protocol with the per-cell cache in
  // per-task state captured by the closure (data views decay into the
  // cache's SoA arrays immediately, so no pool reference is retained).
  spec.flat_reducer_factory = [algo, shared_queries, options]() {
    auto state = std::make_shared<BatchCellCache>();
    return [algo, shared_queries, options, state](
               const BatchCellKey& group_key,
               mapreduce::FlatGroupCursor<BatchCellKey, ShuffleObject>& values,
               BatchReduceContext& ctx) {
      BatchReduceGroup(algo, options, *shared_queries, *state, group_key,
                       values, ctx);
    };
  };
  return spec;
}

}  // namespace spq::core
