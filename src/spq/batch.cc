#include "spq/batch.h"

#include <memory>
#include <utility>

#include "spq/reduce_core.h"
#include "text/keyword_set.h"

namespace spq::core {

namespace {

using BatchMapContext = mapreduce::MapContext<BatchCellKey, ShuffleObject>;
using BatchGroupValues = mapreduce::GroupValues<BatchCellKey, ShuffleObject>;
using BatchReduceContext = mapreduce::ReduceContext<BatchResultEntry>;

/// One input pass serving every query of the batch.
///
/// Key layout: data objects are emitted ONCE per cell under the sentinel
/// query index 0 (so they sort before every query's feature group within
/// the cell); query q's features go under query index q+1. The reducer
/// caches the cell's data objects from the sentinel group and replays them
/// into each query group, so the batch does not multiply the data-object
/// shuffle by the batch size.
class BatchMapper final
    : public mapreduce::Mapper<ShuffleObject, BatchCellKey, ShuffleObject> {
 public:
  BatchMapper(Algorithm algo, std::shared_ptr<const std::vector<Query>> queries,
              geo::UniformGrid grid, SpqJobOptions options)
      : algo_(algo),
        queries_(std::move(queries)),
        grid_(std::move(grid)),
        options_(options) {}

  void Map(const ShuffleObject& x, BatchMapContext& ctx) override {
    const geo::CellId cell = grid_.CellOf(x.pos);
    if (x.is_data()) {
      ctx.counters().Increment(counter::kDataObjects);
      ctx.Emit(BatchCellKey{cell, kDataQuery, 0.0}, x);
      return;
    }
    for (uint32_t q = 0; q < queries_->size(); ++q) {
      const Query& query = (*queries_)[q];
      const std::size_t common =
          text::SortedIntersectionSize(x.keywords, query.keywords.ids());
      if (common == 0 && options_.keyword_prefilter) {
        ctx.counters().Increment(counter::kFeaturesPruned);
        continue;
      }
      ctx.counters().Increment(counter::kFeaturesKept);
      const double order = FeatureOrder(algo_, query, x, common);
      ctx.Emit(BatchCellKey{cell, q + 1, order}, x);
      const auto targets = grid_.CellsWithinDist(x.pos, query.radius);
      for (geo::CellId target : targets) {
        ctx.Emit(BatchCellKey{target, q + 1, order}, x);
      }
      ctx.counters().Increment(counter::kFeatureDuplicates, targets.size());
    }
  }

  static constexpr uint32_t kDataQuery = 0;

 private:
  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  geo::UniformGrid grid_;
  SpqJobOptions options_;
};

/// GroupValues adapter that replays a cached data-object list before
/// delegating to the real (feature-only) group stream. The reduce cores
/// never read the composite key of a *data* value, so the group key is a
/// valid stand-in during the replay phase.
class ReplayedGroupValues final : public BatchGroupValues {
 public:
  ReplayedGroupValues(const std::vector<ShuffleObject>* cached,
                      const BatchCellKey* group_key,
                      BatchGroupValues* features)
      : cached_(cached), group_key_(group_key), features_(features) {}

  bool Next() override {
    if (next_cached_ < cached_->size()) {
      current_ = &(*cached_)[next_cached_++];
      return true;
    }
    if (features_->Next()) {
      current_ = nullptr;
      return true;
    }
    return false;
  }

  const BatchCellKey& key() const override {
    return current_ != nullptr ? *group_key_ : features_->key();
  }
  const ShuffleObject& value() const override {
    return current_ != nullptr ? *current_ : features_->value();
  }

 private:
  const std::vector<ShuffleObject>* cached_;
  const BatchCellKey* group_key_;
  BatchGroupValues* features_;
  std::size_t next_cached_ = 0;
  const ShuffleObject* current_ = nullptr;  // non-null while replaying
};

/// Groups arrive per cell as: (cell, 0) = the cell's data objects, then
/// (cell, q+1) = query q's sorted features. The reducer instance lives for
/// the whole reduce task, so the cache carries across the groups of one
/// cell (and is invalidated when the cell changes — cells without data
/// objects produce no sentinel group).
class BatchReducer final
    : public mapreduce::Reducer<BatchCellKey, ShuffleObject,
                                BatchResultEntry> {
 public:
  BatchReducer(Algorithm algo,
               std::shared_ptr<const std::vector<Query>> queries)
      : algo_(algo), queries_(std::move(queries)) {}

  void Reduce(const BatchCellKey& group_key, BatchGroupValues& values,
              BatchReduceContext& ctx) override {
    if (group_key.query == BatchMapper::kDataQuery) {
      cached_data_.clear();
      cache_cell_ = group_key.cell;
      has_cache_ = true;
      while (values.Next()) cached_data_.push_back(values.value());
      return;
    }
    if (!has_cache_ || cache_cell_ != group_key.cell) {
      // No data objects in this cell: results are necessarily empty, but
      // the group must still be drained consistently (the runtime skips
      // leftovers anyway). Run with an empty cache for uniformity.
      cached_data_.clear();
      cache_cell_ = group_key.cell;
      has_cache_ = true;
    }
    const uint32_t q = group_key.query - 1;
    if (q >= queries_->size()) return;  // defensive
    const Query& query = (*queries_)[q];
    ReplayedGroupValues replayed(&cached_data_, &group_key, &values);
    reduce_core::RunReduce(algo_, query, replayed, ctx.counters(),
                           [&ctx, q](const ResultEntry& e) {
                             ctx.Emit(BatchResultEntry{q, e});
                           });
  }

 private:
  Algorithm algo_;
  std::shared_ptr<const std::vector<Query>> queries_;
  std::vector<ShuffleObject> cached_data_;
  geo::CellId cache_cell_ = 0;
  bool has_cache_ = false;
};

}  // namespace

mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                   BatchResultEntry>
MakeBatchSpqJobSpec(Algorithm algo, const std::vector<Query>& queries,
                    const geo::UniformGrid& grid, SpqJobOptions options) {
  auto shared_queries =
      std::make_shared<const std::vector<Query>>(queries);
  mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                     BatchResultEntry>
      spec;
  spec.mapper_factory = [algo, shared_queries, grid, options]() {
    return std::make_unique<BatchMapper>(algo, shared_queries, grid, options);
  };
  spec.reducer_factory = [algo, shared_queries]() {
    return std::make_unique<BatchReducer>(algo, shared_queries);
  };
  spec.partitioner = BatchPartitioner;
  spec.sort_less = BatchKeySortLess;
  spec.group_equal = BatchKeyGroupEqual;
  return spec;
}

}  // namespace spq::core
