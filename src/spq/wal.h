#ifndef SPQ_SPQ_WAL_H_
#define SPQ_SPQ_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "dfs/mini_dfs.h"

namespace spq::core {

/// \brief Record types of the per-store write-ahead log.
enum class WalRecordType : uint32_t {
  /// The store was built from a dataset; payload carries the build
  /// fingerprint (data-object count) recovery validates against.
  kStoreBuilt = 1,
  /// A checkpoint of `epoch` started: its cell files and manifest may
  /// exist in any partial state until the matching commit record.
  kCheckpointBegin = 2,
  /// Checkpoint `epoch` is durable: its manifest and every cell file were
  /// fully written before this record. The newest committed epoch is the
  /// one recovery serves from.
  kCheckpointCommit = 3,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kStoreBuilt;
  uint64_t epoch = 0;
  /// Type-specific metadata (Buffer-encoded by the writer).
  std::vector<uint8_t> payload;
};

/// \brief CRC-framed write-ahead log for one CellStore, hosted on MiniDfs.
///
/// MiniDfs files are write-once, so "append" means writing the next record
/// as its own numbered file `<prefix>/wal/<seq>` — the way HDFS-era systems
/// (HBase, early Kafka) segment their logs, shrunk to one record per
/// segment. Each record is framed [magic u32][len u32][crc u32][payload]
/// with a CRC-32C over the payload.
///
/// Replay scans seq 1, 2, ... upward; the first missing sequence number
/// ends the log. A frame that fails its magic/length/CRC check — or a
/// record file whose every DFS replica is corrupt — is a torn record:
/// replay reports it loudly, counts it, and SKIPS it. Skipping is sound
/// because every record is acknowledged only after its write-once file is
/// fully replicated: a torn frame can only be an append whose writer
/// crashed before acknowledgment, so no committed state references it,
/// while the intact records after the hole (e.g. a re-checkpoint taken
/// after recovering from that crash) stay visible. A crash mid-append
/// therefore loses at most the record being written, never a committed
/// one.
class StoreWal {
 public:
  StoreWal(dfs::MiniDfs* dfs, std::string prefix);

  /// Appends one record after the last existing sequence number.
  Status Append(const WalRecord& record);

  /// Crash-injection hook: writes a strict prefix of the record's frame
  /// (a torn append), consuming the sequence slot. Replay must stop here.
  Status AppendTorn(const WalRecord& record);

  struct ReplayResult {
    std::vector<WalRecord> records;  ///< the intact records, in log order
    uint32_t torn_records = 0;       ///< frames skipped (torn/unreadable)
  };

  /// Decodes the log from the start and positions this writer after the
  /// last existing slot (torn or not). Never fails on torn/corrupt
  /// records — they are skipped (see class comment) and counted.
  StatusOr<ReplayResult> Replay();

  /// Sequence number the next Append will use.
  uint64_t next_seq() const { return next_seq_; }

  /// Log file for sequence `seq` under `prefix` (exposed for tests).
  static std::string RecordFile(const std::string& prefix, uint64_t seq);

 private:
  static std::vector<uint8_t> EncodeFrame(const WalRecord& record);
  static StatusOr<WalRecord> DecodeFrame(const std::vector<uint8_t>& bytes);

  Status AppendImage(const std::vector<uint8_t>& image);

  dfs::MiniDfs* dfs_;
  std::string prefix_;
  uint64_t next_seq_ = 1;
};

}  // namespace spq::core

#endif  // SPQ_SPQ_WAL_H_
