#include "spq/wal.h"

#include <cstdio>
#include <utility>

#include "common/buffer.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace spq::core {

namespace {

/// WAL frame magic ("SPQW").
constexpr uint32_t kWalMagic = 0x53505157;

/// WAL I/O registry metrics (inventory in cell_store.h).
struct WalRegistryMetrics {
  metrics::Counter& appends;
  metrics::Counter& replays;
  metrics::Counter& records_replayed;
  metrics::Counter& torn_records;
  metrics::Histogram& append_ns;
  metrics::Histogram& replay_ns;

  static WalRegistryMetrics& Get() {
    static auto& registry = metrics::MetricsRegistry::Global();
    static WalRegistryMetrics metrics_{
        registry.counter("spq.wal.appends"),
        registry.counter("spq.wal.replays"),
        registry.counter("spq.wal.records_replayed"),
        registry.counter("spq.wal.torn_records"),
        registry.histogram("spq.wal.append_ns"),
        registry.histogram("spq.wal.replay_ns")};
    return metrics_;
  }
};

}  // namespace

StoreWal::StoreWal(dfs::MiniDfs* dfs, std::string prefix)
    : dfs_(dfs), prefix_(std::move(prefix)) {}

std::string StoreWal::RecordFile(const std::string& prefix, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "%012llu",
                static_cast<unsigned long long>(seq));
  return prefix + "/wal/" + name;
}

std::vector<uint8_t> StoreWal::EncodeFrame(const WalRecord& record) {
  Buffer payload;
  payload.PutUint32(static_cast<uint32_t>(record.type));
  payload.PutUint64(record.epoch);
  payload.PutVarint(record.payload.size());
  payload.PutBytes(record.payload.data(), record.payload.size());

  Buffer frame;
  frame.PutUint32(kWalMagic);
  frame.PutUint32(static_cast<uint32_t>(payload.size()));
  frame.PutUint32(Crc32c(payload.data(), payload.size()));
  frame.PutBytes(payload.data(), payload.size());
  return frame.TakeBytes();
}

StatusOr<WalRecord> StoreWal::DecodeFrame(const std::vector<uint8_t>& bytes) {
  BufferReader reader(bytes);
  uint32_t magic = 0, len = 0, crc = 0;
  SPQ_RETURN_NOT_OK(reader.GetUint32(&magic));
  SPQ_RETURN_NOT_OK(reader.GetUint32(&len));
  SPQ_RETURN_NOT_OK(reader.GetUint32(&crc));
  if (magic != kWalMagic) {
    return Status::IOError("bad wal frame magic");
  }
  if (reader.remaining() != len) {
    return Status::IOError("torn wal frame: " +
                           std::to_string(reader.remaining()) + " of " +
                           std::to_string(len) + " payload bytes");
  }
  if (Crc32c(bytes.data() + reader.position(), len) != crc) {
    return Status::IOError("wal frame checksum mismatch");
  }
  WalRecord record;
  uint32_t type = 0;
  SPQ_RETURN_NOT_OK(reader.GetUint32(&type));
  record.type = static_cast<WalRecordType>(type);
  SPQ_RETURN_NOT_OK(reader.GetUint64(&record.epoch));
  uint64_t payload_len = 0;
  SPQ_RETURN_NOT_OK(reader.GetVarint(&payload_len));
  if (payload_len != reader.remaining()) {
    return Status::IOError("wal frame payload length mismatch");
  }
  record.payload.resize(payload_len);
  SPQ_RETURN_NOT_OK(reader.GetBytes(record.payload.data(), payload_len));
  return record;
}

Status StoreWal::AppendImage(const std::vector<uint8_t>& image) {
  // Skip past slots consumed by writers that crashed mid-append (their
  // torn frames stay on disk; replay already treats them as the tail).
  while (dfs_->FileExists(RecordFile(prefix_, next_seq_))) {
    ++next_seq_;
  }
  SPQ_RETURN_NOT_OK(dfs_->WriteFile(RecordFile(prefix_, next_seq_), image));
  ++next_seq_;
  return Status::OK();
}

Status StoreWal::Append(const WalRecord& record) {
  TRACE_SPAN("wal.append");
  metrics::ScopedLatencyTimer timer(&WalRegistryMetrics::Get().append_ns);
  WalRegistryMetrics::Get().appends.Increment();
  return AppendImage(EncodeFrame(record));
}

Status StoreWal::AppendTorn(const WalRecord& record) {
  std::vector<uint8_t> image = EncodeFrame(record);
  // A strict prefix: at least the magic survives, the CRC'd payload
  // cannot be complete.
  image.resize(image.size() / 2 < 4 ? 4 : image.size() / 2);
  return AppendImage(image);
}

StatusOr<StoreWal::ReplayResult> StoreWal::Replay() {
  TRACE_SPAN("wal.replay");
  metrics::ScopedLatencyTimer timer(&WalRegistryMetrics::Get().replay_ns);
  WalRegistryMetrics::Get().replays.Increment();
  ReplayResult result;
  uint64_t seq = 1;
  for (;; ++seq) {
    const std::string file = RecordFile(prefix_, seq);
    if (!dfs_->FileExists(file)) break;
    auto bytes = dfs_->ReadFile(file);
    if (!bytes.ok()) {
      // Every replica of this record is unreadable/corrupt: same contract
      // as a torn frame — skip the hole, keep the intact records.
      SPQ_LOG_WARN << "wal " << prefix_ << " seq " << seq
                   << " unreadable (" << bytes.status().ToString()
                   << "); skipping torn record";
      ++result.torn_records;
      continue;
    }
    auto record = DecodeFrame(*bytes);
    if (!record.ok()) {
      SPQ_LOG_WARN << "wal " << prefix_ << " seq " << seq << " torn ("
                   << record.status().ToString() << "); skipping";
      ++result.torn_records;
      continue;
    }
    result.records.push_back(*std::move(record));
  }
  // Position the writer at the first free slot. Torn frames before it
  // keep their burned sequence numbers.
  next_seq_ = seq;
  WalRegistryMetrics::Get().records_replayed.Increment(result.records.size());
  WalRegistryMetrics::Get().torn_records.Increment(result.torn_records);
  return result;
}

}  // namespace spq::core
