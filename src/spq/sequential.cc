#include "spq/sequential.h"

#include <algorithm>

#include "geo/grid.h"
#include "text/jaccard.h"

namespace spq::core {

namespace {

/// Relevant features (non-zero Jaccard) with their precomputed scores.
struct ScoredFeature {
  geo::Point pos;
  double score;
};

std::vector<ScoredFeature> RelevantFeatures(const Dataset& dataset,
                                            const Query& query) {
  std::vector<ScoredFeature> out;
  for (const FeatureObject& f : dataset.features) {
    const double w = text::Jaccard(f.keywords, query.keywords);
    if (w > 0.0) out.push_back({f.pos, w});
  }
  return out;
}

std::vector<ResultEntry> TopKOf(std::vector<ResultEntry> scored, uint32_t k) {
  std::sort(scored.begin(), scored.end(), ResultBetter);
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace

std::vector<ResultEntry> BruteForceSpq(const Dataset& dataset,
                                       const Query& query) {
  const std::vector<ScoredFeature> features = RelevantFeatures(dataset, query);
  const double r2 = query.radius * query.radius;
  std::vector<ResultEntry> scored;
  for (const DataObject& p : dataset.data) {
    double best = 0.0;
    for (const ScoredFeature& f : features) {
      if (f.score > best && geo::Distance2(p.pos, f.pos) <= r2) {
        best = f.score;
      }
    }
    if (best > 0.0) scored.push_back({p.id, best});
  }
  return TopKOf(std::move(scored), query.k);
}

StatusOr<std::vector<ResultEntry>> SequentialGridSpq(const Dataset& dataset,
                                                     const Query& query,
                                                     uint32_t grid_size) {
  SPQ_ASSIGN_OR_RETURN(
      geo::UniformGrid grid,
      geo::UniformGrid::Make(dataset.bounds, grid_size, grid_size));

  // Bucket the relevant features by enclosing cell.
  std::vector<std::vector<ScoredFeature>> buckets(grid.num_cells());
  for (const FeatureObject& f : dataset.features) {
    const double w = text::Jaccard(f.keywords, query.keywords);
    if (w > 0.0) buckets[grid.CellOf(f.pos)].push_back({f.pos, w});
  }

  const double r2 = query.radius * query.radius;
  std::vector<ResultEntry> scored;
  for (const DataObject& p : dataset.data) {
    double best = 0.0;
    auto probe = [&](geo::CellId cell) {
      for (const ScoredFeature& f : buckets[cell]) {
        if (f.score > best && geo::Distance2(p.pos, f.pos) <= r2) {
          best = f.score;
        }
      }
    };
    probe(grid.CellOf(p.pos));
    for (geo::CellId cell : grid.CellsWithinDist(p.pos, query.radius)) {
      probe(cell);
    }
    if (best > 0.0) scored.push_back({p.id, best});
  }
  return TopKOf(std::move(scored), query.k);
}

double BruteForceScore(const DataObject& p, const Dataset& dataset,
                       const Query& query) {
  const double r2 = query.radius * query.radius;
  double best = 0.0;
  for (const FeatureObject& f : dataset.features) {
    if (geo::Distance2(p.pos, f.pos) <= r2) {
      best = std::max(best, text::Jaccard(f.keywords, query.keywords));
    }
  }
  return best;
}

}  // namespace spq::core
