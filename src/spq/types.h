#ifndef SPQ_SPQ_TYPES_H_
#define SPQ_SPQ_TYPES_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"
#include "text/keyword_set.h"

namespace spq::core {

using ObjectId = uint64_t;

/// \brief A data object p ∈ O: the rankable entity (e.g. a hotel).
struct DataObject {
  ObjectId id = 0;
  geo::Point pos;
};

/// \brief A feature object f ∈ F: a spatio-textual object (e.g. a
/// restaurant with its description terms) that scores nearby data objects.
struct FeatureObject {
  ObjectId id = 0;
  geo::Point pos;
  text::KeywordSet keywords;
};

/// \brief The spatial preference query using keywords, q(k, r, W).
struct Query {
  /// Number of data objects to return.
  uint32_t k = 10;
  /// Neighborhood radius: feature f contributes to p iff dist(p,f) <= r.
  double radius = 0.0;
  /// Query keywords q.W, matched against f.W by Jaccard similarity.
  text::KeywordSet keywords;
};

/// \brief One result: a data object and its score τ(p).
struct ResultEntry {
  ObjectId id = 0;
  double score = 0.0;
};

/// Result order: score descending, then id ascending. Gives every
/// algorithm and baseline the same deterministic output order.
inline bool ResultBetter(const ResultEntry& a, const ResultEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// \brief A horizontally partitioned input: the object dataset O and the
/// feature dataset F, plus the spatial bounds both live in (the universe
/// the query-time grid divides).
struct Dataset {
  std::vector<DataObject> data;
  std::vector<FeatureObject> features;
  geo::Rect bounds;
};

}  // namespace spq::core

#endif  // SPQ_SPQ_TYPES_H_
