#ifndef SPQ_SPQ_ALGORITHMS_H_
#define SPQ_SPQ_ALGORITHMS_H_

#include <string>

#include "common/simd.h"
#include "geo/grid.h"
#include "mapreduce/job.h"
#include "spq/shuffle_types.h"
#include "spq/types.h"

namespace spq::core {

/// The three parallel SPQ algorithms of the paper.
enum class Algorithm {
  /// Grid partitioning, no early termination (Section 4, Algorithms 1+2).
  kPSPQ,
  /// Early termination; features sorted by increasing keyword-set length
  /// (Section 5.1, Algorithms 3+4).
  kESPQLen,
  /// Early termination; features sorted by decreasing map-side Jaccard
  /// score (Section 5.2, Algorithms 5+6).
  kESPQSco,
};

/// "pSPQ" / "eSPQlen" / "eSPQsco" — the names used in the paper's plots.
std::string AlgorithmName(Algorithm algo);

/// Secondary-sort component assigned to data objects by `algo`'s mapper
/// (0 for pSPQ/eSPQlen; kDataOrderScore for eSPQsco).
double DataOrder(Algorithm algo);

/// Secondary-sort component assigned to a feature object: the tag (pSPQ),
/// |f.W| (eSPQlen) or -w(f,q) (eSPQsco). `common` is |x.W ∩ q.W|,
/// precomputed by the caller's prefilter pass.
double FeatureOrder(Algorithm algo, const Query& query,
                    const ShuffleObject& x, std::size_t common);

/// Counter names written by the mappers/reducers (exposed for benches and
/// tests; values are in JobStats::counters after a run).
namespace counter {
inline constexpr char kDataObjects[] = "map.data_objects";
inline constexpr char kFeaturesKept[] = "map.features_kept";
inline constexpr char kFeaturesPruned[] = "map.features_pruned";
inline constexpr char kFeatureDuplicates[] = "map.feature_duplicates";
inline constexpr char kFeaturesExamined[] = "reduce.features_examined";
inline constexpr char kPairsTested[] = "reduce.pairs_tested";
inline constexpr char kEarlyTerminations[] = "reduce.early_terminations";
inline constexpr char kGroups[] = "reduce.groups";
/// Warm reduce groups skipped whole by the cell text summary (signature
/// AND empty, or the cell's keyword-length range cannot produce a positive
/// score). Only the warm serving path maintains cell summaries, so this
/// stays 0 on cold runs.
inline constexpr char kCellsPruned[] = "reduce.cells_pruned";
/// Cell-summary screening tests performed (one per warm group while
/// signature_prefilter is on and the query has keywords); the
/// cells-pruned rate of a workload is kCellsPruned / kSignatureChecks.
inline constexpr char kSignatureChecks[] = "reduce.signature_checks";
}  // namespace counter

/// \brief How a reduce group joins its surviving features against the
/// cell's data objects (the |O_i|·|F_i| loop of Algorithms 2/4/6).
enum class JoinMode {
  /// The paper's loop: every feature scans every data object of the cell.
  /// Retained for A/B benchmarking (bench_reduce) and as the reference
  /// semantics the equivalence tests pin the indexed mode against.
  kLinearScan,
  /// Default: the group's data objects are packed into a small SoA
  /// mini-grid (reduce_core.h, CellGridIndex) and each feature's radius
  /// probe walks only the buckets overlapping its r-disk. Results, feature
  /// consumption and early-termination behavior are bit-identical to
  /// kLinearScan (see join_equivalence_test.cc); only the number of
  /// distance evaluations (`reduce.pairs_tested`) shrinks — which is the
  /// point, especially on coarse grids where cells hold many objects.
  kGridIndex,
};

/// \brief Tunables of the generated job beyond the algorithm choice.
struct SpqJobOptions {
  /// The map-side pruning of Algorithm 1 line 9 (drop features sharing no
  /// keyword with q.W before the shuffle). Disabling it is an ablation:
  /// results stay correct, but irrelevant features get shuffled, duplicated
  /// and (for pSPQ/eSPQlen) scored in the reducers.
  bool keyword_prefilter = true;
  /// Reduce-side data↔feature join strategy; see JoinMode.
  JoinMode join_mode = JoinMode::kGridIndex;
  /// Distance-kernel backend for the reduce-side radius probes; see
  /// simd::KernelMode. kScalar is the A/B reference path.
  simd::KernelMode kernel_mode = simd::KernelMode::kAuto;
  /// Keyword-signature screening (TermSignature): map-side it skips the
  /// exact q.W ∩ f.W merge for features whose signature already proves the
  /// intersection empty; warm-serving reducers additionally skip whole
  /// cells whose summary proves no feature can score > 0 against q. Pure
  /// screening — results and result-bearing counters are bit-identical
  /// with the flag off; only kCellsPruned/kSignatureChecks change.
  bool signature_prefilter = true;
};

/// \brief Builds the complete MapReduce job (mapper, reducer, partitioner,
/// sort + grouping comparators) evaluating `query` with `algo` on the grid
/// `grid`.
///
/// The query and grid are copied into the returned spec, which is therefore
/// self-contained and safe to run after the originals go out of scope.
/// The job's input records are ShuffleObjects (the horizontally-partitioned
/// union of O and F); its outputs are per-cell top-k ResultEntry rows that
/// still need the global MergeTopK (done by SpqEngine).
mapreduce::JobSpec<ShuffleObject, CellKey, ShuffleObject, ResultEntry>
MakeSpqJobSpec(Algorithm algo, const Query& query,
               const geo::UniformGrid& grid, SpqJobOptions options = {});

/// Flattens a Dataset into the map input record stream: every data object
/// and every feature object as a tagged ShuffleObject, in dataset order
/// (data first, then features — the runtime splits this arbitrarily across
/// map tasks, matching the paper's "no assumption on partitioning").
std::vector<ShuffleObject> FlattenDataset(const Dataset& dataset);

}  // namespace spq::core

#endif  // SPQ_SPQ_ALGORITHMS_H_
