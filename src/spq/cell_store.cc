#include "spq/cell_store.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/buffer.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "spq/wal.h"
#include "text/keyword_set.h"

namespace spq::core {

namespace {

namespace mr = ::spq::mapreduce;

/// Build-time mapper: the data branch of the SPQ mappers, alone. Features
/// are per-query (prefilter, order key, Lemma-1 duplication radius) and
/// never enter the store.
class StoreBuildMapper final
    : public mr::Mapper<ShuffleObject, CellKey, ShuffleObject> {
 public:
  explicit StoreBuildMapper(geo::UniformGrid grid) : grid_(grid) {}

  void Map(const ShuffleObject& x,
           mr::MapContext<CellKey, ShuffleObject>& ctx) override {
    if (!x.is_data()) return;
    ctx.counters().Increment(counter::kDataObjects);
    // The secondary component is irrelevant inside the store (every
    // record is data); 0.0 keeps records in dataset order under the
    // stable tie-break, matching the order the cold reducers see.
    ctx.Emit(CellKey{grid_.CellOf(x.pos), 0.0}, x);
  }

 private:
  geo::UniformGrid grid_;
};

/// Re-owning copy of a zero-copy record view (the store outlives the
/// build job's segment arenas, so persisted records must own their bytes;
/// data objects carry no keywords, making this an O(1) scalar copy).
ShuffleObject OwnView(const ShuffleObjectView& v) {
  ShuffleObject o;
  o.kind = v.kind;
  o.id = v.id;
  o.pos = v.pos;
  if (v.num_keywords > 0) {
    o.keywords.assign(v.keywords, v.keywords + v.num_keywords);
  }
  return o;
}

/// Store-lifecycle registry metrics (inventory in the class comment of
/// cell_store.h). Counts and wall-clock only — never consulted by any
/// serving decision, so results and SPQ counters stay bit-identical.
struct StoreRegistryMetrics {
  metrics::Counter& cells_materialized;
  metrics::Counter& cells_restored;
  metrics::Counter& cells_rebuilt;
  metrics::Counter& delta_folds;
  metrics::Counter& cells_compacted;
  metrics::Counter& checkpoints;
  metrics::Counter& recoveries;
  metrics::Histogram& materialize_ns;
  metrics::Histogram& checkpoint_ns;
  metrics::Histogram& recover_ns;

  static StoreRegistryMetrics& Get() {
    static auto& registry = metrics::MetricsRegistry::Global();
    static StoreRegistryMetrics metrics_{
        registry.counter("spq.store.cells_materialized"),
        registry.counter("spq.store.cells_restored"),
        registry.counter("spq.store.cells_rebuilt"),
        registry.counter("spq.store.delta_folds"),
        registry.counter("spq.store.cells_compacted"),
        registry.counter("spq.store.checkpoints"),
        registry.counter("spq.store.recoveries"),
        registry.histogram("spq.store.materialize_ns"),
        registry.histogram("spq.store.checkpoint_ns"),
        registry.histogram("spq.store.recover_ns")};
    return metrics_;
  }
};

}  // namespace

StatusOr<std::unique_ptr<CellStore>> CellStore::Build(
    const std::vector<ShuffleObject>& input, const geo::UniformGrid& grid,
    double max_radius, const mr::JobConfig& config) {
  if (!(max_radius >= 0.0)) {
    return Status::InvalidArgument("store max_radius must be >= 0");
  }
  std::unique_ptr<CellStore> store(new CellStore(grid, max_radius));
  store->AllocateCells();

  mr::JobSpec<ShuffleObject, CellKey, ShuffleObject, uint64_t> spec;
  spec.mapper_factory = [grid]() {
    return std::make_unique<StoreBuildMapper>(grid);
  };
  spec.partitioner = CellPartitioner;

  // The build always runs the flat-arena pipeline: the per-cell resident
  // partitions reuse the FlatSegment byte layout verbatim, so assembling
  // them from flat shuffle segments is a straight re-bucketing.
  auto spill_partition =
      [](const std::vector<std::pair<CellKey, ShuffleObject>>& records) {
        return mr::internal::BuildFlatSegment<CellKey, ShuffleObject>(records);
      };
  CellStore* store_ptr = store.get();
  auto reduce_partition =
      [store_ptr](uint32_t /*partition*/,
                  const std::vector<const mr::FlatSegment*>& segments,
                  mr::ReduceContext<uint64_t>& ctx) -> Status {
    mr::FlatMergeStream<CellKey, ShuffleObject> stream(segments);
    std::vector<std::pair<CellKey, ShuffleObject>> rows;
    bool has = stream.Advance();
    while (has) {
      const geo::CellId cell = static_cast<geo::CellId>(stream.bucket());
      mr::FlatGroupCursor<CellKey, ShuffleObject> cursor(&stream,
                                                         stream.bucket());
      rows.clear();
      while (cursor.Next()) {
        rows.emplace_back(cursor.key(), OwnView(cursor.value()));
      }
      // One flat-arena image per cell. The rows arrive in merge order
      // (the order a cold reduce group would stream them), and
      // BuildFlatSegment's stable layout preserves it.
      auto seg_or =
          mr::internal::BuildFlatSegment<CellKey, ShuffleObject>(rows);
      if (!seg_or.ok()) return seg_or.status();
      Partition& part = *store_ptr->cells_[cell];  // one task per cell
      part.segment = *std::move(seg_or);
      part.record_count = part.segment.num_records;
      part.live_count = part.record_count;
      has = cursor.FinishGroup();
    }
    return stream.status();
  };

  SPQ_ASSIGN_OR_RETURN(
      auto output,
      (mr::internal::RunJobWith<mr::FlatSegment>(
          spec, config, input, spill_partition, reduce_partition)));
  store->build_stats_ = std::move(output.stats);
  store->data_objects_ =
      store->build_stats_.counters.Get(counter::kDataObjects);

  // Cell keyword summaries: absorb every keyword-bearing feature into its
  // own cell and every cell Lemma-1 duplication could copy it into at the
  // store's max radius — a superset of any warm query's duplication
  // targets (CellsWithinDist is monotone in r, and the engine refuses
  // warm radii above max_radius). Keyword-less features are omitted: they
  // always score 0, which is exactly what the summary's absence encodes.
  std::vector<CellTextSummary> summaries(grid.num_cells());
  for (const ShuffleObject& x : input) {
    if (x.is_data()) continue;
    const uint32_t len = static_cast<uint32_t>(KeywordCount(x));
    if (len == 0) continue;
    const uint64_t sig = x.keyword_sig != 0
                             ? x.keyword_sig
                             : text::TermSignature(KeywordData(x), len);
    summaries[grid.CellOf(x.pos)].Absorb(sig, len);
    for (geo::CellId c : grid.CellsWithinDist(x.pos, max_radius)) {
      summaries[c].Absorb(sig, len);
    }
  }
  store->text_summaries_ = std::make_shared<const std::vector<CellTextSummary>>(
      std::move(summaries));
  return store;
}

std::vector<std::vector<geo::CellId>> CellStore::DataCellsByPartition(
    const std::function<uint32_t(const CellKey&, uint32_t)>& partitioner,
    uint32_t num_partitions) const {
  std::vector<std::vector<geo::CellId>> by_partition(num_partitions);
  for (geo::CellId c = 0; c < num_cells(); ++c) {
    // LIVE rows decide residency: a fully tombstoned (but uncompacted)
    // cell is logically empty, exactly as a fresh build of the equivalent
    // dataset would leave it (invariant M2).
    if (cells_[c]->live_count == 0) continue;
    by_partition[partitioner(CellKey{c, 0.0}, num_partitions)].push_back(c);
  }
  return by_partition;
}

StatusOr<const CellStore::Partition*> CellStore::Serve(
    geo::CellId cell) const {
  if (cell >= cells_.size()) {
    return Status::InvalidArgument("cell id outside the store grid");
  }
  Partition& part = *cells_[cell];
  // Fast path: a ready partition is frozen; the acquire pairs with the
  // release below so the reader sees the completed data + index.
  if (part.ready.load(std::memory_order_acquire)) return &part;
  std::lock_guard<std::mutex> latch(part.latch);
  if (part.ready.load(std::memory_order_relaxed)) return &part;
  if (part.record_count == 0) {
    // Nothing to serve: an empty cell, or a delta-mutated cell whose
    // fold-time compaction leaves no rows (every base row tombstoned,
    // every pending insert erased). Drop the persisted form and the delta
    // whole — decoding rows just to discard them buys nothing.
    part.data.Clear();
    part.index.Reset();
    part.segment.bytes.clear();
    part.segment.bytes.shrink_to_fit();
    part.delta_inserts.clear();
    part.delta_tombstones.clear();
    part.dead.clear();
    part.dead_rows.clear();
    part.index.Build(part.data.positions);
    part.ready.store(true, std::memory_order_release);
    return &part;
  }
  // First-touch materialization of a non-empty cell starts here (the
  // ready fast path and the empty short-circuit above never reach this).
  TRACE_SPAN("store.materialize");
  metrics::ScopedLatencyTimer materialize_timer(
      &StoreRegistryMetrics::Get().materialize_ns);
  StoreRegistryMetrics::Get().cells_materialized.Increment();
  if (recovered() && part.segment.num_records > 0 &&
      part.segment.bytes.empty()) {
    // Cell-granular lazy recovery (class invariant 3): pull this cell's
    // image from the source checkpoint on first touch, verified against
    // the manifest's size + CRC. A failed verification falls back to the
    // deterministic rebuild (invariant 4) — loud and counted, never
    // served as garbage.
    auto image = RestoreImage(cell);
    if (image.ok()) {
      part.segment.bytes = *std::move(image);
      cells_restored_.fetch_add(1, std::memory_order_relaxed);
      StoreRegistryMetrics::Get().cells_restored.Increment();
    } else {
      SPQ_LOG_WARN << "store cell " << cell
                   << ": checkpoint restore failed ("
                   << image.status().ToString()
                   << "); rebuilding from dataset";
      SPQ_RETURN_NOT_OK(RebuildPartition(cell, part));
      cells_rebuilt_.fetch_add(1, std::memory_order_relaxed);
      StoreRegistryMetrics::Get().cells_rebuilt.Increment();
    }
  }
  // Idempotent under reduce-attempt retries: a prior pass that failed
  // mid-read (and returned without publishing `ready`) must not leave
  // stale rows or a stale tombstone mask behind. The delta log itself is
  // read-only until the fold succeeds, so retries replay it intact.
  part.data.Clear();
  part.index.Reset();
  part.dead.clear();
  part.dead_rows.clear();
  part.data.Reserve(part.record_count);
  if (part.segment.num_records > 0) {
    mr::internal::FlatSegmentReader<CellKey, ShuffleObject> reader(
        &part.segment);
    while (reader.Next()) part.data.Add(reader.view());
    SPQ_RETURN_NOT_OK(reader.status());
    if (part.data.size() != part.segment.num_records) {
      return Status::Internal("store partition truncated");
    }
    // The serving form replaces the persisted bytes (no double
    // residency); segment.num_records keeps the base bookkeeping.
    part.segment.bytes.clear();
    part.segment.bytes.shrink_to_fit();
  }
  // Fold the delta log (no-op for clean partitions): append pending
  // inserts, mark base tombstones, and compact if the mutation layer
  // ordered it (invariants M2-M4).
  {
    TRACE_SPAN("store.fold_delta");
    if (!part.delta_inserts.empty() || !part.delta_tombstones.empty()) {
      StoreRegistryMetrics::Get().delta_folds.Increment();
    }
    SPQ_RETURN_NOT_OK(FoldDelta(part));
  }
  if (part.data.size() != part.record_count) {
    return Status::Internal("store partition fold left " +
                            std::to_string(part.data.size()) + " rows, " +
                            std::to_string(part.record_count) + " expected");
  }
  // Build the index eagerly so serving never mutates a ready partition:
  // the reduce cores' FrozenCellRef treats SyncIndex as a no-op. Dead
  // rows are masked out of the bucket geometry so probes enumerate
  // exactly the candidate sets a fresh build over the surviving rows
  // would (invariant M2 — pairs_tested counts those sets).
  part.index.Build(part.data.positions,
                   part.dead.empty() ? nullptr : &part.dead);
  // Nothing after this point can fail: the delta is folded in, release it.
  part.delta_inserts.clear();
  part.delta_inserts.shrink_to_fit();
  part.delta_tombstones.clear();
  part.delta_tombstones.shrink_to_fit();
  part.ready.store(true, std::memory_order_release);
  return &part;
}

// --------------------------------------------------------------------------
// Durability: checksummed checkpoints + WAL (class invariants 1-5).
// --------------------------------------------------------------------------

namespace {

/// Manifest frame magic ("SPQM") and format version.
constexpr uint32_t kManifestMagic = 0x5350514d;
constexpr uint32_t kManifestVersion = 1;

/// [magic u32][len u32][crc u32][payload] — one atomic checksummed unit;
/// a manifest either decodes whole or is rejected whole.
std::vector<uint8_t> FrameManifest(Buffer&& payload) {
  Buffer frame;
  frame.PutUint32(kManifestMagic);
  frame.PutUint32(static_cast<uint32_t>(payload.size()));
  frame.PutUint32(Crc32c(payload.data(), payload.size()));
  frame.PutBytes(payload.data(), payload.size());
  return frame.TakeBytes();
}

StatusOr<std::vector<uint8_t>> UnframeManifest(
    const std::vector<uint8_t>& bytes) {
  BufferReader reader(bytes);
  uint32_t magic = 0, len = 0, crc = 0;
  SPQ_RETURN_NOT_OK(reader.GetUint32(&magic));
  SPQ_RETURN_NOT_OK(reader.GetUint32(&len));
  SPQ_RETURN_NOT_OK(reader.GetUint32(&crc));
  if (magic != kManifestMagic) {
    return Status::IOError("bad manifest magic");
  }
  if (reader.remaining() != len) {
    return Status::IOError("torn manifest: " +
                           std::to_string(reader.remaining()) + " of " +
                           std::to_string(len) + " payload bytes");
  }
  if (Crc32c(bytes.data() + reader.position(), len) != crc) {
    return Status::IOError("manifest checksum mismatch");
  }
  std::vector<uint8_t> payload(len);
  SPQ_RETURN_NOT_OK(reader.GetBytes(payload.data(), len));
  return payload;
}

}  // namespace

std::string CellStore::EpochDir(const std::string& name, uint64_t epoch) {
  return name + "/epoch-" + std::to_string(epoch);
}

std::string CellStore::ManifestFile(const std::string& name,
                                    uint64_t epoch) {
  return EpochDir(name, epoch) + "/MANIFEST";
}

std::string CellStore::CellFile(const std::string& name, uint64_t epoch,
                                geo::CellId cell) {
  return EpochDir(name, epoch) + "/cell-" + std::to_string(cell);
}

StatusOr<std::vector<uint8_t>> CellStore::SegmentImageOf(
    geo::CellId cell) const {
  Partition& part = *cells_[cell];
  if (part.record_count == 0) return std::vector<uint8_t>{};
  if (!part.ready.load(std::memory_order_acquire)) {
    // Not (yet) materialized: hold the cell's latch so a concurrent
    // first-touch Serve can't release the segment bytes mid-copy.
    std::lock_guard<std::mutex> latch(part.latch);
    if (!part.ready.load(std::memory_order_relaxed)) {
      if (!part.segment.bytes.empty()) {
        // Untouched built (or restored) partition: the image is resident.
        return part.segment.bytes;
      }
      if (recovered() && dfs_ != nullptr) {
        // Recovered and never touched: copy the image forward from the
        // source checkpoint (verified there).
        return RestoreImage(cell);
      }
      return Status::Internal("store cell " + std::to_string(cell) +
                              " has records but no image source");
    }
  }
  // Ready ⇒ frozen: the bytes were released on materialization; re-encode
  // the serving rows through the build's layout, lock-free. Data objects
  // carry no keywords and all store order keys are 0.0, so this reproduces
  // the built image bit-identically (same rows, same order, empty pool).
  std::vector<std::pair<CellKey, ShuffleObject>> rows;
  rows.reserve(part.data.size());
  for (std::size_t i = 0; i < part.data.size(); ++i) {
    ShuffleObject o;
    o.kind = ShuffleObject::kData;
    o.id = part.data.ids[i];
    o.pos = part.data.positions[i];
    rows.emplace_back(CellKey{cell, 0.0}, std::move(o));
  }
  SPQ_ASSIGN_OR_RETURN(
      mr::FlatSegment seg,
      (mr::internal::BuildFlatSegment<CellKey, ShuffleObject>(rows)));
  return std::move(seg.bytes);
}

StatusOr<std::vector<uint8_t>> CellStore::RestoreImage(
    geo::CellId cell) const {
  SPQ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      dfs_->ReadFile(CellFile(checkpoint_name_, checkpoint_epoch_, cell)));
  const Partition& part = *cells_[cell];
  if (bytes.size() != part.segment.byte_size ||
      Crc32c(bytes) != cell_crcs_[cell]) {
    return Status::IOError("store cell " + std::to_string(cell) +
                           " checkpoint image failed verification (" +
                           std::to_string(bytes.size()) + " of " +
                           std::to_string(part.segment.byte_size) +
                           " bytes)");
  }
  return bytes;
}

Status CellStore::RebuildPartition(geo::CellId cell, Partition& part) const {
  if (rebuild_input_ == nullptr) {
    return Status::IOError("store cell " + std::to_string(cell) +
                           " restore failed and no dataset is attached "
                           "for rebuild");
  }
  // The build pipeline's per-cell order is the dataset order: map splits
  // are contiguous input ranges, every store key is (cell, 0.0), and the
  // shuffle merge breaks ties by map task index. A plain in-order scan
  // therefore reproduces the built rows exactly.
  std::vector<std::pair<CellKey, ShuffleObject>> rows;
  for (const ShuffleObject& x : *rebuild_input_) {
    if (!x.is_data() || grid_.CellOf(x.pos) != cell) continue;
    rows.emplace_back(CellKey{cell, 0.0}, x);
  }
  // Compare against the PERSISTED base rows: a mutated cell's serving
  // row count legitimately differs (delta inserts / fold-time
  // compaction), but the checkpoint image always holds the build rows.
  if (rows.size() != part.segment.num_records) {
    return Status::Internal(
        "store cell " + std::to_string(cell) + " rebuild found " +
        std::to_string(rows.size()) + " data objects, checkpoint recorded " +
        std::to_string(part.segment.num_records) +
        " (dataset differs from the one the store was built from)");
  }
  SPQ_ASSIGN_OR_RETURN(
      mr::FlatSegment seg,
      (mr::internal::BuildFlatSegment<CellKey, ShuffleObject>(rows)));
  if (seg.byte_size != part.segment.byte_size ||
      Crc32c(seg.bytes) != cell_crcs_[cell]) {
    return Status::Internal("store cell " + std::to_string(cell) +
                            " rebuild image diverges from the checkpoint "
                            "manifest (dataset mismatch?)");
  }
  part.segment = std::move(seg);
  return Status::OK();
}

StatusOr<CellStore::CheckpointInfo> CellStore::Checkpoint(
    dfs::MiniDfs& dfs, const std::string& name,
    CheckpointCrash crash) const {
  TRACE_SPAN("store.checkpoint");
  metrics::ScopedLatencyTimer checkpoint_timer(
      &StoreRegistryMetrics::Get().checkpoint_ns);
  StoreRegistryMetrics::Get().checkpoints.Increment();
  if (mutated_) {
    // Invariant M5: the persisted segments describe the BUILD dataset and
    // Recover() validates/rebuilds against it — persisting them under a
    // mutated logical dataset would silently resurrect deleted rows and
    // drop inserts on recovery. Fail loudly until incremental checkpoints
    // land (ROADMAP open item).
    return Status::FailedPrecondition(
        "store has been mutated since build/recover (" +
        std::to_string(inserts_applied_) + " inserts, " +
        std::to_string(deletes_applied_) +
        " deletes); its persisted segments are stale — rebuild the store "
        "before checkpointing");
  }
  StoreWal wal(&dfs, WalPrefix(name));
  SPQ_ASSIGN_OR_RETURN(StoreWal::ReplayResult replay, wal.Replay());
  uint64_t epoch = 0;
  bool has_built = false;
  for (const WalRecord& rec : replay.records) {
    epoch = std::max(epoch, rec.epoch);
    has_built |= rec.type == WalRecordType::kStoreBuilt;
  }
  // A burned epoch whose begin record became an unreadable WAL hole can
  // still have files on the DFS; scan for them so its number is never
  // reused (write-once files would collide).
  const std::string epoch_prefix = name + "/epoch-";
  for (const std::string& file : dfs.ListFiles()) {
    if (file.rfind(epoch_prefix, 0) != 0) continue;
    epoch = std::max<uint64_t>(
        epoch,
        std::strtoull(file.c_str() + epoch_prefix.size(), nullptr, 10));
  }
  ++epoch;  // epochs named in prior records or leftover files are burned

  if (!has_built) {
    WalRecord built;
    built.type = WalRecordType::kStoreBuilt;
    Buffer meta;
    meta.PutUint64(data_objects_);
    meta.PutDouble(max_radius_);
    built.payload = meta.TakeBytes();
    SPQ_RETURN_NOT_OK(wal.Append(built));
  }

  WalRecord begin;
  begin.type = WalRecordType::kCheckpointBegin;
  begin.epoch = epoch;
  if (crash == CheckpointCrash::kMidWalBegin) {
    SPQ_RETURN_NOT_OK(wal.AppendTorn(begin));
    return Status::Aborted("injected crash: torn checkpoint-begin record");
  }
  SPQ_RETURN_NOT_OK(wal.Append(begin));
  if (crash == CheckpointCrash::kAfterWalBegin) {
    return Status::Aborted("injected crash: after checkpoint-begin record");
  }

  uint32_t nonempty = 0;
  for (const auto& p : cells_) nonempty += p->record_count > 0 ? 1 : 0;

  CheckpointInfo info;
  info.epoch = epoch;
  std::vector<uint32_t> crcs(cells_.size(), 0);
  for (geo::CellId cell = 0; cell < cells_.size(); ++cell) {
    const Partition& part = *cells_[cell];
    if (part.record_count == 0) continue;
    if (crash == CheckpointCrash::kMidCells &&
        info.cells_written >= nonempty / 2) {
      return Status::Aborted("injected crash: mid cell files");
    }
    SPQ_ASSIGN_OR_RETURN(std::vector<uint8_t> image, SegmentImageOf(cell));
    if (image.size() != part.segment.byte_size) {
      return Status::Internal("store cell " + std::to_string(cell) +
                              " image size drifted from its segment");
    }
    crcs[cell] = Crc32c(image);
    SPQ_RETURN_NOT_OK(dfs.WriteFile(CellFile(name, epoch, cell), image));
    info.bytes_written += image.size();
    ++info.cells_written;
  }
  if (crash == CheckpointCrash::kAfterCells) {
    return Status::Aborted("injected crash: after cell files");
  }

  Buffer payload;
  payload.PutUint32(kManifestVersion);
  payload.PutUint64(epoch);
  payload.PutDouble(max_radius_);
  const geo::Rect& b = grid_.bounds();
  payload.PutDouble(b.min_x);
  payload.PutDouble(b.min_y);
  payload.PutDouble(b.max_x);
  payload.PutDouble(b.max_y);
  payload.PutUint32(grid_.nx());
  payload.PutUint32(grid_.ny());
  payload.PutUint64(data_objects_);
  payload.PutUint32(num_cells());
  for (geo::CellId cell = 0; cell < cells_.size(); ++cell) {
    const Partition& part = *cells_[cell];
    payload.PutVarint(part.record_count);
    if (part.record_count > 0) {
      payload.PutVarint(part.segment.byte_size);
      payload.PutVarint(part.segment.pool_bytes);
      payload.PutUint32(crcs[cell]);
    }
  }
  for (const CellTextSummary& summary : *text_summaries_) {
    payload.PutUint64(summary.signature);
    payload.PutVarint(summary.min_len);
    payload.PutVarint(summary.max_len);
    payload.PutVarint(summary.reachable_features);
  }
  std::vector<uint8_t> manifest = FrameManifest(std::move(payload));
  info.bytes_written += manifest.size();
  SPQ_RETURN_NOT_OK(dfs.WriteFile(ManifestFile(name, epoch), manifest));
  if (crash == CheckpointCrash::kAfterManifest) {
    return Status::Aborted("injected crash: after manifest, before commit");
  }

  WalRecord commit;
  commit.type = WalRecordType::kCheckpointCommit;
  commit.epoch = epoch;
  if (crash == CheckpointCrash::kMidWalCommit) {
    SPQ_RETURN_NOT_OK(wal.AppendTorn(commit));
    return Status::Aborted("injected crash: torn checkpoint-commit record");
  }
  SPQ_RETURN_NOT_OK(wal.Append(commit));

  // Epoch E is durable; everything older is dead weight (invariant 5).
  const std::string gc_prefix = name + "/epoch-";
  for (const std::string& file : dfs.ListFiles()) {
    if (file.rfind(gc_prefix, 0) != 0) continue;
    const uint64_t old_epoch =
        std::strtoull(file.c_str() + gc_prefix.size(), nullptr, 10);
    if (old_epoch < epoch) {
      (void)dfs.DeleteFile(file);
    }
  }
  return info;
}

StatusOr<std::unique_ptr<CellStore>> CellStore::Recover(
    dfs::MiniDfs& dfs, const std::string& name,
    const std::vector<ShuffleObject>& rebuild_input) {
  TRACE_SPAN("store.recover");
  metrics::ScopedLatencyTimer recover_timer(
      &StoreRegistryMetrics::Get().recover_ns);
  StoreRegistryMetrics::Get().recoveries.Increment();
  StoreWal wal(&dfs, WalPrefix(name));
  SPQ_ASSIGN_OR_RETURN(StoreWal::ReplayResult replay, wal.Replay());
  std::vector<uint64_t> committed;
  for (const WalRecord& rec : replay.records) {
    if (rec.type == WalRecordType::kCheckpointCommit) {
      committed.push_back(rec.epoch);
    }
  }
  std::sort(committed.rbegin(), committed.rend());  // newest first

  auto try_epoch =
      [&](uint64_t epoch) -> StatusOr<std::unique_ptr<CellStore>> {
    SPQ_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                         dfs.ReadFile(ManifestFile(name, epoch)));
    SPQ_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                         UnframeManifest(bytes));
    BufferReader reader(payload);
    uint32_t version = 0;
    SPQ_RETURN_NOT_OK(reader.GetUint32(&version));
    if (version != kManifestVersion) {
      return Status::IOError("unknown manifest version " +
                             std::to_string(version));
    }
    uint64_t manifest_epoch = 0;
    SPQ_RETURN_NOT_OK(reader.GetUint64(&manifest_epoch));
    if (manifest_epoch != epoch) {
      return Status::IOError("manifest epoch mismatch");
    }
    double max_radius = 0.0;
    geo::Rect bounds;
    uint32_t nx = 0, ny = 0;
    SPQ_RETURN_NOT_OK(reader.GetDouble(&max_radius));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&bounds.min_x));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&bounds.min_y));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&bounds.max_x));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&bounds.max_y));
    SPQ_RETURN_NOT_OK(reader.GetUint32(&nx));
    SPQ_RETURN_NOT_OK(reader.GetUint32(&ny));
    SPQ_ASSIGN_OR_RETURN(geo::UniformGrid grid,
                         geo::UniformGrid::Make(bounds, nx, ny));
    uint64_t data_objects = 0;
    uint32_t num_cells = 0;
    SPQ_RETURN_NOT_OK(reader.GetUint64(&data_objects));
    SPQ_RETURN_NOT_OK(reader.GetUint32(&num_cells));
    if (num_cells != grid.num_cells()) {
      return Status::IOError("manifest cell count mismatch");
    }
    std::unique_ptr<CellStore> store(new CellStore(grid, max_radius));
    store->AllocateCells();
    store->data_objects_ = data_objects;
    store->cell_crcs_.assign(num_cells, 0);
    uint64_t records_total = 0;
    for (geo::CellId cell = 0; cell < num_cells; ++cell) {
      Partition& part = *store->cells_[cell];
      uint64_t record_count = 0;
      SPQ_RETURN_NOT_OK(reader.GetVarint(&record_count));
      part.record_count = record_count;
      part.live_count = record_count;
      records_total += record_count;
      if (record_count > 0) {
        uint64_t byte_size = 0, pool_bytes = 0;
        SPQ_RETURN_NOT_OK(reader.GetVarint(&byte_size));
        SPQ_RETURN_NOT_OK(reader.GetVarint(&pool_bytes));
        SPQ_RETURN_NOT_OK(reader.GetUint32(&store->cell_crcs_[cell]));
        // Partition metadata only — the image itself stays on the DFS
        // until the cell's first Serve (invariant 3).
        part.segment.num_records = record_count;
        part.segment.byte_size = byte_size;
        part.segment.pool_bytes = pool_bytes;
      }
    }
    if (records_total != data_objects) {
      return Status::IOError("manifest record totals disagree");
    }
    std::vector<CellTextSummary> summaries(num_cells);
    for (CellTextSummary& summary : summaries) {
      uint64_t min_len = 0, max_len = 0;
      SPQ_RETURN_NOT_OK(reader.GetUint64(&summary.signature));
      SPQ_RETURN_NOT_OK(reader.GetVarint(&min_len));
      SPQ_RETURN_NOT_OK(reader.GetVarint(&max_len));
      SPQ_RETURN_NOT_OK(reader.GetVarint(&summary.reachable_features));
      summary.min_len = static_cast<uint32_t>(min_len);
      summary.max_len = static_cast<uint32_t>(max_len);
    }
    store->text_summaries_ =
        std::make_shared<const std::vector<CellTextSummary>>(
            std::move(summaries));
    if (!reader.exhausted()) {
      return Status::IOError("trailing manifest bytes");
    }
    return store;
  };

  Status last = Status::OK();
  for (uint64_t epoch : committed) {
    auto store_or = try_epoch(epoch);
    if (!store_or.ok()) {
      // Invariant 1: a commit record alone does not make an epoch
      // servable — its manifest must verify too. Fall back to the next
      // older committed epoch, loudly.
      SPQ_LOG_WARN << "store '" << name << "' committed epoch " << epoch
                   << " unusable (" << store_or.status().ToString()
                   << "); trying older epochs";
      last = store_or.status();
      continue;
    }
    std::unique_ptr<CellStore> store = std::move(*store_or);
    // Dataset-shape check against the checkpoint's recorded data count.
    // FlattenDataset lays rebuild_input out as a data prefix followed by a
    // feature suffix, so probing the boundary elements is O(1); a full
    // O(n) count runs only when the probes are inconclusive (recovery
    // time is first-query latency, and this scan was most of it). A
    // pathological non-flattened input that fools the probes still cannot
    // serve garbage: RebuildPartition re-verifies exact per-cell counts
    // before any rebuilt rows are served.
    const uint64_t want = store->data_objects_;
    bool shape_ok = rebuild_input.size() >= want &&
                    (want == 0 || (rebuild_input.front().is_data() &&
                                   rebuild_input[want - 1].is_data())) &&
                    (rebuild_input.size() == want ||
                     (rebuild_input[want].is_feature() &&
                      rebuild_input.back().is_feature()));
    if (!shape_ok) {
      uint64_t input_data = 0;
      for (const ShuffleObject& x : rebuild_input) {
        input_data += x.is_data() ? 1 : 0;
      }
      shape_ok = input_data == want;
    }
    if (!shape_ok) {
      return Status::InvalidArgument(
          "recover dataset mismatch: checkpoint '" + name + "' holds " +
          std::to_string(want) + " data objects, the supplied dataset ("
          + std::to_string(rebuild_input.size()) + " records) disagrees");
    }
    store->dfs_ = &dfs;
    store->checkpoint_name_ = name;
    store->checkpoint_epoch_ = epoch;
    store->rebuild_input_ = &rebuild_input;
    return store;
  }
  return Status::NotFound(
      "store '" + name + "' has no usable committed checkpoint" +
      (last.ok() ? "" : " (" + last.ToString() + ")"));
}

// --------------------------------------------------------------------------
// Mutation layer: cell-level copy-on-write generations (invariants M1-M5).
// --------------------------------------------------------------------------

void CellStore::AllocateCells() {
  cells_.clear();
  cells_.reserve(grid_.num_cells());
  for (uint32_t i = 0; i < grid_.num_cells(); ++i) {
    cells_.push_back(std::make_shared<Partition>());
  }
}

std::unique_ptr<CellStore> CellStore::CloneShared() const {
  std::unique_ptr<CellStore> next(new CellStore(grid_, max_radius_));
  next->cells_ = cells_;  // shared partitions; the caller swaps mutated ones
  next->text_summaries_ = text_summaries_;
  next->data_objects_ = data_objects_;
  next->build_stats_ = build_stats_;
  next->mutated_ = mutated_;
  next->inserts_applied_ = inserts_applied_;
  next->deletes_applied_ = deletes_applied_;
  next->cells_compacted_ = cells_compacted_;
  next->dfs_ = dfs_;
  next->checkpoint_name_ = checkpoint_name_;
  next->checkpoint_epoch_ = checkpoint_epoch_;
  next->rebuild_input_ = rebuild_input_;
  next->cell_crcs_ = cell_crcs_;
  next->cells_restored_.store(cells_restored(), std::memory_order_relaxed);
  next->cells_rebuilt_.store(cells_rebuilt(), std::memory_order_relaxed);
  return next;
}

std::shared_ptr<CellStore::Partition> CellStore::CowPartition(
    geo::CellId cell) const {
  const Partition& base = *cells_[cell];
  auto part = std::make_shared<Partition>();
  auto copy_serving_form = [&part, &base]() {
    part->data = base.data;
    part->index = base.index;
    part->dead = base.dead;
    part->dead_rows = base.dead_rows;
    // Base bookkeeping travels along so checkpoints/restores of OTHER
    // generations stay unaffected and Serve's invariants keep holding.
    part->segment.num_records = base.segment.num_records;
    part->segment.byte_size = base.segment.byte_size;
    part->segment.pool_bytes = base.segment.pool_bytes;
    part->record_count = base.record_count;
    part->live_count = base.live_count;
    // Readers only reach this partition through the engine's RCU snapshot
    // publication, which release-orders everything above; relaxed is
    // enough here.
    part->ready.store(true, std::memory_order_relaxed);
  };
  if (base.ready.load(std::memory_order_acquire)) {
    copy_serving_form();  // ready ⇒ frozen: lock-free copy
    return part;
  }
  // Unready: a concurrent first-touch Serve on an older generation may be
  // materializing `base` right now (it releases segment.bytes when done),
  // so copy the persisted + delta form under the base latch.
  std::lock_guard<std::mutex> latch(base.latch);
  if (base.ready.load(std::memory_order_relaxed)) {
    copy_serving_form();
    return part;
  }
  part->segment = base.segment;
  part->delta_inserts = base.delta_inserts;
  part->delta_tombstones = base.delta_tombstones;
  part->compact_on_fold = base.compact_on_fold;
  part->record_count = base.record_count;
  part->live_count = base.live_count;
  return part;
}

void CellStore::DropDeadRows(Partition& part) {
  if (!part.dead_rows.empty()) {
    reduce_core::CellData live;
    live.Reserve(static_cast<std::size_t>(part.live_count));
    for (std::size_t i = 0; i < part.data.size(); ++i) {
      if (part.dead[i]) continue;
      live.ids.push_back(part.data.ids[i]);
      live.positions.push_back(part.data.positions[i]);
    }
    part.data = std::move(live);
    part.dead.clear();
    part.dead_rows.clear();
  }
  part.record_count = part.data.size();
}

void CellStore::CompactPartition(Partition& part) {
  TRACE_SPAN("store.compact");
  StoreRegistryMetrics::Get().cells_compacted.Increment();
  DropDeadRows(part);
  // A fresh Build gives exactly the structure a from-scratch store build
  // would serve for the surviving rows (invariant M4).
  part.index.Build(part.data.positions);
}

bool CellStore::MaybeCompact(Partition& part,
                             const MutationOptions& options) {
  const bool is_ready = part.ready.load(std::memory_order_relaxed);
  const uint64_t physical =
      is_ready ? part.record_count
               : part.segment.num_records + part.delta_inserts.size();
  const uint64_t dead = physical - part.live_count;
  if (dead == 0) return false;
  if (static_cast<double>(dead) <
      options.compact_dead_fraction * static_cast<double>(physical)) {
    return false;
  }
  if (is_ready) {
    CompactPartition(part);
  } else {
    // Fold-time order (invariant M3/M4): record_count becomes the
    // post-compaction row count now so Serve's fold check stays exact.
    part.compact_on_fold = true;
    part.record_count = part.live_count;
  }
  return true;
}

Status CellStore::FoldDelta(Partition& part) {
  const std::size_t base_rows = part.data.size();
  // Tombstones name base rows only, each at most once (invariant M3): a
  // delete that targeted a still-pending insert erased the insert instead
  // of logging a tombstone.
  if (!part.delta_tombstones.empty()) {
    part.dead.assign(base_rows, 0);
    part.dead_rows.reserve(part.delta_tombstones.size());
    for (ObjectId id : part.delta_tombstones) {
      bool found = false;
      for (std::size_t i = 0; i < base_rows; ++i) {
        if (part.data.ids[i] == id && !part.dead[i]) {
          part.dead[i] = 1;
          part.dead_rows.push_back(static_cast<uint32_t>(i));
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("store delta tombstone names object " +
                                std::to_string(id) +
                                " absent from its cell's base rows");
      }
    }
  }
  for (const ShuffleObject& row : part.delta_inserts) {
    part.data.Add(row);
    if (!part.dead.empty()) part.dead.push_back(0);
  }
  if (part.compact_on_fold) DropDeadRows(part);
  return Status::OK();
}

StatusOr<std::unique_ptr<CellStore>> CellStore::WithInsert(
    const DataObject& object, const MutationOptions& options) const {
  if (!(std::isfinite(object.pos.x) && std::isfinite(object.pos.y))) {
    return Status::InvalidArgument("insert position must be finite");
  }
  // Single placement (invariant M1): out-of-bounds positions clamp onto an
  // edge cell, the same rule the build mapper applies — so a fresh build
  // over the equivalent dataset places the row identically.
  const geo::CellId cell = grid_.CellOf(object.pos);
  std::unique_ptr<CellStore> next = CloneShared();
  std::shared_ptr<Partition> part = CowPartition(cell);
  if (part->ready.load(std::memory_order_relaxed)) {
    part->data.Add(object);
    if (!part->dead.empty()) part->dead.push_back(0);
    part->record_count = part->data.size();
    ++part->live_count;
    // Fresh rebuild, not a pending-list Append: the bucket geometry (live
    // bbox, side ≈ √live) must equal what a from-scratch build over the
    // logical rows derives, or probe candidate supersets — and therefore
    // pairs_tested — drift from the rebuild reference (invariant M2).
    // O(cell rows), amortized fine: cells hold ~n/cells rows.
    part->index.Build(part->data.positions,
                      part->dead.empty() ? nullptr : &part->dead);
  } else {
    ShuffleObject row;
    row.kind = ShuffleObject::kData;
    row.id = object.id;
    row.pos = object.pos;
    part->delta_inserts.push_back(std::move(row));
    ++part->live_count;
    part->record_count =
        part->compact_on_fold
            ? part->live_count
            : part->segment.num_records + part->delta_inserts.size();
  }
  if (MaybeCompact(*part, options)) ++next->cells_compacted_;
  next->cells_[cell] = std::move(part);
  ++next->data_objects_;
  next->mutated_ = true;
  ++next->inserts_applied_;
  return next;
}

StatusOr<std::unique_ptr<CellStore>> CellStore::WithDelete(
    ObjectId id, geo::CellId cell, const MutationOptions& options) const {
  if (cell >= cells_.size()) {
    return Status::InvalidArgument("cell id outside the store grid");
  }
  std::unique_ptr<CellStore> next = CloneShared();
  std::shared_ptr<Partition> part = CowPartition(cell);
  if (part->live_count == 0) {
    return Status::NotFound("data object " + std::to_string(id) +
                            " has no live row in cell " +
                            std::to_string(cell));
  }
  if (part->ready.load(std::memory_order_relaxed)) {
    // Back-scan: a re-inserted id appends after its tombstoned
    // predecessor, so the LIVE instance is always the last match.
    std::size_t row = part->data.size();
    for (std::size_t i = part->data.size(); i-- > 0;) {
      if (part->data.ids[i] == id &&
          (part->dead.empty() || !part->dead[i])) {
        row = i;
        break;
      }
    }
    if (row == part->data.size()) {
      return Status::NotFound("data object " + std::to_string(id) +
                              " has no live row in cell " +
                              std::to_string(cell));
    }
    if (part->dead.empty()) part->dead.assign(part->data.size(), 0);
    part->dead[row] = 1;
    part->dead_rows.push_back(static_cast<uint32_t>(row));
    --part->live_count;
    // Same geometry contract as the insert path: the dead row must leave
    // the bucket geometry immediately (invariant M2).
    part->index.Build(part->data.positions, &part->dead);
  } else {
    auto it = std::find_if(
        part->delta_inserts.begin(), part->delta_inserts.end(),
        [id](const ShuffleObject& o) { return o.id == id; });
    if (it != part->delta_inserts.end()) {
      // Deleting a still-pending insert erases it: absent at fold time ≡
      // tombstoned at birth, and invariant M3's "tombstones name base
      // rows" stays true.
      part->delta_inserts.erase(it);
    } else {
      // Presence in the base rows is the caller's (engine locator's)
      // contract; a lie surfaces loudly as FoldDelta's Internal error at
      // the cell's first touch.
      part->delta_tombstones.push_back(id);
    }
    --part->live_count;
    part->record_count =
        part->compact_on_fold
            ? part->live_count
            : part->segment.num_records + part->delta_inserts.size();
  }
  if (MaybeCompact(*part, options)) ++next->cells_compacted_;
  next->cells_[cell] = std::move(part);
  --next->data_objects_;
  next->mutated_ = true;
  ++next->deletes_applied_;
  return next;
}

StatusOr<std::unique_ptr<CellStore>> CellStore::Compacted() const {
  std::unique_ptr<CellStore> next = CloneShared();
  for (geo::CellId cell = 0; cell < cells_.size(); ++cell) {
    // Dirty ⇔ live and physical row counts disagree. Cells already under
    // a fold-time compaction order keep record_count == live_count and
    // were tallied when the order was placed.
    const Partition& base = *cells_[cell];
    if (base.live_count == base.record_count) continue;
    std::shared_ptr<Partition> part = CowPartition(cell);
    if (part->ready.load(std::memory_order_relaxed)) {
      CompactPartition(*part);
    } else {
      part->compact_on_fold = true;
      part->record_count = part->live_count;
    }
    next->cells_[cell] = std::move(part);
    ++next->cells_compacted_;
  }
  return next;
}

namespace {

/// Shared reduce-side skeleton of both warm jobs: walk the partition's
/// merged group stream, serve each group against the store, and (single
/// query only) account a reduce group for every resident data cell the
/// feature stream skipped — the cold path runs those groups too, they
/// just produce no output, so warm counters must match.
///
/// `data_cells` is the partition's sorted resident-cell list (empty for
/// the batched job, whose cold path never counts feature-less cells), and
/// group cells arrive in ascending order on both shuffle paths, so the
/// accounting is a two-pointer walk.
template <typename Ctx>
class DataOnlyGroupAccountant {
 public:
  DataOnlyGroupAccountant(const std::vector<geo::CellId>* cells, Ctx& ctx)
      : cells_(cells), ctx_(ctx) {}

  void OnGroup(geo::CellId cell) {
    if (cells_ == nullptr) return;
    while (next_ < cells_->size() && (*cells_)[next_] < cell) {
      ctx_.counters().Increment(counter::kGroups);
      ++next_;
    }
    if (next_ < cells_->size() && (*cells_)[next_] == cell) ++next_;
  }

  void Finish() {
    if (cells_ == nullptr) return;
    while (next_ < cells_->size()) {
      ctx_.counters().Increment(counter::kGroups);
      ++next_;
    }
  }

 private:
  const std::vector<geo::CellId>* cells_;
  Ctx& ctx_;
  std::size_t next_ = 0;
};

/// The cell-summary screen of one warm reduce group (see CellTextSummary
/// for the soundness argument). Returns true when the group was fully
/// handled — skipped with the baseline's exact counter footprint replayed,
/// cursor drained — so the caller must not Serve or run the reduce core.
///
/// Counter replication, per algorithm, given the proof that every feature
/// in a skipped group scores 0 against `query` (and qlen > 0):
///  - pSPQ walks all n features (threshold stays 0, no probe survives
///    w > 0): groups+1, features_examined+n, pairs+0.
///  - eSPQlen: lengths ascend, so a zero-length feature (possible only
///    with the keyword prefilter off) sits first and trips Lemma 2
///    immediately (upper bound 0 vs threshold 0): groups+1,
///    early_terminations+1, features_examined+0. Otherwise every upper
///    bound is positive, the loop never breaks: features_examined+n.
///  - eSPQsco: the first (maximal) map-side score is already 0, tripping
///    the descending-order stop before anything is examined: groups+1,
///    early_terminations+1, features_examined+0. pairs+0 in all cases.
template <typename Cursor, typename Counters>
bool TrySignatureSkip(const CellStore& store, Algorithm algo,
                      const Query& query, uint64_t query_sig,
                      const SpqJobOptions& options, geo::CellId cell,
                      Cursor& cursor, Counters& counters) {
  if (!options.signature_prefilter || query.keywords.empty()) return false;
  const CellTextSummary& summary = store.text_summary(cell);
  counters.Increment(counter::kSignatureChecks);
  if ((summary.signature & query_sig) != 0 &&
      summary.BestScoreBound(query.keywords.size()) > 0.0) {
    return false;
  }
  counters.Increment(counter::kCellsPruned);
  counters.Increment(counter::kGroups);
  uint64_t examined = 0;
  switch (algo) {
    case Algorithm::kPSPQ: {
      while (cursor.Next()) ++examined;
      break;
    }
    case Algorithm::kESPQLen: {
      bool first = true;
      bool stopped = false;
      while (cursor.Next()) {
        if (first) {
          stopped = KeywordCount(cursor.value()) == 0;
          first = false;
        }
        if (!stopped) ++examined;
      }
      if (stopped) counters.Increment(counter::kEarlyTerminations);
      break;
    }
    case Algorithm::kESPQSco: {
      counters.Increment(counter::kEarlyTerminations);
      while (cursor.Next()) {
      }
      break;
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, 0);
  return true;
}

/// Runs one warm job for either key/output shape. `serve_group(key,
/// cursor, ctx, scratch)` evaluates one group against the store;
/// `cell_of(key)` projects the group key onto the store cell. The
/// QueryScratch is per reduce task (parallel tasks each get their own),
/// reused across the task's groups so the warm loop stays allocation-free
/// in steady state.
template <typename K, typename Out, typename ServeGroup, typename CellOf>
StatusOr<mr::JobOutput<Out>> RunWarmJob(
    const mr::JobSpec<ShuffleObject, K, ShuffleObject, Out>& spec,
    const mr::JobConfig& config, const std::vector<ShuffleObject>& features,
    const std::vector<std::vector<geo::CellId>>* data_cells,
    ServeGroup&& serve_group, CellOf&& cell_of) {
  if (config.shuffle_mode == mr::ShuffleMode::kCellBucketed) {
    auto spill_partition =
        [](const std::vector<std::pair<K, ShuffleObject>>& records) {
          return mr::internal::BuildFlatSegment<K, ShuffleObject>(records);
        };
    auto reduce_partition =
        [&](uint32_t r, const std::vector<const mr::FlatSegment*>& segments,
            mr::ReduceContext<Out>& ctx) -> Status {
      mr::FlatMergeStream<K, ShuffleObject> stream(segments);
      DataOnlyGroupAccountant accountant(
          data_cells != nullptr ? &(*data_cells)[r] : nullptr, ctx);
      reduce_core::QueryScratch scratch;
      bool has = stream.Advance();
      while (has) {
        const K group_key = stream.key();
        accountant.OnGroup(cell_of(group_key));
        mr::FlatGroupCursor<K, ShuffleObject> cursor(&stream,
                                                     stream.bucket());
        SPQ_RETURN_NOT_OK(serve_group(group_key, cursor, ctx, scratch));
        has = cursor.FinishGroup();
      }
      accountant.Finish();
      return stream.status();
    };
    return mr::internal::RunJobWith<mr::FlatSegment>(
        spec, config, features, spill_partition, reduce_partition);
  }

  auto spill_partition =
      [&spec](std::vector<std::pair<K, ShuffleObject>>& records) {
        return mr::internal::BuildSortedSegment<K, ShuffleObject>(
            records, spec.sort_less);
      };
  auto reduce_partition =
      [&](uint32_t r, const std::vector<const mr::SortedSegment*>& segments,
          mr::ReduceContext<Out>& ctx) -> Status {
    mr::MergeStream<K, ShuffleObject> stream(segments, spec.sort_less);
    DataOnlyGroupAccountant accountant(
        data_cells != nullptr ? &(*data_cells)[r] : nullptr, ctx);
    reduce_core::QueryScratch scratch;
    bool has = stream.Advance();
    while (has) {
      const K group_key = stream.key();
      accountant.OnGroup(cell_of(group_key));
      mr::internal::GroupCursor<K, ShuffleObject> cursor(&stream, &group_key,
                                                         &spec.group_equal);
      SPQ_RETURN_NOT_OK(serve_group(group_key, cursor, ctx, scratch));
      has = cursor.FinishGroup();
    }
    accountant.Finish();
    return stream.status();
  };
  return mr::internal::RunJobWith<mr::SortedSegment>(
      spec, config, features, spill_partition, reduce_partition);
}

}  // namespace

StatusOr<mr::JobOutput<ResultEntry>> RunWarmQueryJob(
    const CellStore& store, Algorithm algo, const Query& query,
    const mr::JobSpec<ShuffleObject, CellKey, ShuffleObject, ResultEntry>&
        spec,
    const mr::JobConfig& config, const std::vector<ShuffleObject>& features,
    const std::vector<std::vector<geo::CellId>>& data_cells,
    const SpqJobOptions& options) {
  const uint64_t query_sig = text::TermSignature(query.keywords.ids());
  auto serve_group = [&](const CellKey& key, auto& cursor,
                         mr::ReduceContext<ResultEntry>& ctx,
                         reduce_core::QueryScratch& scratch) -> Status {
    // Summary screen first: a skipped group never touches the partition —
    // no lazy materialization, no scratch reset, no feature scoring.
    if (TrySignatureSkip(store, algo, query, query_sig, options, key.cell,
                         cursor, ctx.counters())) {
      return Status::OK();
    }
    SPQ_ASSIGN_OR_RETURN(const CellStore::Partition* part,
                         store.Serve(key.cell));
    reduce_core::FrozenCellRef cell_ref{&part->data, &part->index,
                                        &part->dead_rows};
    reduce_core::RunReduce(algo, options, query, cell_ref, scratch, cursor,
                           ctx.counters(),
                           [&ctx](const ResultEntry& e) { ctx.Emit(e); });
    return Status::OK();
  };
  return RunWarmJob<CellKey, ResultEntry>(
      spec, config, features, &data_cells, serve_group,
      [](const CellKey& key) { return key.cell; });
}

StatusOr<mr::JobOutput<BatchResultEntry>> RunWarmBatchJob(
    const CellStore& store, Algorithm algo, const std::vector<Query>& queries,
    const mr::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                      BatchResultEntry>& spec,
    const mr::JobConfig& config, const std::vector<ShuffleObject>& features,
    const SpqJobOptions& options) {
  std::vector<uint64_t> query_sigs;
  query_sigs.reserve(queries.size());
  for (const Query& q : queries) {
    query_sigs.push_back(text::TermSignature(q.keywords.ids()));
  }
  auto serve_group = [&](const BatchCellKey& key, auto& cursor,
                         mr::ReduceContext<BatchResultEntry>& ctx,
                         reduce_core::QueryScratch& scratch) -> Status {
    // The feature-only input cannot produce the data sentinel (query 0);
    // out-of-range indices are drained defensively like the cold reducer.
    if (key.query == 0 || key.query > queries.size()) return Status::OK();
    const uint32_t q = key.query - 1;
    if (TrySignatureSkip(store, algo, queries[q], query_sigs[q], options,
                         key.cell, cursor, ctx.counters())) {
      return Status::OK();
    }
    SPQ_ASSIGN_OR_RETURN(const CellStore::Partition* part,
                         store.Serve(key.cell));
    reduce_core::FrozenCellRef cell_ref{&part->data, &part->index,
                                        &part->dead_rows};
    reduce_core::RunReduce(algo, options, queries[q], cell_ref, scratch,
                           cursor, ctx.counters(),
                           [&ctx, q](const ResultEntry& e) {
                             ctx.Emit(BatchResultEntry{q, e});
                           });
    return Status::OK();
  };
  // No data-only accounting: the cold batched reducer's sentinel groups
  // never reach a reduce core, so feature-less cells count no group there
  // either.
  return RunWarmJob<BatchCellKey, BatchResultEntry>(
      spec, config, features, /*data_cells=*/nullptr, serve_group,
      [](const BatchCellKey& key) { return key.cell; });
}

}  // namespace spq::core
