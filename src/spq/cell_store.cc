#include "spq/cell_store.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "text/keyword_set.h"

namespace spq::core {

namespace {

namespace mr = ::spq::mapreduce;

/// Build-time mapper: the data branch of the SPQ mappers, alone. Features
/// are per-query (prefilter, order key, Lemma-1 duplication radius) and
/// never enter the store.
class StoreBuildMapper final
    : public mr::Mapper<ShuffleObject, CellKey, ShuffleObject> {
 public:
  explicit StoreBuildMapper(geo::UniformGrid grid) : grid_(grid) {}

  void Map(const ShuffleObject& x,
           mr::MapContext<CellKey, ShuffleObject>& ctx) override {
    if (!x.is_data()) return;
    ctx.counters().Increment(counter::kDataObjects);
    // The secondary component is irrelevant inside the store (every
    // record is data); 0.0 keeps records in dataset order under the
    // stable tie-break, matching the order the cold reducers see.
    ctx.Emit(CellKey{grid_.CellOf(x.pos), 0.0}, x);
  }

 private:
  geo::UniformGrid grid_;
};

/// Re-owning copy of a zero-copy record view (the store outlives the
/// build job's segment arenas, so persisted records must own their bytes;
/// data objects carry no keywords, making this an O(1) scalar copy).
ShuffleObject OwnView(const ShuffleObjectView& v) {
  ShuffleObject o;
  o.kind = v.kind;
  o.id = v.id;
  o.pos = v.pos;
  if (v.num_keywords > 0) {
    o.keywords.assign(v.keywords, v.keywords + v.num_keywords);
  }
  return o;
}

}  // namespace

StatusOr<std::unique_ptr<CellStore>> CellStore::Build(
    const std::vector<ShuffleObject>& input, const geo::UniformGrid& grid,
    double max_radius, const mr::JobConfig& config) {
  if (!(max_radius >= 0.0)) {
    return Status::InvalidArgument("store max_radius must be >= 0");
  }
  std::unique_ptr<CellStore> store(new CellStore(grid, max_radius));

  mr::JobSpec<ShuffleObject, CellKey, ShuffleObject, uint64_t> spec;
  spec.mapper_factory = [grid]() {
    return std::make_unique<StoreBuildMapper>(grid);
  };
  spec.partitioner = CellPartitioner;

  // The build always runs the flat-arena pipeline: the per-cell resident
  // partitions reuse the FlatSegment byte layout verbatim, so assembling
  // them from flat shuffle segments is a straight re-bucketing.
  auto spill_partition =
      [](const std::vector<std::pair<CellKey, ShuffleObject>>& records) {
        return mr::internal::BuildFlatSegment<CellKey, ShuffleObject>(records);
      };
  CellStore* store_ptr = store.get();
  auto reduce_partition =
      [store_ptr](uint32_t /*partition*/,
                  const std::vector<const mr::FlatSegment*>& segments,
                  mr::ReduceContext<uint64_t>& ctx) -> Status {
    mr::FlatMergeStream<CellKey, ShuffleObject> stream(segments);
    std::vector<std::pair<CellKey, ShuffleObject>> rows;
    bool has = stream.Advance();
    while (has) {
      const geo::CellId cell = static_cast<geo::CellId>(stream.bucket());
      mr::FlatGroupCursor<CellKey, ShuffleObject> cursor(&stream,
                                                         stream.bucket());
      rows.clear();
      while (cursor.Next()) {
        rows.emplace_back(cursor.key(), OwnView(cursor.value()));
      }
      // One flat-arena image per cell. The rows arrive in merge order
      // (the order a cold reduce group would stream them), and
      // BuildFlatSegment's stable layout preserves it.
      auto seg_or =
          mr::internal::BuildFlatSegment<CellKey, ShuffleObject>(rows);
      if (!seg_or.ok()) return seg_or.status();
      Partition& part = store_ptr->cells_[cell];  // one task per cell
      part.segment = *std::move(seg_or);
      part.record_count = part.segment.num_records;
      has = cursor.FinishGroup();
    }
    return stream.status();
  };

  SPQ_ASSIGN_OR_RETURN(
      auto output,
      (mr::internal::RunJobWith<mr::FlatSegment>(
          spec, config, input, spill_partition, reduce_partition)));
  store->build_stats_ = std::move(output.stats);
  store->data_objects_ =
      store->build_stats_.counters.Get(counter::kDataObjects);

  // Cell keyword summaries: absorb every keyword-bearing feature into its
  // own cell and every cell Lemma-1 duplication could copy it into at the
  // store's max radius — a superset of any warm query's duplication
  // targets (CellsWithinDist is monotone in r, and the engine refuses
  // warm radii above max_radius). Keyword-less features are omitted: they
  // always score 0, which is exactly what the summary's absence encodes.
  store->text_summaries_.assign(grid.num_cells(), CellTextSummary{});
  for (const ShuffleObject& x : input) {
    if (x.is_data()) continue;
    const uint32_t len = static_cast<uint32_t>(KeywordCount(x));
    if (len == 0) continue;
    const uint64_t sig = x.keyword_sig != 0
                             ? x.keyword_sig
                             : text::TermSignature(KeywordData(x), len);
    store->text_summaries_[grid.CellOf(x.pos)].Absorb(sig, len);
    for (geo::CellId c : grid.CellsWithinDist(x.pos, max_radius)) {
      store->text_summaries_[c].Absorb(sig, len);
    }
  }
  return store;
}

std::vector<std::vector<geo::CellId>> CellStore::DataCellsByPartition(
    const std::function<uint32_t(const CellKey&, uint32_t)>& partitioner,
    uint32_t num_partitions) const {
  std::vector<std::vector<geo::CellId>> by_partition(num_partitions);
  for (geo::CellId c = 0; c < num_cells(); ++c) {
    if (cell_record_count(c) == 0) continue;
    by_partition[partitioner(CellKey{c, 0.0}, num_partitions)].push_back(c);
  }
  return by_partition;
}

StatusOr<CellStore::Partition*> CellStore::Serve(geo::CellId cell) {
  if (cell >= cells_.size()) {
    return Status::InvalidArgument("cell id outside the store grid");
  }
  Partition& part = cells_[cell];
  if (!part.materialized) {
    // Idempotent under reduce-attempt retries: a prior pass that failed
    // mid-read must not leave stale rows behind.
    part.data.Clear();
    part.index.Reset();
    part.data.Reserve(part.record_count);
    if (part.record_count > 0) {
      mr::internal::FlatSegmentReader<CellKey, ShuffleObject> reader(
          &part.segment);
      while (reader.Next()) part.data.Add(reader.view());
      SPQ_RETURN_NOT_OK(reader.status());
      if (part.data.size() != part.record_count) {
        return Status::Internal("store partition truncated");
      }
      // The serving form replaces the persisted bytes (no double
      // residency); record_count keeps the bookkeeping.
      part.segment.bytes.clear();
      part.segment.bytes.shrink_to_fit();
    }
    part.materialized = true;
  }
  return &part;
}

namespace {

/// Shared reduce-side skeleton of both warm jobs: walk the partition's
/// merged group stream, serve each group against the store, and (single
/// query only) account a reduce group for every resident data cell the
/// feature stream skipped — the cold path runs those groups too, they
/// just produce no output, so warm counters must match.
///
/// `data_cells` is the partition's sorted resident-cell list (empty for
/// the batched job, whose cold path never counts feature-less cells), and
/// group cells arrive in ascending order on both shuffle paths, so the
/// accounting is a two-pointer walk.
template <typename Ctx>
class DataOnlyGroupAccountant {
 public:
  DataOnlyGroupAccountant(const std::vector<geo::CellId>* cells, Ctx& ctx)
      : cells_(cells), ctx_(ctx) {}

  void OnGroup(geo::CellId cell) {
    if (cells_ == nullptr) return;
    while (next_ < cells_->size() && (*cells_)[next_] < cell) {
      ctx_.counters().Increment(counter::kGroups);
      ++next_;
    }
    if (next_ < cells_->size() && (*cells_)[next_] == cell) ++next_;
  }

  void Finish() {
    if (cells_ == nullptr) return;
    while (next_ < cells_->size()) {
      ctx_.counters().Increment(counter::kGroups);
      ++next_;
    }
  }

 private:
  const std::vector<geo::CellId>* cells_;
  Ctx& ctx_;
  std::size_t next_ = 0;
};

/// The cell-summary screen of one warm reduce group (see CellTextSummary
/// for the soundness argument). Returns true when the group was fully
/// handled — skipped with the baseline's exact counter footprint replayed,
/// cursor drained — so the caller must not Serve or run the reduce core.
///
/// Counter replication, per algorithm, given the proof that every feature
/// in a skipped group scores 0 against `query` (and qlen > 0):
///  - pSPQ walks all n features (threshold stays 0, no probe survives
///    w > 0): groups+1, features_examined+n, pairs+0.
///  - eSPQlen: lengths ascend, so a zero-length feature (possible only
///    with the keyword prefilter off) sits first and trips Lemma 2
///    immediately (upper bound 0 vs threshold 0): groups+1,
///    early_terminations+1, features_examined+0. Otherwise every upper
///    bound is positive, the loop never breaks: features_examined+n.
///  - eSPQsco: the first (maximal) map-side score is already 0, tripping
///    the descending-order stop before anything is examined: groups+1,
///    early_terminations+1, features_examined+0. pairs+0 in all cases.
template <typename Cursor, typename Counters>
bool TrySignatureSkip(const CellStore& store, Algorithm algo,
                      const Query& query, uint64_t query_sig,
                      const SpqJobOptions& options, geo::CellId cell,
                      Cursor& cursor, Counters& counters) {
  if (!options.signature_prefilter || query.keywords.empty()) return false;
  const CellTextSummary& summary = store.text_summary(cell);
  counters.Increment(counter::kSignatureChecks);
  if ((summary.signature & query_sig) != 0 &&
      summary.BestScoreBound(query.keywords.size()) > 0.0) {
    return false;
  }
  counters.Increment(counter::kCellsPruned);
  counters.Increment(counter::kGroups);
  uint64_t examined = 0;
  switch (algo) {
    case Algorithm::kPSPQ: {
      while (cursor.Next()) ++examined;
      break;
    }
    case Algorithm::kESPQLen: {
      bool first = true;
      bool stopped = false;
      while (cursor.Next()) {
        if (first) {
          stopped = KeywordCount(cursor.value()) == 0;
          first = false;
        }
        if (!stopped) ++examined;
      }
      if (stopped) counters.Increment(counter::kEarlyTerminations);
      break;
    }
    case Algorithm::kESPQSco: {
      counters.Increment(counter::kEarlyTerminations);
      while (cursor.Next()) {
      }
      break;
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, 0);
  return true;
}

/// Runs one warm job for either key/output shape. `serve_group(key,
/// cursor, ctx)` evaluates one group against the store; `cell_of(key)`
/// projects the group key onto the store cell.
template <typename K, typename Out, typename ServeGroup, typename CellOf>
StatusOr<mr::JobOutput<Out>> RunWarmJob(
    const mr::JobSpec<ShuffleObject, K, ShuffleObject, Out>& spec,
    const mr::JobConfig& config, const std::vector<ShuffleObject>& features,
    const std::vector<std::vector<geo::CellId>>* data_cells,
    ServeGroup&& serve_group, CellOf&& cell_of) {
  if (config.shuffle_mode == mr::ShuffleMode::kCellBucketed) {
    auto spill_partition =
        [](const std::vector<std::pair<K, ShuffleObject>>& records) {
          return mr::internal::BuildFlatSegment<K, ShuffleObject>(records);
        };
    auto reduce_partition =
        [&](uint32_t r, const std::vector<const mr::FlatSegment*>& segments,
            mr::ReduceContext<Out>& ctx) -> Status {
      mr::FlatMergeStream<K, ShuffleObject> stream(segments);
      DataOnlyGroupAccountant accountant(
          data_cells != nullptr ? &(*data_cells)[r] : nullptr, ctx);
      bool has = stream.Advance();
      while (has) {
        const K group_key = stream.key();
        accountant.OnGroup(cell_of(group_key));
        mr::FlatGroupCursor<K, ShuffleObject> cursor(&stream,
                                                     stream.bucket());
        SPQ_RETURN_NOT_OK(serve_group(group_key, cursor, ctx));
        has = cursor.FinishGroup();
      }
      accountant.Finish();
      return stream.status();
    };
    return mr::internal::RunJobWith<mr::FlatSegment>(
        spec, config, features, spill_partition, reduce_partition);
  }

  auto spill_partition =
      [&spec](std::vector<std::pair<K, ShuffleObject>>& records) {
        return mr::internal::BuildSortedSegment<K, ShuffleObject>(
            records, spec.sort_less);
      };
  auto reduce_partition =
      [&](uint32_t r, const std::vector<const mr::SortedSegment*>& segments,
          mr::ReduceContext<Out>& ctx) -> Status {
    mr::MergeStream<K, ShuffleObject> stream(segments, spec.sort_less);
    DataOnlyGroupAccountant accountant(
        data_cells != nullptr ? &(*data_cells)[r] : nullptr, ctx);
    bool has = stream.Advance();
    while (has) {
      const K group_key = stream.key();
      accountant.OnGroup(cell_of(group_key));
      mr::internal::GroupCursor<K, ShuffleObject> cursor(&stream, &group_key,
                                                         &spec.group_equal);
      SPQ_RETURN_NOT_OK(serve_group(group_key, cursor, ctx));
      has = cursor.FinishGroup();
    }
    accountant.Finish();
    return stream.status();
  };
  return mr::internal::RunJobWith<mr::SortedSegment>(
      spec, config, features, spill_partition, reduce_partition);
}

}  // namespace

StatusOr<mr::JobOutput<ResultEntry>> RunWarmQueryJob(
    CellStore& store, Algorithm algo, const Query& query,
    const mr::JobSpec<ShuffleObject, CellKey, ShuffleObject, ResultEntry>&
        spec,
    const mr::JobConfig& config, const std::vector<ShuffleObject>& features,
    const std::vector<std::vector<geo::CellId>>& data_cells,
    const SpqJobOptions& options) {
  const uint64_t query_sig = text::TermSignature(query.keywords.ids());
  auto serve_group = [&](const CellKey& key, auto& cursor,
                         mr::ReduceContext<ResultEntry>& ctx) -> Status {
    // Summary screen first: a skipped group never touches the partition —
    // no lazy materialization, no O(n) score reset, no feature scoring.
    if (TrySignatureSkip(store, algo, query, query_sig, options, key.cell,
                         cursor, ctx.counters())) {
      return Status::OK();
    }
    SPQ_ASSIGN_OR_RETURN(CellStore::Partition * part, store.Serve(key.cell));
    // Per-query score scratch; eSPQsco tracks reports, not scores, so it
    // skips the O(n) reset.
    if (algo != Algorithm::kESPQSco) part->data.ResetScores();
    reduce_core::RunReduce(algo, options, query, part->data, part->index,
                           cursor, ctx.counters(),
                           [&ctx](const ResultEntry& e) { ctx.Emit(e); });
    return Status::OK();
  };
  return RunWarmJob<CellKey, ResultEntry>(
      spec, config, features, &data_cells, serve_group,
      [](const CellKey& key) { return key.cell; });
}

StatusOr<mr::JobOutput<BatchResultEntry>> RunWarmBatchJob(
    CellStore& store, Algorithm algo, const std::vector<Query>& queries,
    const mr::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                      BatchResultEntry>& spec,
    const mr::JobConfig& config, const std::vector<ShuffleObject>& features,
    const SpqJobOptions& options) {
  std::vector<uint64_t> query_sigs;
  query_sigs.reserve(queries.size());
  for (const Query& q : queries) {
    query_sigs.push_back(text::TermSignature(q.keywords.ids()));
  }
  auto serve_group = [&](const BatchCellKey& key, auto& cursor,
                         mr::ReduceContext<BatchResultEntry>& ctx) -> Status {
    // The feature-only input cannot produce the data sentinel (query 0);
    // out-of-range indices are drained defensively like the cold reducer.
    if (key.query == 0 || key.query > queries.size()) return Status::OK();
    const uint32_t q = key.query - 1;
    if (TrySignatureSkip(store, algo, queries[q], query_sigs[q], options,
                         key.cell, cursor, ctx.counters())) {
      return Status::OK();
    }
    SPQ_ASSIGN_OR_RETURN(CellStore::Partition * part, store.Serve(key.cell));
    if (algo != Algorithm::kESPQSco) part->data.ResetScores();
    reduce_core::RunReduce(algo, options, queries[q], part->data,
                           part->index, cursor, ctx.counters(),
                           [&ctx, q](const ResultEntry& e) {
                             ctx.Emit(BatchResultEntry{q, e});
                           });
    return Status::OK();
  };
  // No data-only accounting: the cold batched reducer's sentinel groups
  // never reach a reduce core, so feature-less cells count no group there
  // either.
  return RunWarmJob<BatchCellKey, BatchResultEntry>(
      spec, config, features, /*data_cells=*/nullptr, serve_group,
      [](const BatchCellKey& key) { return key.cell; });
}

}  // namespace spq::core
