#ifndef SPQ_SPQ_ENGINE_H_
#define SPQ_SPQ_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "mapreduce/job.h"
#include "spq/algorithms.h"
#include "spq/shuffle_types.h"
#include "spq/types.h"

namespace spq::core {

/// How grid cells map to reduce tasks when there are fewer reducers than
/// cells.
enum class PartitionerKind {
  /// The paper's scheme: cell % R.
  kModulo,
  /// Extension (see balanced_partitioner.h): greedy LPT over per-cell
  /// cost estimates, countering the clustered-data reducer imbalance the
  /// paper reports in Section 7.2.4. Falls back to modulo when R >= cells.
  kBalanced,
};

/// \brief Tunables of a query execution on the simulated cluster.
struct EngineOptions {
  /// Cells per side of the query-time grid (the paper's "grid size";
  /// 50 means a 50x50 grid). 0 = choose automatically via AdviseGridSize.
  uint32_t grid_size = 50;
  /// Simulated cluster parallelism (concurrent task slots).
  /// 0 = hardware concurrency.
  uint32_t num_workers = 0;
  /// Number of map tasks. 0 = 4 * workers.
  uint32_t num_map_tasks = 0;
  /// Number of reduce tasks R. 0 = one per grid cell (the paper's setting).
  uint32_t num_reduce_tasks = 0;
  /// Task fault injection (off by default).
  mapreduce::FaultSpec faults;
  int max_task_attempts = 4;
  /// Map-side keyword prefilter (Algorithm 1 line 9). Disable only for
  /// the ablation study — results are identical either way.
  bool keyword_prefilter = true;
  /// When non-empty, the shuffle runs out-of-core: map-output segments are
  /// spilled to files under this directory (see JobConfig::spill_dir).
  std::string spill_dir;
  /// Cell-to-reducer assignment policy (only matters when
  /// num_reduce_tasks < grid cells).
  PartitionerKind partitioner = PartitionerKind::kModulo;
  /// Shuffle pipeline: kCellBucketed (default) is the sort-free flat-arena
  /// path; kLegacySort is the seed's comparison-sort + Codec path, kept
  /// for A/B benchmarking (results are identical — see the shuffle
  /// equivalence tests and bench_shuffle).
  mapreduce::ShuffleMode shuffle_mode = mapreduce::ShuffleMode::kCellBucketed;
  /// Reduce-side join strategy: kGridIndex (default) answers each
  /// feature's radius probe off a per-group mini-grid over the cell's
  /// data objects; kLinearScan is the paper's full |O_i| scan per
  /// feature, kept for A/B benchmarking (bench_reduce). Results are
  /// identical — see join_equivalence_test.cc.
  JoinMode join_mode = JoinMode::kGridIndex;
};

/// \brief Derived, SPQ-specific measurements of one query execution,
/// assembled from the job counters. These are the quantities behind the
/// paper's explanations: how many features were shuffled (after pruning +
/// duplication), how many the reducers actually examined (the early
/// termination effect), and the realized duplication factor.
struct SpqRunInfo {
  Algorithm algorithm = Algorithm::kPSPQ;
  uint32_t grid_size = 0;
  uint32_t num_reduce_tasks = 0;

  uint64_t features_kept = 0;        ///< map-side survivors of the q.W filter
  uint64_t features_pruned = 0;      ///< dropped: no common keyword with q.W
  uint64_t feature_duplicates = 0;   ///< extra copies created per Lemma 1
  uint64_t features_examined = 0;    ///< actually consumed by reducers
  uint64_t pairs_tested = 0;         ///< data-feature distance evaluations
  uint64_t early_terminations = 0;   ///< reduce groups that stopped early
  uint64_t reduce_groups = 0;

  mapreduce::JobStats job;

  /// Realized duplication factor: (kept + duplicates) / kept.
  double MeasuredDuplicationFactor() const {
    if (features_kept == 0) return 1.0;
    return static_cast<double>(features_kept + feature_duplicates) /
           static_cast<double>(features_kept);
  }

  /// Fraction of shuffled feature copies the reducers actually read —
  /// the direct measurement of the early-termination benefit.
  double FeatureExaminationRatio() const {
    const uint64_t shuffled = features_kept + feature_duplicates;
    if (shuffled == 0) return 0.0;
    return static_cast<double>(features_examined) /
           static_cast<double>(shuffled);
  }
};

/// \brief Result of one query: the global top-k plus run measurements.
struct SpqResult {
  std::vector<ResultEntry> entries;
  SpqRunInfo info;
};

/// \brief Result of a batched execution: per-query top-k lists (indexed
/// like the input batch) plus the stats of the single shared job.
struct SpqBatchResult {
  std::vector<std::vector<ResultEntry>> per_query;
  mapreduce::JobStats job;
};

/// \brief Public facade: evaluates spatial preference queries using
/// keywords over a Dataset on the simulated MapReduce cluster.
///
/// Usage:
///   SpqEngine engine(dataset, options);
///   auto result = engine.Execute(query, Algorithm::kESPQSco);
///   for (const auto& e : result->entries) { ... }
///
/// The engine flattens the dataset once (the map input "files"); each
/// Execute() builds the query-time grid, runs the single MapReduce job of
/// the chosen algorithm and merges the per-cell top-k lists.
class SpqEngine {
 public:
  /// The dataset is copied into the engine (the engine owns its "HDFS").
  explicit SpqEngine(Dataset dataset, EngineOptions options = {});

  SpqEngine(const SpqEngine&) = delete;
  SpqEngine& operator=(const SpqEngine&) = delete;

  /// Evaluates `query` with `algo`. Grid size / cluster shape come from
  /// the engine options unless overridden via `grid_size_override` (> 0).
  StatusOr<SpqResult> Execute(const Query& query, Algorithm algo,
                              uint32_t grid_size_override = 0) const;

  /// Extension: evaluates a whole batch of queries in ONE MapReduce job
  /// (shared input scan; see batch.h). Queries may differ in k, radius
  /// and keywords; results come back in batch order. The grid is shared,
  /// so `grid_size`/`grid_size_override` applies to every query. The
  /// batched job always routes by cell (PartitionerKind::kBalanced is a
  /// single-query option and is ignored here).
  StatusOr<SpqBatchResult> ExecuteBatch(const std::vector<Query>& queries,
                                        Algorithm algo,
                                        uint32_t grid_size_override = 0) const;

  const Dataset& dataset() const { return dataset_; }
  const EngineOptions& options() const { return options_; }

 private:
  Dataset dataset_;
  EngineOptions options_;
  std::vector<ShuffleObject> input_;  // flattened O ∪ F
};

/// Validates a query: k >= 1, radius >= 0 and finite. Empty q.W is legal
/// (the result is simply empty — no feature can have non-zero Jaccard).
Status ValidateQuery(const Query& query);

}  // namespace spq::core

#endif  // SPQ_SPQ_ENGINE_H_
