#ifndef SPQ_SPQ_ENGINE_H_
#define SPQ_SPQ_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/statusor.h"
#include "mapreduce/job.h"
#include "spq/algorithms.h"
#include "spq/shuffle_types.h"
#include "spq/types.h"

namespace spq {
class ThreadPool;  // common/thread_pool.h — the engine's warm worker pool
}

namespace spq::dfs {
class MiniDfs;  // dfs/mini_dfs.h — checkpoint/recovery storage
}

namespace spq::core {

class CellStore;  // cell_store.h — the resident serving layer

/// How grid cells map to reduce tasks when there are fewer reducers than
/// cells.
enum class PartitionerKind {
  /// The paper's scheme: cell % R.
  kModulo,
  /// Extension (see balanced_partitioner.h): greedy LPT over per-cell
  /// cost estimates, countering the clustered-data reducer imbalance the
  /// paper reports in Section 7.2.4. Falls back to modulo when R >= cells.
  kBalanced,
};

/// \brief Knobs of the admission/batching front door (spq/serving.h).
/// Concurrent Query() callers are coalesced into shared QueryBatch jobs:
/// a batch closes when it reaches `max_batch` queries or when its oldest
/// query has waited `max_wait_ms` — whichever comes first — so a lone
/// caller pays at most the wait budget and a burst amortizes the per-job
/// shuffle across the whole batch.
struct ServingOptions {
  /// Queries per coalesced batch before it closes (>= 1).
  uint32_t max_batch = 16;
  /// Latency budget: a non-full batch closes once its oldest admitted
  /// query has waited this long. 0 disables coalescing-by-time (a batch
  /// closes as soon as an executor is free to take what is queued).
  double max_wait_ms = 2.0;
  /// Bounded admission queue: queries beyond this many waiting are
  /// rejected with Unavailable (counted in ServingStats::rejected).
  /// 0 rejects every submission — useful to test backpressure.
  uint32_t queue_capacity = 256;
  /// Executor threads draining the queue. Each runs one batch job at a
  /// time; more executors overlap independent batches.
  uint32_t num_executors = 1;
};

/// \brief Tunables of a query execution on the simulated cluster.
struct EngineOptions {
  /// Cells per side of the query-time grid (the paper's "grid size";
  /// 50 means a 50x50 grid). 0 = choose automatically via AdviseGridSize.
  uint32_t grid_size = 50;
  /// Simulated cluster parallelism (concurrent task slots).
  /// 0 = hardware concurrency.
  uint32_t num_workers = 0;
  /// Number of map tasks. 0 = 4 * workers.
  uint32_t num_map_tasks = 0;
  /// Number of reduce tasks R. 0 = one per grid cell (the paper's setting).
  uint32_t num_reduce_tasks = 0;
  /// Task fault injection (off by default).
  mapreduce::FaultSpec faults;
  int max_task_attempts = 4;
  /// Map-side keyword prefilter (Algorithm 1 line 9). Disable only for
  /// the ablation study — results are identical either way.
  bool keyword_prefilter = true;
  /// When non-empty, the shuffle runs out-of-core: map-output segments are
  /// spilled to files under this directory (see JobConfig::spill_dir).
  std::string spill_dir;
  /// Cell-to-reducer assignment policy (only matters when
  /// num_reduce_tasks < grid cells).
  PartitionerKind partitioner = PartitionerKind::kModulo;
  /// Shuffle pipeline: kCellBucketed (default) is the sort-free flat-arena
  /// path; kLegacySort is the seed's comparison-sort + Codec path, kept
  /// for A/B benchmarking (results are identical — see the shuffle
  /// equivalence tests and bench_shuffle).
  mapreduce::ShuffleMode shuffle_mode = mapreduce::ShuffleMode::kCellBucketed;
  /// Reduce-side join strategy: kGridIndex (default) answers each
  /// feature's radius probe off a per-group mini-grid over the cell's
  /// data objects; kLinearScan is the paper's full |O_i| scan per
  /// feature, kept for A/B benchmarking (bench_reduce). Results are
  /// identical — see join_equivalence_test.cc.
  JoinMode join_mode = JoinMode::kGridIndex;
  /// Distance-kernel backend for the reduce-side radius probes: kAuto
  /// (default) batches each probe's candidates through the SIMD kernel
  /// (AVX2 lanes of 4 when compiled in via SPQ_SIMD and supported by the
  /// CPU, a portable batched loop otherwise); kScalar is the historical
  /// one-candidate-at-a-time loop, kept for A/B benchmarking
  /// (bench_reduce). Results and ALL SPQ counters are bit-identical — see
  /// kernel_equivalence_test.cc.
  simd::KernelMode kernel_mode = simd::KernelMode::kAuto;
  /// Keyword-signature screening (64-bit TermSignature): map-side, a one-
  /// AND screen stands in for the exact q.W ∩ f.W merge on provably
  /// disjoint features; warm-path reducers also skip whole cells whose
  /// keyword summary proves no positive score (mainly with the keyword
  /// prefilter off — with it on, every surviving group shares a term with
  /// q). Results and pre-existing counters are bit-identical either way;
  /// only SpqRunInfo::cells_pruned / signature_checks are new. Off = the
  /// A/B reference.
  bool signature_prefilter = true;
  /// Mutation-layer compaction threshold: after an Insert()/Delete(), the
  /// touched cell is compacted (dead rows dropped, index rebuilt fresh)
  /// once its tombstoned fraction reaches this share of its physical rows.
  /// Values above 1.0 disable automatic compaction — dead rows then
  /// accumulate until an explicit CompactStore() (the masked rows still
  /// never influence results; see cell_store.h invariant M2).
  double compact_dead_fraction = 0.3;
  /// Admission/batching front door knobs (used by SpqFrontDoor; plain
  /// Query()/QueryBatch() calls ignore them).
  ServingOptions serving;
  /// Slow-query log threshold: a Query()/QueryBatch() call (warm or
  /// cold-fallback) slower than this many milliseconds logs a one-line
  /// per-phase breakdown (map/reduce seconds, shuffle bytes, groups) at
  /// WARN and bumps the `spq.query.slow` counter. <= 0 disables the log.
  /// Purely observational — never affects results or SPQ counters.
  double slow_query_ms = 250.0;
};

/// \brief One immutable, fully wired generation of the warm serving
/// state: the resident CellStore plus everything the engine derives from
/// its grid (the balanced cell->reducer assignment and the per-partition
/// resident-data cell lists). Published RCU-style: the engine swaps a
/// `shared_ptr<const StoreSnapshot>` atomically on BuildStore/OpenStore,
/// and every warm query pins the snapshot it starts on for its whole
/// run — a rebuild under traffic retires the old generation only after
/// the last in-flight query drops its reference.
struct StoreSnapshot {
  StoreSnapshot();
  ~StoreSnapshot();
  StoreSnapshot(const StoreSnapshot&) = delete;
  StoreSnapshot& operator=(const StoreSnapshot&) = delete;

  /// The resident store. Const: all serving entry points (Serve,
  /// Checkpoint, accessors) are const; first-touch materialization is an
  /// internally latched cache fill (see cell_store.h).
  std::unique_ptr<const CellStore> store;
  /// LPT cell->reducer assignment, or null when options don't call for
  /// one. Computed once per snapshot (a full-dataset scan).
  std::shared_ptr<const std::vector<uint32_t>> balanced;
  /// Per-partition resident-data cell lists for warm group accounting.
  std::vector<std::vector<geo::CellId>> data_cells;
};

/// \brief Derived, SPQ-specific measurements of one query execution,
/// assembled from the job counters. These are the quantities behind the
/// paper's explanations: how many features were shuffled (after pruning +
/// duplication), how many the reducers actually examined (the early
/// termination effect), and the realized duplication factor.
struct SpqRunInfo {
  Algorithm algorithm = Algorithm::kPSPQ;
  uint32_t grid_size = 0;
  uint32_t num_reduce_tasks = 0;

  uint64_t features_kept = 0;        ///< map-side survivors of the q.W filter
  uint64_t features_pruned = 0;      ///< dropped: no common keyword with q.W
  uint64_t feature_duplicates = 0;   ///< extra copies created per Lemma 1
  uint64_t features_examined = 0;    ///< actually consumed by reducers
  uint64_t pairs_tested = 0;         ///< data-feature distance evaluations
  uint64_t early_terminations = 0;   ///< reduce groups that stopped early
  uint64_t reduce_groups = 0;
  /// Warm groups skipped whole by the cell keyword summary (0 on cold
  /// runs and whenever signature_prefilter is off).
  uint64_t cells_pruned = 0;
  /// Warm cell-summary screening tests performed; the workload's pruned
  /// rate is cells_pruned / signature_checks.
  uint64_t signature_checks = 0;

  /// True when the run was served from the resident CellStore (warm path:
  /// only features were mapped and shuffled). All counters above are
  /// identical to the cold path's; of the job-level stats, the map/shuffle
  /// figures (map_output_records, shuffle_bytes, map.data_objects) cover
  /// only the feature side.
  bool warm_path = false;
  /// True when Query()/QueryBatch() had to fall back to the cold
  /// single-shot path because the radius exceeded the store's build
  /// radius.
  bool cold_fallback = false;

  mapreduce::JobStats job;

  /// Realized duplication factor: (kept + duplicates) / kept.
  double MeasuredDuplicationFactor() const {
    if (features_kept == 0) return 1.0;
    return static_cast<double>(features_kept + feature_duplicates) /
           static_cast<double>(features_kept);
  }

  /// Fraction of shuffled feature copies the reducers actually read —
  /// the direct measurement of the early-termination benefit.
  double FeatureExaminationRatio() const {
    const uint64_t shuffled = features_kept + feature_duplicates;
    if (shuffled == 0) return 0.0;
    return static_cast<double>(features_examined) /
           static_cast<double>(shuffled);
  }
};

/// \brief Result of one query: the global top-k plus run measurements.
struct SpqResult {
  std::vector<ResultEntry> entries;
  SpqRunInfo info;
};

/// \brief Result of a batched execution: per-query top-k lists (indexed
/// like the input batch) plus the stats of the single shared job.
struct SpqBatchResult {
  std::vector<std::vector<ResultEntry>> per_query;
  mapreduce::JobStats job;
  bool warm_path = false;     ///< served from the resident CellStore
  bool cold_fallback = false; ///< radius exceeded the store's build radius
};

/// \brief Public facade: evaluates spatial preference queries using
/// keywords over a Dataset on the simulated MapReduce cluster.
///
/// Two serving modes:
///
///   Cold (single-shot, the paper's model): each Execute()/ExecuteBatch()
///   builds the query-time grid and runs one full MapReduce job — the
///   entire dataset is re-mapped and re-shuffled per call.
///
///   Warm (resident): BuildStore() runs the dataset-side map/shuffle ONCE
///   into a CellStore of per-cell flat-arena partitions (cell_store.h);
///   Query()/QueryBatch() then shuffle only their features and join each
///   reduce group against the resident partition, with one cached,
///   incrementally maintained spatial index per cell. Results and SPQ
///   counters are bit-identical to the cold path (store_equivalence
///   tests); a query whose radius exceeds the store's build radius falls
///   back to the cold path, loudly (see SpqRunInfo::cold_fallback).
///
/// Usage:
///   SpqEngine engine(dataset, options);
///   engine.BuildStore(/*max_radius=*/0.05);
///   auto result = engine.Query(query, Algorithm::kESPQSco);
///   for (const auto& e : result->entries) { ... }
///
/// The engine flattens the dataset once (the map input "files").
///
/// Thread safety: every serving entry point — Execute, ExecuteBatch,
/// Query, QueryBatch, CheckpointStore — is const and safe to call from
/// any number of threads concurrently. Warm queries carry no cross-query
/// mutable state: per-query scratch lives in the reduce tasks
/// (reduce_core::QueryScratch) and first-touch cell materialization is
/// latched inside the store (cell_store.h). Each warm call pins the
/// current StoreSnapshot for its whole run, so BuildStore()/OpenStore()
/// may swap in a new store generation WHILE queries are in flight: the
/// swap is an atomic shared_ptr publication, in-flight queries finish on
/// the generation they started on, and the old store is destroyed when
/// its last pin drops. Mutations — Insert, Delete, CompactStore — are
/// serialized on an internal mutex and publish through the same RCU
/// path, so they are safe from any thread concurrently with queries and
/// checkpoints (a checkpoint racing a mutation either persists the
/// pre-mutation generation it pinned or fails FailedPrecondition — never
/// a torn state). The only non-concurrent calls are the engine's
/// construction/destruction and overlapping BuildStore/OpenStore calls
/// racing EACH OTHER (last publication wins; serialize them if the
/// winner matters; both serialize against mutations internally). Warm
/// jobs share one engine-owned worker pool, so concurrent queries
/// contend for the same simulated cluster rather than multiplying
/// threads.
class SpqEngine {
 public:
  /// The dataset is copied into the engine (the engine owns its "HDFS").
  explicit SpqEngine(Dataset dataset, EngineOptions options = {});
  ~SpqEngine();

  SpqEngine(const SpqEngine&) = delete;
  SpqEngine& operator=(const SpqEngine&) = delete;

  /// Evaluates `query` with `algo`. Grid size / cluster shape come from
  /// the engine options unless overridden via `grid_size_override` (> 0).
  /// (The query type is namespace-qualified throughout this class because
  /// the warm-path entry point below is named Query.)
  StatusOr<SpqResult> Execute(const core::Query& query, Algorithm algo,
                              uint32_t grid_size_override = 0) const;

  /// Extension: evaluates a whole batch of queries in ONE MapReduce job
  /// (shared input scan; see batch.h). Queries may differ in k, radius
  /// and keywords; results come back in batch order. The grid is shared,
  /// so `grid_size`/`grid_size_override` applies to every query. The
  /// batched job always routes by cell (PartitionerKind::kBalanced is a
  /// single-query option and is ignored here).
  StatusOr<SpqBatchResult> ExecuteBatch(
      const std::vector<core::Query>& queries, Algorithm algo,
      uint32_t grid_size_override = 0) const;

  /// Builds (or rebuilds) the resident CellStore for queries with radius
  /// <= `max_radius`: one dataset-side map/shuffle job whose result every
  /// subsequent Query()/QueryBatch() joins against. The store's grid is
  /// fixed at build time — `grid_size_override` (> 0) beats
  /// options().grid_size; 0 for both sizes it from `max_radius` via
  /// AdviseGridSize.
  Status BuildStore(double max_radius, uint32_t grid_size_override = 0);

  /// Warm-path evaluation against the resident store (requires a prior
  /// BuildStore()). Radius > the store's build radius falls back to the
  /// cold path with a warning; the result then has cold_fallback set.
  /// The fallback runs Execute() — a snapshot-independent cold job over
  /// the engine's immutable flattened input — so concurrent oversized
  /// queries never touch store-mutable state and stay safe alongside
  /// warm traffic, checkpoints and store swaps.
  StatusOr<SpqResult> Query(const core::Query& query, Algorithm algo) const;

  /// Batched warm-path twin of Query(): one feature-side job, every
  /// (cell, query) group joined against the cell's shared resident
  /// partition and cached index. Falls back whole-batch if ANY radius
  /// exceeds the store's build radius (same concurrency contract as
  /// Query()'s fallback).
  StatusOr<SpqBatchResult> QueryBatch(const std::vector<core::Query>& queries,
                                      Algorithm algo) const;

  /// Inserts one data object into the resident store and publishes the
  /// mutated generation RCU-style: in-flight queries finish on the
  /// snapshot they pinned; queries admitted afterwards see the insert.
  /// Warm results over the mutated store are bit-identical to a fresh
  /// BuildStore() over the logically-equivalent dataset (the survivors in
  /// original order with the inserts appended) — see cell_store.h
  /// invariant M2 and mutation_equivalence_test.cc. The object's id must
  /// not collide with a live data object (InvalidArgument); its position
  /// must be finite. Points outside the build bounds land in the clamped
  /// edge cell, exactly where a rebuild would place them.
  ///
  /// Mutations are serialized internally (safe from any thread, including
  /// concurrently with queries); BuildStore()/OpenStore() discard all
  /// applied mutations and reset the logical dataset to the
  /// construction-time dataset.
  Status Insert(const DataObject& object);

  /// Deletes the live data object with `id` (NotFound when absent):
  /// tombstones it in its cell's delta log and publishes the mutated
  /// generation. Same serialization, publication and equivalence contract
  /// as Insert(). The cell compacts automatically when its dead fraction
  /// reaches options().compact_dead_fraction.
  Status Delete(ObjectId id);

  /// Compacts every cell that carries tombstones, regardless of the dead
  /// fraction, and publishes the result. Purely physical: results and
  /// counters are unchanged (invariant M4). The store stays logically
  /// mutated — CheckpointStore() still refuses it (invariant M5).
  Status CompactStore();

  /// Persists the resident store under `<name>/` on `dfs`: checksummed
  /// per-cell images, an atomic manifest, and WAL begin/commit records
  /// (CellStore::Checkpoint — its class comment states the durability
  /// invariants). Requires a prior BuildStore()/OpenStore(). Returns the
  /// committed epoch. Const and safe under live query traffic (it pins
  /// the current snapshot like a query does); concurrent checkpoints to
  /// the SAME name must be serialized externally.
  StatusOr<uint64_t> CheckpointStore(dfs::MiniDfs& dfs,
                                     const std::string& name) const;

  /// Opens the resident store from the newest committed checkpoint under
  /// `<name>/` and wires the warm serving path exactly as BuildStore()
  /// does (balanced assignment, resident-cell lists, borrowed feature
  /// input) — warm queries behave bit-identically to a store built in
  /// this process. Only the WAL tail and manifest are read eagerly; each
  /// cell's partition loads (verified) at its first query touch.
  /// NotFound when no committed checkpoint is usable — callers typically
  /// fall back to BuildStore(); InvalidArgument when the checkpoint was
  /// taken over a different dataset.
  Status OpenStore(dfs::MiniDfs& dfs, const std::string& name);

  bool has_store() const { return snapshot() != nullptr; }
  /// Pins and returns the current warm serving generation (null before
  /// BuildStore()). Hold the shared_ptr for as long as the store is in
  /// use — it is the RCU read-side pin. The pin is one uncontended
  /// mutex-protected shared_ptr copy: libstdc++'s
  /// std::atomic<std::shared_ptr> spins on an internal lock bit anyway
  /// (and its load() unlocks with a relaxed RMW, which leaves the plain
  /// control-block pointer read racing with the next publisher's write
  /// under the C++ memory model — ThreadSanitizer rightly flags it), so
  /// an explicit mutex costs the same and is race-free by construction.
  std::shared_ptr<const StoreSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }
  /// The resident store, or nullptr before BuildStore(). Convenience for
  /// single-threaded inspection: the raw pointer is valid only until the
  /// next BuildStore()/OpenStore() — concurrent readers must use
  /// snapshot() and keep the pin.
  const CellStore* store() const {
    auto snap = snapshot();
    return snap ? snap->store.get() : nullptr;
  }

  const Dataset& dataset() const { return dataset_; }
  const EngineOptions& options() const { return options_; }

  /// Point-in-time copy of the process-wide metrics registry — the "what
  /// is warm p99 right now" surface (e.g.
  /// `MetricsSnapshot().HistogramValue("spq.query.warm_ns").Percentile(0.99)`).
  /// The registry is process-global: engines sharing a process share it.
  /// See common/metrics.h for the naming scheme and cell_store.h for the
  /// full metric/span inventory.
  metrics::RegistrySnapshot MetricsSnapshot() const;
  /// Prometheus text exposition dump of the same registry.
  void DumpMetrics(std::ostream& os) const;

 private:
  /// Shared cluster-shape derivation (workers / map / reduce task counts,
  /// faults, spill, shuffle mode) of every job this engine starts — the
  /// cold, build and warm paths cannot drift apart.
  mapreduce::JobConfig MakeClusterConfig(uint32_t default_reduce_tasks,
                                         std::string job_name) const;
  /// Same for the per-job SPQ options (prefilter, join mode, kernel mode,
  /// signature screening).
  SpqJobOptions MakeJobOptions() const;
  /// Post-store wiring shared by BuildStore, OpenStore and the mutation
  /// path: derives the balanced cell assignment and per-partition
  /// resident-cell lists from the store's grid and returns the complete
  /// generation, ready to publish into snapshot_. When `prev` is given
  /// (mutation publishes), its balanced assignment is reused instead of
  /// rescanning the dataset — bit-identity-safe, because reducer
  /// assignment never affects results or counters (all SPQ counters are
  /// job-global sums and the merge order is a strict total order); the
  /// resident-cell lists ARE recomputed (a cell can gain or lose its last
  /// live row).
  std::shared_ptr<const StoreSnapshot> MakeSnapshot(
      std::unique_ptr<const CellStore> store,
      const StoreSnapshot* prev = nullptr) const;
  /// Swaps `next` in as the current generation (write side of
  /// snapshot()'s pin). Callers hold mutate_mu_, so publishes are
  /// serialized; snapshot_mu_ is taken only for the pointer swap.
  void PublishSnapshot(std::shared_ptr<const StoreSnapshot> next);
  /// Builds data_locator_ from the CURRENT logical dataset if it is not
  /// ready. Caller holds mutate_mu_.
  void EnsureLocatorLocked() const;

  Dataset dataset_;
  EngineOptions options_;
  std::vector<ShuffleObject> input_;  // flattened O ∪ F
  /// The warm feature-side input: borrowed aliases of input_'s feature
  /// tail (no keyword list is cloned). Grid-independent, so it is built
  /// once at construction and shared by every store generation.
  std::vector<ShuffleObject> feature_input_;
  /// Current warm serving generation; see StoreSnapshot. Readers pin via
  /// snapshot(); BuildStore/OpenStore/mutations publish via
  /// PublishSnapshot(). snapshot_mu_ guards ONLY the pointer swap/copy —
  /// never held across a query or a build.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const StoreSnapshot> snapshot_;
  /// One persistent worker pool shared by every warm job this engine
  /// runs (JobConfig::worker_pool): concurrent queries contend for the
  /// same simulated cluster instead of spawning a pool per job.
  std::unique_ptr<ThreadPool> warm_pool_;
  /// Serializes Insert/Delete/CompactStore against each other and against
  /// BuildStore/OpenStore's locator invalidation. Never held while a
  /// query runs — readers go through the lock-free snapshot() pin.
  mutable std::mutex mutate_mu_;
  /// id -> position of every LIVE data object in the current logical
  /// dataset; the Delete() routing table (WithDelete needs the cell) and
  /// the Insert() duplicate-id check. Built lazily on the first mutation
  /// (a full dataset_.data scan), maintained incrementally afterwards,
  /// invalidated by BuildStore/OpenStore (which reset the logical
  /// dataset). Guarded by mutate_mu_.
  mutable std::unordered_map<ObjectId, geo::Point> data_locator_;
  mutable bool locator_ready_ = false;
};

/// Validates a query: k >= 1, radius >= 0 and finite. Empty q.W is legal
/// (the result is simply empty — no feature can have non-zero Jaccard).
Status ValidateQuery(const Query& query);

}  // namespace spq::core

#endif  // SPQ_SPQ_ENGINE_H_
