#ifndef SPQ_SPQ_SEQUENTIAL_H_
#define SPQ_SPQ_SEQUENTIAL_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "spq/types.h"

namespace spq::core {

/// \brief Reference answer: O(|O| · |F|) centralized evaluation.
///
/// Computes τ(p) for every data object by scanning every query-relevant
/// feature, then returns the top-k (score desc, id asc; only objects with
/// τ(p) > 0, matching the parallel algorithms' semantics). The correctness
/// oracle for every test; far too slow for the benchmark datasets — the
/// point the paper makes about centralized processing.
std::vector<ResultEntry> BruteForceSpq(const Dataset& dataset,
                                       const Query& query);

/// \brief Centralized but indexed evaluation: buckets features into a
/// `grid_size`² uniform grid and probes only the buckets intersecting each
/// data object's r-circle.
///
/// Same output contract as BruteForceSpq. Serves two purposes: a faster
/// oracle for mid-size tests, and the single-machine baseline that shows
/// why distribution is needed at scale.
StatusOr<std::vector<ResultEntry>> SequentialGridSpq(const Dataset& dataset,
                                                     const Query& query,
                                                     uint32_t grid_size);

/// Computes τ(p) of a single data object by brute force (used by tests to
/// validate individual reported entries).
double BruteForceScore(const DataObject& p, const Dataset& dataset,
                       const Query& query);

}  // namespace spq::core

#endif  // SPQ_SPQ_SEQUENTIAL_H_
