#include "spq/balanced_partitioner.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace spq::core {

CellLoad ComputeCellLoad(const Dataset& dataset,
                         const geo::UniformGrid& grid) {
  CellLoad load;
  load.data_count.assign(grid.num_cells(), 0);
  load.feature_count.assign(grid.num_cells(), 0);
  for (const auto& p : dataset.data) {
    ++load.data_count[grid.CellOf(p.pos)];
  }
  for (const auto& f : dataset.features) {
    ++load.feature_count[grid.CellOf(f.pos)];
  }
  return load;
}

uint64_t CellCost(uint64_t data_count, uint64_t feature_count) {
  return data_count * (feature_count + 1) + data_count + feature_count;
}

std::vector<uint32_t> BalancedAssignment(const CellLoad& load,
                                         uint32_t num_partitions) {
  const std::size_t num_cells = load.data_count.size();
  std::vector<uint32_t> assignment(num_cells, 0);
  if (num_partitions <= 1 || num_cells == 0) return assignment;

  // Cells by decreasing cost; cell id as deterministic tie-break.
  std::vector<std::pair<uint64_t, uint32_t>> cells;
  cells.reserve(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    cells.emplace_back(CellCost(load.data_count[c], load.feature_count[c]),
                       static_cast<uint32_t>(c));
  }
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });

  // Min-heap of (partition load, partition id).
  using Slot = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (uint32_t p = 0; p < num_partitions; ++p) heap.emplace(0, p);

  for (const auto& [cost, cell] : cells) {
    auto [slot_load, slot] = heap.top();
    heap.pop();
    assignment[cell] = slot;
    heap.emplace(slot_load + cost, slot);
  }
  return assignment;
}

}  // namespace spq::core
