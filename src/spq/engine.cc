#include "spq/engine.h"

#include <cmath>
#include <memory>
#include <ostream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "geo/grid.h"
#include "mapreduce/runtime.h"
#include "spq/balanced_partitioner.h"
#include "spq/batch.h"
#include "spq/cell_store.h"
#include "spq/duplication.h"
#include "spq/topk.h"

namespace spq::core {

namespace {

/// Engine-level registry metrics, looked up once (see common/metrics.h
/// for the usage contract; cell_store.h carries the full inventory).
struct EngineRegistryMetrics {
  metrics::Counter& cold_fallbacks;
  metrics::Counter& slow_queries;
  metrics::Counter& store_publishes;
  metrics::Histogram& warm_query_ns;
  metrics::Histogram& warm_batch_ns;

  static EngineRegistryMetrics& Get() {
    static auto& registry = metrics::MetricsRegistry::Global();
    static EngineRegistryMetrics metrics_{
        registry.counter("spq.query.cold_fallbacks"),
        registry.counter("spq.query.slow"),
        registry.counter("spq.store.publishes"),
        registry.histogram("spq.query.warm_ns"),
        registry.histogram("spq.query.warm_batch_ns")};
    return metrics_;
  }
};

/// Cold-fallback warnings are rate-limited (the fallback itself is the
/// loud part of the contract, but a misconfigured client can hit it per
/// query): one line per N occurrences, each admitted line carrying the
/// suppressed count. The `spq.query.cold_fallbacks` counter sees EVERY
/// occurrence, so the rate is observable without log scraping.
constexpr uint64_t kColdFallbackWarnEveryN = 64;

/// The slow-query log: a per-phase breakdown of one over-threshold call.
/// Observational only — reads stats that the run already produced.
void MaybeLogSlowQuery(const EngineOptions& options, const char* kind,
                       Algorithm algo, double elapsed_ms,
                       const mapreduce::JobStats& job) {
  if (!(options.slow_query_ms > 0.0) || elapsed_ms < options.slow_query_ms) {
    return;
  }
  EngineRegistryMetrics::Get().slow_queries.Increment();
  SPQ_LOG_WARN << "slow " << kind << " (" << AlgorithmName(algo) << "): "
               << elapsed_ms << " ms total (threshold "
               << options.slow_query_ms << " ms) | map "
               << job.map_seconds * 1e3 << " ms, reduce "
               << job.reduce_seconds * 1e3 << " ms, "
               << job.map_output_records << " map-output records, "
               << job.shuffle_bytes << " shuffle bytes, "
               << job.counters.Get(counter::kGroups) << " reduce groups";
}

/// Extension: LPT cell->reducer assignment from per-cell cost estimates
/// (Section 7.2.4's imbalance countermeasure; see balanced_partitioner.h).
/// Null when the options don't call for it. The computation scans the
/// whole dataset, so the warm path computes it ONCE at BuildStore() and
/// reuses it per query; the cold path derives it per Execute() (the grid
/// may differ per call there).
std::shared_ptr<const std::vector<uint32_t>> MakeBalancedCellAssignment(
    const Dataset& dataset, const EngineOptions& options,
    const geo::UniformGrid& grid, uint32_t num_reduce_tasks) {
  if (options.partitioner != PartitionerKind::kBalanced ||
      num_reduce_tasks >= grid.num_cells()) {
    return nullptr;
  }
  return std::make_shared<const std::vector<uint32_t>>(
      BalancedAssignment(ComputeCellLoad(dataset, grid), num_reduce_tasks));
}

/// The one cell->partition rule every consumer must share: the balanced
/// assignment when present (modulo fallback for clamped out-of-grid
/// cells, defensive), plain CellPartitioner otherwise. Feature routing
/// (ApplyCellAssignment) and the warm path's resident-cell group
/// accounting (store_data_cells_) both go through here — they must agree
/// for every cell or the warm reduce.groups counter desynchronizes.
uint32_t AssignedPartition(
    const std::shared_ptr<const std::vector<uint32_t>>& assignment,
    const CellKey& key, uint32_t parts) {
  if (assignment != nullptr && key.cell < assignment->size()) {
    return (*assignment)[key.cell];
  }
  return CellPartitioner(key, parts);
}

/// Routes the spec's features through `assignment`; no-op when it is null
/// (the spec's default partitioner already equals AssignedPartition's
/// null-assignment behavior).
void ApplyCellAssignment(
    std::shared_ptr<const std::vector<uint32_t>> assignment,
    mapreduce::JobSpec<ShuffleObject, CellKey, ShuffleObject, ResultEntry>&
        spec) {
  if (assignment == nullptr) return;
  spec.partitioner = [assignment = std::move(assignment)](const CellKey& key,
                                                          uint32_t parts) {
    return AssignedPartition(assignment, key, parts);
  };
}

/// Assembles the SPQ-level measurements of one single-query job.
SpqResult MakeSpqResult(const core::Query& query, Algorithm algo,
                        uint32_t grid_size, uint32_t num_reduce_tasks,
                        mapreduce::JobOutput<ResultEntry>&& output) {
  SpqResult result;
  result.entries = MergeTopK(std::move(output.records), query.k);

  SpqRunInfo& info = result.info;
  info.algorithm = algo;
  info.grid_size = grid_size;
  info.num_reduce_tasks = num_reduce_tasks;
  const mapreduce::Counters& counters = output.stats.counters;
  info.features_kept = counters.Get(counter::kFeaturesKept);
  info.features_pruned = counters.Get(counter::kFeaturesPruned);
  info.feature_duplicates = counters.Get(counter::kFeatureDuplicates);
  info.features_examined = counters.Get(counter::kFeaturesExamined);
  info.pairs_tested = counters.Get(counter::kPairsTested);
  info.early_terminations = counters.Get(counter::kEarlyTerminations);
  info.reduce_groups = counters.Get(counter::kGroups);
  info.cells_pruned = counters.Get(counter::kCellsPruned);
  info.signature_checks = counters.Get(counter::kSignatureChecks);
  info.job = std::move(output.stats);
  return result;
}

/// Routes each output row to its query and merges the per-cell lists.
SpqBatchResult MakeBatchResult(const std::vector<core::Query>& queries,
                               mapreduce::JobOutput<BatchResultEntry>&& output) {
  SpqBatchResult result;
  result.per_query.resize(queries.size());
  std::vector<std::vector<ResultEntry>> candidates(queries.size());
  std::vector<std::size_t> counts(queries.size(), 0);
  for (const BatchResultEntry& row : output.records) {
    if (row.query < counts.size()) ++counts[row.query];
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    candidates[q].reserve(counts[q]);
  }
  for (const BatchResultEntry& row : output.records) {
    if (row.query < candidates.size()) {
      candidates[row.query].push_back(row.entry);
    }
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    result.per_query[q] = MergeTopK(std::move(candidates[q]), queries[q].k);
  }
  result.job = std::move(output.stats);
  return result;
}

}  // namespace

// Out-of-line: CellStore is incomplete in engine.h.
StoreSnapshot::StoreSnapshot() = default;
StoreSnapshot::~StoreSnapshot() = default;

SpqEngine::SpqEngine(Dataset dataset, EngineOptions options)
    : dataset_(std::move(dataset)),
      options_(options),
      input_(FlattenDataset(dataset_)) {
  // The warm feature-side input: borrowed aliases into input_ (which the
  // engine owns for its lifetime), so no keyword list is cloned.
  // FlattenDataset lays out data first, features last, so the features
  // are exactly the tail — grid-independent, shared by every store
  // generation, built once here.
  const std::size_t num_features = dataset_.features.size();
  feature_input_.reserve(num_features);
  for (std::size_t i = input_.size() - num_features; i < input_.size(); ++i) {
    feature_input_.push_back(input_[i].Borrowed());
  }
  // One pool for every warm job this engine runs, sized like the per-job
  // cluster shape so sharing does not change simulated parallelism.
  warm_pool_ = std::make_unique<ThreadPool>(
      options_.num_workers > 0
          ? options_.num_workers
          : std::max(1u, std::thread::hardware_concurrency()));
}

SpqEngine::~SpqEngine() = default;

Status ValidateQuery(const Query& query) {
  if (query.k == 0) {
    return Status::InvalidArgument("query.k must be >= 1");
  }
  if (!(query.radius >= 0.0) || !std::isfinite(query.radius)) {
    return Status::InvalidArgument("query.radius must be finite and >= 0");
  }
  return Status::OK();
}

mapreduce::JobConfig SpqEngine::MakeClusterConfig(
    uint32_t default_reduce_tasks, std::string job_name) const {
  mapreduce::JobConfig config;
  config.num_workers = options_.num_workers > 0
                           ? options_.num_workers
                           : std::max(1u, std::thread::hardware_concurrency());
  config.num_map_tasks = options_.num_map_tasks > 0
                             ? options_.num_map_tasks
                             : 4 * config.num_workers;
  config.num_reduce_tasks = options_.num_reduce_tasks > 0
                                ? options_.num_reduce_tasks
                                : default_reduce_tasks;
  config.faults = options_.faults;
  config.max_task_attempts = options_.max_task_attempts;
  config.job_name = std::move(job_name);
  config.spill_dir = options_.spill_dir;
  config.shuffle_mode = options_.shuffle_mode;
  return config;
}

SpqJobOptions SpqEngine::MakeJobOptions() const {
  SpqJobOptions job_options;
  job_options.keyword_prefilter = options_.keyword_prefilter;
  job_options.join_mode = options_.join_mode;
  job_options.kernel_mode = options_.kernel_mode;
  job_options.signature_prefilter = options_.signature_prefilter;
  return job_options;
}

StatusOr<SpqResult> SpqEngine::Execute(const core::Query& query,
                                       Algorithm algo,
                                       uint32_t grid_size_override) const {
  SPQ_RETURN_NOT_OK(ValidateQuery(query));

  // --- query-time grid (Section 4.1: built once r is known) ---
  uint32_t grid_size =
      grid_size_override > 0 ? grid_size_override : options_.grid_size;
  if (grid_size == 0) {
    grid_size = AdviseGridSize(query.radius, dataset_.bounds.width(),
                               /*max_per_side=*/128);
  }
  SPQ_ASSIGN_OR_RETURN(
      geo::UniformGrid grid,
      geo::UniformGrid::Make(dataset_.bounds, grid_size, grid_size));
  if (query.radius > std::min(grid.cell_width(), grid.cell_height())) {
    SPQ_LOG_WARN << "query radius " << query.radius
                 << " exceeds the grid cell edge (" << grid.cell_width()
                 << "); duplication will be heavy (paper assumes a >= r)";
  }

  const mapreduce::JobConfig config =
      MakeClusterConfig(grid.num_cells(), AlgorithmName(algo));

  // --- the single MapReduce job ---
  const SpqJobOptions job_options = MakeJobOptions();
  auto spec = MakeSpqJobSpec(algo, query, grid, job_options);
  ApplyCellAssignment(MakeBalancedCellAssignment(dataset_, options_, grid,
                                                 config.num_reduce_tasks),
                      spec);
  SPQ_ASSIGN_OR_RETURN(auto output, mapreduce::RunJob(spec, config, input_));

  // --- centralized merge of per-cell top-k lists (cheap: <= k * cells) ---
  return MakeSpqResult(query, algo, grid_size, config.num_reduce_tasks,
                       std::move(output));
}

StatusOr<SpqBatchResult> SpqEngine::ExecuteBatch(
    const std::vector<core::Query>& queries, Algorithm algo,
    uint32_t grid_size_override) const {
  if (queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  double max_radius = 0.0;
  for (const core::Query& query : queries) {
    SPQ_RETURN_NOT_OK(ValidateQuery(query));
    max_radius = std::max(max_radius, query.radius);
  }

  uint32_t grid_size =
      grid_size_override > 0 ? grid_size_override : options_.grid_size;
  if (grid_size == 0) {
    grid_size = AdviseGridSize(max_radius, dataset_.bounds.width(),
                               /*max_per_side=*/128);
  }
  SPQ_ASSIGN_OR_RETURN(
      geo::UniformGrid grid,
      geo::UniformGrid::Make(dataset_.bounds, grid_size, grid_size));

  const mapreduce::JobConfig config =
      MakeClusterConfig(grid.num_cells(), AlgorithmName(algo) + "-batch");

  const SpqJobOptions job_options = MakeJobOptions();
  auto spec = MakeBatchSpqJobSpec(algo, queries, grid, job_options);
  SPQ_ASSIGN_OR_RETURN(auto output, mapreduce::RunJob(spec, config, input_));
  return MakeBatchResult(queries, std::move(output));
}

Status SpqEngine::BuildStore(double max_radius, uint32_t grid_size_override) {
  TRACE_SPAN("store.build");
  if (!(max_radius >= 0.0) || !std::isfinite(max_radius)) {
    return Status::InvalidArgument("store max_radius must be finite and >= 0");
  }
  uint32_t grid_size =
      grid_size_override > 0 ? grid_size_override : options_.grid_size;
  if (grid_size == 0) {
    grid_size = AdviseGridSize(max_radius, dataset_.bounds.width(),
                               /*max_per_side=*/128);
  }
  SPQ_ASSIGN_OR_RETURN(
      geo::UniformGrid grid,
      geo::UniformGrid::Make(dataset_.bounds, grid_size, grid_size));

  const mapreduce::JobConfig config =
      MakeClusterConfig(grid.num_cells(), "cellstore-build");
  SPQ_ASSIGN_OR_RETURN(auto store,
                       CellStore::Build(input_, grid, max_radius, config));
  // RCU publication: in-flight warm queries keep serving the generation
  // they pinned; new queries see this one. Under mutate_mu_ so a racing
  // Insert/Delete cannot publish on top of a stale generation, and the
  // locator (keyed to the pre-build logical dataset) is invalidated in
  // the same critical section.
  std::lock_guard<std::mutex> lock(mutate_mu_);
  data_locator_.clear();
  locator_ready_ = false;
  PublishSnapshot(MakeSnapshot(std::move(store)));
  return Status::OK();
}

void SpqEngine::PublishSnapshot(std::shared_ptr<const StoreSnapshot> next) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(next);
}

std::shared_ptr<const StoreSnapshot> SpqEngine::MakeSnapshot(
    std::unique_ptr<const CellStore> store, const StoreSnapshot* prev) const {
  // Warm queries share the store grid and cluster shape, so everything a
  // query would otherwise rederive — the balanced assignment (a
  // full-dataset scan) and the per-partition resident-data cell lists
  // (an all-cells scan) — is computed once per generation, not per
  // query. Shared by BuildStore and OpenStore: a recovered store carries
  // the same grid and record counts as the build it checkpointed, so the
  // derived wiring — and therefore warm behavior — is identical.
  TRACE_SPAN("store.publish");
  EngineRegistryMetrics::Get().store_publishes.Increment();
  auto snap = std::make_shared<StoreSnapshot>();
  snap->store = std::move(store);
  const geo::UniformGrid& grid = snap->store->grid();
  const uint32_t num_reduce_tasks =
      MakeClusterConfig(grid.num_cells(), "cellstore-wire").num_reduce_tasks;
  if (prev != nullptr) {
    // Mutation publish: the balanced assignment was computed over the
    // construction-time dataset and is kept as-is rather than rescanning
    // per mutation. Safe for bit-identity — reducer assignment decides
    // only WHERE a group runs, never its results or counters (all SPQ
    // counters are job-global sums, and the final merge imposes a strict
    // total order) — but the resident-cell lists are recomputed below: a
    // cell can gain its first or lose its last live row.
    snap->balanced = prev->balanced;
  } else {
    snap->balanced = MakeBalancedCellAssignment(dataset_, options_, grid,
                                                num_reduce_tasks);
  }
  snap->data_cells = snap->store->DataCellsByPartition(
      [&snap](const CellKey& key, uint32_t parts) {
        return AssignedPartition(snap->balanced, key, parts);
      },
      num_reduce_tasks);
  return snap;
}

void SpqEngine::EnsureLocatorLocked() const {
  if (locator_ready_) return;
  data_locator_.clear();
  data_locator_.reserve(dataset_.data.size());
  for (const DataObject& object : dataset_.data) {
    data_locator_.emplace(object.id, object.pos);
  }
  locator_ready_ = true;
}

Status SpqEngine::Insert(const DataObject& object) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  const std::shared_ptr<const StoreSnapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "no resident CellStore: call BuildStore() before Insert()");
  }
  EnsureLocatorLocked();
  if (data_locator_.count(object.id) != 0) {
    return Status::InvalidArgument(
        "Insert: data object id " + std::to_string(object.id) +
        " is already live (delete it first, or use a fresh id)");
  }
  CellStore::MutationOptions mut;
  mut.compact_dead_fraction = options_.compact_dead_fraction;
  SPQ_ASSIGN_OR_RETURN(auto store, snap->store->WithInsert(object, mut));
  data_locator_.emplace(object.id, object.pos);
  PublishSnapshot(MakeSnapshot(std::move(store), snap.get()));
  return Status::OK();
}

Status SpqEngine::Delete(ObjectId id) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  const std::shared_ptr<const StoreSnapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "no resident CellStore: call BuildStore() before Delete()");
  }
  EnsureLocatorLocked();
  const auto it = data_locator_.find(id);
  if (it == data_locator_.end()) {
    return Status::NotFound("Delete: no live data object with id " +
                            std::to_string(id));
  }
  // The locator pins the id->cell routing (the store's delta logs are
  // per-cell); CellOf clamps exactly as the build map phase did, so an
  // out-of-bounds insert is deleted from the same edge cell it landed in.
  const geo::CellId cell = snap->store->grid().CellOf(it->second);
  CellStore::MutationOptions mut;
  mut.compact_dead_fraction = options_.compact_dead_fraction;
  SPQ_ASSIGN_OR_RETURN(auto store, snap->store->WithDelete(id, cell, mut));
  data_locator_.erase(it);
  PublishSnapshot(MakeSnapshot(std::move(store), snap.get()));
  return Status::OK();
}

Status SpqEngine::CompactStore() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  const std::shared_ptr<const StoreSnapshot> snap = snapshot();
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "no resident CellStore: call BuildStore() before CompactStore()");
  }
  SPQ_ASSIGN_OR_RETURN(auto store, snap->store->Compacted());
  PublishSnapshot(MakeSnapshot(std::move(store), snap.get()));
  return Status::OK();
}

StatusOr<uint64_t> SpqEngine::CheckpointStore(dfs::MiniDfs& dfs,
                                              const std::string& name) const {
  auto snap = snapshot();
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "no resident CellStore: call BuildStore() before CheckpointStore()");
  }
  SPQ_ASSIGN_OR_RETURN(CellStore::CheckpointInfo info,
                       snap->store->Checkpoint(dfs, name));
  return info.epoch;
}

Status SpqEngine::OpenStore(dfs::MiniDfs& dfs, const std::string& name) {
  SPQ_ASSIGN_OR_RETURN(auto store, CellStore::Recover(dfs, name, input_));
  // Same publication/locator discipline as BuildStore: a recovered store
  // holds the construction-time dataset, so prior mutations are gone.
  std::lock_guard<std::mutex> lock(mutate_mu_);
  data_locator_.clear();
  locator_ready_ = false;
  PublishSnapshot(MakeSnapshot(std::move(store)));
  return Status::OK();
}

StatusOr<SpqResult> SpqEngine::Query(const core::Query& query,
                                     Algorithm algo) const {
  SPQ_RETURN_NOT_OK(ValidateQuery(query));
  TRACE_SPAN("query.warm");
  Stopwatch watch;
  // Pin the current generation for the whole run: a concurrent
  // BuildStore/OpenStore swap cannot pull the store out from under us.
  std::shared_ptr<const StoreSnapshot> snap;
  {
    TRACE_SPAN("query.snapshot_pin");
    snap = snapshot();
  }
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "no resident CellStore: call BuildStore() before Query()");
  }
  const CellStore& store = *snap->store;
  if (query.radius > store.max_radius()) {
    // The max-radius contract, loudly: the store's grid (and its Lemma-1
    // duplication geometry) was sized for the build radius, so this query
    // cannot be answered from the warm path. Execute() is const and works
    // off the engine's immutable flattened input — the fallback touches
    // no snapshot-mutable state, so concurrent oversized queries are safe.
    EngineRegistryMetrics::Get().cold_fallbacks.Increment();
    static LogRateLimiter limiter(kColdFallbackWarnEveryN);
    uint64_t suppressed = 0;
    if (limiter.ShouldLog(&suppressed)) {
      SPQ_LOG_WARN << "Query radius " << query.radius
                   << " exceeds the store build radius " << store.max_radius()
                   << "; falling back to the cold single-shot path ("
                   << suppressed << " similar warnings suppressed; every "
                   << "occurrence counts in spq.query.cold_fallbacks)";
    }
    // No grid override: the store grid was sized for the build radius;
    // the cold path sizes its own grid for this (larger) radius.
    auto result = Execute(query, algo);
    if (result.ok()) {
      result->info.cold_fallback = true;
      MaybeLogSlowQuery(options_, "cold-fallback query", algo,
                        watch.ElapsedMillis(), result->info.job);
    }
    return result;
  }

  const geo::UniformGrid& grid = store.grid();
  mapreduce::JobConfig config =
      MakeClusterConfig(grid.num_cells(), AlgorithmName(algo) + "-warm");
  config.worker_pool = warm_pool_.get();

  const SpqJobOptions job_options = MakeJobOptions();
  auto spec = MakeSpqJobSpec(algo, query, grid, job_options);
  ApplyCellAssignment(snap->balanced, spec);
  SPQ_ASSIGN_OR_RETURN(
      auto output,
      RunWarmQueryJob(store, algo, query, spec, config, feature_input_,
                      snap->data_cells, job_options));
  SpqResult result = MakeSpqResult(query, algo, grid.nx(),
                                   config.num_reduce_tasks,
                                   std::move(output));
  result.info.warm_path = true;
  EngineRegistryMetrics::Get().warm_query_ns.Record(watch.ElapsedNanos());
  MaybeLogSlowQuery(options_, "warm query", algo, watch.ElapsedMillis(),
                    result.info.job);
  return result;
}

StatusOr<SpqBatchResult> SpqEngine::QueryBatch(
    const std::vector<core::Query>& queries, Algorithm algo) const {
  if (queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  TRACE_SPAN("query.warm_batch");
  Stopwatch watch;
  std::shared_ptr<const StoreSnapshot> snap;
  {
    TRACE_SPAN("query.snapshot_pin");
    snap = snapshot();
  }
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "no resident CellStore: call BuildStore() before QueryBatch()");
  }
  const CellStore& store = *snap->store;
  double max_radius = 0.0;
  for (const core::Query& query : queries) {
    SPQ_RETURN_NOT_OK(ValidateQuery(query));
    max_radius = std::max(max_radius, query.radius);
  }
  if (max_radius > store.max_radius()) {
    EngineRegistryMetrics::Get().cold_fallbacks.Increment();
    static LogRateLimiter limiter(kColdFallbackWarnEveryN);
    uint64_t suppressed = 0;
    if (limiter.ShouldLog(&suppressed)) {
      SPQ_LOG_WARN << "QueryBatch max radius " << max_radius
                   << " exceeds the store build radius " << store.max_radius()
                   << "; falling back to the cold single-shot path ("
                   << suppressed << " similar warnings suppressed; every "
                   << "occurrence counts in spq.query.cold_fallbacks)";
    }
    // As in Query(): let the cold path size its own grid for this radius.
    auto result = ExecuteBatch(queries, algo);
    if (result.ok()) {
      result->cold_fallback = true;
      MaybeLogSlowQuery(options_, "cold-fallback batch", algo,
                        watch.ElapsedMillis(), result->job);
    }
    return result;
  }

  const geo::UniformGrid& grid = store.grid();
  mapreduce::JobConfig config = MakeClusterConfig(
      grid.num_cells(), AlgorithmName(algo) + "-warm-batch");
  config.worker_pool = warm_pool_.get();

  const SpqJobOptions job_options = MakeJobOptions();
  auto spec = MakeBatchSpqJobSpec(algo, queries, grid, job_options);
  SPQ_ASSIGN_OR_RETURN(
      auto output,
      RunWarmBatchJob(store, algo, queries, spec, config, feature_input_,
                      job_options));
  SpqBatchResult result = MakeBatchResult(queries, std::move(output));
  result.warm_path = true;
  EngineRegistryMetrics::Get().warm_batch_ns.Record(watch.ElapsedNanos());
  MaybeLogSlowQuery(options_, "warm batch", algo, watch.ElapsedMillis(),
                    result.job);
  return result;
}

metrics::RegistrySnapshot SpqEngine::MetricsSnapshot() const {
  return metrics::MetricsRegistry::Global().Snapshot();
}

void SpqEngine::DumpMetrics(std::ostream& os) const {
  metrics::MetricsRegistry::Global().DumpPrometheus(os);
}

}  // namespace spq::core
