#include "spq/engine.h"

#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "geo/grid.h"
#include "mapreduce/runtime.h"
#include "spq/balanced_partitioner.h"
#include "spq/batch.h"
#include "spq/duplication.h"
#include "spq/topk.h"

namespace spq::core {

SpqEngine::SpqEngine(Dataset dataset, EngineOptions options)
    : dataset_(std::move(dataset)),
      options_(options),
      input_(FlattenDataset(dataset_)) {}

Status ValidateQuery(const Query& query) {
  if (query.k == 0) {
    return Status::InvalidArgument("query.k must be >= 1");
  }
  if (!(query.radius >= 0.0) || !std::isfinite(query.radius)) {
    return Status::InvalidArgument("query.radius must be finite and >= 0");
  }
  return Status::OK();
}

StatusOr<SpqResult> SpqEngine::Execute(const Query& query, Algorithm algo,
                                       uint32_t grid_size_override) const {
  SPQ_RETURN_NOT_OK(ValidateQuery(query));

  // --- query-time grid (Section 4.1: built once r is known) ---
  uint32_t grid_size =
      grid_size_override > 0 ? grid_size_override : options_.grid_size;
  if (grid_size == 0) {
    grid_size = AdviseGridSize(query.radius, dataset_.bounds.width(),
                               /*max_per_side=*/128);
  }
  SPQ_ASSIGN_OR_RETURN(
      geo::UniformGrid grid,
      geo::UniformGrid::Make(dataset_.bounds, grid_size, grid_size));
  if (query.radius > std::min(grid.cell_width(), grid.cell_height())) {
    SPQ_LOG_WARN << "query radius " << query.radius
                 << " exceeds the grid cell edge (" << grid.cell_width()
                 << "); duplication will be heavy (paper assumes a >= r)";
  }

  // --- cluster shape ---
  mapreduce::JobConfig config;
  config.num_workers = options_.num_workers > 0
                           ? options_.num_workers
                           : std::max(1u, std::thread::hardware_concurrency());
  config.num_map_tasks = options_.num_map_tasks > 0
                             ? options_.num_map_tasks
                             : 4 * config.num_workers;
  config.num_reduce_tasks = options_.num_reduce_tasks > 0
                                ? options_.num_reduce_tasks
                                : grid.num_cells();
  config.faults = options_.faults;
  config.max_task_attempts = options_.max_task_attempts;
  config.job_name = AlgorithmName(algo);
  config.spill_dir = options_.spill_dir;
  config.shuffle_mode = options_.shuffle_mode;

  // --- the single MapReduce job ---
  SpqJobOptions job_options;
  job_options.keyword_prefilter = options_.keyword_prefilter;
  job_options.join_mode = options_.join_mode;
  auto spec = MakeSpqJobSpec(algo, query, grid, job_options);
  if (options_.partitioner == PartitionerKind::kBalanced &&
      config.num_reduce_tasks < grid.num_cells()) {
    // Extension: LPT cell->reducer assignment from per-cell cost estimates
    // (Section 7.2.4's imbalance countermeasure; see balanced_partitioner.h).
    auto assignment = std::make_shared<std::vector<uint32_t>>(
        BalancedAssignment(ComputeCellLoad(dataset_, grid),
                           config.num_reduce_tasks));
    spec.partitioner = [assignment](const CellKey& key, uint32_t parts) {
      if (key.cell < assignment->size()) return (*assignment)[key.cell];
      return key.cell % parts;  // clamped out-of-grid cells (defensive)
    };
  }
  SPQ_ASSIGN_OR_RETURN(auto output,
                       mapreduce::RunJob(spec, config, input_));

  // --- centralized merge of per-cell top-k lists (cheap: <= k * cells) ---
  SpqResult result;
  result.entries = MergeTopK(std::move(output.records), query.k);

  SpqRunInfo& info = result.info;
  info.algorithm = algo;
  info.grid_size = grid_size;
  info.num_reduce_tasks = config.num_reduce_tasks;
  const mapreduce::Counters& counters = output.stats.counters;
  info.features_kept = counters.Get(counter::kFeaturesKept);
  info.features_pruned = counters.Get(counter::kFeaturesPruned);
  info.feature_duplicates = counters.Get(counter::kFeatureDuplicates);
  info.features_examined = counters.Get(counter::kFeaturesExamined);
  info.pairs_tested = counters.Get(counter::kPairsTested);
  info.early_terminations = counters.Get(counter::kEarlyTerminations);
  info.reduce_groups = counters.Get(counter::kGroups);
  info.job = std::move(output.stats);
  return result;
}

StatusOr<SpqBatchResult> SpqEngine::ExecuteBatch(
    const std::vector<Query>& queries, Algorithm algo,
    uint32_t grid_size_override) const {
  if (queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  double max_radius = 0.0;
  for (const Query& query : queries) {
    SPQ_RETURN_NOT_OK(ValidateQuery(query));
    max_radius = std::max(max_radius, query.radius);
  }

  uint32_t grid_size =
      grid_size_override > 0 ? grid_size_override : options_.grid_size;
  if (grid_size == 0) {
    grid_size = AdviseGridSize(max_radius, dataset_.bounds.width(),
                               /*max_per_side=*/128);
  }
  SPQ_ASSIGN_OR_RETURN(
      geo::UniformGrid grid,
      geo::UniformGrid::Make(dataset_.bounds, grid_size, grid_size));

  mapreduce::JobConfig config;
  config.num_workers = options_.num_workers > 0
                           ? options_.num_workers
                           : std::max(1u, std::thread::hardware_concurrency());
  config.num_map_tasks = options_.num_map_tasks > 0
                             ? options_.num_map_tasks
                             : 4 * config.num_workers;
  config.num_reduce_tasks = options_.num_reduce_tasks > 0
                                ? options_.num_reduce_tasks
                                : grid.num_cells();
  config.faults = options_.faults;
  config.max_task_attempts = options_.max_task_attempts;
  config.job_name = AlgorithmName(algo) + "-batch";
  config.spill_dir = options_.spill_dir;
  config.shuffle_mode = options_.shuffle_mode;

  SpqJobOptions job_options;
  job_options.keyword_prefilter = options_.keyword_prefilter;
  job_options.join_mode = options_.join_mode;
  auto spec = MakeBatchSpqJobSpec(algo, queries, grid, job_options);
  SPQ_ASSIGN_OR_RETURN(auto output, mapreduce::RunJob(spec, config, input_));

  SpqBatchResult result;
  result.per_query.resize(queries.size());
  std::vector<std::vector<ResultEntry>> candidates(queries.size());
  for (const BatchResultEntry& row : output.records) {
    if (row.query < candidates.size()) {
      candidates[row.query].push_back(row.entry);
    }
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    result.per_query[q] = MergeTopK(std::move(candidates[q]), queries[q].k);
  }
  result.job = std::move(output.stats);
  return result;
}

}  // namespace spq::core
