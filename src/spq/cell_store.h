#ifndef SPQ_SPQ_CELL_STORE_H_
#define SPQ_SPQ_CELL_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "dfs/mini_dfs.h"
#include "geo/grid.h"
#include "mapreduce/job.h"
#include "mapreduce/merge.h"
#include "mapreduce/runtime.h"
#include "spq/algorithms.h"
#include "spq/batch.h"
#include "spq/reduce_core.h"
#include "spq/shuffle_types.h"
#include "spq/types.h"

namespace spq::core {

/// \brief Compact keyword summary of everything that can reach one store
/// cell's reduce groups: the OR of TermSignature over every
/// keyword-bearing feature whose own cell is this cell or that Lemma-1
/// duplication could copy here at any radius ≤ the store's max_radius,
/// plus the min/max keyword-set length over those features.
///
/// Soundness: a warm query of radius r ≤ max_radius only receives features
/// from exactly that reachable set (CellsWithinDist is monotone in r), so
/// (query_sig & signature) == 0 proves every feature in the group shares
/// no term with q.W — all scores are 0 and the whole group can be skipped.
/// Likewise BestScoreBound caps every feature's Jaccard against q by the
/// length-ratio bound of JaccardSortedBounded; a TopKList admits only
/// scores > 0 (its threshold starts at 0), so a bound of 0 also proves the
/// group empty-handed. Both tests are screening only — collisions or loose
/// bounds cost a wasted check, never a wrong result.
struct CellTextSummary {
  uint64_t signature = 0;  ///< OR of reachable features' TermSignatures
  uint32_t min_len = 0;    ///< shortest reachable keyword set (if any)
  uint32_t max_len = 0;    ///< longest reachable keyword set (if any)
  uint64_t reachable_features = 0;  ///< keyword-bearing features absorbed

  void Absorb(uint64_t sig, uint32_t len) {
    if (reachable_features == 0) {
      min_len = len;
      max_len = len;
    } else {
      min_len = std::min(min_len, len);
      max_len = std::max(max_len, len);
    }
    signature |= sig;
    ++reachable_features;
  }

  /// max over reachable lengths L of min(qlen, L) / max(qlen, L) — the
  /// best Jaccard any reachable feature could possibly score against a
  /// query of `qlen` keywords. 0 when nothing keyword-bearing reaches the
  /// cell (then every feature scores 0) or qlen == 0.
  double BestScoreBound(std::size_t qlen) const {
    if (reachable_features == 0 || qlen == 0) return 0.0;
    const double q = static_cast<double>(qlen);
    if (qlen < min_len) return q / static_cast<double>(min_len);
    if (qlen > max_len) return static_cast<double>(max_len) / q;
    return 1.0;  // some reachable length equals qlen's regime
  }
};

/// \brief Resident serving layer over the paper's grid partitioning of the
/// object set O.
///
/// The data side of every SPQ job is query-independent for a fixed grid:
/// each data object belongs to exactly one cell and carries no per-query
/// state. Before this layer existed, every Engine::Run re-mapped and
/// re-shuffled the entire dataset per query; a CellStore runs that
/// pipeline ONCE — the standard map/shuffle job, flat-arena segments and
/// all — and persists the result as one resident partition per cell:
///
///   - `segment`: the cell's records in the persisted flat-arena form
///     (FlatSegment layout from merge.h — key rows / payloads / TermId
///     pool), exactly as a reduce task would have received them;
///   - `data` + `index`: the serving form, materialized lazily from the
///     segment at the cell's first query touch — the SoA CellData the
///     reduce cores join against plus one cached CellGridIndex that is
///     maintained incrementally (CellGridIndex::Sync) instead of being
///     rebuilt per reduce group.
///
/// Warm queries then shuffle only their features (see RunWarmQueryJob /
/// RunWarmBatchJob): each reduce group joins its feature stream against
/// the resident partition of its cell — the data side skips map and
/// shuffle entirely. Per-query state (scores, report bitmaps) lives in the
/// caller's reduce_core::QueryScratch, never in the store.
///
/// The store is built for a maximum radius class: the grid geometry is
/// chosen for `max_radius`, and SpqEngine::Query refuses (loudly, via the
/// cold-path fallback) to serve a larger radius from the store.
///
/// Thread-safety contract (any number of concurrent jobs):
///
///   - SNAPSHOT-IMMUTABLE: grid geometry, per-cell record counts, text
///     summaries, build stats, checkpoint metadata — and, once a cell's
///     `ready` flag is set, that cell's CellData + fully built
///     CellGridIndex. Concurrent queries read all of it lock-free; the
///     reduce cores access it through a const FrozenCellRef and write
///     only into their own QueryScratch.
///   - FIRST-TOUCH MUTABLE, latched: lazy materialization (restore from
///     checkpoint / rebuild / decode + index build) runs under the cell's
///     private mutex with double-checked `ready` (release-published,
///     acquire-read), so cold cells stay cheap, concurrent first touches
///     never race, and a failed restore retries on the next touch.
///   - Serve() and Checkpoint() are const and safe to call concurrently
///     with each other and themselves (Checkpoint takes a cell's latch
///     only while the cell is not yet ready). Concurrent Checkpoints to
///     the SAME store name must still be serialized externally — they
///     would race on the WAL epoch. Counters crossing threads
///     (cells_restored/cells_rebuilt) are std::atomic, relaxed: they are
///     monotonic tallies with no ordering contract against the data they
///     count — readers only ever observe a value ≤ the true total.
///   - Build()/Recover() construct a store privately; publication to other
///     threads is the caller's job (the engine swaps a
///     shared_ptr<const StoreSnapshot> atomically — see engine.h).
///
/// Durability & recovery invariants (Checkpoint / Recover):
///
///  1. Commit rule. A checkpoint epoch E is committed iff BOTH its
///     kCheckpointCommit(E) WAL record decodes intact AND its MANIFEST
///     passes the CRC + structure check. The commit record is written
///     strictly after every cell file and the manifest, so a committed
///     epoch's files are complete by construction; recovery serves the
///     newest committed epoch and ignores everything else (partial
///     epochs from crashes are dead weight until the next checkpoint's
///     GC removes them).
///  2. Torn WAL frames are holes, not poison. Replay verifies every
///     frame (magic/length/CRC) and skips, loudly, any that fail — a
///     torn frame can only be an append that was never acknowledged
///     (each record is one write-once replicated DFS file, durable
///     before the writer proceeds), so no committed state references
///     it, and records appended after the hole (a re-checkpoint taken
///     after recovering from that crash) stay visible. A crash
///     mid-append loses at most the record being written.
///  3. Cell-granular lazy recovery. Recover() reads only the WAL and one
///     manifest — O(cells) metadata, no cell payloads. Each cell's
///     partition is re-read from its checkpoint file at first query
///     touch (Serve), verified against the manifest's per-cell byte size
///     and CRC-32C and the flat-segment structure checks, and then
///     materialized exactly like a built partition. Recovery cost is
///     proportional to the cells a query touches, not store size.
///  4. Verified or rebuilt, never garbage. A cell file that fails
///     verification (every DFS replica corrupt, length drift) is loudly
///     logged, counted (cells_rebuilt()), and rebuilt from the attached
///     dataset by replaying the build's deterministic per-cell layout —
///     byte-identical to the checkpointed image. Warm results and SPQ
///     counters after any crash/recover/corrupt sequence are
///     bit-identical to a never-crashed store (durability_test pins
///     this across algorithms and shuffle modes).
///  5. Re-checkpoint safety. Checkpoint() derives epoch E+1 from the WAL
///     (E = newest epoch mentioned), so write-once DFS files never
///     collide; after commit it garbage-collects epochs < E+1.
///
/// Mutation layer (WithInsert / WithDelete / Compacted): the store is
/// structurally immutable — a mutation never changes an existing CellStore,
/// it derives a NEW generation that shares every untouched cell's Partition
/// (cell-level copy-on-write over shared_ptr) and replaces exactly the
/// mutated cell. Generations publish through the engine's RCU snapshot
/// swap, so in-flight queries keep serving their pinned generation
/// untouched. Five invariants govern the layer:
///
///  M1. Single placement. A data object lives in exactly one cell
///      (grid.CellOf clamps out-of-bounds inserts onto an edge cell, the
///      same rule the build mapper applies). Lemma-1 duplication is a
///      FEATURE-side, per-query concern — the resident store is data-only
///      and CellTextSummary is feature-derived — so data mutations never
///      touch duplication geometry or the keyword summaries.
///  M2. Rebuild bit-identity. The logically-equivalent dataset of a
///      mutated store is "surviving base rows in original dataset order,
///      then inserts in insert order". Inserts APPEND (to the serving
///      arrays of a materialized cell, or to the cell's delta log
///      otherwise) and deletes TOMBSTONE in place, so a cell's physical
///      row order always equals the order a fresh BuildStore() over the
///      equivalent dataset would produce. Tombstoned rows are masked out
///      of the reduce cores' per-query scratch before any pair is counted
///      (FrozenCellRef::DeadRows) — provably equivalent to physical
///      absence for results and every counter under a linear scan — and
///      a mutation on a materialized cell rebuilds its mini-grid index
///      with the dead rows masked OUT of the bucket geometry
///      (CellGridIndex's dead-masked Build), so indexed probes enumerate
///      exactly the candidate supersets a fresh build over the surviving
///      rows enumerates. pairs_tested counts those supersets: an
///      incremental pending-list append or a geometry still spanning dead
///      rows would drift the counter even though results stay correct,
///      which is why the serving index is rebuilt fresh per mutation.
///  M3. Delta logs fold at first touch. A mutation against a cell that is
///      not materialized (never served, or recovered-lazy) costs O(delta):
///      inserts append to `delta_inserts`, deletes of base rows append to
///      `delta_tombstones`, and a delete of a still-pending insert simply
///      erases it. Tombstones therefore always name base rows, each at
///      most once — Serve() folds base + delta into the serving form under
///      the cell latch, exactly once.
///  M4. Compaction = fresh layout. When a cell's dead fraction reaches
///      MutationOptions::compact_dead_fraction (or on Compacted()), the
///      partition is rewritten live-rows-only with a freshly built index —
///      byte-for-byte the layout a from-scratch build of the equivalent
///      dataset gives that cell, so compaction is invisible to M2.
///  M5. Checkpoint refuses mutated stores. A mutated generation's
///      persisted segments are stale by construction, and Recover()
///      validates against (and rebuilds from) the ORIGINAL build dataset;
///      Checkpoint() therefore fails loudly (FailedPrecondition) until
///      incremental checkpoints land (ROADMAP open item) — silent stale
///      persistence is never an option.
class CellStore {
 public:
  /// One cell's resident partition (see class comment). Everything but
  /// `segment.bytes`, `data` and `index` is immutable after Build/Recover;
  /// those three change exactly once — under `latch`, before `ready` is
  /// released — and are frozen from then on.
  ///
  /// The mutation layer NEVER mutates a partition reachable from a
  /// published store: WithInsert/WithDelete copy the partition (under its
  /// latch when unready), apply the op to the private copy, and install it
  /// in the next generation's cell vector. A ready partition's serving
  /// arrays may therefore differ from `segment` (appended rows, dead
  /// rows); `segment.num_records` always counts the PERSISTED base rows.
  struct Partition {
    mapreduce::FlatSegment segment;    ///< persisted form; bytes released
                                       ///< once materialized
    reduce_core::CellData data;        ///< serving form (SoA), frozen
    reduce_core::CellGridIndex index;  ///< built eagerly with `data`, frozen
    uint64_t record_count = 0;  ///< physical serving rows (live + dead)
    uint64_t live_count = 0;    ///< rows not tombstoned
    /// Tombstone state of a materialized partition: byte mask parallel to
    /// `data` (empty ⇔ no deads) plus the dead indices the reduce cores
    /// mask out per query (order irrelevant).
    std::vector<uint8_t> dead;
    std::vector<uint32_t> dead_rows;
    /// Delta log of a NOT-yet-materialized partition (invariant M3),
    /// folded into the serving form at first Serve touch.
    std::vector<ShuffleObject> delta_inserts;
    std::vector<ObjectId> delta_tombstones;
    /// Fold-time compaction order (set when the dead fraction crossed the
    /// threshold while the partition was unready); `record_count` is
    /// already the post-compaction row count when this is set.
    bool compact_on_fold = false;
    /// Materialization gate: acquire-load true ⇒ data/index are complete
    /// and immutable. The mutex serializes the one-time materialization
    /// (std::once_flag semantics, but re-armable on failure).
    std::atomic<bool> ready{false};
    mutable std::mutex latch;
  };

  /// Builds the store by running the map/shuffle pipeline once over
  /// `input` (the flattened O ∪ F; feature records are skipped — they are
  /// per-query) on the simulated cluster described by `config`.
  static StatusOr<std::unique_ptr<CellStore>> Build(
      const std::vector<ShuffleObject>& input, const geo::UniformGrid& grid,
      double max_radius, const mapreduce::JobConfig& config);

  /// Crash-injection points for Checkpoint(), ordered along the write
  /// path. Each aborts the checkpoint exactly at its boundary (the "Mid"
  /// points additionally leave a deliberately torn artifact behind), so
  /// the crash-point matrix test can recover from every prefix.
  enum class CheckpointCrash {
    kNone,
    kMidWalBegin,    ///< torn kCheckpointBegin frame, nothing else
    kAfterWalBegin,  ///< begin record durable, no cell files yet
    kMidCells,       ///< half the cell files written, no manifest
    kAfterCells,     ///< all cell files written, no manifest
    kAfterManifest,  ///< manifest durable, commit record missing
    kMidWalCommit,   ///< torn kCheckpointCommit frame
  };

  struct CheckpointInfo {
    uint64_t epoch = 0;
    uint32_t cells_written = 0;   ///< non-empty cells persisted
    uint64_t bytes_written = 0;   ///< cell payload + manifest bytes
  };

  /// Persists the store under `<name>/` on `dfs`: one CRC-covered flat
  /// segment image per non-empty cell, an atomic checksummed manifest
  /// (grid geometry, per-cell record counts / sizes / CRCs, keyword
  /// summaries), and WAL begin/commit records bracketing the epoch. Works
  /// from any serving state: an untouched partition persists its segment
  /// bytes verbatim, a materialized one re-encodes its serving rows
  /// through the build's deterministic layout (bit-identical image), and
  /// a recovered-but-untouched one copies forward from the source
  /// checkpoint. See the class comment for the commit rule; `crash`
  /// injects a stop at one write-path boundary (Aborted).
  StatusOr<CheckpointInfo> Checkpoint(
      dfs::MiniDfs& dfs, const std::string& name,
      CheckpointCrash crash = CheckpointCrash::kNone) const;

  /// Recovers a store from the newest committed checkpoint under
  /// `<name>/`: replays the WAL tail and loads one manifest eagerly;
  /// cell partitions stay on the DFS until their first Serve (invariant
  /// 3). `rebuild_input` must be the same flattened dataset the store was
  /// built from (validated against the manifest's data-object count); it
  /// backs the per-cell corruption fallback (invariant 4). NotFound when
  /// no epoch satisfies the commit rule — callers fall back to Build.
  static StatusOr<std::unique_ptr<CellStore>> Recover(
      dfs::MiniDfs& dfs, const std::string& name,
      const std::vector<ShuffleObject>& rebuild_input);

  CellStore(const CellStore&) = delete;
  CellStore& operator=(const CellStore&) = delete;

  /// Mutation knobs (one per derived generation; the engine fills them
  /// from EngineOptions).
  struct MutationOptions {
    /// Compact a cell (drop tombstoned rows, rebuild its index) once its
    /// dead fraction — dead rows over physical rows — reaches this value.
    /// Values above 1.0 disable automatic compaction (Compacted() still
    /// folds on demand).
    double compact_dead_fraction = 0.3;
  };

  /// Derives a new store generation with `object` appended to its cell
  /// (invariants M1–M4 above). The caller owns id uniqueness among live
  /// objects (the engine's locator enforces it) and publication of the
  /// returned generation; `this` is never modified and keeps serving.
  StatusOr<std::unique_ptr<CellStore>> WithInsert(
      const DataObject& object, const MutationOptions& options) const;

  /// Derives a new store generation with the live row of `id` tombstoned.
  /// `cell` is the object's single placement (the engine resolves it via
  /// its id→position locator + grid.CellOf). NotFound when no live row of
  /// that id exists in the cell.
  StatusOr<std::unique_ptr<CellStore>> WithDelete(
      ObjectId id, geo::CellId cell, const MutationOptions& options) const;

  /// Derives a new store generation with every tombstone-bearing cell
  /// compacted (materialized cells eagerly; unready cells at their first
  /// Serve touch, invariant M4). The generation remains `mutated()` — the
  /// logical dataset still differs from the build input, so invariant M5
  /// keeps checkpoints refused.
  StatusOr<std::unique_ptr<CellStore>> Compacted() const;

  /// True once any mutation generation separates this store from its
  /// build/recover dataset (never cleared — see invariant M5).
  bool mutated() const { return mutated_; }
  /// Mutation tallies, cumulative across the generation chain.
  uint64_t inserts_applied() const { return inserts_applied_; }
  uint64_t deletes_applied() const { return deletes_applied_; }
  uint64_t cells_compacted() const { return cells_compacted_; }
  /// Live (non-tombstoned) rows of one cell.
  uint64_t live_record_count(geo::CellId cell) const {
    return cells_[cell]->live_count;
  }

  const geo::UniformGrid& grid() const { return grid_; }
  double max_radius() const { return max_radius_; }
  uint32_t num_cells() const { return static_cast<uint32_t>(cells_.size()); }
  /// Logical (live) data objects: build count, plus inserts, minus
  /// deletes along the generation chain.
  uint64_t data_objects() const { return data_objects_; }
  /// Stats of the one-time build job (map/shuffle cost queries no longer
  /// pay).
  const mapreduce::JobStats& build_stats() const { return build_stats_; }
  /// Physical serving rows of one cell (live + tombstoned).
  uint64_t cell_record_count(geo::CellId cell) const {
    return cells_[cell]->record_count;
  }
  /// The cell's keyword summary, built once from the store input's
  /// features (valid for warm jobs over the same flattened dataset — the
  /// engine contract; data mutations never touch it, invariant M1). See
  /// CellTextSummary for the screening guarantees.
  const CellTextSummary& text_summary(geo::CellId cell) const {
    return (*text_summaries_)[cell];
  }

  /// Serving access for one reduce group: materializes the partition on
  /// first touch (latched — see the thread-safety contract above) and
  /// returns it frozen. Safe for any number of concurrent callers; the
  /// returned partition stays owned by the store and is immutable.
  StatusOr<const Partition*> Serve(geo::CellId cell) const;

  /// Sorted list, per reduce partition, of the store cells that hold data
  /// — the resident half of the warm join, used by the single-query job
  /// to account reduce groups for cells the feature stream never visits.
  /// Fully determined by (store, partitioner, num_partitions), so the
  /// engine computes it once at BuildStore() time, not per query.
  std::vector<std::vector<geo::CellId>> DataCellsByPartition(
      const std::function<uint32_t(const CellKey&, uint32_t)>& partitioner,
      uint32_t num_partitions) const;

  /// True when this store was opened from a checkpoint (Recover).
  bool recovered() const { return checkpoint_epoch_ != 0; }
  /// Committed epoch this store serves from; 0 for built stores.
  uint64_t checkpoint_epoch() const { return checkpoint_epoch_; }
  /// Cells lazily re-read (and verified) from the checkpoint so far.
  /// Atomic: bumped by parallel reduce tasks on disjoint cells.
  uint64_t cells_restored() const {
    return cells_restored_.load(std::memory_order_relaxed);
  }
  /// Cells whose checkpoint image failed verification and were rebuilt
  /// from the attached dataset instead (invariant 4; always logged).
  uint64_t cells_rebuilt() const {
    return cells_rebuilt_.load(std::memory_order_relaxed);
  }

  /// Checkpoint file layout under a store name (exposed for tests/bench).
  static std::string WalPrefix(const std::string& name) { return name; }
  static std::string EpochDir(const std::string& name, uint64_t epoch);
  static std::string ManifestFile(const std::string& name, uint64_t epoch);
  static std::string CellFile(const std::string& name, uint64_t epoch,
                              geo::CellId cell);

 private:
  CellStore(geo::UniformGrid grid, double max_radius)
      : grid_(grid), max_radius_(max_radius) {}

  /// Fresh partitions for every cell (Build/Recover; CloneShared assigns
  /// the shared vector instead).
  void AllocateCells();
  /// New generation sharing every Partition and all store metadata with
  /// this one (cell-level COW starting point for the mutation layer).
  std::unique_ptr<CellStore> CloneShared() const;
  /// Private copy of one cell's partition, safe against a concurrent
  /// first-touch Serve on an older generation: a ready base is copied
  /// lock-free in serving form (the copy stays ready); an unready base is
  /// copied in persisted+delta form under the base latch.
  std::shared_ptr<Partition> CowPartition(geo::CellId cell) const;
  /// Applies the compaction policy to a freshly copied (private)
  /// partition; returns true when the cell was (or will be, at fold time)
  /// compacted.
  static bool MaybeCompact(Partition& part, const MutationOptions& options);
  /// Rewrites a materialized partition live-rows-only (no index rebuild;
  /// Serve's fold path builds the index afterwards anyway).
  static void DropDeadRows(Partition& part);
  /// DropDeadRows + fresh index build — full compaction of a materialized
  /// partition (invariant M4).
  static void CompactPartition(Partition& part);
  /// Folds a partition's delta log into its freshly decoded serving form
  /// (Serve, under the cell latch; invariant M3).
  static Status FoldDelta(Partition& part);

  /// The cell's persistable flat-segment image, from whichever form the
  /// partition is currently in (see Checkpoint doc). Empty for empty
  /// cells.
  StatusOr<std::vector<uint8_t>> SegmentImageOf(geo::CellId cell) const;
  /// Reads + verifies one cell's image from this store's source
  /// checkpoint (size + CRC-32C against the manifest).
  StatusOr<std::vector<uint8_t>> RestoreImage(geo::CellId cell) const;
  /// Corruption fallback: re-derives the cell's image from the attached
  /// dataset via the build's deterministic per-cell layout.
  Status RebuildPartition(geo::CellId cell, Partition& part) const;

  geo::UniformGrid grid_;
  double max_radius_;
  /// shared_ptr per cell: generations share untouched partitions; the
  /// pointee's first-touch materialization stays latched as before (a
  /// ready cell never changes, so sharing is safe — see the class
  /// comment's mutation-layer notes).
  std::vector<std::shared_ptr<Partition>> cells_;
  /// Shared across generations (immutable once built — feature-derived,
  /// untouched by data mutations).
  std::shared_ptr<const std::vector<CellTextSummary>> text_summaries_;
  uint64_t data_objects_ = 0;
  mapreduce::JobStats build_stats_;

  // Mutation-layer state (invariant M5 + tallies; copied by CloneShared).
  bool mutated_ = false;
  uint64_t inserts_applied_ = 0;
  uint64_t deletes_applied_ = 0;
  uint64_t cells_compacted_ = 0;

  // Recovery state (set by Recover; empty/zero for built stores).
  dfs::MiniDfs* dfs_ = nullptr;
  std::string checkpoint_name_;
  uint64_t checkpoint_epoch_ = 0;
  const std::vector<ShuffleObject>* rebuild_input_ = nullptr;
  std::vector<uint32_t> cell_crcs_;  ///< per-cell image CRCs (manifest)
  // mutable: tallied from const Serve (first-touch materialization is a
  // logically-const cache fill).
  mutable std::atomic<uint64_t> cells_restored_{0};
  mutable std::atomic<uint64_t> cells_rebuilt_{0};
};

/// Runs one warm single-query job: maps and shuffles `features` (feature
/// records only — the engine keeps them flattened separately) with the
/// spec's mapper/partitioner, then joins each reduce group against the
/// store's resident partition for its cell. `data_cells` is the store's
/// DataCellsByPartition result for this spec's partitioner and
/// config.num_reduce_tasks (cached by the engine across queries). Both
/// shuffle modes are supported and produce results and SPQ counters
/// bit-identical to the cold single-shot path; of the job-level stats,
/// the map/shuffle figures cover only the feature side (the quantity the
/// store amortizes away).
///
/// With options.signature_prefilter on, each group is first screened
/// against its cell's CellTextSummary; a group the summary proves
/// score-less is skipped whole — no Serve, no score reset, no feature
/// scoring — with the baseline's exact counter footprint replayed
/// (reduce.cells_pruned / reduce.signature_checks record the screening
/// itself). Results and the pre-existing counters stay bit-identical to
/// signature_prefilter=off; see store_equivalence / kernel_equivalence
/// tests.
StatusOr<mapreduce::JobOutput<ResultEntry>> RunWarmQueryJob(
    const CellStore& store, Algorithm algo, const Query& query,
    const mapreduce::JobSpec<ShuffleObject, CellKey, ShuffleObject,
                             ResultEntry>& spec,
    const mapreduce::JobConfig& config,
    const std::vector<ShuffleObject>& features,
    const std::vector<std::vector<geo::CellId>>& data_cells,
    const SpqJobOptions& options);

/// Batched twin of RunWarmQueryJob: every (cell, query) reduce group joins
/// against the cell's ONE resident partition and its shared cached index —
/// the batched job's former per-cell replay cache, now a view over the
/// store. Applies the same per-group summary screen as RunWarmQueryJob,
/// per (cell, query) group.
StatusOr<mapreduce::JobOutput<BatchResultEntry>> RunWarmBatchJob(
    const CellStore& store, Algorithm algo, const std::vector<Query>& queries,
    const mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                             BatchResultEntry>& spec,
    const mapreduce::JobConfig& config,
    const std::vector<ShuffleObject>& features,
    const SpqJobOptions& options);

}  // namespace spq::core

#endif  // SPQ_SPQ_CELL_STORE_H_
