#ifndef SPQ_SPQ_DUPLICATION_H_
#define SPQ_SPQ_DUPLICATION_H_

#include <cstdint>

namespace spq::core {

/// \brief Closed-form results of Section 6 (duplication factor and the
/// reducer cost model), valid under uniform feature placement and r <= a/2.

/// Surface of the four duplicate-count zones of a cell with edge `a` under
/// radius `r` (Figure 3): A1 — corner zone, 3 duplicates; A2 — two-border
/// zone, 2; A3 — one-border zone, 1; A4 — interior, 0.
struct CellAreas {
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  double a4 = 0.0;

  double total() const { return a1 + a2 + a3 + a4; }
};

/// Computes the zone areas for cell edge `a` and radius `r` (requires
/// 0 <= r <= a/2; callers outside this regime should not use the model).
CellAreas ComputeCellAreas(double r, double a);

/// The duplication factor df = πr²/a² + 4r/a + 1 (Section 6.2):
/// expected (originals + duplicates) / originals for uniformly placed
/// features. df(0) = 1; the worst case at a = 2r is 3 + π/4.
double AnalyticDuplicationFactor(double r, double a);

/// Upper bound of df over the valid regime: 3 + π/4 (at a = 2r).
double MaxDuplicationFactor();

/// Per-reducer cost model of Section 6.3: |O_i|·|F_i| ∝ df(r,a) · a⁴ for a
/// normalized [0,1]² space. Monotonically increasing in `a` for fixed r —
/// the paper's argument for small cells.
double ReducerCostModel(double r, double a);

/// Picks the largest square grid (returns cells per side) whose cell edge
/// still satisfies a >= 2r over a space of width `extent`, clamped to
/// [1, max_per_side]. The paper's guidance: maximize parallelism subject
/// to the a >= 2r duplication regime.
uint32_t AdviseGridSize(double radius, double extent, uint32_t max_per_side);

}  // namespace spq::core

#endif  // SPQ_SPQ_DUPLICATION_H_
