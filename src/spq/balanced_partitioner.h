#ifndef SPQ_SPQ_BALANCED_PARTITIONER_H_
#define SPQ_SPQ_BALANCED_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "spq/types.h"

namespace spq::core {

/// \brief Extension beyond the paper: cost-based assignment of grid cells
/// to reduce tasks.
///
/// Section 7.2.4 observes that on clustered data "it is hard to fairly
/// assign the objects to Reducers, thus typically some Reducers are
/// overburdened". With the paper's `cell % R` partitioner, whichever
/// reducer owns a hot cell dominates the reduce phase. When R is smaller
/// than the number of cells (the realistic setting: R = machine slots),
/// the assignment is a classic makespan-minimization instance; this module
/// implements the greedy LPT (longest processing time first) heuristic
/// over per-cell cost estimates derived from the dataset.
///
/// The per-cell cost model follows Section 6.1: reducer work is
/// O(|O_i| · |F_i|), so a cell's weight is |O_c| · (|F_c| + 1) + |O_c| +
/// |F_c| (the linear terms keep empty-feature cells from being free).
/// Feature counts ignore the query's keyword filter — the estimate is
/// query-independent, so one assignment serves all queries on a grid.

/// Per-cell object counts on a grid.
struct CellLoad {
  std::vector<uint64_t> data_count;
  std::vector<uint64_t> feature_count;
};

/// Counts data/feature objects per cell of `grid`.
CellLoad ComputeCellLoad(const Dataset& dataset, const geo::UniformGrid& grid);

/// Section 6.1 cost estimate of one cell.
uint64_t CellCost(uint64_t data_count, uint64_t feature_count);

/// Greedy LPT: cells sorted by decreasing cost, each placed on the
/// currently least-loaded partition. Returns cell -> partition, size
/// grid.num_cells(), values in [0, num_partitions).
std::vector<uint32_t> BalancedAssignment(const CellLoad& load,
                                         uint32_t num_partitions);

}  // namespace spq::core

#endif  // SPQ_SPQ_BALANCED_PARTITIONER_H_
