#ifndef SPQ_SPQ_SHUFFLE_TYPES_H_
#define SPQ_SPQ_SHUFFLE_TYPES_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "mapreduce/codec.h"
#include "mapreduce/merge.h"
#include "spq/types.h"
#include "text/vocabulary.h"

namespace spq::core {

/// \brief The composite map-output key of Algorithms 1/3/5.
///
/// `cell` drives the Partitioner and the grouping comparator; `order`
/// drives the secondary sort inside a group:
///   pSPQ     — data 0, features 1 (tag; Algorithm 1)
///   eSPQlen  — data 0, features |f.W| (Algorithm 3)
///   eSPQsco  — data kDataOrderScore (< -1), features -w(f,q) so that one
///              ascending comparator yields decreasing score (Algorithm 5
///              uses +2 with a reversed comparator; equivalent).
struct CellKey {
  geo::CellId cell = 0;
  double order = 0.0;
};

/// Sentinel order that places data objects before any feature under the
/// eSPQsco ordering (feature orders lie in [-1, 0)).
inline constexpr double kDataOrderScore = -2.0;

inline bool CellKeySortLess(const CellKey& a, const CellKey& b) {
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.order < b.order;
}

inline bool CellKeyGroupEqual(const CellKey& a, const CellKey& b) {
  return a.cell == b.cell;
}

/// Cell-based partitioner. With R == number of cells (the paper's setup)
/// this is the identity; with fewer reducers, consecutive cells spread
/// round-robin so a hot region does not land on one reducer.
inline uint32_t CellPartitioner(const CellKey& key, uint32_t num_partitions) {
  return key.cell % num_partitions;
}

/// \brief Branchless bijection from double to a uint64 whose unsigned
/// ascending order equals the double's `<` order (for non-NaN values):
/// positive doubles get their sign bit flipped, negative doubles get all
/// bits flipped. -0.0 is first normalized to +0.0 so that values `<`
/// considers equal stay equal under the integer order — that is what lets
/// the cell-bucketed shuffle sort `order` as a plain uint64_t and still
/// reproduce the legacy comparator's order bit-for-bit.
inline uint64_t OrderedDoubleKey(double d) {
  d += 0.0;  // -0.0 -> +0.0
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  const uint64_t mask =
      static_cast<uint64_t>(-static_cast<int64_t>(bits >> 63)) |
      0x8000000000000000ull;
  return bits ^ mask;
}

/// Inverse of OrderedDoubleKey (up to the -0.0 normalization).
inline double OrderedKeyToDouble(uint64_t key) {
  const uint64_t mask = (key & 0x8000000000000000ull) != 0
                            ? 0x8000000000000000ull
                            : ~0ull;
  const uint64_t bits = key ^ mask;
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// \brief The shuffled value: the entire (data or feature) object, exactly
/// as Algorithms 1/3/5 emit it. `kind` mirrors the x.tag of the paper.
///
/// The keyword list has two representations:
///   - owning: `keywords` holds the sorted term ids (dataset flattening and
///     every reduce-side decode produce this form);
///   - borrowed: `keyword_span`/`keyword_span_len` alias term storage owned
///     elsewhere and override `keywords`.
/// Borrowed objects are what makes Lemma-1 cell duplication O(1) per copy:
/// the mappers emit `Borrowed()` aliases of their input record, so the
/// map-input arena acts as the shared term pool and no emission clones the
/// keyword vector (see MapContext::Emit for the lifetime contract). Always
/// read the list through KeywordData()/KeywordCount(), never `keywords`
/// directly.
struct ShuffleObject {
  enum Kind : uint8_t { kData = 0, kFeature = 1 };

  uint8_t kind = kData;
  ObjectId id = 0;
  geo::Point pos;
  /// Sorted term ids; empty for data objects and for borrowed aliases.
  std::vector<text::TermId> keywords;
  /// When non-null, the keyword list lives in borrowed storage (the term
  /// pool) and `keywords` is ignored.
  const text::TermId* keyword_span = nullptr;
  uint32_t keyword_span_len = 0;
  /// text::TermSignature of the keyword list, or 0 for "not computed".
  /// FlattenDataset fills it once per feature so the map-side signature
  /// screen pays one AND instead of a sorted intersection per query; it is
  /// advisory (a 0 simply falls through to the exact test) and is not
  /// serialized — nothing past the map phase reads it.
  uint64_t keyword_sig = 0;

  bool is_data() const { return kind == kData; }
  bool is_feature() const { return kind == kFeature; }

  /// O(1) non-owning alias of this object: same scalars, keyword list
  /// referenced as a span into this object's storage. Valid only while the
  /// source object outlives every alias — the SPQ mappers alias their
  /// input records, which the runtime keeps alive for the whole job.
  ShuffleObject Borrowed() const {
    ShuffleObject o;
    o.kind = kind;
    o.id = id;
    o.pos = pos;
    o.keyword_sig = keyword_sig;
    o.keyword_span =
        keyword_span != nullptr ? keyword_span : keywords.data();
    o.keyword_span_len = keyword_span != nullptr
                             ? keyword_span_len
                             : static_cast<uint32_t>(keywords.size());
    return o;
  }
};

/// \brief Zero-copy view of one shuffled record in a flat-arena segment:
/// the scalar header by value, the keyword list as a span into the
/// segment's shared TermId pool. What the reduce cores consume on the
/// cell-bucketed path — no per-record vector, no decode.
///
/// Valid until the owning stream advances, except for data-object views
/// (empty keyword span), which hold no pool reference and may be retained
/// (the batched reducer caches them across groups).
struct ShuffleObjectView {
  uint8_t kind = ShuffleObject::kData;
  ObjectId id = 0;
  geo::Point pos;
  const text::TermId* keywords = nullptr;
  uint32_t num_keywords = 0;

  bool is_data() const { return kind == ShuffleObject::kData; }
  bool is_feature() const { return kind == ShuffleObject::kFeature; }
};

/// Uniform keyword-span access for the reduce cores, which are templated
/// over the record representation (owning ShuffleObject on the legacy
/// path, ShuffleObjectView on the flat path), and for the serializers,
/// which must handle both the owning and borrowed ShuffleObject forms.
inline const text::TermId* KeywordData(const ShuffleObject& x) {
  return x.keyword_span != nullptr ? x.keyword_span : x.keywords.data();
}
inline std::size_t KeywordCount(const ShuffleObject& x) {
  return x.keyword_span != nullptr ? x.keyword_span_len : x.keywords.size();
}
inline const text::TermId* KeywordData(const ShuffleObjectView& x) {
  return x.keywords;
}
inline std::size_t KeywordCount(const ShuffleObjectView& x) {
  return x.num_keywords;
}

/// Shared flat-arena payload codec for ShuffleObject values, used by both
/// the single-query (CellKey) and batched (BatchCellKey) trait
/// specializations. Payload layout (kShufflePayloadStride bytes):
///   [0..8)   id        u64
///   [8..16)  pos.x     f64
///   [16..24) pos.y     f64
///   [24..28) kind      u32
///   [28..32) pool off  u32   (bytes; trailing span per the traits contract)
///   [32..36) pool len  u32   (bytes; num_keywords * sizeof(TermId))
/// The 36-byte stride keeps every field and every pool slice 4-aligned, so
/// keyword spans are read in place as const TermId*.
inline constexpr uint32_t kShufflePayloadStride = 36;

inline uint64_t ShufflePoolBytes(const ShuffleObject& v) {
  return KeywordCount(v) * sizeof(text::TermId);
}

inline void EncodeShufflePayload(const ShuffleObject& v, uint8_t* dst,
                                 uint8_t* pool, uint64_t* pool_pos) {
  namespace wire = mapreduce::wire;
  wire::StoreU64(dst, v.id);
  wire::StoreF64(dst + 8, v.pos.x);
  wire::StoreF64(dst + 16, v.pos.y);
  wire::StoreU32(dst + 24, v.kind);
  wire::StoreU32(dst + 28, static_cast<uint32_t>(*pool_pos));
  const std::size_t span_bytes = KeywordCount(v) * sizeof(text::TermId);
  wire::StoreU32(dst + 32, static_cast<uint32_t>(span_bytes));
  if (span_bytes > 0) {
    std::memcpy(pool + *pool_pos, KeywordData(v), span_bytes);
    *pool_pos += span_bytes;
  }
}

inline ShuffleObjectView MakeShuffleView(const uint8_t* payload,
                                         const uint8_t* span) {
  namespace wire = mapreduce::wire;
  ShuffleObjectView view;
  view.id = wire::LoadU64(payload);
  view.pos.x = wire::LoadF64(payload + 8);
  view.pos.y = wire::LoadF64(payload + 16);
  view.kind = static_cast<uint8_t>(wire::LoadU32(payload + 24));
  view.num_keywords =
      wire::LoadU32(payload + 32) / static_cast<uint32_t>(sizeof(text::TermId));
  view.keywords =
      span != nullptr ? reinterpret_cast<const text::TermId*>(span) : nullptr;
  return view;
}

}  // namespace spq::core

namespace spq::mapreduce {

template <>
struct Codec<core::CellKey> {
  static void Encode(const core::CellKey& k, Buffer& buf) {
    buf.PutUint32(k.cell);
    buf.PutDouble(k.order);
  }
  static Status Decode(BufferReader& reader, core::CellKey* out) {
    SPQ_RETURN_NOT_OK(reader.GetUint32(&out->cell));
    return reader.GetDouble(&out->order);
  }
};

template <>
struct Codec<core::ShuffleObject> {
  static void Encode(const core::ShuffleObject& v, Buffer& buf) {
    buf.PutUint8(v.kind);
    buf.PutVarint(v.id);
    buf.PutDouble(v.pos.x);
    buf.PutDouble(v.pos.y);
    if (v.kind == core::ShuffleObject::kFeature) {
      // Through the accessors: borrowed (span-backed) map emissions encode
      // identically to owning objects.
      const text::TermId* kw = core::KeywordData(v);
      const std::size_t n = core::KeywordCount(v);
      buf.PutVarint(n);
      for (std::size_t i = 0; i < n; ++i) {
        Codec<text::TermId>::Encode(kw[i], buf);
      }
    }
  }
  static Status Decode(BufferReader& reader, core::ShuffleObject* out) {
    SPQ_RETURN_NOT_OK(reader.GetUint8(&out->kind));
    SPQ_RETURN_NOT_OK(reader.GetVarint(&out->id));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&out->pos.x));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&out->pos.y));
    out->keywords.clear();
    out->keyword_span = nullptr;  // decode always produces the owning form
    out->keyword_span_len = 0;
    if (out->kind == core::ShuffleObject::kFeature) {
      SPQ_RETURN_NOT_OK(
          Codec<std::vector<text::TermId>>::Decode(reader, &out->keywords));
    }
    return Status::OK();
  }
};

/// Flat-shuffle radix structure of the single-query job: the bucket is
/// the cell (partitioning and grouping are cell-driven), the order key is
/// the sortable-uint image of the secondary sort component. (bucket asc,
/// order key asc) == CellKeySortLess; bucket equality == CellKeyGroupEqual.
template <>
struct FlatShuffleTraits<core::CellKey, core::ShuffleObject> {
  static constexpr bool kEnabled = true;
  static constexpr uint32_t kPayloadStride = core::kShufflePayloadStride;
  using View = core::ShuffleObjectView;

  static uint64_t Bucket(const core::CellKey& k) { return k.cell; }
  static uint64_t OrderKey(const core::CellKey& k) {
    return core::OrderedDoubleKey(k.order);
  }
  static core::CellKey MakeKey(uint64_t bucket, uint64_t order_key) {
    return core::CellKey{static_cast<geo::CellId>(bucket),
                         core::OrderedKeyToDouble(order_key)};
  }
  static uint64_t PoolBytes(const core::ShuffleObject& v) {
    return core::ShufflePoolBytes(v);
  }
  static void EncodePayload(const core::ShuffleObject& v, uint8_t* dst,
                            uint8_t* pool, uint64_t* pool_pos) {
    core::EncodeShufflePayload(v, dst, pool, pool_pos);
  }
  static View MakeView(const uint8_t* payload, const uint8_t* span) {
    return core::MakeShuffleView(payload, span);
  }
};

}  // namespace spq::mapreduce

#endif  // SPQ_SPQ_SHUFFLE_TYPES_H_
