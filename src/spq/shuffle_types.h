#ifndef SPQ_SPQ_SHUFFLE_TYPES_H_
#define SPQ_SPQ_SHUFFLE_TYPES_H_

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "mapreduce/codec.h"
#include "spq/types.h"
#include "text/vocabulary.h"

namespace spq::core {

/// \brief The composite map-output key of Algorithms 1/3/5.
///
/// `cell` drives the Partitioner and the grouping comparator; `order`
/// drives the secondary sort inside a group:
///   pSPQ     — data 0, features 1 (tag; Algorithm 1)
///   eSPQlen  — data 0, features |f.W| (Algorithm 3)
///   eSPQsco  — data kDataOrderScore (< -1), features -w(f,q) so that one
///              ascending comparator yields decreasing score (Algorithm 5
///              uses +2 with a reversed comparator; equivalent).
struct CellKey {
  geo::CellId cell = 0;
  double order = 0.0;
};

/// Sentinel order that places data objects before any feature under the
/// eSPQsco ordering (feature orders lie in [-1, 0)).
inline constexpr double kDataOrderScore = -2.0;

inline bool CellKeySortLess(const CellKey& a, const CellKey& b) {
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.order < b.order;
}

inline bool CellKeyGroupEqual(const CellKey& a, const CellKey& b) {
  return a.cell == b.cell;
}

/// Cell-based partitioner. With R == number of cells (the paper's setup)
/// this is the identity; with fewer reducers, consecutive cells spread
/// round-robin so a hot region does not land on one reducer.
inline uint32_t CellPartitioner(const CellKey& key, uint32_t num_partitions) {
  return key.cell % num_partitions;
}

/// \brief The shuffled value: the entire (data or feature) object, exactly
/// as Algorithms 1/3/5 emit it. `kind` mirrors the x.tag of the paper.
struct ShuffleObject {
  enum Kind : uint8_t { kData = 0, kFeature = 1 };

  uint8_t kind = kData;
  ObjectId id = 0;
  geo::Point pos;
  /// Sorted term ids; empty for data objects.
  std::vector<text::TermId> keywords;

  bool is_data() const { return kind == kData; }
  bool is_feature() const { return kind == kFeature; }
};

}  // namespace spq::core

namespace spq::mapreduce {

template <>
struct Codec<core::CellKey> {
  static void Encode(const core::CellKey& k, Buffer& buf) {
    buf.PutUint32(k.cell);
    buf.PutDouble(k.order);
  }
  static Status Decode(BufferReader& reader, core::CellKey* out) {
    SPQ_RETURN_NOT_OK(reader.GetUint32(&out->cell));
    return reader.GetDouble(&out->order);
  }
};

template <>
struct Codec<core::ShuffleObject> {
  static void Encode(const core::ShuffleObject& v, Buffer& buf) {
    buf.PutUint8(v.kind);
    buf.PutVarint(v.id);
    buf.PutDouble(v.pos.x);
    buf.PutDouble(v.pos.y);
    if (v.kind == core::ShuffleObject::kFeature) {
      Codec<std::vector<text::TermId>>::Encode(v.keywords, buf);
    }
  }
  static Status Decode(BufferReader& reader, core::ShuffleObject* out) {
    SPQ_RETURN_NOT_OK(reader.GetUint8(&out->kind));
    SPQ_RETURN_NOT_OK(reader.GetVarint(&out->id));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&out->pos.x));
    SPQ_RETURN_NOT_OK(reader.GetDouble(&out->pos.y));
    out->keywords.clear();
    if (out->kind == core::ShuffleObject::kFeature) {
      SPQ_RETURN_NOT_OK(
          Codec<std::vector<text::TermId>>::Decode(reader, &out->keywords));
    }
    return Status::OK();
  }
};

}  // namespace spq::mapreduce

#endif  // SPQ_SPQ_SHUFFLE_TYPES_H_
