#include "spq/algorithms.h"

#include <memory>
#include <utility>
#include <vector>

#include "spq/reduce_core.h"
#include "spq/topk.h"
#include "text/jaccard.h"

namespace spq::core {

namespace {

using mapreduce::GroupValues;
using mapreduce::MapContext;
using mapreduce::ReduceContext;
using SpqMapContext = MapContext<CellKey, ShuffleObject>;
using SpqGroupValues = GroupValues<CellKey, ShuffleObject>;
using SpqReduceContext = ReduceContext<ResultEntry>;

/// Shared map logic of Algorithms 1, 3 and 5. The algorithms differ only
/// in the secondary key assigned to each emission.
class SpqMapper final
    : public mapreduce::Mapper<ShuffleObject, CellKey, ShuffleObject> {
 public:
  SpqMapper(Algorithm algo, Query query, geo::UniformGrid grid,
            SpqJobOptions options)
      : algo_(algo),
        query_(std::move(query)),
        grid_(std::move(grid)),
        options_(options),
        query_sig_(text::TermSignature(query_.keywords.ids())) {}

  void Map(const ShuffleObject& x, SpqMapContext& ctx) override {
    const geo::CellId cell = grid_.CellOf(x.pos);
    if (x.is_data()) {
      ctx.counters().Increment(counter::kDataObjects);
      ctx.Emit(CellKey{cell, DataOrder(algo_)}, x);
      return;
    }
    // Signature screen ahead of the exact merge: a disjoint signature AND
    // proves x.W ∩ q.W = ∅ (keyword_set.h), which is exactly the prefilter
    // drop below with common == 0 — same counter, same outcome, minus the
    // O(|x.W| + |q.W|) merge. Only valid when the prefilter is on (the
    // ablation needs `common` for FeatureOrder) and the record carries a
    // computed signature (warm-path inputs do; 0 means "unknown").
    if (options_.keyword_prefilter && options_.signature_prefilter &&
        x.keyword_sig != 0 && (x.keyword_sig & query_sig_) == 0) {
      ctx.counters().Increment(counter::kFeaturesPruned);
      return;
    }
    // Map-side pruning (line 9 of Algorithm 1): features sharing no term
    // with q.W can never score a data object and are dropped before the
    // shuffle. Disabled only for the prefilter ablation. Read through the
    // span accessors: warm-path inputs are borrowed aliases whose keyword
    // list lives in the engine's flattened-dataset arena.
    const std::size_t common = text::SortedIntersectionSize(
        KeywordData(x), KeywordCount(x), query_.keywords.ids().data(),
        query_.keywords.ids().size());
    if (common == 0 && options_.keyword_prefilter) {
      ctx.counters().Increment(counter::kFeaturesPruned);
      return;
    }
    ctx.counters().Increment(counter::kFeaturesKept);
    const double order = FeatureOrder(algo_, query_, x, common);
    // Every emission borrows the input record's keyword storage (the map
    // input is the term pool and outlives the job), so Lemma-1 duplication
    // below is an O(1) span copy per target cell, not a vector clone.
    const ShuffleObject borrowed = x.Borrowed();
    ctx.Emit(CellKey{cell, order}, borrowed);
    // Lemma 1: duplicate into every other cell within MINDIST <= r.
    // Scratch overload: one target list reused across every feature this
    // mapper instance maps (a per-feature allocation otherwise).
    grid_.CellsWithinDist(x.pos, query_.radius, targets_scratch_);
    for (geo::CellId target : targets_scratch_) {
      ctx.Emit(CellKey{target, order}, borrowed);
    }
    ctx.counters().Increment(counter::kFeatureDuplicates,
                             targets_scratch_.size());
  }

 private:
  Algorithm algo_;
  Query query_;
  geo::UniformGrid grid_;
  SpqJobOptions options_;
  uint64_t query_sig_;  ///< TermSignature(q.W), hoisted out of Map
  std::vector<geo::CellId> targets_scratch_;  ///< CellsWithinDist reuse
};

/// Thin Reducer shims over the shared reduce cores (reduce_core.h).
class SpqReducer final
    : public mapreduce::Reducer<CellKey, ShuffleObject, ResultEntry> {
 public:
  SpqReducer(Algorithm algo, Query query, SpqJobOptions options)
      : algo_(algo), query_(std::move(query)), options_(options) {}

  void Reduce(const CellKey&, SpqGroupValues& values,
              SpqReduceContext& ctx) override {
    reduce_core::RunReduceOwned(algo_, options_, query_, values,
                                ctx.counters(),
                                [&ctx](const ResultEntry& e) { ctx.Emit(e); });
  }

 private:
  Algorithm algo_;
  Query query_;
  SpqJobOptions options_;
};

}  // namespace

std::string AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kPSPQ:
      return "pSPQ";
    case Algorithm::kESPQLen:
      return "eSPQlen";
    case Algorithm::kESPQSco:
      return "eSPQsco";
  }
  return "unknown";
}

double DataOrder(Algorithm algo) {
  return algo == Algorithm::kESPQSco ? kDataOrderScore : 0.0;
}

double FeatureOrder(Algorithm algo, const Query& query,
                    const ShuffleObject& x, std::size_t common) {
  switch (algo) {
    case Algorithm::kPSPQ:
      return 1.0;  // the tag of Algorithm 1: features after data
    case Algorithm::kESPQLen:
      return static_cast<double>(KeywordCount(x));  // Algorithm 3
    case Algorithm::kESPQSco: {
      // Algorithm 5: exact Jaccard in the Map phase; negated so one
      // ascending comparator yields decreasing score.
      const std::size_t uni =
          KeywordCount(x) + query.keywords.size() - common;
      if (uni == 0) return 0.0;  // both keyword sets empty
      return -(static_cast<double>(common) / static_cast<double>(uni));
    }
  }
  return 0.0;
}

mapreduce::JobSpec<ShuffleObject, CellKey, ShuffleObject, ResultEntry>
MakeSpqJobSpec(Algorithm algo, const Query& query,
               const geo::UniformGrid& grid, SpqJobOptions options) {
  mapreduce::JobSpec<ShuffleObject, CellKey, ShuffleObject, ResultEntry> spec;
  spec.mapper_factory = [algo, query, grid, options]() {
    return std::make_unique<SpqMapper>(algo, query, grid, options);
  };
  spec.reducer_factory = [algo, query, options]() {
    return std::make_unique<SpqReducer>(algo, query, options);
  };
  spec.partitioner = CellPartitioner;
  spec.sort_less = CellKeySortLess;
  spec.group_equal = CellKeyGroupEqual;
  // Flat-arena path (ShuffleMode::kCellBucketed): same reduce cores, fed
  // zero-copy ShuffleObjectViews through the non-virtual cursor.
  spec.flat_reducer_factory = [algo, query, options]() {
    return [algo, query, options](
               const CellKey&,
               mapreduce::FlatGroupCursor<CellKey, ShuffleObject>& values,
               mapreduce::ReduceContext<ResultEntry>& ctx) {
      reduce_core::RunReduceOwned(algo, options, query, values,
                                  ctx.counters(),
                                  [&ctx](const ResultEntry& e) { ctx.Emit(e); });
    };
  };
  return spec;
}

std::vector<ShuffleObject> FlattenDataset(const Dataset& dataset) {
  std::vector<ShuffleObject> records;
  records.reserve(dataset.data.size() + dataset.features.size());
  for (const DataObject& p : dataset.data) {
    ShuffleObject obj;
    obj.kind = ShuffleObject::kData;
    obj.id = p.id;
    obj.pos = p.pos;
    records.push_back(std::move(obj));
  }
  for (const FeatureObject& f : dataset.features) {
    ShuffleObject obj;
    obj.kind = ShuffleObject::kFeature;
    obj.id = f.id;
    obj.pos = f.pos;
    obj.keywords = f.keywords.ids();
    obj.keyword_sig = text::TermSignature(obj.keywords);
    records.push_back(std::move(obj));
  }
  return records;
}

}  // namespace spq::core
