#ifndef SPQ_SPQ_REDUCE_CORE_H_
#define SPQ_SPQ_REDUCE_CORE_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "mapreduce/job.h"
#include "spq/algorithms.h"
#include "spq/shuffle_types.h"
#include "spq/topk.h"
#include "text/jaccard.h"

namespace spq::core::reduce_core {

/// \brief The reduce-side cores of Algorithms 2, 4 and 6, templated on the
/// group-values cursor so every pairing of key type (CellKey for the
/// single-query job, BatchCellKey for the batched job) and record
/// representation (owning ShuffleObject on the legacy shuffle,
/// zero-copy ShuffleObjectView on the flat-arena shuffle) shares one
/// implementation. The cursor only needs Next()/key()/value(), a key with
/// an `order` member, and a value satisfying the KeywordData/KeywordCount
/// accessors — keyword scoring runs straight off the spans, so the flat
/// path never materializes a per-record keyword vector.
///
/// Each function consumes one reduce group (one cell's data + feature
/// objects in the algorithm's sort order) and emits per-cell results
/// through `emit(const ResultEntry&)`.

/// In-memory O_i of one reduce group plus the running scores.
struct CellData {
  std::vector<ObjectId> ids;
  std::vector<geo::Point> positions;
  std::vector<double> scores;

  template <typename X>
  void Add(const X& x) {
    ids.push_back(x.id);
    positions.push_back(x.pos);
    scores.push_back(0.0);
  }
  std::size_t size() const { return ids.size(); }
};

/// Algorithm 2 (pSPQ): full scan of the cell's features, threshold-pruned.
template <typename Values, typename EmitFn>
void RunPspq(const Query& query, Values& values,
             mapreduce::Counters& counters, EmitFn&& emit) {
  counters.Increment(counter::kGroups);
  CellData cell;
  TopKList lk(query.k);
  const double r2 = query.radius * query.radius;
  const std::vector<text::TermId>& q_ids = query.keywords.ids();
  uint64_t examined = 0;
  uint64_t pairs = 0;
  while (values.Next()) {
    const auto& x = values.value();
    if (x.is_data()) {
      cell.Add(x);
      continue;
    }
    ++examined;
    const double w =
        text::JaccardSortedBounded(KeywordData(x), KeywordCount(x),
                                   q_ids.data(), q_ids.size(), lk.Threshold());
    if (w > lk.Threshold()) {
      for (std::size_t i = 0; i < cell.size(); ++i) {
        if (w <= cell.scores[i]) continue;  // cannot improve p's score
        ++pairs;
        if (geo::Distance2(cell.positions[i], x.pos) <= r2) {
          cell.scores[i] = w;
          lk.Update(cell.ids[i], w);
        }
      }
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, pairs);
  for (const ResultEntry& e : lk.entries()) emit(e);
}

/// Algorithm 4 (eSPQlen): features by increasing |f.W|; stop at Lemma 2.
template <typename Values, typename EmitFn>
void RunEspqLen(const Query& query, Values& values,
                mapreduce::Counters& counters, EmitFn&& emit) {
  counters.Increment(counter::kGroups);
  CellData cell;
  TopKList lk(query.k);
  const double r2 = query.radius * query.radius;
  const std::vector<text::TermId>& q_ids = query.keywords.ids();
  const std::size_t qlen = q_ids.size();
  uint64_t examined = 0;
  uint64_t pairs = 0;
  while (values.Next()) {
    const auto& x = values.value();
    if (x.is_data()) {
      cell.Add(x);
      continue;
    }
    const double upper = text::JaccardUpperBound(qlen, KeywordCount(x));
    if (lk.Threshold() >= upper) {
      // Lemma 2: no unseen feature (all at least this long) can beat τ.
      counters.Increment(counter::kEarlyTerminations);
      break;
    }
    ++examined;
    const double w =
        text::JaccardSortedBounded(KeywordData(x), KeywordCount(x),
                                   q_ids.data(), q_ids.size(), lk.Threshold());
    if (w > lk.Threshold()) {
      for (std::size_t i = 0; i < cell.size(); ++i) {
        if (w <= cell.scores[i]) continue;
        ++pairs;
        if (geo::Distance2(cell.positions[i], x.pos) <= r2) {
          cell.scores[i] = w;
          lk.Update(cell.ids[i], w);
        }
      }
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, pairs);
  for (const ResultEntry& e : lk.entries()) emit(e);
}

/// Algorithm 6 (eSPQsco): features by decreasing score (read off the
/// composite key's `order`); stop after k reports (Lemma 3).
template <typename Values, typename EmitFn>
void RunEspqSco(const Query& query, Values& values,
                mapreduce::Counters& counters, EmitFn&& emit) {
  counters.Increment(counter::kGroups);
  CellData cell;
  std::vector<bool> reported;
  const double r2 = query.radius * query.radius;
  uint32_t reported_count = 0;
  uint64_t examined = 0;
  uint64_t pairs = 0;
  while (values.Next()) {
    const auto& x = values.value();
    if (x.is_data()) {
      cell.Add(x);
      reported.push_back(false);
      continue;
    }
    // The map phase stored -w(f, q) in the secondary key (Algorithm 5).
    const double w = -values.key().order;
    if (w <= 0.0) {
      // Only reachable with the keyword prefilter disabled: the rest of
      // the (descending) order is all zero-score features.
      counters.Increment(counter::kEarlyTerminations);
      break;
    }
    ++examined;
    bool done = false;
    for (std::size_t i = 0; i < cell.size(); ++i) {
      if (reported[i]) continue;
      ++pairs;
      if (geo::Distance2(cell.positions[i], x.pos) <= r2) {
        // Decreasing-score order makes w the final τ(p) (Lemma 3).
        emit(ResultEntry{cell.ids[i], w});
        reported[i] = true;
        if (++reported_count == query.k) {
          done = true;
          break;
        }
      }
    }
    if (done) {
      counters.Increment(counter::kEarlyTerminations);
      break;
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, pairs);
}

/// Dispatch by algorithm.
template <typename Values, typename EmitFn>
void RunReduce(Algorithm algo, const Query& query, Values& values,
               mapreduce::Counters& counters, EmitFn&& emit) {
  switch (algo) {
    case Algorithm::kPSPQ:
      RunPspq(query, values, counters, emit);
      return;
    case Algorithm::kESPQLen:
      RunEspqLen(query, values, counters, emit);
      return;
    case Algorithm::kESPQSco:
      RunEspqSco(query, values, counters, emit);
      return;
  }
}

}  // namespace spq::core::reduce_core

#endif  // SPQ_SPQ_REDUCE_CORE_H_
