#ifndef SPQ_SPQ_REDUCE_CORE_H_
#define SPQ_SPQ_REDUCE_CORE_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "common/simd.h"
#include "common/trace.h"
#include "geo/point.h"
#include "mapreduce/job.h"
#include "spq/algorithms.h"
#include "spq/shuffle_types.h"
#include "spq/topk.h"
#include "text/jaccard.h"

namespace spq::core::reduce_core {

/// \brief The reduce-side cores of Algorithms 2, 4 and 6, templated on the
/// group-values cursor so every pairing of key type (CellKey for the
/// single-query job, BatchCellKey for the batched job) and record
/// representation (owning ShuffleObject on the legacy shuffle,
/// zero-copy ShuffleObjectView on the flat-arena shuffle) shares one
/// implementation. The cursor only needs Next()/key()/value(), a key with
/// an `order` member, and a value satisfying the KeywordData/KeywordCount
/// accessors — keyword scoring runs straight off the spans, so the flat
/// path never materializes a per-record keyword vector.
///
/// Each function consumes one reduce group (one cell's data + feature
/// objects in the algorithm's sort order) and emits per-cell results
/// through `emit(const ResultEntry&)`.
///
/// The data↔feature pair loop runs in one of two JoinModes
/// (algorithms.h): the paper's linear scan, or the default mini-grid
/// index (CellGridIndex below) that answers each feature's radius probe
/// with a bucket range walk. Both modes produce bit-identical results and
/// identical counters except `reduce.pairs_tested`, which counts the
/// distance evaluations actually performed — the quantity the index
/// shrinks.
///
/// Orthogonally, KernelMode (common/simd.h) picks how surviving candidates
/// get their distance test: kScalar keeps the historical one-at-a-time
/// loop, kAuto gathers each probe's candidates and evaluates them through
/// the batched DistanceWithinMask kernel (AVX2 lanes of 4 when available).
/// Results and ALL counters — including pairs_tested — are bit-identical
/// across kernel modes; see kernel_equivalence_test.cc and the proof
/// sketches at ScoreFeatureAgainstCell / RunEspqSco.

/// In-memory O_i of one reduce group, kept as parallel contiguous arrays
/// (SoA): `positions` doubles as the storage the CellGridIndex buckets
/// refer into, so probes walk one cache-friendly array instead of chasing
/// per-object records.
///
/// CellData holds ONLY query-independent state (ids + positions). The
/// per-query running scores and report bitmap live in QueryScratch, passed
/// into the reduce cores separately — that split is what lets a fully
/// materialized store partition be shared read-only by concurrent queries.
struct CellData {
  std::vector<ObjectId> ids;
  std::vector<geo::Point> positions;

  /// Pre-sizes all arrays (used when the group's data-object count is
  /// known up front, e.g. the resident store's materialized partitions).
  void Reserve(std::size_t n) {
    ids.reserve(n);
    positions.reserve(n);
  }

  template <typename X>
  void Add(const X& x) {
    ids.push_back(x.id);
    positions.push_back(x.pos);
  }
  std::size_t size() const { return ids.size(); }

  /// Drops the objects but keeps the capacity (cross-cell cache reuse).
  void Clear() {
    ids.clear();
    positions.clear();
  }
};

/// \brief SoA mini-grid over one reduce group's data-object positions
/// (JoinMode::kGridIndex). Built lazily at the first feature probe from
/// the positions accumulated so far; positions that arrive later (late
/// data in degenerate secondary-key ties, or rows appended to a resident
/// store partition) are absorbed *incrementally* via Sync/Append — they
/// land in a small pending list consulted by every probe and are folded
/// into the CSR arrays once the list outgrows kMaxPending, so late
/// arrivals no longer trigger an O(n) rebuild each.
///
/// Layout is a counting-sorted CSR: `starts_` offsets into `items_`,
/// which holds data indices bucket-major and ascending within each bucket
/// (counting sort is stable, pending entries are appended in index order
/// and every pending index is greater than every folded one). The side
/// length targets ~1 object per bucket (side ≈ √n, so the offsets array
/// stays O(n)); fine buckets keep the one-bucket safety pad below cheap.
/// With one bucket the probe degenerates to the full scan, so tiny groups
/// pay no indexing overhead beyond the O(n) build.
///
/// Appended positions may fall outside the bounding box the bucket
/// geometry was derived from; they are clamped into the boundary buckets.
/// That is safe for the probe contract: a probe whose [p ± r] square
/// extends past the bounds has its bucket range clamped onto the same
/// boundary buckets, so clamped points are always visited.
///
/// A radius probe walks the buckets overlapping the axis-aligned square
/// [p ± r], padded by one bucket per side so a one-ulp rounding slip in
/// the bucket arithmetic can never exclude a point whose computed
/// distance² is <= r² — the exact distance test stays with the caller.
class CellGridIndex {
 public:
  /// (Re)builds over `positions`, skipping the rows `dead` marks when it
  /// is non-null. O(n) counting sort. The dead-masked form exists for the
  /// mutable store's bit-identity contract (cell_store.h invariant M2):
  /// the bucket geometry (bbox, side length) is derived from the LIVE
  /// rows only, so every probe enumerates exactly the candidate set a
  /// fresh build over the surviving rows would — candidate-superset size
  /// feeds the pairs_tested counter, so geometry drift would be
  /// observable. Items still hold the caller's physical row indices.
  void Build(const std::vector<geo::Point>& positions,
             const std::vector<uint8_t>* dead = nullptr) {
    if (dead != nullptr && dead->empty()) dead = nullptr;
    pending_.clear();
    indexed_n_ = positions.size();
    contiguous_ = dead == nullptr;
    std::size_t live_n = 0;
    double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (dead != nullptr && (*dead)[i]) continue;
      const geo::Point& p = positions[i];
      if (live_n == 0) {
        min_x = max_x = p.x;
        min_y = max_y = p.y;
      } else {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
      }
      ++live_n;
    }
    built_n_ = live_n;
    if (live_n == 0) {
      if (indexed_n_ == 0) return;
      // All rows masked: serve an empty one-bucket index (probes find
      // nothing), exactly what a fresh build over zero rows serves.
      side_ = 1;
      min_x_ = min_y_ = 0.0;
      inv_w_ = inv_h_ = 0.0;
      starts_.assign(2, 0);
      items_.clear();
      return;
    }
    min_x_ = min_x;
    min_y_ = min_y;
    const double target = std::ceil(std::sqrt(static_cast<double>(live_n)));
    side_ = static_cast<uint32_t>(
        std::clamp(target, 1.0, static_cast<double>(kMaxSide)));
    const double w = max_x - min_x;
    const double h = max_y - min_y;
    inv_w_ = w > 0.0 ? static_cast<double>(side_) / w : 0.0;
    inv_h_ = h > 0.0 ? static_cast<double>(side_) / h : 0.0;

    starts_.assign(static_cast<std::size_t>(side_) * side_ + 1, 0);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (dead != nullptr && (*dead)[i]) continue;
      ++starts_[BucketOf(positions[i]) + 1];
    }
    for (std::size_t b = 1; b < starts_.size(); ++b) {
      starts_[b] += starts_[b - 1];
    }
    items_.resize(live_n);
    cursor_.assign(starts_.begin(), starts_.end() - 1);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (dead != nullptr && (*dead)[i]) continue;
      items_[cursor_[BucketOf(positions[i])]++] =
          static_cast<uint32_t>(i);
    }
  }

  /// Number of positions currently indexed (folded + pending); callers
  /// compare against cell.size() to detect staleness.
  std::size_t built_size() const { return indexed_n_; }

  /// Brings the index up to date with `positions`: builds on first use,
  /// absorbs an appended tail incrementally, rebuilds if the vector
  /// shrank. The index only tracks *growth* — a caller that mutates or
  /// replaces already-indexed positions must call Reset() first.
  void Sync(const std::vector<geo::Point>& positions) {
    if (positions.size() == indexed_n_) return;
    if (indexed_n_ == 0 || positions.size() < indexed_n_) {
      Build(positions);
      return;
    }
    Append(positions);
  }

  /// Indexes positions[built_size()..positions.size()). New entries go to
  /// the pending list (probes consult it linearly); once it outgrows
  /// kMaxPending, everything folds into the CSR arrays in one O(n + side²)
  /// stable merge — appended indices are strictly greater than folded
  /// ones, so each bucket stays ascending without re-sorting.
  void Append(const std::vector<geo::Point>& positions) {
    if (indexed_n_ == 0) {
      Build(positions);
      return;
    }
    for (std::size_t i = indexed_n_; i < positions.size(); ++i) {
      pending_.emplace_back(static_cast<uint32_t>(BucketOf(positions[i])),
                            static_cast<uint32_t>(i));
    }
    indexed_n_ = positions.size();
    if (pending_.size() > kMaxPending) FoldPending();
  }

  /// Forgets everything; the next Sync/Build starts from scratch. Required
  /// when previously indexed positions were replaced in place (Sync alone
  /// cannot see that — it compares sizes only). Keeps the buffers'
  /// capacity — the batched reducer Resets once per cell.
  void Reset() {
    starts_.clear();
    items_.clear();
    cursor_.clear();
    pending_.clear();
    side_ = 0;
    min_x_ = min_y_ = 0.0;
    inv_w_ = inv_h_ = 0.0;
    built_n_ = 0;
    indexed_n_ = 0;
    contiguous_ = true;
  }

  /// Invokes `fn(i)` for every data index i whose position can lie within
  /// distance r of p (bucket-granular superset of the r-disk). Each index
  /// is visited exactly once; order is bucket-major, NOT ascending — use
  /// SortedCandidates when the visit order is semantically relevant.
  template <typename Fn>
  void ForEachCandidate(const geo::Point& p, double r, Fn&& fn) const {
    if (indexed_n_ == 0) return;
    const BucketRange range = ProbeRange(p, r);
    for (uint32_t by = range.y_lo; by <= range.y_hi; ++by) {
      const std::size_t row = static_cast<std::size_t>(by) * side_;
      for (uint32_t bx = range.x_lo; bx <= range.x_hi; ++bx) {
        const std::size_t b = row + bx;
        for (uint32_t k = starts_[b]; k < starts_[b + 1]; ++k) {
          fn(items_[k]);
        }
      }
    }
    for (const auto& [b, idx] : pending_) {
      if (range.Contains(b % side_, b / side_)) fn(idx);
    }
  }

  /// The ForEachCandidate set in ascending data-index order (eSPQsco's
  /// Lemma-3 first-hit reporting depends on it). `out` is caller-owned
  /// scratch, reused across probes. A probe covering every bucket (r
  /// comparable to the cell edge) short-circuits to 0..n-1 — ascending by
  /// construction, and pending indices are exactly the trailing range —
  /// instead of paying a per-feature collect + sort just to reproduce the
  /// linear scan's order.
  void SortedCandidates(const geo::Point& p, double r,
                        std::vector<uint32_t>* out) const {
    out->clear();
    if (indexed_n_ == 0) return;
    const BucketRange range = ProbeRange(p, r);
    // The full-cover short-circuit assumes the indexed rows are exactly
    // 0..n-1; a dead-masked build skips rows, so it takes the generic
    // collect + sort path (same set, same ascending order).
    if (contiguous_ && range.x_lo == 0 && range.y_lo == 0 &&
        range.x_hi == side_ - 1 && range.y_hi == side_ - 1) {
      out->resize(indexed_n_);
      std::iota(out->begin(), out->end(), 0u);
      return;
    }
    for (uint32_t by = range.y_lo; by <= range.y_hi; ++by) {
      const std::size_t row = static_cast<std::size_t>(by) * side_;
      for (uint32_t bx = range.x_lo; bx <= range.x_hi; ++bx) {
        const std::size_t b = row + bx;
        for (uint32_t k = starts_[b]; k < starts_[b + 1]; ++k) {
          out->push_back(items_[k]);
        }
      }
    }
    for (const auto& [b, idx] : pending_) {
      if (range.Contains(b % side_, b / side_)) out->push_back(idx);
    }
    std::sort(out->begin(), out->end());
  }

 private:
  static constexpr uint32_t kMaxSide = 256;
  /// Pending-list bound: probes pay O(|pending|) extra, so the list stays
  /// small; folding costs O(n + side²) amortized over kMaxPending appends.
  static constexpr std::size_t kMaxPending = 32;

  /// Inclusive bucket rectangle overlapping the axis-aligned square
  /// [p ± r], padded one bucket outward (see class comment).
  struct BucketRange {
    uint32_t x_lo, x_hi, y_lo, y_hi;
    bool Contains(uint32_t bx, uint32_t by) const {
      return bx >= x_lo && bx <= x_hi && by >= y_lo && by <= y_hi;
    }
  };

  /// Merges the pending entries into the CSR arrays. One stable pass:
  /// pending is sorted by (bucket, index) and each bucket's newcomers are
  /// appended after its existing (smaller) indices, so the bucket-ascending
  /// invariant survives without touching the already-sorted prefix.
  void FoldPending() {
    std::sort(pending_.begin(), pending_.end());
    std::vector<uint32_t> merged(items_.size() + pending_.size());
    std::vector<uint32_t> new_starts(starts_.size(), 0);
    std::size_t p = 0;
    std::size_t out = 0;
    const std::size_t num_buckets = starts_.size() - 1;
    for (std::size_t b = 0; b < num_buckets; ++b) {
      new_starts[b] = static_cast<uint32_t>(out);
      for (uint32_t k = starts_[b]; k < starts_[b + 1]; ++k) {
        merged[out++] = items_[k];
      }
      while (p < pending_.size() && pending_[p].first == b) {
        merged[out++] = pending_[p++].second;
      }
    }
    new_starts[num_buckets] = static_cast<uint32_t>(out);
    items_ = std::move(merged);
    starts_ = std::move(new_starts);
    built_n_ = indexed_n_;
    pending_.clear();
  }
  BucketRange ProbeRange(const geo::Point& p, double r) const {
    return BucketRange{LowIdx((p.x - r - min_x_) * inv_w_),
                       HighIdx((p.x + r - min_x_) * inv_w_),
                       LowIdx((p.y - r - min_y_) * inv_h_),
                       HighIdx((p.y + r - min_y_) * inv_h_)};
  }

  std::size_t BucketOf(const geo::Point& p) const {
    return static_cast<std::size_t>(MidIdx((p.y - min_y_) * inv_h_)) * side_ +
           MidIdx((p.x - min_x_) * inv_w_);
  }
  /// Bucket of a coordinate, clamped onto the boundary buckets. The clamp
  /// happens in the double domain BEFORE the integer cast: appended
  /// positions may lie arbitrarily far outside the build bbox, and casting
  /// a double >= 2^32 to uint32_t is undefined behavior.
  uint32_t MidIdx(double scaled) const {
    if (!(scaled > 0.0)) return 0;
    const double hi = static_cast<double>(side_ - 1);
    return static_cast<uint32_t>(scaled < hi ? scaled : hi);
  }
  /// Probe range ends: floor, padded one bucket outward, clamped.
  uint32_t LowIdx(double scaled) const {
    const double f = std::floor(scaled) - 1.0;
    if (!(f > 0.0)) return 0;
    const double hi = static_cast<double>(side_ - 1);
    return static_cast<uint32_t>(f < hi ? f : hi);
  }
  uint32_t HighIdx(double scaled) const {
    const double f = std::floor(scaled) + 1.0;
    if (!(f > 0.0)) return 0;
    const double hi = static_cast<double>(side_ - 1);
    return static_cast<uint32_t>(f < hi ? f : hi);
  }

  uint32_t side_ = 0;
  double min_x_ = 0.0, min_y_ = 0.0;
  double inv_w_ = 0.0, inv_h_ = 0.0;
  std::vector<uint32_t> starts_;  ///< CSR offsets, side_² + 1 entries
  std::vector<uint32_t> items_;   ///< data indices, bucket-major, ascending
  std::vector<uint32_t> cursor_;  ///< build scratch
  /// Appended-but-unfolded entries as (bucket, data index); indices are
  /// exactly [built_n_, indexed_n_), in append (= ascending) order.
  std::vector<std::pair<uint32_t, uint32_t>> pending_;
  std::size_t built_n_ = 0;    ///< rows folded into the CSR arrays
  std::size_t indexed_n_ = 0;  ///< physical rows covered (incl. pending)
  /// False after a dead-masked Build: items_ are then a strict subset of
  /// 0..indexed_n_-1 and the full-cover iota short-circuit is invalid.
  bool contiguous_ = true;
};

/// The reduce cores access cell state through one of two borrowed refs.
/// The ref decides, at compile time, whether the group may still grow:
///
///  - OwnedCellRef: mutable cell + index, private to the calling task. Data
///    records streaming through the group accumulate via Add and the index
///    lazily Syncs against the grown positions before each probe. Used by
///    the cold path (fresh locals per group, see RunReduceOwned) and the
///    batched job's per-task replay cache.
///  - FrozenCellRef: const cell + const FULLY BUILT index — an immutable
///    store partition that any number of concurrent queries may share.
///    Add is impossible by construction (warm streams carry only features;
///    hitting it is a caller bug and asserts) and SyncIndex is a no-op
///    (materialization builds the index eagerly, so serving never mutates).
struct OwnedCellRef {
  CellData* cell;
  CellGridIndex* index;

  const CellData& data() const { return *cell; }
  const CellGridIndex& idx() const { return *index; }
  /// Owned groups stream records in; nothing is ever tombstoned.
  const std::vector<uint32_t>* DeadRows() const { return nullptr; }
  template <typename X>
  void Add(const X& x) {
    cell->Add(x);
  }
  void SyncIndex() { index->Sync(cell->positions); }
};

struct FrozenCellRef {
  const CellData* cell;
  const CellGridIndex* index;
  /// Row indices tombstoned by the mutable-store layer (nullptr or empty
  /// when the partition is clean). The cores mask these out of their
  /// per-query scratch BEFORE any pair is counted, which is provably
  /// equivalent — for results and for every counter — to the rows being
  /// physically absent (see the tombstone notes in RunPspq/RunEspqSco).
  const std::vector<uint32_t>* dead_rows = nullptr;

  const CellData& data() const { return *cell; }
  const CellGridIndex& idx() const { return *index; }
  const std::vector<uint32_t>* DeadRows() const {
    return (dead_rows != nullptr && !dead_rows->empty()) ? dead_rows : nullptr;
  }
  template <typename X>
  void Add(const X&) {
    // A data record in a frozen group would mean the warm map phase emitted
    // dataset rows — impossible by construction (it maps features only).
    // Mutating shared immutable state is never acceptable; drop the record
    // loudly in debug builds rather than corrupt concurrent readers.
    assert(false && "data record reached a frozen (immutable) cell");
  }
  void SyncIndex() const {}  // index is complete at materialization
};

namespace internal {

/// Per-group scratch for the batched distance kernel (KernelMode::kAuto):
/// surviving candidate indices, their gathered coordinates in SoA form,
/// and the kernel's verdict bytes. One instance lives per reduce group and
/// is reused across that group's feature probes, so the steady state does
/// no allocation — the buffers only grow to the largest probe seen.
struct ProbeScratch {
  std::vector<uint32_t> idx;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<uint8_t> within;

  /// Copies candidate i's coordinates into the SoA lanes (resize first).
  void Gather(const std::vector<geo::Point>& positions) {
    const std::size_t n = idx.size();
    xs.resize(n);
    ys.resize(n);
    within.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      xs[j] = positions[idx[j]].x;
      ys[j] = positions[idx[j]].y;
    }
  }
};

/// The pSPQ/eSPQlen inner loop for one surviving feature: visits either
/// every data object (kLinearScan) or the index candidates (kGridIndex)
/// and applies the identical threshold-skip + distance test. The visit
/// order is irrelevant here — each index is tested at most once per
/// feature against pre-feature scores, and TopKList selection is a strict
/// total order — so the unordered bucket walk is safe.
///
/// `scores` is the query's running best-score array (parallel to the cell
/// arrays, owned by the caller's QueryScratch): this function is the only
/// writer the probe loops have, and the borrowed cell itself stays const.
///
/// KernelMode::kAuto runs the same probe in three passes: gather the
/// indices passing the threshold skip, evaluate their distances through
/// simd::DistanceWithinMask, then apply the hits. This is bit-identical to
/// the one-at-a-time kScalar loop: every index is visited at most once per
/// probe, so the threshold reads `scores[i]` sees at gather time are
/// exactly the values the scalar loop sees at visit time (a probe only
/// writes scores[i] for indices it visits, never twice), the kernel's lane
/// arithmetic matches geo::Distance2 operation-for-operation (simd.h), and
/// `pairs` counts the gathered indices — the same set the scalar loop
/// counts one by one.
template <typename CellRef, typename X>
inline void ScoreFeatureAgainstCell(const SpqJobOptions& options, const X& x,
                                    double w, double radius, double r2,
                                    CellRef& ref, std::vector<double>& scores,
                                    TopKList& lk, uint64_t& pairs,
                                    ProbeScratch& scratch) {
  const CellData& cell = ref.data();
  if (options.kernel_mode == simd::KernelMode::kScalar) {
    auto test = [&](std::size_t i) {
      if (w <= scores[i]) return;  // cannot improve p's score
      ++pairs;
      if (geo::Distance2(cell.positions[i], x.pos) <= r2) {
        scores[i] = w;
        lk.Update(cell.ids[i], w);
      }
    };
    if (options.join_mode == JoinMode::kGridIndex) {
      ref.SyncIndex();
      ref.idx().ForEachCandidate(x.pos, radius, test);
    } else {
      for (std::size_t i = 0; i < cell.size(); ++i) test(i);
    }
    return;
  }
  scratch.idx.clear();
  auto gather = [&](std::size_t i) {
    if (w <= scores[i]) return;  // cannot improve p's score
    scratch.idx.push_back(static_cast<uint32_t>(i));
  };
  if (options.join_mode == JoinMode::kGridIndex) {
    ref.SyncIndex();
    ref.idx().ForEachCandidate(x.pos, radius, gather);
  } else {
    for (std::size_t i = 0; i < cell.size(); ++i) gather(i);
  }
  const std::size_t n = scratch.idx.size();
  if (n == 0) return;
  pairs += n;
  scratch.Gather(cell.positions);
  simd::DistanceWithinMask(scratch.xs.data(), scratch.ys.data(), n, x.pos.x,
                           x.pos.y, r2, scratch.within.data());
  for (std::size_t j = 0; j < n; ++j) {
    if (!scratch.within[j]) continue;
    const uint32_t i = scratch.idx[j];
    scores[i] = w;
    lk.Update(cell.ids[i], w);
  }
}

}  // namespace internal

/// Per-QUERY mutable state of one reduce group, owned by the caller and
/// passed into the cores alongside the (possibly shared, frozen) cell.
/// Reusing one instance across a task's groups keeps the warm loop
/// allocation-free in steady state — every container is assign()ed to the
/// group's population, so capacity persists while values never leak from
/// one query to the next. Never share an instance between threads.
struct QueryScratch {
  /// Running best score per data index (pSPQ/eSPQlen threshold skip).
  std::vector<double> scores;
  /// Per-query report bitmap (eSPQsco Lemma-3 first-hit accounting). Byte
  /// bitmap, not vector<bool>: a proxy per probe costs more than the probe
  /// itself on dense cells.
  std::vector<uint8_t> reported;
  /// SortedCandidates output, reused across probes.
  std::vector<uint32_t> sorted;
  /// Batched distance-kernel lanes.
  internal::ProbeScratch probe;
};

/// The reduce cores below BORROW their cell state through a CellRef
/// (OwnedCellRef or FrozenCellRef, above) and their per-query mutable
/// state through a QueryScratch. The caller owns both lifetimes:
///  - cold path: owned ref over fresh (empty) locals — data objects stream
///    in through `values` and accumulate as before (see RunReduceOwned);
///  - warm/resident path: frozen ref over a pre-populated immutable
///    CellData + fully built index; `values` then carries only the query's
///    features and the cores write exclusively into `scratch`.
/// The scratch arrays are (re)initialized here to the group's population,
/// so callers only provide storage, never reset it.

/// Algorithm 2 (pSPQ): full scan of the cell's features, threshold-pruned.
template <typename CellRef, typename Values, typename EmitFn>
void RunPspq(const Query& query, const SpqJobOptions& options, CellRef& cell,
             QueryScratch& scratch, Values& values,
             mapreduce::Counters& counters, EmitFn&& emit) {
  counters.Increment(counter::kGroups);
  TopKList lk(query.k);
  const double r2 = query.radius * query.radius;
  const std::vector<text::TermId>& q_ids = query.keywords.ids();
  scratch.scores.assign(cell.data().size(), 0.0);
  // Tombstoned rows (mutable store): an infinite running best makes the
  // `w <= scores[i]` gate skip the row BEFORE the pair counter, and a
  // skipped row never enters the top-k list — bit-identical, results and
  // counters both, to the row being physically absent. Jaccard scores are
  // <= 1, so no live feature can ever pass the gate.
  if (const std::vector<uint32_t>* dead = cell.DeadRows()) {
    for (uint32_t i : *dead) {
      scratch.scores[i] = std::numeric_limits<double>::infinity();
    }
  }
  uint64_t examined = 0;
  uint64_t pairs = 0;
  while (values.Next()) {
    const auto& x = values.value();
    if (x.is_data()) {
      cell.Add(x);
      scratch.scores.push_back(0.0);
      continue;
    }
    ++examined;
    const double w =
        text::JaccardSortedBounded(KeywordData(x), KeywordCount(x),
                                   q_ids.data(), q_ids.size(), lk.Threshold());
    if (w > lk.Threshold()) {
      internal::ScoreFeatureAgainstCell(options, x, w, query.radius, r2, cell,
                                        scratch.scores, lk, pairs,
                                        scratch.probe);
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, pairs);
  for (const ResultEntry& e : lk.entries()) emit(e);
}

/// Algorithm 4 (eSPQlen): features by increasing |f.W|; stop at Lemma 2.
template <typename CellRef, typename Values, typename EmitFn>
void RunEspqLen(const Query& query, const SpqJobOptions& options,
                CellRef& cell, QueryScratch& scratch, Values& values,
                mapreduce::Counters& counters, EmitFn&& emit) {
  counters.Increment(counter::kGroups);
  TopKList lk(query.k);
  const double r2 = query.radius * query.radius;
  const std::vector<text::TermId>& q_ids = query.keywords.ids();
  const std::size_t qlen = q_ids.size();
  scratch.scores.assign(cell.data().size(), 0.0);
  // Tombstone masking; see the proof note in RunPspq.
  if (const std::vector<uint32_t>* dead = cell.DeadRows()) {
    for (uint32_t i : *dead) {
      scratch.scores[i] = std::numeric_limits<double>::infinity();
    }
  }
  uint64_t examined = 0;
  uint64_t pairs = 0;
  while (values.Next()) {
    const auto& x = values.value();
    if (x.is_data()) {
      cell.Add(x);
      scratch.scores.push_back(0.0);
      continue;
    }
    const double upper = text::JaccardUpperBound(qlen, KeywordCount(x));
    if (lk.Threshold() >= upper) {
      // Lemma 2: no unseen feature (all at least this long) can beat τ.
      counters.Increment(counter::kEarlyTerminations);
      break;
    }
    ++examined;
    const double w =
        text::JaccardSortedBounded(KeywordData(x), KeywordCount(x),
                                   q_ids.data(), q_ids.size(), lk.Threshold());
    if (w > lk.Threshold()) {
      internal::ScoreFeatureAgainstCell(options, x, w, query.radius, r2, cell,
                                        scratch.scores, lk, pairs,
                                        scratch.probe);
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, pairs);
  for (const ResultEntry& e : lk.entries()) emit(e);
}

/// Algorithm 6 (eSPQsco): features by decreasing score (read off the
/// composite key's `order`); stop after k reports (Lemma 3).
template <typename CellRef, typename Values, typename EmitFn>
void RunEspqSco(const Query& query, const SpqJobOptions& options,
                CellRef& cell_ref, QueryScratch& qscratch, Values& values,
                mapreduce::Counters& counters, EmitFn&& emit) {
  counters.Increment(counter::kGroups);
  // Report bitmap pre-sized to the borrowed cell's current population
  // (warm path); grows with Add on the owned path.
  std::vector<uint8_t>& reported = qscratch.reported;
  reported.assign(cell_ref.data().size(), 0);
  // Tombstoned rows (mutable store) are pre-marked reported: both kernel
  // modes consult `reported[i]` BEFORE counting a pair or emitting, and a
  // pre-marked row never increments reported_count — bit-identical, for
  // results and every counter, to the row being physically absent.
  if (const std::vector<uint32_t>* dead = cell_ref.DeadRows()) {
    for (uint32_t i : *dead) reported[i] = 1;
  }
  std::vector<uint32_t>& probe_scratch = qscratch.sorted;
  internal::ProbeScratch& scratch = qscratch.probe;
  const double r2 = query.radius * query.radius;
  const CellData& cell = cell_ref.data();
  uint32_t reported_count = 0;
  uint64_t examined = 0;
  uint64_t pairs = 0;
  while (values.Next()) {
    const auto& x = values.value();
    if (x.is_data()) {
      cell_ref.Add(x);
      reported.push_back(0);
      continue;
    }
    // The map phase stored -w(f, q) in the secondary key (Algorithm 5).
    const double w = -values.key().order;
    if (w <= 0.0) {
      // Only reachable with the keyword prefilter disabled: the rest of
      // the (descending) order is all zero-score features.
      counters.Increment(counter::kEarlyTerminations);
      break;
    }
    ++examined;
    // Lemma 3 reports in ascending data-index order and stops at k, so the
    // indexed probe must replay candidates in exactly that order.
    bool done = false;
    if (options.kernel_mode == simd::KernelMode::kScalar) {
      auto test = [&](std::size_t i) {
        if (reported[i]) return false;
        ++pairs;
        if (geo::Distance2(cell.positions[i], x.pos) <= r2) {
          // Decreasing-score order makes w the final τ(p) (Lemma 3).
          emit(ResultEntry{cell.ids[i], w});
          reported[i] = 1;
          if (++reported_count == query.k) return true;
        }
        return false;
      };
      if (options.join_mode == JoinMode::kGridIndex) {
        cell_ref.SyncIndex();
        cell_ref.idx().SortedCandidates(x.pos, query.radius, &probe_scratch);
        for (uint32_t i : probe_scratch) {
          if (test(i)) {
            done = true;
            break;
          }
        }
      } else {
        for (std::size_t i = 0; i < cell.size(); ++i) {
          if (test(i)) {
            done = true;
            break;
          }
        }
      }
    } else {
      // Batched: gather the ascending not-yet-reported candidates, run the
      // kernel over all of them speculatively, then replay the verdicts in
      // order. `pairs` counts only the lanes the replay actually walks —
      // the replay stops at the k-th report exactly where the scalar loop
      // stops testing, so lanes evaluated past that point (speculation the
      // batch paid for but Lemma 3 never needed) stay uncounted and the
      // counter matches kScalar bit for bit. The gather-time `reported[i]`
      // reads equal the scalar loop's visit-time reads because a probe
      // sees each index once and only writes reported[] for indices it
      // walks.
      scratch.idx.clear();
      if (options.join_mode == JoinMode::kGridIndex) {
        cell_ref.SyncIndex();
        cell_ref.idx().SortedCandidates(x.pos, query.radius, &probe_scratch);
        for (uint32_t i : probe_scratch) {
          if (!reported[i]) scratch.idx.push_back(i);
        }
      } else {
        for (std::size_t i = 0; i < cell.size(); ++i) {
          if (!reported[i]) scratch.idx.push_back(static_cast<uint32_t>(i));
        }
      }
      const std::size_t n = scratch.idx.size();
      if (n != 0) {
        scratch.Gather(cell.positions);
        simd::DistanceWithinMask(scratch.xs.data(), scratch.ys.data(), n,
                                 x.pos.x, x.pos.y, r2, scratch.within.data());
        for (std::size_t j = 0; j < n; ++j) {
          ++pairs;
          if (!scratch.within[j]) continue;
          const uint32_t i = scratch.idx[j];
          emit(ResultEntry{cell.ids[i], w});
          reported[i] = 1;
          if (++reported_count == query.k) {
            done = true;
            break;
          }
        }
      }
    }
    if (done) {
      counters.Increment(counter::kEarlyTerminations);
      break;
    }
  }
  counters.Increment(counter::kFeaturesExamined, examined);
  counters.Increment(counter::kPairsTested, pairs);
}

/// Dispatch by algorithm, joining against a borrowed cell ref + per-query
/// scratch (see the borrowing contract above). `options` supplies the join
/// mode and the distance-kernel mode; the keyword knobs are map-side /
/// warm-serving concerns the cores never read.
template <typename CellRef, typename Values, typename EmitFn>
void RunReduce(Algorithm algo, const SpqJobOptions& options,
               const Query& query, CellRef& cell, QueryScratch& scratch,
               Values& values, mapreduce::Counters& counters, EmitFn&& emit) {
  // Per-GROUP span, never per feature/pair: disabled tracing costs one
  // relaxed load + branch here — unmeasurable against a group's join work
  // (the bench_store overhead gate holds this line to its contract).
  TRACE_SPAN("reduce.join");
  switch (algo) {
    case Algorithm::kPSPQ:
      RunPspq(query, options, cell, scratch, values, counters, emit);
      return;
    case Algorithm::kESPQLen:
      RunEspqLen(query, options, cell, scratch, values, counters, emit);
      return;
    case Algorithm::kESPQSco:
      RunEspqSco(query, options, cell, scratch, values, counters, emit);
      return;
  }
}

/// Cold-path convenience: one-shot group evaluation over fresh (owned)
/// cell state — the pre-CellStore behavior, used by the single-query
/// reducers where nothing outlives the group.
template <typename Values, typename EmitFn>
void RunReduceOwned(Algorithm algo, const SpqJobOptions& options,
                    const Query& query, Values& values,
                    mapreduce::Counters& counters, EmitFn&& emit) {
  CellData cell;
  CellGridIndex index;
  QueryScratch scratch;
  OwnedCellRef ref{&cell, &index};
  RunReduce(algo, options, query, ref, scratch, values, counters, emit);
}

}  // namespace spq::core::reduce_core

#endif  // SPQ_SPQ_REDUCE_CORE_H_
