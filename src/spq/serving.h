#ifndef SPQ_SPQ_SERVING_H_
#define SPQ_SPQ_SERVING_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/statusor.h"
#include "spq/engine.h"

namespace spq::core {

/// \brief Aggregate measurements of the front door since construction —
/// a thin point-in-time VIEW assembled by stats() from the door's
/// metrics::Counter tallies (the same primitives the process-wide
/// registry serves; the door mirrors every tally into the registry's
/// `spq.serving.*` metrics, so DumpMetrics() sees cross-door totals).
/// `submitted` is DERIVED as admitted + rejected at read time: a Submit()
/// in flight is counted in neither yet, so the decomposition
/// submitted == admitted + rejected holds for every read — there is no
/// torn window where a submission is visible in `submitted` but in
/// neither outcome counter.
struct ServingStats {
  uint64_t submitted = 0;  ///< Submit() calls (== admitted + rejected)
  uint64_t admitted = 0;   ///< accepted into the admission queue
  uint64_t rejected = 0;   ///< bounced with Unavailable (queue full/stopped)
  /// Admitted queries that shared their batch job with at least one other
  /// query — the coalescing the front door exists for.
  uint64_t coalesced = 0;
  uint64_t batches = 0;       ///< warm batch/single jobs dispatched
  uint64_t cold_routed = 0;   ///< oversized-radius queries served solo (cold)
  /// batch_size_hist[s] = number of dispatched warm jobs that served
  /// exactly s queries (s = 1..max_batch; index 0 unused).
  std::vector<uint64_t> batch_size_hist;
};

/// \brief Admission/batching front door over a warm SpqEngine: concurrent
/// Query() callers are coalesced into shared QueryBatch jobs.
///
/// Why: one warm query pays a whole feature-side map/shuffle; a batch of
/// B queries shares that scan (see batch.h), so under concurrent load the
/// per-query cost drops toward the marginal reduce cost. The front door
/// turns independent callers into batches without changing results: a
/// coalesced query returns exactly the entries the same engine.Query()
/// would have produced (batch equivalence is the store_equivalence /
/// batch_equivalence test surface).
///
/// Mechanics (knobs in EngineOptions::serving):
///   - Submit() appends to a bounded admission queue and returns a future.
///     A full (or shut down) queue rejects immediately with Unavailable —
///     backpressure is explicit and counted, never an unbounded buffer.
///   - Executor threads drain the queue: a batch closes when it reaches
///     max_batch queries or the oldest admitted query has waited
///     max_wait_ms, whichever comes first. A lone caller therefore pays
///     at most the wait budget on an idle door (and nothing when the
///     queue is empty and an executor is already free).
///   - A batch is a single-algorithm job: the drained run is grouped by
///     algorithm (a mixed queue closes at the algorithm boundary).
///   - Oversized-radius queries (radius > store build radius) are routed
///     individually through engine.Query()'s loud cold fallback rather
///     than dragging the whole batch onto the cold path.
///   - Shutdown() (and the destructor) stops admission, serves what was
///     already admitted, then joins the executors — an admitted query's
///     future is always fulfilled.
///
/// Thread safety: Submit()/Query()/stats() may be called from any thread.
/// The engine reference must stay valid for the door's lifetime, and the
/// engine must have a store (Submit rejects otherwise). Store swaps
/// (BuildStore/OpenStore) under live traffic are safe — each dispatched
/// job pins the snapshot it starts on (see SpqEngine).
class SpqFrontDoor {
 public:
  /// The door serves `engine` with per-query algorithms chosen at
  /// Submit() time. Spawns ServingOptions::num_executors threads.
  explicit SpqFrontDoor(const SpqEngine& engine);
  ~SpqFrontDoor();

  SpqFrontDoor(const SpqFrontDoor&) = delete;
  SpqFrontDoor& operator=(const SpqFrontDoor&) = delete;

  /// Admits one query; the future resolves to the same result
  /// engine.Query(query, algo) would return (for coalesced queries,
  /// SpqRunInfo carries the SHARED batch job's stats). Rejects with
  /// Unavailable when the queue is at capacity or the door is stopped.
  std::future<StatusOr<SpqResult>> Submit(const core::Query& query,
                                          Algorithm algo);

  /// Blocking convenience: Submit + wait.
  StatusOr<SpqResult> Query(const core::Query& query, Algorithm algo);

  /// Stops admission, serves every already admitted query, joins the
  /// executors. Idempotent.
  void Shutdown();

  /// Point-in-time copy of the counters.
  ServingStats stats() const;

 private:
  struct Pending {
    core::Query query;
    Algorithm algo = Algorithm::kPSPQ;
    std::promise<StatusOr<SpqResult>> promise;
    /// Admission timestamp on the process clock (metrics::Clock — the
    /// queue-wait histogram and the batch-close deadline read the same
    /// source).
    metrics::Clock::time_point admitted_at;
  };

  void ExecutorLoop();
  /// Serves one drained run of same-algorithm queries (executor thread).
  void ServeBatch(std::vector<Pending> batch);

  const SpqEngine& engine_;
  const ServingOptions opts_;

  std::mutex mu_;
  std::condition_variable queue_cv_;  ///< executors wait for work / stop
  std::deque<Pending> queue_;
  bool stopping_ = false;
  /// Serializes concurrent Shutdown() calls (destructor vs explicit).
  std::mutex shutdown_mu_;

  // Counter contract: see ServingStats. Per-door metrics::Counter tallies
  // (stats() stays exact per door even when several doors share the
  // process); every increment is mirrored into the global registry's
  // spq.serving.* metrics. There is no submitted_ tally — stats()
  // derives it, which is what closes the torn-read window.
  // batch_size_hist_ is sized once in the constructor (max_batch + 1
  // slots), so executors index it without locks.
  metrics::Counter admitted_;
  metrics::Counter rejected_;
  metrics::Counter coalesced_;
  metrics::Counter batches_;
  metrics::Counter cold_routed_;
  std::vector<metrics::Counter> batch_size_hist_;

  std::vector<std::thread> executors_;
};

}  // namespace spq::core

#endif  // SPQ_SPQ_SERVING_H_
