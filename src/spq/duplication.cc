#include "spq/duplication.h"

#include <algorithm>
#include <cmath>

namespace spq::core {

CellAreas ComputeCellAreas(double r, double a) {
  CellAreas areas;
  // Section 6.2 formulas, Figure 3: valid for 0 <= r <= a/2.
  areas.a1 = M_PI * r * r;
  areas.a2 = (4.0 - M_PI) * r * r;
  areas.a3 = 4.0 * (a - 2.0 * r) * r;
  areas.a4 = (a - 2.0 * r) * (a - 2.0 * r);
  return areas;
}

double AnalyticDuplicationFactor(double r, double a) {
  return M_PI * r * r / (a * a) + 4.0 * r / a + 1.0;
}

double MaxDuplicationFactor() { return 3.0 + M_PI / 4.0; }

double ReducerCostModel(double r, double a) {
  return AnalyticDuplicationFactor(r, a) * a * a * a * a;
}

uint32_t AdviseGridSize(double radius, double extent, uint32_t max_per_side) {
  if (radius <= 0.0 || extent <= 0.0) return max_per_side;
  // a = extent / G >= 2r  =>  G <= extent / (2r).
  const double g = std::floor(extent / (2.0 * radius));
  if (g < 1.0) return 1;
  return static_cast<uint32_t>(
      std::min<double>(g, static_cast<double>(max_per_side)));
}

}  // namespace spq::core
