#ifndef SPQ_SPQ_BATCH_H_
#define SPQ_SPQ_BATCH_H_

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "mapreduce/codec.h"
#include "mapreduce/job.h"
#include "spq/algorithms.h"
#include "spq/shuffle_types.h"
#include "spq/types.h"

namespace spq::core {

/// \brief Extension beyond the paper: evaluating a *batch* of queries in a
/// single MapReduce job.
///
/// The paper runs one job per query; under a query stream that pays the
/// full input scan and job scheduling once per query. The batched job
/// extends the composite key with a query index — (cell, query, order) —
/// so one scan of O ∪ F feeds every query's reduce groups: the partitioner
/// still routes by cell (one reduce task per cell, as in the paper), the
/// grouping comparator splits each cell's stream by query, and each group
/// runs the chosen algorithm's unchanged reduce core with per-query early
/// termination.
///
/// The map-side keyword prefilter and Lemma-1 duplication apply per query
/// (each query has its own radius and keywords); shuffled bytes therefore
/// still grow with the batch size — the saving is the shared input scan
/// and job overhead, which `bench_batch` quantifies.

/// Composite key of the batched job.
struct BatchCellKey {
  geo::CellId cell = 0;
  uint32_t query = 0;
  double order = 0.0;
};

inline bool BatchKeySortLess(const BatchCellKey& a, const BatchCellKey& b) {
  if (a.cell != b.cell) return a.cell < b.cell;
  if (a.query != b.query) return a.query < b.query;
  return a.order < b.order;
}

inline bool BatchKeyGroupEqual(const BatchCellKey& a, const BatchCellKey& b) {
  return a.cell == b.cell && a.query == b.query;
}

inline uint32_t BatchPartitioner(const BatchCellKey& key,
                                 uint32_t num_partitions) {
  return key.cell % num_partitions;
}

/// One output row: which query the entry belongs to.
struct BatchResultEntry {
  uint32_t query = 0;
  ResultEntry entry;
};

/// Builds the batched job over `queries` (all evaluated with `algo` on the
/// shared `grid`). Queries may differ in k, radius and keywords.
mapreduce::JobSpec<ShuffleObject, BatchCellKey, ShuffleObject,
                   BatchResultEntry>
MakeBatchSpqJobSpec(Algorithm algo, const std::vector<Query>& queries,
                    const geo::UniformGrid& grid, SpqJobOptions options = {});

}  // namespace spq::core

namespace spq::mapreduce {

template <>
struct Codec<core::BatchCellKey> {
  static void Encode(const core::BatchCellKey& k, Buffer& buf) {
    buf.PutUint32(k.cell);
    buf.PutVarint(k.query);
    buf.PutDouble(k.order);
  }
  static Status Decode(BufferReader& reader, core::BatchCellKey* out) {
    SPQ_RETURN_NOT_OK(reader.GetUint32(&out->cell));
    uint64_t q;
    SPQ_RETURN_NOT_OK(reader.GetVarint(&q));
    out->query = static_cast<uint32_t>(q);
    return reader.GetDouble(&out->order);
  }
};

/// Flat-shuffle radix structure of the batched job: the bucket packs
/// (cell, query index) into one u64 — both CellId and the query index are
/// 32-bit — so bucket order equals (cell, query) order, bucket equality
/// equals BatchKeyGroupEqual, and the order key covers the remaining
/// secondary component exactly as in the single-query job.
template <>
struct FlatShuffleTraits<core::BatchCellKey, core::ShuffleObject> {
  static constexpr bool kEnabled = true;
  static constexpr uint32_t kPayloadStride = core::kShufflePayloadStride;
  using View = core::ShuffleObjectView;

  static uint64_t Bucket(const core::BatchCellKey& k) {
    return (static_cast<uint64_t>(k.cell) << 32) | k.query;
  }
  static uint64_t OrderKey(const core::BatchCellKey& k) {
    return core::OrderedDoubleKey(k.order);
  }
  static core::BatchCellKey MakeKey(uint64_t bucket, uint64_t order_key) {
    return core::BatchCellKey{static_cast<geo::CellId>(bucket >> 32),
                              static_cast<uint32_t>(bucket & 0xffffffffull),
                              core::OrderedKeyToDouble(order_key)};
  }
  static uint64_t PoolBytes(const core::ShuffleObject& v) {
    return core::ShufflePoolBytes(v);
  }
  static void EncodePayload(const core::ShuffleObject& v, uint8_t* dst,
                            uint8_t* pool, uint64_t* pool_pos) {
    core::EncodeShufflePayload(v, dst, pool, pool_pos);
  }
  static View MakeView(const uint8_t* payload, const uint8_t* span) {
    return core::MakeShuffleView(payload, span);
  }
};

}  // namespace spq::mapreduce

#endif  // SPQ_SPQ_BATCH_H_
