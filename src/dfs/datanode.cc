#include "dfs/datanode.h"

namespace spq::dfs {

Status DataNode::Put(BlockId block, std::vector<uint8_t> data) {
  if (!alive_) {
    return Status::IOError("datanode " + std::to_string(id_) + " is down");
  }
  if (blocks_.count(block) > 0) {
    return Status::InvalidArgument("block " + std::to_string(block) +
                                   " already stored on node " +
                                   std::to_string(id_));
  }
  stored_bytes_ += data.size();
  blocks_.emplace(block, std::move(data));
  return Status::OK();
}

StatusOr<const std::vector<uint8_t>*> DataNode::Get(BlockId block) const {
  if (!alive_) {
    return Status::IOError("datanode " + std::to_string(id_) + " is down");
  }
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(block) +
                            " not on node " + std::to_string(id_));
  }
  return &it->second;
}

Status DataNode::CorruptReplica(BlockId block, uint64_t byte_index) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(block) +
                            " not on node " + std::to_string(id_));
  }
  if (it->second.empty()) {
    return Status::InvalidArgument("cannot corrupt an empty block");
  }
  it->second[byte_index % it->second.size()] ^= 0x01;
  return Status::OK();
}

}  // namespace spq::dfs
