#include "dfs/mini_dfs.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/hash.h"
#include "common/logging.h"

namespace spq::dfs {

namespace {

/// One hash per (block, replica, direction) naming a storage I/O site for
/// StorageFaultAt. Write faults are permanent per replica (the bad bytes
/// sit on the node); read faults are also deterministic per replica, so
/// failover — not blind retry — is the recovery mechanism, exactly like a
/// replica on a bad disk.
uint64_t ReplicaSite(BlockId block, NodeId node, bool write) {
  return HashCombine(Mix64(block), Mix64((static_cast<uint64_t>(node) << 1) |
                                         (write ? 1u : 0u)));
}

}  // namespace

MiniDfs::MiniDfs(DfsOptions options)
    : options_(options), rng_(options.seed) {
  if (options_.num_datanodes == 0) options_.num_datanodes = 1;
  if (options_.block_size == 0) options_.block_size = 1;
  if (options_.replication == 0) options_.replication = 1;
  options_.replication =
      std::min(options_.replication, options_.num_datanodes);
  nodes_.reserve(options_.num_datanodes);
  for (NodeId id = 0; id < options_.num_datanodes; ++id) {
    nodes_.emplace_back(id);
  }
}

uint32_t MiniDfs::alive_datanodes() const {
  uint32_t alive = 0;
  for (const auto& node : nodes_) {
    if (node.alive()) ++alive;
  }
  return alive;
}

StatusOr<std::vector<NodeId>> MiniDfs::PlaceReplicas() {
  // Candidates: live nodes, least loaded first; random tie-break via a
  // per-candidate random salt sorted alongside.
  struct Candidate {
    uint64_t load;
    uint64_t salt;
    NodeId id;
  };
  std::vector<Candidate> candidates;
  for (const auto& node : nodes_) {
    if (node.alive()) {
      candidates.push_back({node.stored_bytes(), rng_.NextUint64(), node.id()});
    }
  }
  if (candidates.size() < options_.replication) {
    return Status::IOError("not enough live datanodes for replication " +
                           std::to_string(options_.replication));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.load != b.load) return a.load < b.load;
              return a.salt < b.salt;
            });
  std::vector<NodeId> replicas;
  for (uint32_t i = 0; i < options_.replication; ++i) {
    replicas.push_back(candidates[i].id);
  }
  return replicas;
}

Status MiniDfs::WriteFile(const std::string& name,
                          const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(name) > 0) {
    return Status::InvalidArgument("file exists (HDFS is write-once): " +
                                   name);
  }
  FileMetadata meta;
  meta.size = data.size();
  // Split into blocks and replicate each; an empty file has one empty
  // block so that readers and split builders need no special case.
  std::size_t offset = 0;
  do {
    const std::size_t len = std::min<std::size_t>(
        options_.block_size, data.size() - offset);
    SPQ_ASSIGN_OR_RETURN(std::vector<NodeId> replicas, PlaceReplicas());
    BlockLocation location;
    location.block = next_block_++;
    location.length = len;
    location.replicas = replicas;
    std::vector<uint8_t> bytes(data.begin() + offset,
                               data.begin() + offset + len);
    location.crc32c = Crc32c(bytes);
    for (NodeId node : replicas) {
      // Injected write faults hit individual replicas: the bad bytes land
      // on the node and stay there, to be caught by the read-side verify.
      const uint64_t site = ReplicaSite(location.block, node, /*write=*/true);
      const auto kind = mapreduce::StorageFaultAt(options_.faults, site);
      if (kind != mapreduce::StorageFaultKind::kNone) {
        std::vector<uint8_t> faulty = bytes;
        if (mapreduce::CorruptImageForWrite(kind, site, &faulty)) {
          faulty_replica_writes_.fetch_add(1, std::memory_order_relaxed);
          SPQ_RETURN_NOT_OK(nodes_[node].Put(location.block,
                                             std::move(faulty)));
          continue;
        }
      }
      SPQ_RETURN_NOT_OK(nodes_[node].Put(location.block, bytes));
    }
    meta.blocks.push_back(std::move(location));
    offset += len;
  } while (offset < data.size());
  files_.emplace(name, std::move(meta));
  return Status::OK();
}

StatusOr<FileMetadata> MiniDfs::GetMetadataLocked(
    const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return it->second;
}

StatusOr<FileMetadata> MiniDfs::GetMetadata(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return GetMetadataLocked(name);
}

StatusOr<std::vector<uint8_t>> MiniDfs::ReadBlockLocked(
    const std::string& name, std::size_t block_index) const {
  SPQ_ASSIGN_OR_RETURN(FileMetadata meta, GetMetadataLocked(name));
  if (block_index >= meta.blocks.size()) {
    return Status::OutOfRange("block index " + std::to_string(block_index) +
                              " >= " + std::to_string(meta.blocks.size()));
  }
  const BlockLocation& location = meta.blocks[block_index];
  // Replica failover: try each location until one serves the block AND its
  // bytes verify against the write-time length + CRC. A replica that fails
  // verification (torn/corrupted on the node, or an injected read fault)
  // is counted and skipped — corrupt bytes are never returned.
  Status last = Status::IOError("block has no replicas");
  for (NodeId node : location.replicas) {
    auto data = nodes_[node].Get(location.block);
    if (!data.ok()) {
      last = data.status();
      continue;
    }
    std::vector<uint8_t> bytes = **data;
    const uint64_t site = ReplicaSite(location.block, node, /*write=*/false);
    const auto kind = mapreduce::StorageFaultAt(options_.faults, site);
    if (kind == mapreduce::StorageFaultKind::kShortRead && !bytes.empty()) {
      bytes.resize(Mix64(site) % bytes.size());
    } else if (kind != mapreduce::StorageFaultKind::kNone) {
      mapreduce::CorruptImageForWrite(kind, site, &bytes);
    }
    if (bytes.size() != location.length ||
        Crc32c(bytes) != location.crc32c) {
      corrupt_replicas_detected_.fetch_add(1, std::memory_order_relaxed);
      SPQ_LOG_WARN << "block " << location.block << " replica on node "
                   << node << " failed checksum verification ("
                   << bytes.size() << "/" << location.length
                   << " bytes); failing over";
      last = Status::IOError("replica checksum mismatch for block " +
                             std::to_string(location.block));
      continue;
    }
    return bytes;
  }
  return Status::IOError("all replicas unavailable for block " +
                         std::to_string(location.block) + ": " +
                         last.ToString());
}

StatusOr<std::vector<uint8_t>> MiniDfs::ReadBlock(
    const std::string& name, std::size_t block_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadBlockLocked(name, block_index);
}

StatusOr<std::vector<uint8_t>> MiniDfs::ReadFile(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  SPQ_ASSIGN_OR_RETURN(FileMetadata meta, GetMetadataLocked(name));
  std::vector<uint8_t> data;
  data.reserve(meta.size);
  for (std::size_t i = 0; i < meta.blocks.size(); ++i) {
    SPQ_ASSIGN_OR_RETURN(std::vector<uint8_t> block,
                         ReadBlockLocked(name, i));
    data.insert(data.end(), block.begin(), block.end());
  }
  return data;
}

bool MiniDfs::FileExists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

std::vector<std::string> MiniDfs::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, meta] : files_) names.push_back(name);
  return names;
}

Status MiniDfs::DeleteFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  // Note: block replicas stay on the nodes (like lazily-reclaimed HDFS
  // blocks); the metadata removal makes them unreachable.
  files_.erase(it);
  return Status::OK();
}

}  // namespace spq::dfs
