#ifndef SPQ_DFS_BLOCK_H_
#define SPQ_DFS_BLOCK_H_

#include <cstdint>
#include <vector>

namespace spq::dfs {

/// Identifier of a stored block, unique within a MiniDfs cluster.
using BlockId = uint64_t;

/// Identifier of a DataNode within a MiniDfs cluster: 0..num_datanodes-1.
using NodeId = uint32_t;

/// \brief Where one block of a file lives (HDFS block metadata):
/// the block id, its byte length, and the replica nodes holding it.
struct BlockLocation {
  BlockId block = 0;
  uint64_t length = 0;
  std::vector<NodeId> replicas;
};

/// \brief NameNode-side description of a stored file.
struct FileMetadata {
  uint64_t size = 0;
  std::vector<BlockLocation> blocks;
};

}  // namespace spq::dfs

#endif  // SPQ_DFS_BLOCK_H_
