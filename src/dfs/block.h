#ifndef SPQ_DFS_BLOCK_H_
#define SPQ_DFS_BLOCK_H_

#include <cstdint>
#include <vector>

namespace spq::dfs {

/// Identifier of a stored block, unique within a MiniDfs cluster.
using BlockId = uint64_t;

/// Identifier of a DataNode within a MiniDfs cluster: 0..num_datanodes-1.
using NodeId = uint32_t;

/// \brief Where one block of a file lives (HDFS block metadata):
/// the block id, its byte length, its content checksum, and the replica
/// nodes holding it.
struct BlockLocation {
  BlockId block = 0;
  uint64_t length = 0;
  /// CRC-32C of the block payload, recorded at write time (HDFS keeps the
  /// same per-chunk checksums in .meta files). Reads verify length + CRC
  /// per replica and fail over on mismatch, so a corrupted replica is
  /// detected — never served.
  uint32_t crc32c = 0;
  std::vector<NodeId> replicas;
};

/// \brief NameNode-side description of a stored file.
struct FileMetadata {
  uint64_t size = 0;
  std::vector<BlockLocation> blocks;
};

}  // namespace spq::dfs

#endif  // SPQ_DFS_BLOCK_H_
