#ifndef SPQ_DFS_DATANODE_H_
#define SPQ_DFS_DATANODE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "dfs/block.h"

namespace spq::dfs {

/// \brief One simulated storage node: an in-memory block store that can be
/// killed and restarted to exercise replica failover.
///
/// A killed node keeps its blocks (the disk survives) but refuses reads
/// and writes until Restart() — the HDFS behaviour a client sees when a
/// DataNode is unreachable.
class DataNode {
 public:
  explicit DataNode(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }
  bool alive() const { return alive_; }

  /// Simulates node failure: subsequent Put/Get return IOError.
  void Kill() { alive_ = false; }
  /// Brings the node back with its blocks intact.
  void Restart() { alive_ = true; }

  /// Stores a replica of `block`.
  Status Put(BlockId block, std::vector<uint8_t> data);

  /// Reads a replica. IOError when dead, NotFound when never stored.
  StatusOr<const std::vector<uint8_t>*> Get(BlockId block) const;

  /// Test hook simulating silent media corruption: flips one bit of the
  /// stored replica at `byte_index` (modulo the block length). NotFound
  /// when the block is not held; InvalidArgument for empty blocks. The
  /// node stays alive — exactly the failure replica-read checksums exist
  /// to catch.
  Status CorruptReplica(BlockId block, uint64_t byte_index);

  bool Holds(BlockId block) const { return blocks_.count(block) > 0; }
  std::size_t num_blocks() const { return blocks_.size(); }
  /// Total bytes stored on this node.
  uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  NodeId id_;
  bool alive_ = true;
  uint64_t stored_bytes_ = 0;
  std::unordered_map<BlockId, std::vector<uint8_t>> blocks_;
};

}  // namespace spq::dfs

#endif  // SPQ_DFS_DATANODE_H_
