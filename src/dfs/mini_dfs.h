#ifndef SPQ_DFS_MINI_DFS_H_
#define SPQ_DFS_MINI_DFS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "dfs/block.h"
#include "dfs/datanode.h"
#include "mapreduce/fault.h"

namespace spq::dfs {

/// \brief Cluster configuration (the HDFS knobs of Section 2.1 / 7.1:
/// block size and replication factor 3 in the paper's deployment).
struct DfsOptions {
  uint32_t num_datanodes = 16;
  uint64_t block_size = 4 << 20;  // 4 MiB (scaled down from HDFS's 128 MB)
  uint32_t replication = 3;
  uint64_t seed = 1;  // replica placement randomness
  /// Deterministic storage fault injection (FaultSpec::storage_fault_prob):
  /// per-replica torn/corrupt writes and short/corrupt reads, keyed by
  /// (block, node, direction). Every injected fault is detected by the
  /// per-block CRC-32C + length check and handled by replica failover; a
  /// block is unreadable only when every replica is faulted.
  mapreduce::FaultSpec faults;
};

/// \brief A single-process simulation of HDFS: files are split into
/// blocks, blocks are replicated onto `replication` distinct DataNodes,
/// and a NameNode-style metadata map tracks locations.
///
/// Write-once/read-many semantics like HDFS: files cannot be overwritten
/// or appended. Reads fail over between replicas, so data survives up to
/// replication-1 node failures. Used by the io module to host datasets and
/// by tests to exercise the fault-tolerance story the paper's platform
/// provides.
///
/// Thread safety: the file API (WriteFile/ReadFile/ReadBlock/GetMetadata/
/// FileExists/ListFiles/DeleteFile) is guarded by one coarse mutex, so
/// concurrent lazy cell restores may race with a Checkpoint writing new
/// files. This serializes I/O — acceptable for a single-process simulation;
/// a real DFS client would stripe reads. The `datanode()` accessors hand
/// out raw node references for test-side fault injection (kill/corrupt)
/// and are NOT covered by the lock: tests mutate nodes only while no
/// concurrent file I/O is in flight.
class MiniDfs {
 public:
  explicit MiniDfs(DfsOptions options = {});

  MiniDfs(const MiniDfs&) = delete;
  MiniDfs& operator=(const MiniDfs&) = delete;

  /// Writes a file (write-once). InvalidArgument if it exists, IOError if
  /// fewer than `replication` nodes are alive.
  Status WriteFile(const std::string& name, const std::vector<uint8_t>& data);

  /// Reads a whole file back, failing over between replicas per block.
  /// NotFound for unknown files, IOError when some block has no live
  /// replica.
  StatusOr<std::vector<uint8_t>> ReadFile(const std::string& name) const;

  /// Reads one block of a file (the unit a map task consumes).
  StatusOr<std::vector<uint8_t>> ReadBlock(const std::string& name,
                                           std::size_t block_index) const;

  /// File metadata (block boundaries + replica locations), as a MapReduce
  /// scheduler would query it to build locality-aware splits.
  StatusOr<FileMetadata> GetMetadata(const std::string& name) const;

  bool FileExists(const std::string& name) const;
  std::vector<std::string> ListFiles() const;
  Status DeleteFile(const std::string& name);

  uint32_t num_datanodes() const {
    return static_cast<uint32_t>(nodes_.size());
  }
  DataNode& datanode(NodeId id) { return nodes_[id]; }
  const DataNode& datanode(NodeId id) const { return nodes_[id]; }
  const DfsOptions& options() const { return options_; }

  /// Count of nodes currently alive.
  uint32_t alive_datanodes() const;

  /// Replica reads that failed length/CRC verification (injected faults,
  /// DataNode::CorruptReplica, torn replica writes). Each detection is a
  /// replica failover, not served garbage. Atomic: reads may run from
  /// parallel reduce tasks (cell-granular store recovery).
  uint64_t corrupt_replicas_detected() const {
    return corrupt_replicas_detected_.load(std::memory_order_relaxed);
  }
  /// Replica writes mutated by injected storage faults (torn or
  /// bit-flipped before reaching the node).
  uint64_t faulty_replica_writes() const {
    return faulty_replica_writes_.load(std::memory_order_relaxed);
  }

 private:
  /// Picks `replication` distinct live nodes, least-loaded first with a
  /// random tie-break (a simplification of HDFS placement). Caller holds
  /// `mu_`.
  StatusOr<std::vector<NodeId>> PlaceReplicas();

  /// Unlocked internals — caller holds `mu_`.
  StatusOr<FileMetadata> GetMetadataLocked(const std::string& name) const;
  StatusOr<std::vector<uint8_t>> ReadBlockLocked(
      const std::string& name, std::size_t block_index) const;

  DfsOptions options_;
  /// Guards files_, next_block_, rng_, and node block maps reached through
  /// the file API. Counters below stay atomic so accessors need no lock.
  mutable std::mutex mu_;
  std::vector<DataNode> nodes_;
  std::map<std::string, FileMetadata> files_;  // the "NameNode"
  BlockId next_block_ = 1;
  mutable Rng rng_;
  mutable std::atomic<uint64_t> corrupt_replicas_detected_{0};
  std::atomic<uint64_t> faulty_replica_writes_{0};
};

}  // namespace spq::dfs

#endif  // SPQ_DFS_MINI_DFS_H_
