#ifndef SPQ_GEO_RECT_H_
#define SPQ_GEO_RECT_H_

#include <algorithm>

#include "geo/point.h"

namespace spq::geo {

/// \brief Axis-aligned rectangle [min_x, max_x] × [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool operator==(const Rect& other) const {
    return min_x == other.min_x && min_y == other.min_y &&
           max_x == other.max_x && max_y == other.max_y;
  }
};

/// Squared MINDIST between a point and a rectangle; 0 when the point lies
/// inside. This is the MINDIST(f, C_i) of Lemma 1 (squared form).
inline double MinDist2(const Point& p, const Rect& r) {
  const double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  const double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return dx * dx + dy * dy;
}

/// MINDIST between a point and a rectangle.
inline double MinDist(const Point& p, const Rect& r) {
  return std::sqrt(MinDist2(p, r));
}

}  // namespace spq::geo

#endif  // SPQ_GEO_RECT_H_
