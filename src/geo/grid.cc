#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace spq::geo {

StatusOr<UniformGrid> UniformGrid::Make(const Rect& bounds, uint32_t nx,
                                        uint32_t ny) {
  if (nx == 0 || ny == 0) {
    return Status::InvalidArgument("grid dimensions must be >= 1");
  }
  if (!(bounds.max_x > bounds.min_x) || !(bounds.max_y > bounds.min_y)) {
    return Status::InvalidArgument("grid bounds must be non-degenerate");
  }
  // Guard against CellId overflow on absurd grids.
  if (static_cast<uint64_t>(nx) * ny > (1ULL << 31)) {
    return Status::InvalidArgument("grid has too many cells");
  }
  return UniformGrid(bounds, nx, ny);
}

UniformGrid::UniformGrid(const Rect& bounds, uint32_t nx, uint32_t ny)
    : bounds_(bounds),
      nx_(nx),
      ny_(ny),
      cell_w_(bounds.width() / nx),
      cell_h_(bounds.height() / ny) {}

CellId UniformGrid::CellOf(const Point& p) const {
  // floor() then clamp: points on the max boundary (or outside the bounds)
  // land in the nearest edge cell, so every object has exactly one cell.
  auto clamp_idx = [](double v, uint32_t n) {
    if (v < 0.0) return 0u;
    uint32_t i = static_cast<uint32_t>(v);
    return std::min(i, n - 1);
  };
  const uint32_t col = clamp_idx((p.x - bounds_.min_x) / cell_w_, nx_);
  const uint32_t row = clamp_idx((p.y - bounds_.min_y) / cell_h_, ny_);
  return CellAt(col, row);
}

Rect UniformGrid::CellRect(CellId id) const {
  const uint32_t col = ColOf(id);
  const uint32_t row = RowOf(id);
  Rect r;
  r.min_x = bounds_.min_x + col * cell_w_;
  r.min_y = bounds_.min_y + row * cell_h_;
  r.max_x = (col + 1 == nx_) ? bounds_.max_x : bounds_.min_x + (col + 1) * cell_w_;
  r.max_y = (row + 1 == ny_) ? bounds_.max_y : bounds_.min_y + (row + 1) * cell_h_;
  return r;
}

void UniformGrid::CellsWithinDist(const Point& p, double r,
                                  std::vector<CellId>& out) const {
  out.clear();
  if (r < 0.0) return;
  const CellId own = CellOf(p);
  // Candidate window: cells whose rect could be within r. Expand the point
  // by r in each direction and convert to index ranges.
  auto to_col = [this](double x) {
    double v = (x - bounds_.min_x) / cell_w_;
    if (v < 0.0) return 0u;
    return std::min(static_cast<uint32_t>(v), nx_ - 1);
  };
  auto to_row = [this](double y) {
    double v = (y - bounds_.min_y) / cell_h_;
    if (v < 0.0) return 0u;
    return std::min(static_cast<uint32_t>(v), ny_ - 1);
  };
  // Window widened by one cell on each side: a point exactly on a cell
  // border has MINDIST 0 to the neighbor, but floor() already assigns the
  // border coordinate to the far cell. The exact MinDist2 test below
  // filters out anything the widening over-includes.
  uint32_t col_lo = to_col(p.x - r);
  uint32_t col_hi = to_col(p.x + r);
  uint32_t row_lo = to_row(p.y - r);
  uint32_t row_hi = to_row(p.y + r);
  if (col_lo > 0) --col_lo;
  if (col_hi + 1 < nx_) ++col_hi;
  if (row_lo > 0) --row_lo;
  if (row_hi + 1 < ny_) ++row_hi;
  const double r2 = r * r;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      const CellId id = CellAt(col, row);
      if (id == own) continue;
      if (MinDist2(p, CellRect(id)) <= r2) out.push_back(id);
    }
  }
}

}  // namespace spq::geo
