#ifndef SPQ_GEO_GRID_H_
#define SPQ_GEO_GRID_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace spq::geo {

/// Row-major cell index within a UniformGrid: 0 .. nx*ny-1.
using CellId = uint32_t;

/// \brief Regular uniform grid over a bounding rectangle (Section 4.1).
///
/// The grid is defined at query time, after the radius r is known. Every
/// object maps to exactly one enclosing cell (points outside the bounds are
/// clamped into the nearest boundary cell, so partitioning is total).
/// `CellsWithinDist` enumerates the *other* cells within distance r of a
/// point — the set of cells a feature object must be duplicated into per
/// Lemma 1.
class UniformGrid {
 public:
  /// Creates an nx × ny grid over `bounds`. Both dimensions must be >= 1
  /// and the bounds non-degenerate.
  static StatusOr<UniformGrid> Make(const Rect& bounds, uint32_t nx,
                                    uint32_t ny);

  uint32_t nx() const { return nx_; }
  uint32_t ny() const { return ny_; }
  uint32_t num_cells() const { return nx_ * ny_; }
  const Rect& bounds() const { return bounds_; }

  /// Cell-edge lengths. In the paper's analysis the grid is square with
  /// edge a; we support rectangular cells and expose both.
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  /// The enclosing cell of p (clamped into range).
  CellId CellOf(const Point& p) const;

  /// The rectangle of cell `id`.
  Rect CellRect(CellId id) const;

  /// Column/row of cell `id`.
  uint32_t ColOf(CellId id) const { return id % nx_; }
  uint32_t RowOf(CellId id) const { return id / nx_; }
  CellId CellAt(uint32_t col, uint32_t row) const { return row * nx_ + col; }

  /// All cells c != CellOf(p) with MINDIST(p, c) <= r, i.e. the duplication
  /// targets of a feature object at p (Lemma 1). r must be >= 0.
  std::vector<CellId> CellsWithinDist(const Point& p, double r) const {
    std::vector<CellId> out;
    CellsWithinDist(p, r, out);
    return out;
  }

  /// Scratch variant: clears and refills `out` (same contents as the
  /// returning overload). The mappers call this once per (feature, query)
  /// in the shuffle hot loop — reusing the caller's capacity removes a
  /// per-call allocation that multiplies by the batch size.
  void CellsWithinDist(const Point& p, double r,
                       std::vector<CellId>& out) const;

 private:
  UniformGrid(const Rect& bounds, uint32_t nx, uint32_t ny);

  Rect bounds_;
  uint32_t nx_;
  uint32_t ny_;
  double cell_w_;
  double cell_h_;
};

}  // namespace spq::geo

#endif  // SPQ_GEO_GRID_H_
