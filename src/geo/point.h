#ifndef SPQ_GEO_POINT_H_
#define SPQ_GEO_POINT_H_

#include <cmath>

namespace spq::geo {

/// \brief A 2-D point. Plain data carrier (Google-style struct).
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

/// Squared Euclidean distance — the cheap form used in range tests
/// (d(p,f) <= r  ⇔  Distance2(p,f) <= r*r, avoiding the sqrt per pair).
inline double Distance2(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(Distance2(a, b));
}

}  // namespace spq::geo

#endif  // SPQ_GEO_POINT_H_
