#include "text/tokenizer.h"

#include <cctype>

namespace spq::text {

std::vector<std::string> Tokenize(const std::string& input) {
  std::vector<std::string> tokens;
  std::string current;
  for (unsigned char c : input) {
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

KeywordSet TokenizeToSet(const std::string& input, Vocabulary& vocab) {
  std::vector<TermId> ids;
  for (const auto& token : Tokenize(input)) {
    ids.push_back(vocab.Intern(token));
  }
  return KeywordSet(std::move(ids));
}

KeywordSet TokenizeToSetReadOnly(const std::string& input,
                                 const Vocabulary& vocab) {
  std::vector<TermId> ids;
  for (const auto& token : Tokenize(input)) {
    auto id = vocab.Lookup(token);
    if (id.ok()) ids.push_back(*id);
  }
  return KeywordSet(std::move(ids));
}

}  // namespace spq::text
