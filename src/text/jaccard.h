#ifndef SPQ_TEXT_JACCARD_H_
#define SPQ_TEXT_JACCARD_H_

#include "text/keyword_set.h"

namespace spq::text {

/// Jaccard similarity |A ∩ B| / |A ∪ B| in [0, 1]; 0 when both are empty.
/// This is the non-spatial score w(f, q) of Definition 1.
double Jaccard(const KeywordSet& a, const KeywordSet& b);

/// \brief Upper bound w̄(f, q) of the Jaccard score reachable by a feature
/// with `feature_len` keywords against a query with `query_len` keywords
/// (Eq. 1 of the paper):
///
///   w̄ = 1                       if |f.W| < |q.W|
///   w̄ = |q.W| / |f.W|           if |f.W| ≥ |q.W|
///
/// Monotonically non-increasing in feature_len once feature_len ≥ query_len,
/// which is what makes the eSPQlen early-termination test (Lemma 2) sound
/// under the increasing-keyword-length access order.
double JaccardUpperBound(std::size_t query_len, std::size_t feature_len);

}  // namespace spq::text

#endif  // SPQ_TEXT_JACCARD_H_
