#include "text/vocabulary.h"

#include <fstream>

namespace spq::text {

TermId Vocabulary::Intern(const std::string& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

StatusOr<TermId> Vocabulary::Lookup(const std::string& term) const {
  auto it = index_.find(term);
  if (it == index_.end()) {
    return Status::NotFound("term not in vocabulary: " + term);
  }
  return it->second;
}

StatusOr<std::string> Vocabulary::Term(TermId id) const {
  if (id >= terms_.size()) {
    return Status::OutOfRange("term id " + std::to_string(id) +
                              " >= vocabulary size " +
                              std::to_string(terms_.size()));
  }
  return terms_[id];
}

void Vocabulary::FillSynthetic(std::size_t n) {
  terms_.reserve(terms_.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    Intern("t" + std::to_string(i));
  }
}

Status Vocabulary::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (const auto& term : terms_) out << term << '\n';
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Vocabulary::Load(const std::string& path) {
  if (!empty()) {
    return Status::InvalidArgument("Load requires an empty vocabulary");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": blank line in vocabulary file");
    }
    const std::size_t before = terms_.size();
    Intern(line);
    if (terms_.size() == before) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": duplicate term '" + line + "'");
    }
  }
  return Status::OK();
}

}  // namespace spq::text
