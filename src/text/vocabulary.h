#ifndef SPQ_TEXT_VOCABULARY_H_
#define SPQ_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"

namespace spq::text {

/// Integer handle of an interned term. Dense: 0..size()-1.
using TermId = uint32_t;

/// \brief Bidirectional string ⇄ TermId dictionary.
///
/// Keyword sets in the engine store TermIds, never strings: Jaccard
/// computations reduce to sorted-integer merges and shuffle records shrink
/// to varints. Matches the paper's notion of a per-dataset dictionary
/// (88,706 terms for Twitter, 34,716 for Flickr).
///
/// Not thread-safe for interning; concurrent read-only lookup is safe.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId Intern(const std::string& term);

  /// Returns the id of `term` or NotFound.
  StatusOr<TermId> Lookup(const std::string& term) const;

  /// Returns the term for `id` or OutOfRange.
  StatusOr<std::string> Term(TermId id) const;

  std::size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// Pre-populates ids 0..n-1 with synthetic terms "t0".."t{n-1}".
  /// Used by the data generators, which deal in term ranks directly.
  void FillSynthetic(std::size_t n);

  /// Writes the dictionary to a file, one term per line, in id order —
  /// the sidecar a TSV dataset export needs to stay id-compatible.
  Status Save(const std::string& path) const;

  /// Reads a dictionary written by Save. Line i becomes term id i.
  /// Fails if this vocabulary is non-empty or the file has blank lines.
  Status Load(const std::string& path);

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace spq::text

#endif  // SPQ_TEXT_VOCABULARY_H_
