#ifndef SPQ_TEXT_KEYWORD_SET_H_
#define SPQ_TEXT_KEYWORD_SET_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "text/vocabulary.h"

namespace spq::text {

/// \brief An immutable set of terms (sorted, deduplicated TermIds).
///
/// The canonical representation of both f.W (feature annotations) and q.W
/// (query keywords). Sortedness makes intersection/union linear merges.
class KeywordSet {
 public:
  KeywordSet() = default;

  /// Builds from arbitrary ids; sorts and deduplicates.
  explicit KeywordSet(std::vector<TermId> ids);
  KeywordSet(std::initializer_list<TermId> ids);

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  const std::vector<TermId>& ids() const { return ids_; }

  bool Contains(TermId id) const;

  /// |this ∩ other| via sorted merge.
  std::size_t IntersectionSize(const KeywordSet& other) const;

  /// True iff the sets share at least one term — the map-side pruning test
  /// of Algorithms 1/3/5 (line "x.W ∩ q.W ≠ ∅").
  bool Intersects(const KeywordSet& other) const;

  bool operator==(const KeywordSet& other) const { return ids_ == other.ids_; }

 private:
  std::vector<TermId> ids_;
};

/// |a ∩ b| of two *sorted unique* id spans (the wire form of a
/// KeywordSet). Used on the hot map/reduce paths to avoid re-wrapping
/// deserialized keyword lists. Falls back from the linear merge to a
/// galloping (exponential + binary search) scan of the longer span when
/// the lengths are very asymmetric, which turns O(|a| + |b|) into
/// O(|a| log |b|) for the short-query-vs-long-feature case.
std::size_t SortedIntersectionSize(const TermId* a, std::size_t a_len,
                                   const TermId* b, std::size_t b_len);
std::size_t SortedIntersectionSize(const std::vector<TermId>& a,
                                   const std::vector<TermId>& b);

/// Jaccard similarity of two sorted unique id spans; 0 when both empty.
double JaccardSorted(const TermId* a, std::size_t a_len, const TermId* b,
                     std::size_t b_len);
double JaccardSorted(const std::vector<TermId>& a,
                     const std::vector<TermId>& b);

/// \brief 64-bit one-bit-per-term hash signature of a sorted-unique id
/// span: bit (Mix64(t) & 63) is set for every term t.
///
/// The screening property the prefilters rely on: two spans with a common
/// term share a bit, so
///
///   (TermSignature(a) & TermSignature(b)) == 0
///     ==>  SortedIntersectionSize(a, b) == 0.
///
/// The converse does not hold (distinct terms may collide into the same
/// bit), so a non-empty AND means "compute the exact intersection", never
/// "assume a match" — false positives cost speed only, correctness never.
/// An empty span has signature 0; treat 0 as "no information" (it also
/// AND-annihilates against everything).
uint64_t TermSignature(const TermId* ids, std::size_t n);
inline uint64_t TermSignature(const std::vector<TermId>& ids) {
  return TermSignature(ids.data(), ids.size());
}

/// Threshold-aware Jaccard: when the size-ratio upper bound
/// min(|a|,|b|) / max(|a|,|b|) already fails to exceed `threshold`, the
/// bound itself is returned without touching the elements. Callers that
/// only act on scores strictly greater than `threshold` (the reducers'
/// top-k pruning test) get identical behavior at a fraction of the cost;
/// callers that need the exact score must use JaccardSorted.
double JaccardSortedBounded(const TermId* a, std::size_t a_len,
                            const TermId* b, std::size_t b_len,
                            double threshold);

}  // namespace spq::text

#endif  // SPQ_TEXT_KEYWORD_SET_H_
