#ifndef SPQ_TEXT_KEYWORD_SET_H_
#define SPQ_TEXT_KEYWORD_SET_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "text/vocabulary.h"

namespace spq::text {

/// \brief An immutable set of terms (sorted, deduplicated TermIds).
///
/// The canonical representation of both f.W (feature annotations) and q.W
/// (query keywords). Sortedness makes intersection/union linear merges.
class KeywordSet {
 public:
  KeywordSet() = default;

  /// Builds from arbitrary ids; sorts and deduplicates.
  explicit KeywordSet(std::vector<TermId> ids);
  KeywordSet(std::initializer_list<TermId> ids);

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  const std::vector<TermId>& ids() const { return ids_; }

  bool Contains(TermId id) const;

  /// |this ∩ other| via sorted merge.
  std::size_t IntersectionSize(const KeywordSet& other) const;

  /// True iff the sets share at least one term — the map-side pruning test
  /// of Algorithms 1/3/5 (line "x.W ∩ q.W ≠ ∅").
  bool Intersects(const KeywordSet& other) const;

  bool operator==(const KeywordSet& other) const { return ids_ == other.ids_; }

 private:
  std::vector<TermId> ids_;
};

/// |a ∩ b| of two *sorted unique* id vectors (the wire form of a
/// KeywordSet). Used on the hot map/reduce paths to avoid re-wrapping
/// deserialized keyword lists.
std::size_t SortedIntersectionSize(const std::vector<TermId>& a,
                                   const std::vector<TermId>& b);

/// Jaccard similarity of two sorted unique id vectors; 0 when both empty.
double JaccardSorted(const std::vector<TermId>& a,
                     const std::vector<TermId>& b);

}  // namespace spq::text

#endif  // SPQ_TEXT_KEYWORD_SET_H_
