#include "text/jaccard.h"

namespace spq::text {

double Jaccard(const KeywordSet& a, const KeywordSet& b) {
  const std::size_t inter = a.IntersectionSize(b);
  const std::size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardUpperBound(std::size_t query_len, std::size_t feature_len) {
  if (feature_len < query_len) return 1.0;
  if (feature_len == 0) return 0.0;  // both empty
  return static_cast<double>(query_len) / static_cast<double>(feature_len);
}

}  // namespace spq::text
