#include "text/keyword_set.h"

#include <algorithm>

#include "common/hash.h"

namespace spq::text {

namespace {

/// Linear sorted-merge intersection count.
std::size_t IntersectLinear(const TermId* a, std::size_t a_len,
                            const TermId* b, std::size_t b_len) {
  std::size_t count = 0;
  const TermId* ae = a + a_len;
  const TermId* be = b + b_len;
  while (a != ae && b != be) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

/// lower_bound with an exponential (galloping) probe phase: cheap when the
/// answer is near `first`, which it is when called once per element of the
/// shorter span while sweeping the longer one.
const TermId* GallopLowerBound(const TermId* first, const TermId* last,
                               TermId v) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  std::size_t bound = 1;
  while (bound < n && first[bound - 1] < v) bound <<= 1;
  const std::size_t lo = bound >> 1;  // first[lo - 1] < v (or lo == 0)
  const std::size_t hi = std::min(bound, n);
  return std::lower_bound(first + lo, first + hi, v);
}

/// Intersection count with `a` the (much) shorter span: sweep `a`, gallop
/// through `b`.
std::size_t IntersectGallop(const TermId* a, std::size_t a_len,
                            const TermId* b, std::size_t b_len) {
  std::size_t count = 0;
  const TermId* bpos = b;
  const TermId* bend = b + b_len;
  for (std::size_t i = 0; i < a_len && bpos != bend; ++i) {
    bpos = GallopLowerBound(bpos, bend, a[i]);
    if (bpos != bend && *bpos == a[i]) {
      ++count;
      ++bpos;
    }
  }
  return count;
}

/// Length ratio beyond which galloping beats the linear merge.
constexpr std::size_t kGallopRatio = 8;

}  // namespace

KeywordSet::KeywordSet(std::vector<TermId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

KeywordSet::KeywordSet(std::initializer_list<TermId> ids)
    : KeywordSet(std::vector<TermId>(ids)) {}

bool KeywordSet::Contains(TermId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

std::size_t KeywordSet::IntersectionSize(const KeywordSet& other) const {
  return SortedIntersectionSize(ids_.data(), ids_.size(), other.ids_.data(),
                                other.ids_.size());
}

std::size_t SortedIntersectionSize(const TermId* a, std::size_t a_len,
                                   const TermId* b, std::size_t b_len) {
  if (a_len > b_len) {
    std::swap(a, b);
    std::swap(a_len, b_len);
  }
  if (a_len == 0) return 0;
  if (b_len / a_len >= kGallopRatio) return IntersectGallop(a, a_len, b, b_len);
  return IntersectLinear(a, a_len, b, b_len);
}

std::size_t SortedIntersectionSize(const std::vector<TermId>& a,
                                   const std::vector<TermId>& b) {
  return SortedIntersectionSize(a.data(), a.size(), b.data(), b.size());
}

double JaccardSorted(const TermId* a, std::size_t a_len, const TermId* b,
                     std::size_t b_len) {
  const std::size_t inter = SortedIntersectionSize(a, a_len, b, b_len);
  const std::size_t uni = a_len + b_len - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardSorted(const std::vector<TermId>& a,
                     const std::vector<TermId>& b) {
  return JaccardSorted(a.data(), a.size(), b.data(), b.size());
}

double JaccardSortedBounded(const TermId* a, std::size_t a_len,
                            const TermId* b, std::size_t b_len,
                            double threshold) {
  // J = i / (|a| + |b| - i) is maximal at i = min(|a|, |b|), giving the
  // upper bound min / max. Below the threshold the exact value cannot
  // matter to a caller testing `score > threshold`.
  const std::size_t mn = std::min(a_len, b_len);
  const std::size_t mx = std::max(a_len, b_len);
  if (mx == 0) return 0.0;
  const double upper = static_cast<double>(mn) / static_cast<double>(mx);
  if (upper <= threshold) return upper;
  return JaccardSorted(a, a_len, b, b_len);
}

uint64_t TermSignature(const TermId* ids, std::size_t n) {
  // Mix64 spreads the (often small, dense) TermId space over all 64 bits;
  // raw `id & 63` would alias every 64th vocabulary entry systematically.
  uint64_t sig = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sig |= uint64_t{1} << (Mix64(ids[i]) & 63);
  }
  return sig;
}

bool KeywordSet::Intersects(const KeywordSet& other) const {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace spq::text
