#include "text/keyword_set.h"

#include <algorithm>

namespace spq::text {

KeywordSet::KeywordSet(std::vector<TermId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

KeywordSet::KeywordSet(std::initializer_list<TermId> ids)
    : KeywordSet(std::vector<TermId>(ids)) {}

bool KeywordSet::Contains(TermId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

std::size_t KeywordSet::IntersectionSize(const KeywordSet& other) const {
  std::size_t count = 0;
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

std::size_t SortedIntersectionSize(const std::vector<TermId>& a,
                                   const std::vector<TermId>& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

double JaccardSorted(const std::vector<TermId>& a,
                     const std::vector<TermId>& b) {
  const std::size_t inter = SortedIntersectionSize(a, b);
  const std::size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

bool KeywordSet::Intersects(const KeywordSet& other) const {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace spq::text
