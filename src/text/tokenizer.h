#ifndef SPQ_TEXT_TOKENIZER_H_
#define SPQ_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace spq::text {

/// Splits `input` on any non-alphanumeric byte, lowercases ASCII letters,
/// and drops empty tokens. ("Italian, Gourmet!" -> {"italian","gourmet"}).
std::vector<std::string> Tokenize(const std::string& input);

/// Tokenizes and interns into `vocab`, producing a KeywordSet. The overload
/// every example/app uses to turn a textual annotation into f.W.
KeywordSet TokenizeToSet(const std::string& input, Vocabulary& vocab);

/// Tokenizes with lookup only (terms absent from `vocab` are skipped) —
/// the right call for query keywords at query time, where unknown terms
/// cannot match any feature anyway.
KeywordSet TokenizeToSetReadOnly(const std::string& input,
                                 const Vocabulary& vocab);

}  // namespace spq::text

#endif  // SPQ_TEXT_TOKENIZER_H_
