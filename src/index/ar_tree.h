#ifndef SPQ_INDEX_AR_TREE_H_
#define SPQ_INDEX_AR_TREE_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace spq::index {

/// \brief Static aggregate R-tree over scored points (an aR-tree).
///
/// Bulk-loaded with the Sort-Tile-Recursive (STR) packing. Every node
/// stores its MBR and the *maximum score* of the entries underneath —
/// the aggregate that makes spatial preference scoring sublinear: when
/// ranking a data object, subtrees with MINDIST > r or max-score <= the
/// best score found so far are pruned. This is the index family the
/// centralized SPQ literature builds on (Yiu et al.'s top-k spatial
/// preference processing); here it powers the centralized indexed
/// baseline that the distributed algorithms are compared against.
class ArTree {
 public:
  struct Entry {
    geo::Point pos;
    double score = 0.0;
    uint64_t id = 0;
  };

  /// Bulk-loads the tree. `leaf_capacity`/`fanout` >= 2.
  static ArTree Build(std::vector<Entry> entries, uint32_t leaf_capacity = 16,
                      uint32_t fanout = 16);

  /// Maximum entry score within distance `r` of `q`; 0.0 when no entry
  /// qualifies (scores are assumed positive, matching Jaccard > 0).
  /// `floor` seeds the pruning bound: subtrees that cannot beat it are
  /// skipped (pass the current τ when scanning many objects).
  double MaxScoreWithin(const geo::Point& q, double r,
                        double floor = 0.0) const;

  /// Entries (ids) within distance `r` of `q`, any order.
  std::vector<uint64_t> IdsWithin(const geo::Point& q, double r) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Node {
    geo::Rect mbr;
    double max_score = 0.0;
    // Children: [first, first+count) into nodes_ for internal nodes, or
    // into entries_ for leaves.
    uint32_t first = 0;
    uint32_t count = 0;
    bool leaf = true;
  };

  ArTree() = default;

  std::vector<Entry> entries_;  // grouped by leaf
  std::vector<Node> nodes_;     // nodes_[root_] is the root when non-empty
  uint32_t root_ = 0;
};

}  // namespace spq::index

#endif  // SPQ_INDEX_AR_TREE_H_
