#include "index/inverted_index.h"

#include <algorithm>

namespace spq::index {

namespace {
const std::vector<uint32_t>& EmptyPostings() {
  static const std::vector<uint32_t>* empty = new std::vector<uint32_t>();
  return *empty;
}
}  // namespace

InvertedIndex::InvertedIndex(const std::vector<text::KeywordSet>& documents)
    : num_documents_(documents.size()) {
  for (std::size_t doc = 0; doc < documents.size(); ++doc) {
    for (text::TermId term : documents[doc].ids()) {
      postings_[term].push_back(static_cast<uint32_t>(doc));
    }
  }
  // Documents are visited in ascending order, so postings are sorted.
}

std::vector<uint32_t> InvertedIndex::CandidatesFor(
    const text::KeywordSet& terms) const {
  std::vector<uint32_t> out;
  for (text::TermId term : terms.ids()) {
    const auto& postings = Postings(term);
    out.insert(out.end(), postings.begin(), postings.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const std::vector<uint32_t>& InvertedIndex::Postings(
    text::TermId term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? EmptyPostings() : it->second;
}

}  // namespace spq::index
