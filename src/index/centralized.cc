#include "index/centralized.h"

#include <utility>

#include "spq/topk.h"
#include "text/jaccard.h"

namespace spq::index {

CentralizedSpqIndex::CentralizedSpqIndex(const core::Dataset* dataset)
    : dataset_(dataset) {
  std::vector<text::KeywordSet> documents;
  documents.reserve(dataset_->features.size());
  for (const auto& f : dataset_->features) documents.push_back(f.keywords);
  inverted_ = InvertedIndex(documents);
}

std::vector<core::ResultEntry> CentralizedSpqIndex::Execute(
    const core::Query& query) const {
  last_stats_ = {};
  // 1. Textual phase: candidate features via the inverted index.
  const std::vector<uint32_t> candidates =
      inverted_.CandidatesFor(query.keywords);
  last_stats_.candidate_features = candidates.size();

  std::vector<ArTree::Entry> scored;
  scored.reserve(candidates.size());
  for (uint32_t idx : candidates) {
    const core::FeatureObject& f = dataset_->features[idx];
    const double w = text::Jaccard(f.keywords, query.keywords);
    if (w > 0.0) scored.push_back({f.pos, w, f.id});
  }
  last_stats_.scored_features = scored.size();
  if (scored.empty()) return {};

  // 2. Spatial phase: aggregate R-tree over the scored candidates.
  const ArTree tree = ArTree::Build(std::move(scored));

  // 3. Scan data objects with the running τ as the pruning floor.
  core::TopKList lk(query.k);
  for (const core::DataObject& p : dataset_->data) {
    const double floor = lk.Threshold();
    const double s = tree.MaxScoreWithin(p.pos, query.radius, floor);
    if (s > floor) lk.Update(p.id, s);
  }
  return lk.entries();
}

}  // namespace spq::index
