#include "index/ar_tree.h"

#include <algorithm>
#include <cmath>

namespace spq::index {

namespace {

geo::Rect MbrOfEntries(const std::vector<ArTree::Entry>& entries,
                       std::size_t first, std::size_t count) {
  geo::Rect mbr{entries[first].pos.x, entries[first].pos.y,
                entries[first].pos.x, entries[first].pos.y};
  for (std::size_t i = first; i < first + count; ++i) {
    mbr.min_x = std::min(mbr.min_x, entries[i].pos.x);
    mbr.min_y = std::min(mbr.min_y, entries[i].pos.y);
    mbr.max_x = std::max(mbr.max_x, entries[i].pos.x);
    mbr.max_y = std::max(mbr.max_y, entries[i].pos.y);
  }
  return mbr;
}

}  // namespace

ArTree ArTree::Build(std::vector<Entry> entries, uint32_t leaf_capacity,
                     uint32_t fanout) {
  leaf_capacity = std::max(2u, leaf_capacity);
  fanout = std::max(2u, fanout);
  ArTree tree;
  if (entries.empty()) return tree;

  // --- STR packing of the leaf level ---
  const std::size_t n = entries.size();
  const std::size_t num_leaves = (n + leaf_capacity - 1) / leaf_capacity;
  const std::size_t num_slices = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t slice_size = num_slices == 0
                                     ? n
                                     : (n + num_slices - 1) / num_slices;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.pos.x != b.pos.x) return a.pos.x < b.pos.x;
              return a.pos.y < b.pos.y;
            });
  for (std::size_t s = 0; s * slice_size < n; ++s) {
    auto begin = entries.begin() + static_cast<std::ptrdiff_t>(s * slice_size);
    auto end = entries.begin() +
               static_cast<std::ptrdiff_t>(std::min(n, (s + 1) * slice_size));
    std::sort(begin, end, [](const Entry& a, const Entry& b) {
      if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
      return a.pos.x < b.pos.x;
    });
  }
  tree.entries_ = std::move(entries);

  // Leaf nodes over consecutive runs of leaf_capacity entries.
  std::vector<uint32_t> level;  // node indices of the level being built
  for (std::size_t first = 0; first < n; first += leaf_capacity) {
    const std::size_t count = std::min<std::size_t>(leaf_capacity, n - first);
    Node node;
    node.leaf = true;
    node.first = static_cast<uint32_t>(first);
    node.count = static_cast<uint32_t>(count);
    node.mbr = MbrOfEntries(tree.entries_, first, count);
    node.max_score = 0.0;
    for (std::size_t i = first; i < first + count; ++i) {
      node.max_score = std::max(node.max_score, tree.entries_[i].score);
    }
    level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(node);
  }

  // --- build internal levels bottom-up ---
  // Children of a level are contiguous in nodes_, so grouping consecutive
  // runs of `fanout` preserves the STR spatial clustering.
  while (level.size() > 1) {
    std::vector<uint32_t> parent_level;
    for (std::size_t first = 0; first < level.size(); first += fanout) {
      const std::size_t count =
          std::min<std::size_t>(fanout, level.size() - first);
      Node node;
      node.leaf = false;
      node.first = level[first];
      node.count = static_cast<uint32_t>(count);
      node.mbr = tree.nodes_[level[first]].mbr;
      node.max_score = 0.0;
      for (std::size_t i = first; i < first + count; ++i) {
        const Node& child = tree.nodes_[level[i]];
        node.mbr.min_x = std::min(node.mbr.min_x, child.mbr.min_x);
        node.mbr.min_y = std::min(node.mbr.min_y, child.mbr.min_y);
        node.mbr.max_x = std::max(node.mbr.max_x, child.mbr.max_x);
        node.mbr.max_y = std::max(node.mbr.max_y, child.mbr.max_y);
        node.max_score = std::max(node.max_score, child.max_score);
      }
      parent_level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(node);
    }
    level = std::move(parent_level);
  }
  tree.root_ = level.front();
  return tree;
}

double ArTree::MaxScoreWithin(const geo::Point& q, double r,
                              double floor) const {
  if (entries_.empty() || r < 0.0) return 0.0;
  const double r2 = r * r;
  double best = floor;
  bool found = false;
  // Explicit DFS stack; aggregate-score + MINDIST pruning.
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.max_score <= best || geo::MinDist2(q, node.mbr) > r2) continue;
    if (node.leaf) {
      for (uint32_t i = node.first; i < node.first + node.count; ++i) {
        const Entry& e = entries_[i];
        if (e.score > best && geo::Distance2(q, e.pos) <= r2) {
          best = e.score;
          found = true;
        }
      }
    } else {
      for (uint32_t c = 0; c < node.count; ++c) {
        stack.push_back(node.first + c);
      }
    }
  }
  return found || floor > 0.0 ? best : 0.0;
}

std::vector<uint64_t> ArTree::IdsWithin(const geo::Point& q, double r) const {
  std::vector<uint64_t> out;
  if (entries_.empty() || r < 0.0) return out;
  const double r2 = r * r;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (geo::MinDist2(q, node.mbr) > r2) continue;
    if (node.leaf) {
      for (uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (geo::Distance2(q, entries_[i].pos) <= r2) {
          out.push_back(entries_[i].id);
        }
      }
    } else {
      for (uint32_t c = 0; c < node.count; ++c) {
        stack.push_back(node.first + c);
      }
    }
  }
  return out;
}

}  // namespace spq::index
