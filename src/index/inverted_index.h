#ifndef SPQ_INDEX_INVERTED_INDEX_H_
#define SPQ_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace spq::index {

/// \brief Term -> document-id postings over a corpus of keyword sets.
///
/// The textual half of a centralized spatio-textual index (the paper's
/// related work [14, 16, 17] evaluates SPQ centrally over such indexes).
/// Used by the indexed centralized baseline to enumerate only the feature
/// objects that share at least one term with q.W, instead of scanning F.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds postings over `documents`; document ids are vector positions.
  explicit InvertedIndex(const std::vector<text::KeywordSet>& documents);

  /// Document ids sharing at least one term with `terms`, deduplicated,
  /// ascending. Exactly the map-side prefilter's survivor set.
  std::vector<uint32_t> CandidatesFor(const text::KeywordSet& terms) const;

  /// Posting list of one term (empty when absent).
  const std::vector<uint32_t>& Postings(text::TermId term) const;

  std::size_t num_terms() const { return postings_.size(); }
  std::size_t num_documents() const { return num_documents_; }

 private:
  std::unordered_map<text::TermId, std::vector<uint32_t>> postings_;
  std::size_t num_documents_ = 0;
};

}  // namespace spq::index

#endif  // SPQ_INDEX_INVERTED_INDEX_H_
