#ifndef SPQ_INDEX_CENTRALIZED_H_
#define SPQ_INDEX_CENTRALIZED_H_

#include <cstdint>
#include <vector>

#include "index/ar_tree.h"
#include "index/inverted_index.h"
#include "spq/types.h"

namespace spq::index {

/// \brief Centralized, index-backed SPQ evaluation — the single-machine
/// competitor the distributed algorithms are measured against.
///
/// Mirrors how the centralized literature the paper cites ([14, 16, 17])
/// processes the query: an inverted index narrows F to the features
/// sharing a term with q.W, a query-time aggregate R-tree over their
/// (position, Jaccard score) pairs answers "best score within r of p" with
/// MINDIST + max-score pruning, and a running top-k threshold seeds the
/// pruning bound while the data objects are scanned.
///
/// Result contract matches the parallel engine and the brute-force oracle:
/// up to k entries with τ(p) > 0. Among equal-score ties at the k-th rank
/// the chosen ids may differ from the oracle's (threshold pruning skips
/// ties) — scores always agree.
class CentralizedSpqIndex {
 public:
  /// Builds the (query-independent) textual index. The dataset must
  /// outlive this object; it is not copied.
  explicit CentralizedSpqIndex(const core::Dataset* dataset);

  CentralizedSpqIndex(const CentralizedSpqIndex&) = delete;
  CentralizedSpqIndex& operator=(const CentralizedSpqIndex&) = delete;

  /// Evaluates one query.
  std::vector<core::ResultEntry> Execute(const core::Query& query) const;

  /// Measurements of the last Execute (single-threaded use).
  struct ExecStats {
    std::size_t candidate_features = 0;  ///< postings union size
    std::size_t scored_features = 0;     ///< candidates with Jaccard > 0
  };
  const ExecStats& last_stats() const { return last_stats_; }

 private:
  const core::Dataset* dataset_;
  InvertedIndex inverted_;
  mutable ExecStats last_stats_;
};

}  // namespace spq::index

#endif  // SPQ_INDEX_CENTRALIZED_H_
