#ifndef SPQ_MAPREDUCE_MERGE_H_
#define SPQ_MAPREDUCE_MERGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "mapreduce/codec.h"
#include "mapreduce/job.h"
#include "mapreduce/spill.h"

namespace spq::mapreduce {

/// \brief One sorted run of serialized (K, V) records — the unit a map task
/// ships to a reduce partition (a Hadoop map-output spill segment).
/// Lives either in memory (`bytes`) or on disk (`spill_path`).
struct SortedSegment {
  std::vector<uint8_t> bytes;
  uint64_t num_records = 0;
  /// Non-empty when the segment was spilled to disk; `bytes` is then empty.
  std::string spill_path;
  /// Serialized size, regardless of where the segment lives.
  uint64_t byte_size = 0;
};

// ---------------------------------------------------------------------------
// Flat-arena shuffle (ShuffleMode::kCellBucketed)
// ---------------------------------------------------------------------------

/// \brief Radix-structure trait enabling the sort-free, flat-arena shuffle
/// for a (K, V) record type. The primary template is disabled; jobs opt in
/// by specializing it (see spq/shuffle_types.h and spq/batch.h).
///
/// An enabled specialization must provide:
///
///   static constexpr bool kEnabled = true;
///   static constexpr uint32_t kPayloadStride;   // fixed bytes per payload
///
///   // Radix decomposition of the composite key. The derived order —
///   // (Bucket asc, OrderKey asc, emission index asc) — must equal a
///   // stable sort under the job's sort comparator, and Bucket equality
///   // must equal the job's grouping comparator (flat groups are
///   // delimited by bucket changes).
///   static uint64_t Bucket(const K&);
///   static uint64_t OrderKey(const K&);
///   static K MakeKey(uint64_t bucket, uint64_t order_key);
///
///   // Zero-copy record view; plain value struct whose varlen fields
///   // point into the segment pool (or a streaming buffer, valid until
///   // the owning stream advances).
///   struct View;  // or `using View = ...;`
///
///   // Exact pool bytes the record's varlen data will occupy; lets the
///   // segment builder allocate the whole byte image once, up front.
///   static uint64_t PoolBytes(const V&);
///
///   // Writes exactly kPayloadStride bytes at `dst`. Varlen data is
///   // written at `pool + *pool_pos` (advancing *pool_pos by PoolBytes),
///   // and the payload's trailing 8 bytes MUST be the record's pool
///   // slice as (u32 byte offset, u32 byte length) — the generic readers
///   // use that contract to locate and stream the pool.
///   static void EncodePayload(const V&, uint8_t* dst, uint8_t* pool,
///                             uint64_t* pool_pos);
///
///   // `span` points at the record's pool slice (nullptr when empty).
///   static View MakeView(const uint8_t* payload, const uint8_t* span);
template <typename K, typename V>
struct FlatShuffleTraits {
  static constexpr bool kEnabled = false;
};

/// \brief One sorted run in the flat-arena layout. The byte image (also
/// the spill-file image) has three regions:
///
///   [ key rows : num_records x 16  — (u64 bucket, u64 order key) each ]
///   [ payloads : num_records x FlatShuffleTraits::kPayloadStride      ]
///   [ pool     : pool_bytes of varlen data (e.g. the TermId pool)     ]
///
/// Key rows live apart from payloads so the k-way merge touches only 16
/// hot bytes per record; payloads decode with plain loads into Views whose
/// varlen fields alias the shared pool (no per-record heap allocation).
/// Pool slices are appended in record order, so offsets are monotone and a
/// spilled segment streams through three sequential fixed-size cursors.
struct FlatSegment {
  std::vector<uint8_t> bytes;  ///< empty when the segment was spilled
  uint64_t num_records = 0;
  uint64_t pool_bytes = 0;
  std::string spill_path;
  uint64_t byte_size = 0;

  static constexpr uint64_t kKeyRowBytes = 16;
};

namespace internal {

/// Decodes records lazily off a SortedSegment. In-memory segments are read
/// in place; spilled segments stream through a SpillRegionReader's
/// peek-available window (spill.h) — the same compact/refill/grow
/// primitive the flat cursors use — instead of being slurped whole.
template <typename K, typename V>
class SegmentReader {
 public:
  explicit SegmentReader(const SortedSegment* segment)
      : segment_(segment), reader_(nullptr, 0) {
    if (!segment->spill_path.empty()) {
      spilled_ = true;
      region_.Open(segment->spill_path, 0, segment->byte_size);
    } else {
      reader_ = BufferReader(segment->bytes.data(), segment->bytes.size());
    }
  }

  /// Decodes the next record into key()/value(). False at end-of-segment.
  /// Decode errors are latched into status().
  bool Next() {
    if (!status_.ok() || read_ >= segment_->num_records) return false;
    if (!spilled_) {
      Status st = Codec<K>::Decode(reader_, &key_);
      if (st.ok()) st = Codec<V>::Decode(reader_, &value_);
      if (!st.ok()) {
        status_ = st;
        return false;
      }
      ++read_;
      return true;
    }
    // Spilled: a varint record's size is only known once it parses, so
    // decode from the peeked window; OutOfRange means the record is split
    // across the window edge — FetchMore and retry.
    for (;;) {
      BufferReader r(region_.peek_data(), region_.peek_len());
      K k{};
      V v{};
      Status st = Codec<K>::Decode(r, &k);
      if (st.ok()) st = Codec<V>::Decode(r, &v);
      if (st.ok()) {
        region_.Consume(r.position());
        key_ = std::move(k);
        value_ = std::move(v);
        ++read_;
        return true;
      }
      if (!st.IsOutOfRange()) {
        status_ = st;
        return false;
      }
      Status more = region_.FetchMore();
      if (!more.ok()) {
        // Region exhausted mid-record (truncated segment) surfaces the
        // decode error; I/O failures surface as themselves.
        status_ = more.IsOutOfRange() ? st : more;
        return false;
      }
    }
  }

  const K& key() const { return key_; }
  const V& value() const { return value_; }
  const Status& status() const { return status_; }

 private:
  const SortedSegment* segment_;
  BufferReader reader_;  // over segment_->bytes (in-memory segments)
  bool spilled_ = false;
  SpillRegionReader region_;  // over the spill file (spilled segments)
  uint64_t read_ = 0;
  K key_{};
  V value_{};
  Status status_;
};

/// Cursor over one FlatSegment: in-memory segments are walked zero-copy;
/// spilled segments stream through three SpillRegionReaders (key rows,
/// payloads, pool), each with a fixed-size buffer.
template <typename K, typename V>
class FlatSegmentReader {
  using Traits = FlatShuffleTraits<K, V>;
  static constexpr uint64_t kStride = Traits::kPayloadStride;

 public:
  explicit FlatSegmentReader(const FlatSegment* segment)
      : n_(segment->num_records) {
    const uint64_t keys_bytes = n_ * FlatSegment::kKeyRowBytes;
    const uint64_t payload_bytes = n_ * kStride;
    const uint64_t expected = keys_bytes + payload_bytes + segment->pool_bytes;
    if (segment->byte_size != expected) {
      status_ = Status::Internal("flat segment size mismatch");
      return;
    }
    if (!segment->spill_path.empty()) {
      spilled_ = true;
      // Cursors open the file transiently per refill, so a reduce task
      // merging many spilled segments holds no descriptors between reads.
      keys_cursor_.Open(segment->spill_path, 0, keys_bytes);
      payload_cursor_.Open(segment->spill_path, keys_bytes, payload_bytes);
      pool_cursor_.Open(segment->spill_path, keys_bytes + payload_bytes,
                        segment->pool_bytes);
    } else {
      keys_ = segment->bytes.data();
      payloads_ = keys_ + keys_bytes;
      pool_ = payloads_ + payload_bytes;
      pool_len_ = segment->pool_bytes;
    }
  }

  /// Advances to the next record; accessors are valid after a true return
  /// and stay valid until the next call. Errors latch into status().
  bool Next() {
    if (!status_.ok() || read_ >= n_) return false;
    if (spilled_) {
      const uint8_t* krow = nullptr;
      Status st = keys_cursor_.Fetch(FlatSegment::kKeyRowBytes, &krow);
      if (st.ok()) {
        bucket_ = wire::LoadU64(krow);
        order_key_ = wire::LoadU64(krow + 8);
        st = payload_cursor_.Fetch(kStride, &payload_);
      }
      if (st.ok()) {
        const uint32_t span_off = wire::LoadU32(payload_ + kStride - 8);
        const uint32_t span_len = wire::LoadU32(payload_ + kStride - 4);
        span_ = nullptr;
        if (span_len > 0) {
          // The sequential pool cursor is only sound when slices really
          // are appended in record order; verify against the stored
          // offset so a violating writer (or a corrupt file) fails loudly
          // instead of scoring against the wrong keywords.
          if (span_off != pool_pos_) {
            status_ = Status::Internal("flat segment pool not sequential");
            return false;
          }
          st = pool_cursor_.Fetch(span_len, &span_);
          pool_pos_ += span_len;
        }
      }
      if (!st.ok()) {
        status_ = st;
        return false;
      }
    } else {
      const uint8_t* krow = keys_ + read_ * FlatSegment::kKeyRowBytes;
      bucket_ = wire::LoadU64(krow);
      order_key_ = wire::LoadU64(krow + 8);
      payload_ = payloads_ + read_ * kStride;
      const uint32_t span_off = wire::LoadU32(payload_ + kStride - 8);
      const uint32_t span_len = wire::LoadU32(payload_ + kStride - 4);
      if (static_cast<uint64_t>(span_off) + span_len > pool_len_) {
        status_ = Status::Internal("flat segment pool span out of range");
        return false;
      }
      span_ = span_len > 0 ? pool_ + span_off : nullptr;
    }
    ++read_;
    return true;
  }

  uint64_t bucket() const { return bucket_; }
  uint64_t order_key() const { return order_key_; }
  typename Traits::View view() const {
    return Traits::MakeView(payload_, span_);
  }
  const Status& status() const { return status_; }

 private:
  uint64_t n_;
  uint64_t read_ = 0;
  // In-memory segment:
  const uint8_t* keys_ = nullptr;
  const uint8_t* payloads_ = nullptr;
  const uint8_t* pool_ = nullptr;
  uint64_t pool_len_ = 0;
  // Spilled segment:
  bool spilled_ = false;
  SpillRegionReader keys_cursor_;
  SpillRegionReader payload_cursor_;
  SpillRegionReader pool_cursor_;
  uint64_t pool_pos_ = 0;  ///< pool bytes consumed; must match span offsets
  // Current record:
  uint64_t bucket_ = 0;
  uint64_t order_key_ = 0;
  const uint8_t* payload_ = nullptr;
  const uint8_t* span_ = nullptr;
  Status status_;
};

}  // namespace internal

/// \brief K-way merge over the sorted segments a reduce partition received
/// from all map tasks — the "merge" half of Hadoop's sort/merge shuffle.
///
/// Records come out in sort_less order; ties across segments break by
/// segment index, so the merge is deterministic and stable with respect to
/// map task order. The comparator is a template parameter so concrete
/// comparators merge with direct calls; it defaults to std::function for
/// type-erased job specs (the legacy shuffle path).
template <typename K, typename V,
          typename Less = std::function<bool(const K&, const K&)>>
class MergeStream {
 public:
  MergeStream(const std::vector<const SortedSegment*>& segments,
              Less sort_less)
      : sort_less_(std::move(sort_less)) {
    readers_.reserve(segments.size());
    for (const SortedSegment* seg : segments) {
      readers_.push_back(
          std::make_unique<internal::SegmentReader<K, V>>(seg));
    }
    // Prime every reader and build the initial heap of live readers.
    for (std::size_t i = 0; i < readers_.size(); ++i) {
      if (readers_[i]->Next()) {
        heap_.push_back(i);
      } else if (!readers_[i]->status().ok()) {
        status_ = readers_[i]->status();
      }
    }
    BuildHeap();
  }

  /// Loads the next record in global sorted order. False when exhausted or
  /// after a decode error (check status()).
  bool Advance() {
    if (!status_.ok() || heap_.empty()) return false;
    const std::size_t top = heap_.front();
    key_ = readers_[top]->key();
    value_ = readers_[top]->value();
    // Refill the winning reader and restore the heap.
    if (readers_[top]->Next()) {
      SiftDown(0);
    } else {
      if (!readers_[top]->status().ok()) {
        // The record copied above is still valid; surface the decode error
        // on the *next* Advance so no shuffled record is silently dropped.
        status_ = readers_[top]->status();
        heap_.clear();
        return true;
      }
      heap_.front() = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) SiftDown(0);
    }
    return true;
  }

  const K& key() const { return key_; }
  const V& value() const { return value_; }
  const Status& status() const { return status_; }

 private:
  /// True when reader a's current record precedes reader b's.
  bool ReaderLess(std::size_t a, std::size_t b) const {
    const K& ka = readers_[a]->key();
    const K& kb = readers_[b]->key();
    if (sort_less_(ka, kb)) return true;
    if (sort_less_(kb, ka)) return false;
    return a < b;  // deterministic tie-break by map task index
  }

  void BuildHeap() {
    if (heap_.empty()) return;
    for (std::size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && ReaderLess(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && ReaderLess(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  Less sort_less_;
  std::vector<std::unique_ptr<internal::SegmentReader<K, V>>> readers_;
  std::vector<std::size_t> heap_;
  K key_{};
  V value_{};
  Status status_;
};

/// \brief How FlatMergeStream maintains its loser structure.
enum class MergeStrategy {
  /// kBinaryHeap below kLoserTreeMinFanIn live segments, kLoserTree from
  /// there up. The default.
  kAuto,
  /// Sift-down binary heap: up to 2·log₂(k) comparisons per record, but
  /// no per-reader leaf bookkeeping — wins at small fan-in.
  kBinaryHeap,
  /// Tournament loser tree: exactly ⌈log₂(k)⌉ comparisons per record
  /// (each against a precomputed loser on the leaf-to-root path) — wins
  /// when many map tasks feed one reduce partition.
  kLoserTree,
};

/// \brief K-way merge over flat-arena segments. The merge structure
/// compares raw (bucket, order key, segment index) integer triples — no
/// comparator indirection and no key/value copies: value() hands out a
/// zero-copy View that stays valid until the next Advance (the winning
/// reader refills lazily, on the *following* Advance).
///
/// Below kLoserTreeMinFanIn live inputs the structure is a binary heap;
/// at or above it, a tournament loser tree (exactly one comparison per
/// level per record instead of the heap's up-to-two). Both produce the
/// identical, deterministic order — ties break by segment index — so the
/// strategy is purely a performance knob (bench_micro has the A/B).
template <typename K, typename V>
class FlatMergeStream {
  using Traits = FlatShuffleTraits<K, V>;

 public:
  /// Fan-in at or above which kAuto switches to the loser tree.
  static constexpr std::size_t kLoserTreeMinFanIn = 8;

  explicit FlatMergeStream(const std::vector<const FlatSegment*>& segments,
                           MergeStrategy strategy = MergeStrategy::kAuto) {
    readers_.reserve(segments.size());
    for (const FlatSegment* seg : segments) {
      readers_.push_back(
          std::make_unique<internal::FlatSegmentReader<K, V>>(seg));
    }
    std::size_t live = 0;
    exhausted_.assign(readers_.size(), 1);
    for (std::size_t i = 0; i < readers_.size(); ++i) {
      if (readers_[i]->Next()) {
        exhausted_[i] = 0;
        ++live;
      } else if (!readers_[i]->status().ok()) {
        status_ = readers_[i]->status();
      }
    }
    use_loser_tree_ =
        strategy == MergeStrategy::kLoserTree ||
        (strategy == MergeStrategy::kAuto && live >= kLoserTreeMinFanIn);
    // The tournament bracket needs at least two leaves.
    if (readers_.size() < 2) use_loser_tree_ = false;
    if (use_loser_tree_) {
      BuildLoserTree();
    } else {
      for (std::size_t i = 0; i < readers_.size(); ++i) {
        if (!exhausted_[i]) heap_.push_back(i);
      }
      BuildHeap();
    }
  }

  /// Loads the next record in global sorted order. False when exhausted or
  /// after a read error (check status()).
  bool Advance() {
    if (!status_.ok()) return false;
    if (current_loaded_) {
      current_loaded_ = false;
      if (use_loser_tree_) {
        if (!AdvanceLoserTop()) return false;
      } else {
        if (!AdvanceHeapTop()) return false;
      }
    }
    if (Empty()) return false;
    const auto* r = readers_[Top()].get();
    key_ = Traits::MakeKey(r->bucket(), r->order_key());
    current_loaded_ = true;
    return true;
  }

  uint64_t bucket() const { return readers_[Top()]->bucket(); }
  const K& key() const { return key_; }
  typename Traits::View value() const { return readers_[Top()]->view(); }
  const Status& status() const { return status_; }
  bool using_loser_tree() const { return use_loser_tree_; }

 private:
  std::size_t Top() const { return use_loser_tree_ ? winner_ : heap_.front(); }
  bool Empty() const {
    return use_loser_tree_ ? exhausted_[winner_] : heap_.empty();
  }

  bool ReaderLess(std::size_t a, std::size_t b) const {
    const auto* ra = readers_[a].get();
    const auto* rb = readers_[b].get();
    if (ra->bucket() != rb->bucket()) return ra->bucket() < rb->bucket();
    if (ra->order_key() != rb->order_key()) {
      return ra->order_key() < rb->order_key();
    }
    return a < b;  // deterministic tie-break by map task index
  }

  /// ReaderLess with exhausted readers ordered after every live one: the
  /// bracket then seats live readers identically to the heap's order, so
  /// both strategies emit the same sequence.
  bool PlayoffLess(std::size_t a, std::size_t b) const {
    if (exhausted_[a] != exhausted_[b]) return !exhausted_[a];
    if (exhausted_[a]) return a < b;
    return ReaderLess(a, b);
  }

  // ---- binary heap -------------------------------------------------------

  bool AdvanceHeapTop() {
    const std::size_t top = heap_.front();
    if (readers_[top]->Next()) {
      SiftDown(0);
    } else if (!readers_[top]->status().ok()) {
      status_ = readers_[top]->status();
      heap_.clear();
      return false;
    } else {
      heap_.front() = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) SiftDown(0);
    }
    return true;
  }

  void BuildHeap() {
    if (heap_.empty()) return;
    for (std::size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && ReaderLess(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && ReaderLess(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  // ---- loser tree --------------------------------------------------------
  // Nodes 1..n-1 hold the loser of their subtree's playoff; reader i sits
  // at implicit leaf n+i (valid for any n >= 2: every internal node has
  // two children in [2, 2n)). The bracket's shape does not affect the
  // winner — PlayoffLess is a strict total order, so the minimum always
  // reaches the top.

  void BuildLoserTree() {
    const std::size_t n = readers_.size();
    tree_.assign(n, 0);
    std::vector<std::size_t> win(2 * n);
    for (std::size_t j = n; j < 2 * n; ++j) win[j] = j - n;
    for (std::size_t j = n; j-- > 1;) {
      const std::size_t a = win[2 * j];
      const std::size_t b = win[2 * j + 1];
      const bool a_wins = PlayoffLess(a, b);
      win[j] = a_wins ? a : b;
      tree_[j] = a_wins ? b : a;
    }
    winner_ = win[1];
  }

  bool AdvanceLoserTop() {
    const std::size_t w = winner_;
    if (!readers_[w]->Next()) {
      if (!readers_[w]->status().ok()) {
        status_ = readers_[w]->status();
        return false;
      }
      exhausted_[w] = 1;
    }
    // Replay the leaf-to-root path: one comparison per level.
    std::size_t cur = w;
    for (std::size_t j = (readers_.size() + w) / 2; j >= 1; j /= 2) {
      if (PlayoffLess(tree_[j], cur)) std::swap(cur, tree_[j]);
    }
    winner_ = cur;
    return true;
  }

  std::vector<std::unique_ptr<internal::FlatSegmentReader<K, V>>> readers_;
  std::vector<uint8_t> exhausted_;  ///< per reader; loser tree + Empty()
  bool use_loser_tree_ = false;
  std::vector<std::size_t> heap_;
  std::vector<std::size_t> tree_;  ///< loser ids at internal nodes 1..n-1
  std::size_t winner_ = 0;
  bool current_loaded_ = false;
  K key_{};
  Status status_;
};

/// \brief GroupValues-shaped cursor over one flat reduce group (declared in
/// job.h). Groups are delimited by bucket changes — by the traits contract
/// that equals the job's grouping comparator. Next/key/value are direct
/// (non-virtual) calls and value() is a zero-copy View, which is what lets
/// the reduce cores score straight out of the segment arena.
/// Protocol mirrors the legacy GroupCursor: the group's first record is
/// already loaded in the stream at construction.
template <typename K, typename V>
class FlatGroupCursor {
 public:
  using View = typename FlatShuffleTraits<K, V>::View;

  FlatGroupCursor(FlatMergeStream<K, V>* stream, uint64_t group_bucket)
      : stream_(stream), group_bucket_(group_bucket) {}

  bool Next() {
    if (done_) return false;
    if (first_pending_) {
      first_pending_ = false;
      return true;
    }
    if (!stream_->Advance()) {
      done_ = true;
      next_group_loaded_ = false;
      return false;
    }
    if (stream_->bucket() != group_bucket_) {
      done_ = true;
      next_group_loaded_ = true;
      return false;
    }
    return true;
  }

  const K& key() const { return stream_->key(); }
  View value() const { return stream_->value(); }

  /// Drains any values the reducer did not consume (early termination) and
  /// reports whether the stream stopped on the first record of the next
  /// group (true) or at end-of-stream (false).
  bool FinishGroup() {
    while (Next()) {
    }
    return next_group_loaded_;
  }

 private:
  FlatMergeStream<K, V>* stream_;
  uint64_t group_bucket_;
  bool first_pending_ = true;
  bool done_ = false;
  bool next_group_loaded_ = false;
};

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_MERGE_H_
