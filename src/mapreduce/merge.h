#ifndef SPQ_MAPREDUCE_MERGE_H_
#define SPQ_MAPREDUCE_MERGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "mapreduce/codec.h"
#include "mapreduce/spill.h"

namespace spq::mapreduce {

/// \brief One sorted run of serialized (K, V) records — the unit a map task
/// ships to a reduce partition (a Hadoop map-output spill segment).
/// Lives either in memory (`bytes`) or on disk (`spill_path`).
struct SortedSegment {
  std::vector<uint8_t> bytes;
  uint64_t num_records = 0;
  /// Non-empty when the segment was spilled to disk; `bytes` is then empty.
  std::string spill_path;
  /// Serialized size, regardless of where the segment lives.
  uint64_t byte_size = 0;
};

namespace internal {

/// Decodes records lazily off a SortedSegment, transparently reading
/// spilled segments back from disk.
template <typename K, typename V>
class SegmentReader {
 public:
  explicit SegmentReader(const SortedSegment* segment)
      : segment_(segment), reader_(nullptr, 0) {
    if (!segment->spill_path.empty()) {
      auto bytes = ReadSpillFile(segment->spill_path);
      if (!bytes.ok()) {
        status_ = bytes.status();
        return;
      }
      owned_bytes_ = *std::move(bytes);
      reader_ = BufferReader(owned_bytes_.data(), owned_bytes_.size());
    } else {
      reader_ = BufferReader(segment->bytes.data(), segment->bytes.size());
    }
  }

  /// Decodes the next record into key()/value(). False at end-of-segment.
  /// Decode errors are latched into status().
  bool Next() {
    if (!status_.ok() || read_ >= segment_->num_records) return false;
    Status st = Codec<K>::Decode(reader_, &key_);
    if (st.ok()) st = Codec<V>::Decode(reader_, &value_);
    if (!st.ok()) {
      status_ = st;
      return false;
    }
    ++read_;
    return true;
  }

  const K& key() const { return key_; }
  const V& value() const { return value_; }
  const Status& status() const { return status_; }

 private:
  const SortedSegment* segment_;
  std::vector<uint8_t> owned_bytes_;  // backing store for spilled segments
  BufferReader reader_;
  uint64_t read_ = 0;
  K key_{};
  V value_{};
  Status status_;
};

}  // namespace internal

/// \brief K-way merge over the sorted segments a reduce partition received
/// from all map tasks — the "merge" half of Hadoop's sort/merge shuffle.
///
/// Records come out in sort_less order; ties across segments break by
/// segment index, so the merge is deterministic and stable with respect to
/// map task order.
template <typename K, typename V>
class MergeStream {
 public:
  MergeStream(const std::vector<const SortedSegment*>& segments,
              std::function<bool(const K&, const K&)> sort_less)
      : sort_less_(std::move(sort_less)) {
    readers_.reserve(segments.size());
    for (const SortedSegment* seg : segments) {
      readers_.push_back(
          std::make_unique<internal::SegmentReader<K, V>>(seg));
    }
    // Prime every reader and build the initial heap of live readers.
    for (std::size_t i = 0; i < readers_.size(); ++i) {
      if (readers_[i]->Next()) {
        heap_.push_back(i);
      } else if (!readers_[i]->status().ok()) {
        status_ = readers_[i]->status();
      }
    }
    BuildHeap();
  }

  /// Loads the next record in global sorted order. False when exhausted or
  /// after a decode error (check status()).
  bool Advance() {
    if (!status_.ok() || heap_.empty()) return false;
    const std::size_t top = heap_.front();
    key_ = readers_[top]->key();
    value_ = readers_[top]->value();
    // Refill the winning reader and restore the heap.
    if (readers_[top]->Next()) {
      SiftDown(0);
    } else {
      if (!readers_[top]->status().ok()) {
        // The record copied above is still valid; surface the decode error
        // on the *next* Advance so no shuffled record is silently dropped.
        status_ = readers_[top]->status();
        heap_.clear();
        return true;
      }
      heap_.front() = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) SiftDown(0);
    }
    return true;
  }

  const K& key() const { return key_; }
  const V& value() const { return value_; }
  const Status& status() const { return status_; }

 private:
  /// True when reader a's current record precedes reader b's.
  bool ReaderLess(std::size_t a, std::size_t b) const {
    const K& ka = readers_[a]->key();
    const K& kb = readers_[b]->key();
    if (sort_less_(ka, kb)) return true;
    if (sort_less_(kb, ka)) return false;
    return a < b;  // deterministic tie-break by map task index
  }

  void BuildHeap() {
    if (heap_.empty()) return;
    for (std::size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && ReaderLess(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && ReaderLess(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::function<bool(const K&, const K&)> sort_less_;
  std::vector<std::unique_ptr<internal::SegmentReader<K, V>>> readers_;
  std::vector<std::size_t> heap_;
  K key_{};
  V value_{};
  Status status_;
};

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_MERGE_H_
