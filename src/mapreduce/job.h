#ifndef SPQ_MAPREDUCE_JOB_H_
#define SPQ_MAPREDUCE_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/counters.h"
#include "mapreduce/fault.h"

namespace spq {
class ThreadPool;
}  // namespace spq

namespace spq::mapreduce {

/// \brief How map outputs are ordered and laid out for the shuffle.
enum class ShuffleMode {
  /// The seed's Hadoop-like path: per-partition comparison stable_sort
  /// through the std::function sort comparator, records serialized
  /// through Codec<K>/Codec<V> and decoded again in the reduce merge.
  /// Retained for A/B benchmarking (bench_shuffle) and as the only path
  /// for jobs without flat-shuffle support.
  kLegacySort,
  /// Sort-free path for jobs whose keys expose radix structure
  /// (FlatShuffleTraits, merge.h): map outputs are bucketed by the key's
  /// primary component and each bucket is sorted on an 8-byte order key;
  /// segments use the flat-arena layout and reducers read zero-copy
  /// record views. Falls back to kLegacySort when the job's (K, V) has
  /// no FlatShuffleTraits specialization or no flat reducer.
  kCellBucketed,
};

/// \brief Static configuration of a MapReduce job run.
///
/// `num_reduce_tasks` is the R of the paper — one reduce partition per grid
/// cell when R == number of cells. `num_workers` is the simulated cluster
/// parallelism: how many task slots execute concurrently. Hadoop separates
/// these the same way (tasks vs. containers).
struct JobConfig {
  uint32_t num_map_tasks = 8;
  uint32_t num_reduce_tasks = 8;
  uint32_t num_workers = 8;
  /// Maximum attempts per task before the job aborts (Hadoop default: 4).
  int max_task_attempts = 4;
  FaultSpec faults;
  std::string job_name = "job";
  /// When non-empty, sorted map-output segments are spilled to files under
  /// this directory and read back in the reduce phase (out-of-core
  /// shuffle). Files are removed when the job finishes.
  std::string spill_dir;
  /// Shuffle layout/sort strategy; see ShuffleMode.
  ShuffleMode shuffle_mode = ShuffleMode::kCellBucketed;
  /// Optional shared worker pool. When null the runtime spins up a private
  /// ThreadPool(num_workers) per job; a long-lived engine passes its own
  /// pool instead so warm queries skip per-job thread creation and
  /// concurrent jobs share one set of cluster slots. The pool must outlive
  /// the job; any number of concurrent jobs may share it (ParallelFor
  /// completion is tracked per call, not per pool).
  ThreadPool* worker_pool = nullptr;
};

/// \brief Everything the runtime measures about one job execution.
struct JobStats {
  double map_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;

  uint64_t input_records = 0;
  uint64_t map_output_records = 0;
  /// Bytes crossing the simulated network in the shuffle (sum over all
  /// sorted map-output segments).
  uint64_t shuffle_bytes = 0;

  /// Per reduce-partition record counts — the skew the paper's clustered
  /// experiment stresses.
  std::vector<uint64_t> reduce_input_records;
  /// Wall time of each task's successful attempt.
  std::vector<double> map_task_seconds;
  std::vector<double> reduce_task_seconds;

  uint32_t map_task_failures = 0;
  uint32_t reduce_task_failures = 0;
  /// Injected (or real) storage corruptions the CRC framing caught and the
  /// retry machinery recovered from: spill writes that failed their
  /// verify-after-write, and reduce-side spill reads that hit a short read
  /// or page checksum mismatch. Each one cost a task attempt, never a
  /// wrong record.
  uint32_t storage_fault_detections = 0;

  Counters counters;

  uint64_t MaxReduceRecords() const {
    uint64_t m = 0;
    for (uint64_t v : reduce_input_records) m = std::max(m, v);
    return m;
  }

  /// max/mean reduce partition size; 1.0 = perfectly balanced.
  double ReduceSkew() const {
    if (reduce_input_records.empty()) return 1.0;
    uint64_t total = 0;
    for (uint64_t v : reduce_input_records) total += v;
    if (total == 0) return 1.0;
    const double mean =
        static_cast<double>(total) / reduce_input_records.size();
    return static_cast<double>(MaxReduceRecords()) / mean;
  }

  /// max/mean successful reduce attempt wall time; the straggler factor
  /// that determines job completion when all tasks run in one wave.
  double ReduceStragglerRatio() const;

  /// Longest single reduce task, seconds.
  double MaxReduceTaskSeconds() const;
};

/// Multi-line human-readable dump of the stats (used by examples/benches).
std::string FormatJobStats(const JobStats& stats);

/// \brief Map-side emitter handed to Mapper::Map.
template <typename K, typename V>
class MapContext {
 public:
  virtual ~MapContext() = default;
  /// Emits one intermediate record. The value is copied into the task's
  /// partition buffers and serialized when the attempt's segments are laid
  /// out; a value holding borrowed storage (e.g. a ShuffleObject keyword
  /// span aliasing the map input — the O(1) duplication path) is therefore
  /// legal as long as the borrowed storage outlives the job, which the
  /// runtime guarantees for its input records.
  virtual void Emit(const K& key, const V& value) = 0;
  /// Task-local counters (merged into JobStats on attempt success).
  virtual Counters& counters() = 0;
};

/// \brief User map function: input record -> zero or more (K, V) pairs.
template <typename In, typename K, typename V>
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(const In& record, MapContext<K, V>& ctx) = 0;
};

/// \brief Lazy iterator over the values of one reduce group, in the order
/// imposed by the job's sort comparator (Hadoop secondary sort).
///
/// key() exposes the *full* composite key of the current value — exactly
/// like Hadoop, where the key object observed inside reduce() mutates as
/// the value iterator advances. eSPQsco reads the map-computed score from
/// there. A reducer that returns without draining the stream terminates the
/// group early; the runtime skips the remaining values.
template <typename K, typename V>
class GroupValues {
 public:
  virtual ~GroupValues() = default;
  /// Advances to the next value; false at end of group.
  virtual bool Next() = 0;
  /// Composite key of the current value. Valid after a true Next().
  virtual const K& key() const = 0;
  /// Current value. Valid after a true Next().
  virtual const V& value() const = 0;
};

/// \brief Reduce-side emitter.
template <typename Out>
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  virtual void Emit(const Out& record) = 0;
  virtual Counters& counters() = 0;
};

/// \brief User reduce function, invoked once per group.
template <typename K, typename V, typename Out>
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const K& group_key, GroupValues<K, V>& values,
                      ReduceContext<Out>& ctx) = 0;
};

/// Concrete (non-virtual) group cursor of the flat-arena shuffle path;
/// defined in merge.h. Its value() returns FlatShuffleTraits<K,V>::View —
/// a zero-copy view into the segment arena — instead of a decoded V.
template <typename K, typename V>
class FlatGroupCursor;

/// \brief Full description of a job: user logic plus the three pluggable
/// Hadoop customization points the paper relies on (Section 2.1): the
/// Partitioner, the sort Comparator and the grouping Comparator.
template <typename In, typename K, typename V, typename Out>
struct JobSpec {
  std::function<std::unique_ptr<Mapper<In, K, V>>()> mapper_factory;
  std::function<std::unique_ptr<Reducer<K, V, Out>>()> reducer_factory;
  /// key -> reduce partition in [0, num_reduce_tasks).
  std::function<uint32_t(const K&, uint32_t)> partitioner;
  /// Strict weak ordering of composite keys (controls value order).
  std::function<bool(const K&, const K&)> sort_less;
  /// Equivalence used to delimit reduce groups (coarser than sort_less).
  std::function<bool(const K&, const K&)> group_equal;

  /// Flat-shuffle reduce entry point, used when FlatShuffleTraits<K, V> is
  /// specialized and config.shuffle_mode == kCellBucketed. The outer
  /// factory runs once per reduce attempt (stateful reducers capture their
  /// state in the returned callable); the inner callable runs once per
  /// group with a zero-copy cursor. The dispatch cost is one std::function
  /// call per *group*; every per-record call inside the cursor is direct.
  /// When unset, the job always takes the legacy path.
  using FlatReduceFn =
      std::function<void(const K&, FlatGroupCursor<K, V>&, ReduceContext<Out>&)>;
  std::function<FlatReduceFn()> flat_reducer_factory;
};

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_JOB_H_
