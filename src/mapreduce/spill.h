#ifndef SPQ_MAPREDUCE_SPILL_H_
#define SPQ_MAPREDUCE_SPILL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "mapreduce/fault.h"

namespace spq::mapreduce {

/// \brief Disk persistence for map-output segments (Hadoop spill files).
///
/// With JobConfig::spill_dir set, every sorted map-output segment is
/// written to its own file and dropped from memory; reduce tasks read the
/// files back when they merge. This bounds the runtime's resident shuffle
/// memory to the segments a reduce task is actively merging, at the cost
/// of one write + one read per segment — exactly Hadoop's trade.
///
/// On-disk framing: spill files are checksummed per page, like HDFS's
/// per-chunk CRCs. The payload ("body") is written verbatim at offset 0 —
/// so region offsets into the segment image stay plain body offsets —
/// followed by a CRC-32C table (one u32 per kSpillPageBytes page of body)
/// and a fixed trailer {body_len u64, page_size u32, n_pages u32,
/// table_crc u32, magic u32}. Readers verify each page before serving its
/// bytes: corruption (bit rot, torn writes, injected faults) surfaces as
/// IOError — never as garbage records.

/// Body bytes covered by one CRC entry (the HDFS-style checksum chunk).
inline constexpr std::size_t kSpillPageBytes = 64 * 1024;
/// Fixed trailer size in bytes; the CRC table sits immediately before it.
inline constexpr std::size_t kSpillTrailerBytes = 24;

/// \brief RAII activation of deterministic storage-fault injection for
/// spill I/O on the current thread (FaultSpec::storage_fault_prob).
///
/// The job runtime scopes one of these around each map attempt's spill
/// writes and each reduce attempt's spill reads, salting the fault sites
/// with (run, task, attempt) — a retried attempt therefore re-rolls its
/// faults and converges. Inactive (zero-cost reads aside) when `spec` is
/// null or has no storage faults. Not nestable; thread-local.
class ScopedStorageFaults {
 public:
  ScopedStorageFaults(const FaultSpec* spec, uint64_t salt);
  ~ScopedStorageFaults();

  ScopedStorageFaults(const ScopedStorageFaults&) = delete;
  ScopedStorageFaults& operator=(const ScopedStorageFaults&) = delete;
};

/// Writes `bytes` to `path` with page-CRC framing (creating parent
/// directories). Overwrites. Under an active ScopedStorageFaults scope the
/// write may be deterministically torn or bit-flipped, and is then read
/// back and verified (the HDFS write-pipeline ack): a faulted image
/// surfaces as IOError here so the task attempt can retry.
Status WriteSpillFile(const std::string& path,
                      const std::vector<uint8_t>& bytes);

/// Reads a spill file's body back in full, verifying the framing and every
/// page CRC. IOError on any mismatch — corrupt bytes are never returned.
StatusOr<std::vector<uint8_t>> ReadSpillFile(const std::string& path);

/// Deletes a spill file; missing files are not an error (idempotent).
void RemoveSpillFile(const std::string& path);

/// Returns a collision-free spill path for map task `map_task`, reduce
/// partition `reduce_part` of run `run_id` under `dir`.
std::string SpillPath(const std::string& dir, uint64_t run_id,
                      uint32_t map_task, uint32_t reduce_part);

/// Process-unique run id for spill file naming.
uint64_t NextSpillRunId();

/// \brief Sequential reader over one byte region of a spill file through a
/// fixed-size buffer, so reduce tasks never hold whole segments in memory.
/// The one windowed-streaming primitive of the runtime: both the flat
/// segment cursors and the legacy varint SegmentReader (merge.h) sit on
/// it, so there is a single compact/refill/grow implementation.
///
/// Two access protocols share the buffer machinery:
///
///  - Fetch-at-least-N: Fetch(n) returns a pointer to the region's next n
///    contiguous bytes, refilling from disk as needed; the pointer stays
///    valid until the next Fetch/FetchMore. For fixed-stride readers that
///    know each record's size up front.
///  - Peek-available: peek_data()/peek_len() expose the buffered,
///    unconsumed window; Consume(n) retires a decoded prefix and
///    FetchMore() widens the window by at least one byte (growing the
///    buffer geometrically when a single record exceeds it). For decoders
///    that only discover a record's size by attempting to parse it.
///
/// The buffer grows beyond `buffer_capacity` only when a single record
/// needs it (one oversized Fetch, or repeated FetchMore without Consume),
/// and shrinks back on the next refill cycle. As long as every Fetch size
/// is a multiple of A and the region offset is A-aligned, Fetch pointers
/// are A-aligned (refills compact to the buffer front).
///
/// The file is opened transiently per refill (open, seek, read one
/// buffer, close), never held across Fetches: a reduce task merging M
/// spilled segments with 3 region cursors each would otherwise pin 3*M
/// descriptors for the whole merge and exhaust the fd limit under high
/// fan-in — the open cost is a few microseconds per 64 KiB, only on the
/// out-of-core path.
class SpillRegionReader {
 public:
  static constexpr std::size_t kDefaultBufferBytes = 64 * 1024;

  SpillRegionReader() = default;
  SpillRegionReader(SpillRegionReader&&) = default;
  SpillRegionReader& operator=(SpillRegionReader&&) = default;

  /// Positions the reader at byte `offset` of `path`; the region spans
  /// `length` bytes. Fetching past the region fails OutOfRange; a
  /// missing/unreadable file surfaces as IOError on the first Fetch that
  /// needs it.
  void Open(std::string path, uint64_t offset, uint64_t length,
            std::size_t buffer_capacity = kDefaultBufferBytes);

  /// Next `n` bytes of the region; valid until the next Fetch/FetchMore.
  Status Fetch(std::size_t n, const uint8_t** out);

  /// The buffered, unconsumed window (peek-available protocol). Pointers
  /// are valid until the next Fetch/FetchMore.
  const uint8_t* peek_data() const { return buf_.data() + pos_; }
  std::size_t peek_len() const { return len_ - pos_; }

  /// Retires `n` peeked bytes (n <= peek_len()).
  void Consume(std::size_t n);

  /// Widens the peek window by at least one byte, reading more of the
  /// region from disk (doubling the buffer when the window already fills
  /// it). OutOfRange once the region is fully buffered or consumed —
  /// callers holding a half-decoded record then know the region is
  /// truncated.
  Status FetchMore();

  /// Bytes of the region not yet returned by Fetch/Consume.
  uint64_t remaining() const { return region_remaining_; }

 private:
  static constexpr uint64_t kNoPage = ~0ull;

  /// Moves the unconsumed tail to the buffer front.
  void Compact();
  /// Reads from disk until len_ >= min_len, opportunistically filling the
  /// whole buffer (one transient open/seek per call). Every byte served is
  /// copied out of a CRC-verified page; a region reaching past the framed
  /// body length is truncated (OutOfRange).
  Status FillTo(std::size_t min_len);
  Status Refill(std::size_t need);
  /// Lazily parses + verifies the file's framing trailer and CRC table.
  Status EnsureFraming(std::ifstream& in);
  /// Loads body page `page` into scratch_ and verifies its CRC (cached, so
  /// sub-page refills re-read at most one page). IOError on short reads or
  /// checksum mismatch — injected or real.
  Status LoadPage(std::ifstream& in, uint64_t page, uint64_t page_start,
                  std::size_t page_len);

  std::string path_;
  uint64_t next_read_offset_ = 0;  ///< body offset of the next refill
  std::vector<uint8_t> buf_;
  std::size_t capacity_ = 0;
  std::size_t pos_ = 0;            ///< consumed bytes within buf_
  std::size_t len_ = 0;            ///< valid bytes within buf_
  uint64_t file_remaining_ = 0;    ///< region bytes not yet read from disk
  uint64_t region_remaining_ = 0;  ///< region bytes not yet fetched

  // Framing state (loaded lazily on the first refill).
  bool framing_loaded_ = false;
  uint64_t body_len_ = 0;
  uint32_t page_size_ = 0;
  std::vector<uint32_t> page_crcs_;
  std::vector<uint8_t> scratch_;   ///< last verified page
  uint64_t cached_page_ = kNoPage;
};

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_SPILL_H_
