#ifndef SPQ_MAPREDUCE_SPILL_H_
#define SPQ_MAPREDUCE_SPILL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace spq::mapreduce {

/// \brief Disk persistence for map-output segments (Hadoop spill files).
///
/// With JobConfig::spill_dir set, every sorted map-output segment is
/// written to its own file and dropped from memory; reduce tasks read the
/// files back when they merge. This bounds the runtime's resident shuffle
/// memory to the segments a reduce task is actively merging, at the cost
/// of one write + one read per segment — exactly Hadoop's trade.

/// Writes `bytes` to `path` (creating parent directories). Overwrites.
Status WriteSpillFile(const std::string& path,
                      const std::vector<uint8_t>& bytes);

/// Reads a spill file back in full.
StatusOr<std::vector<uint8_t>> ReadSpillFile(const std::string& path);

/// Deletes a spill file; missing files are not an error (idempotent).
void RemoveSpillFile(const std::string& path);

/// Returns a collision-free spill path for map task `map_task`, reduce
/// partition `reduce_part` of run `run_id` under `dir`.
std::string SpillPath(const std::string& dir, uint64_t run_id,
                      uint32_t map_task, uint32_t reduce_part);

/// Process-unique run id for spill file naming.
uint64_t NextSpillRunId();

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_SPILL_H_
