#ifndef SPQ_MAPREDUCE_FAULT_H_
#define SPQ_MAPREDUCE_FAULT_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace spq::mapreduce {

/// \brief What a deterministic storage fault does to one I/O site.
///
/// These are the classic disk/pipeline failure modes a checksummed store
/// must detect: a write that persists only a prefix (power loss mid-write),
/// a read that returns fewer bytes than the metadata claims, and a read or
/// replica whose payload was silently bit-flipped. Detection is always via
/// CRC/length verification — injected faults must surface as errors (and
/// retries / replica failover), never as garbage data served.
enum class StorageFaultKind : uint8_t {
  kNone = 0,
  kTornWrite = 1,    ///< only a prefix of the bytes reaches the medium
  kShortRead = 2,    ///< the read returns fewer bytes than requested
  kCorruptByte = 3,  ///< one bit of the payload is flipped
};

/// \brief Deterministic fault-injection policy for task attempts.
///
/// Models the transient task failures a real cluster sees (lost node,
/// preempted container): a task *attempt* may fail; the runtime re-executes
/// it, exactly like Hadoop's speculative re-execution of failed attempts.
/// Failures are a pure function of (task kind, task id, attempt, seed) so
/// runs are reproducible and a retried attempt can be made to succeed.
///
/// `storage_fault_prob` extends the model below the task layer: individual
/// storage operations (spill file writes/reads, MiniDfs block replicas)
/// fail per StorageFaultKind, keyed by a per-site hash that includes the
/// attempt salt — so a retried attempt re-rolls its storage faults and the
/// job still converges.
struct FaultSpec {
  /// Probability that any given map task attempt fails mid-run.
  double map_failure_prob = 0.0;
  /// Probability that any given reduce task attempt fails mid-run.
  double reduce_failure_prob = 0.0;
  /// Probability that one storage I/O site (a spill write, a spill read
  /// page, a block replica) suffers a StorageFaultKind.
  double storage_fault_prob = 0.0;
  /// Salt for the failure hash.
  uint64_t seed = 0;

  bool enabled() const {
    return map_failure_prob > 0.0 || reduce_failure_prob > 0.0 ||
           storage_fault_prob > 0.0;
  }
  bool storage_enabled() const { return storage_fault_prob > 0.0; }
};

/// Decides whether attempt `attempt` of task `task_id` fails.
/// `kind` is 0 for map, 1 for reduce.
inline bool AttemptFails(const FaultSpec& spec, int kind, uint32_t task_id,
                         int attempt) {
  const double p =
      kind == 0 ? spec.map_failure_prob : spec.reduce_failure_prob;
  if (p <= 0.0) return false;
  uint64_t h = Mix64(spec.seed ^ Mix64((static_cast<uint64_t>(kind) << 48) ^
                                       (static_cast<uint64_t>(task_id) << 16) ^
                                       static_cast<uint64_t>(attempt)));
  // Map the hash to [0,1) and compare.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

/// Decides whether the storage operation identified by `site` suffers a
/// fault, and which kind. `site` should hash together everything that
/// names the operation (path, page/block, direction) AND the attempt salt,
/// so a retried attempt sees an independent roll. Pure function of
/// (spec.seed, site): reruns reproduce the same faults.
inline StorageFaultKind StorageFaultAt(const FaultSpec& spec, uint64_t site) {
  if (spec.storage_fault_prob <= 0.0) return StorageFaultKind::kNone;
  const uint64_t h = Mix64(spec.seed ^ Mix64(site ^ 0x53544f5241474546ull));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= spec.storage_fault_prob) return StorageFaultKind::kNone;
  return static_cast<StorageFaultKind>(1 + (h % 3));
}

/// Applies a write-side fault to a byte image about to hit the medium:
/// kTornWrite truncates to a deterministic prefix, kCorruptByte flips one
/// bit. kShortRead is a read-side fault and leaves the image alone (the
/// reader injects it). Returns true when the image was mutated.
inline bool CorruptImageForWrite(StorageFaultKind kind, uint64_t site,
                                 std::vector<uint8_t>* image) {
  if (image->empty()) return false;
  const uint64_t h = Mix64(site ^ 0x494d414745ull);
  switch (kind) {
    case StorageFaultKind::kTornWrite:
      image->resize(h % image->size());  // keep a strict prefix
      return true;
    case StorageFaultKind::kCorruptByte:
      (*image)[h % image->size()] ^= static_cast<uint8_t>(1u << (h >> 61));
      return true;
    case StorageFaultKind::kShortRead:
    case StorageFaultKind::kNone:
      return false;
  }
  return false;
}

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_FAULT_H_
