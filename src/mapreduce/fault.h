#ifndef SPQ_MAPREDUCE_FAULT_H_
#define SPQ_MAPREDUCE_FAULT_H_

#include <cstdint>

#include "common/hash.h"

namespace spq::mapreduce {

/// \brief Deterministic fault-injection policy for task attempts.
///
/// Models the transient task failures a real cluster sees (lost node,
/// preempted container): a task *attempt* may fail; the runtime re-executes
/// it, exactly like Hadoop's speculative re-execution of failed attempts.
/// Failures are a pure function of (task kind, task id, attempt, seed) so
/// runs are reproducible and a retried attempt can be made to succeed.
struct FaultSpec {
  /// Probability that any given map task attempt fails mid-run.
  double map_failure_prob = 0.0;
  /// Probability that any given reduce task attempt fails mid-run.
  double reduce_failure_prob = 0.0;
  /// Salt for the failure hash.
  uint64_t seed = 0;

  bool enabled() const {
    return map_failure_prob > 0.0 || reduce_failure_prob > 0.0;
  }
};

/// Decides whether attempt `attempt` of task `task_id` fails.
/// `kind` is 0 for map, 1 for reduce.
inline bool AttemptFails(const FaultSpec& spec, int kind, uint32_t task_id,
                         int attempt) {
  const double p =
      kind == 0 ? spec.map_failure_prob : spec.reduce_failure_prob;
  if (p <= 0.0) return false;
  uint64_t h = Mix64(spec.seed ^ Mix64((static_cast<uint64_t>(kind) << 48) ^
                                       (static_cast<uint64_t>(task_id) << 16) ^
                                       static_cast<uint64_t>(attempt)));
  // Map the hash to [0,1) and compare.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_FAULT_H_
