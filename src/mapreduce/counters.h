#ifndef SPQ_MAPREDUCE_COUNTERS_H_
#define SPQ_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace spq::mapreduce {

/// \brief Named monotonic counters, in the spirit of Hadoop job counters.
///
/// Tasks increment thread-locally cheap copies (one Counters per task
/// attempt) and the runtime merges successful attempts into the job-level
/// instance, so a failed-and-retried task never double counts.
class Counters {
 public:
  Counters() = default;

  // Copyable and movable (value semantics over the snapshot) so that
  // JobStats can be returned by value; the mutex itself is not copied.
  Counters(const Counters& other) : values_(other.Snapshot()) {}
  Counters& operator=(const Counters& other);
  Counters(Counters&& other) noexcept : values_(other.Snapshot()) {}
  Counters& operator=(Counters&& other) noexcept;

  /// Adds `delta` to counter `name` (creating it at zero).
  void Increment(const std::string& name, uint64_t delta = 1);

  /// Current value of `name`, or 0 when never incremented.
  uint64_t Get(const std::string& name) const;

  /// Merges all counters of `other` into this one.
  void MergeFrom(const Counters& other);

  /// Snapshot of all counters, sorted by name.
  std::map<std::string, uint64_t> Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, uint64_t> values_;
};

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_COUNTERS_H_
