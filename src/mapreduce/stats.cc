#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>

#include "mapreduce/job.h"

namespace spq::mapreduce {

double JobStats::MaxReduceTaskSeconds() const {
  double m = 0.0;
  for (double s : reduce_task_seconds) m = std::max(m, s);
  return m;
}

double JobStats::ReduceStragglerRatio() const {
  if (reduce_task_seconds.empty()) return 1.0;
  const double total = std::accumulate(reduce_task_seconds.begin(),
                                       reduce_task_seconds.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double mean = total / reduce_task_seconds.size();
  return MaxReduceTaskSeconds() / mean;
}

std::string FormatJobStats(const JobStats& stats) {
  char line[256];
  std::string out;
  auto append = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  append("input records:        %llu\n",
         static_cast<unsigned long long>(stats.input_records));
  append("map output records:   %llu\n",
         static_cast<unsigned long long>(stats.map_output_records));
  append("shuffle bytes:        %llu\n",
         static_cast<unsigned long long>(stats.shuffle_bytes));
  append("map / reduce / total: %.3fs / %.3fs / %.3fs\n", stats.map_seconds,
         stats.reduce_seconds, stats.total_seconds);
  append("reduce partitions:    %zu (max %llu records, skew %.2f)\n",
         stats.reduce_input_records.size(),
         static_cast<unsigned long long>(stats.MaxReduceRecords()),
         stats.ReduceSkew());
  append("reduce stragglers:    max task %.3fs, straggler ratio %.2f\n",
         stats.MaxReduceTaskSeconds(), stats.ReduceStragglerRatio());
  if (stats.map_task_failures + stats.reduce_task_failures > 0) {
    append("task attempt failures: %u map, %u reduce (all retried)\n",
           stats.map_task_failures, stats.reduce_task_failures);
  }
  for (const auto& [name, value] : stats.counters.Snapshot()) {
    append("counter %-28s %llu\n", name.c_str(),
           static_cast<unsigned long long>(value));
  }
  return out;
}

}  // namespace spq::mapreduce
