#include "mapreduce/spill.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace spq::mapreduce {

Status WriteSpillFile(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create spill dir: " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open spill file: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IOError("spill write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ReadSpillFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open spill file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Status::IOError("spill read failed: " + path);
  return bytes;
}

void RemoveSpillFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

std::string SpillPath(const std::string& dir, uint64_t run_id,
                      uint32_t map_task, uint32_t reduce_part) {
  char name[96];
  std::snprintf(name, sizeof(name), "run%llu-m%u-r%u.seg",
                static_cast<unsigned long long>(run_id), map_task,
                reduce_part);
  return (std::filesystem::path(dir) / name).string();
}

uint64_t NextSpillRunId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1);
}

}  // namespace spq::mapreduce
