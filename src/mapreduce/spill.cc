#include "mapreduce/spill.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32c.h"
#include "common/hash.h"
#include "mapreduce/codec.h"

namespace spq::mapreduce {

namespace {

/// Spill framing magic, last 4 bytes of every spill file ("SPQ1").
constexpr uint32_t kSpillMagic = 0x53505131;

// Active storage-fault injection scope for this thread (see
// ScopedStorageFaults). Spill I/O helpers consult these at read/write
// time; the runtime sets them around task attempts.
thread_local const FaultSpec* tl_spill_fault_spec = nullptr;
thread_local uint64_t tl_spill_fault_salt = 0;

/// FNV-1a over the path so fault sites are stable across runs (std::hash
/// makes no such promise).
uint64_t PathHash(const std::string& path) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : path) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  }
  return h;
}

std::size_t NumPages(uint64_t body_len, uint64_t page_size) {
  return body_len == 0
             ? 0
             : static_cast<std::size_t>((body_len + page_size - 1) / page_size);
}

/// Body + per-page CRC table + trailer, ready to hit disk.
std::vector<uint8_t> FrameSpillImage(const std::vector<uint8_t>& body) {
  const uint64_t page_size = kSpillPageBytes;
  const std::size_t n_pages = NumPages(body.size(), page_size);
  std::vector<uint8_t> image = body;
  image.reserve(body.size() + 4 * n_pages + kSpillTrailerBytes);
  const std::size_t table_off = image.size();
  uint8_t tmp[8];
  for (std::size_t p = 0; p < n_pages; ++p) {
    const std::size_t start = p * page_size;
    const std::size_t len =
        std::min<std::size_t>(page_size, body.size() - start);
    wire::StoreU32(tmp, Crc32c(body.data() + start, len));
    image.insert(image.end(), tmp, tmp + 4);
  }
  uint8_t head[16];
  wire::StoreU64(head, body.size());
  wire::StoreU32(head + 8, static_cast<uint32_t>(page_size));
  wire::StoreU32(head + 12, static_cast<uint32_t>(n_pages));
  const uint32_t table_crc =
      Crc32c(head, 16, Crc32c(image.data() + table_off, 4 * n_pages));
  image.insert(image.end(), head, head + 16);
  wire::StoreU32(tmp, table_crc);
  image.insert(image.end(), tmp, tmp + 4);
  wire::StoreU32(tmp, kSpillMagic);
  image.insert(image.end(), tmp, tmp + 4);
  return image;
}

struct SpillFraming {
  uint64_t body_len = 0;
  uint32_t page_size = 0;
  uint32_t n_pages = 0;
};

/// Decodes + verifies the 24-byte trailer and CRC table given the file's
/// last `4*n_pages + 24` bytes and total size. IOError on any mismatch —
/// a torn or corrupted spill file never parses.
StatusOr<SpillFraming> VerifyFraming(const std::string& path,
                                     const uint8_t* tail,
                                     std::size_t tail_len,
                                     uint64_t file_size) {
  if (tail_len < kSpillTrailerBytes) {
    return Status::IOError("spill file missing framing trailer: " + path);
  }
  const uint8_t* trailer = tail + (tail_len - kSpillTrailerBytes);
  if (wire::LoadU32(trailer + 20) != kSpillMagic) {
    return Status::IOError("bad spill magic (torn or corrupt file): " + path);
  }
  SpillFraming f;
  f.body_len = wire::LoadU64(trailer);
  f.page_size = wire::LoadU32(trailer + 8);
  f.n_pages = wire::LoadU32(trailer + 12);
  const uint32_t table_crc = wire::LoadU32(trailer + 16);
  if (f.page_size == 0 || f.n_pages != NumPages(f.body_len, f.page_size) ||
      file_size != f.body_len + 4ull * f.n_pages + kSpillTrailerBytes ||
      tail_len != 4ull * f.n_pages + kSpillTrailerBytes) {
    return Status::IOError("corrupt spill framing: " + path);
  }
  const uint32_t actual =
      Crc32c(trailer, 16, Crc32c(tail, 4ull * f.n_pages));
  if (actual != table_crc) {
    return Status::IOError("spill CRC table checksum mismatch: " + path);
  }
  return f;
}

}  // namespace

ScopedStorageFaults::ScopedStorageFaults(const FaultSpec* spec,
                                         uint64_t salt) {
  if (spec != nullptr && spec->storage_enabled()) {
    tl_spill_fault_spec = spec;
    tl_spill_fault_salt = salt;
  }
}

ScopedStorageFaults::~ScopedStorageFaults() {
  tl_spill_fault_spec = nullptr;
  tl_spill_fault_salt = 0;
}

Status WriteSpillFile(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create spill dir: " + ec.message());
    }
  }
  std::vector<uint8_t> image = FrameSpillImage(bytes);
  const FaultSpec* spec = tl_spill_fault_spec;
  if (spec != nullptr) {
    // Injected write fault: tear or bit-flip the on-disk image. The
    // verify-after-write below (the HDFS write-pipeline ack) detects it.
    const uint64_t site = Mix64(tl_spill_fault_salt ^ PathHash(path) ^
                                0x53504c57525455ull);
    CorruptImageForWrite(StorageFaultAt(*spec, site), site, &image);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open spill file: " + path);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out) return Status::IOError("spill write failed: " + path);
  if (spec != nullptr) {
    // Read back and verify before acknowledging the write, so a faulted
    // spill fails the *writing* attempt (which re-rolls on retry) instead
    // of poisoning every reduce task that later reads it.
    auto verify = ReadSpillFile(path);
    if (!verify.ok()) {
      return Status::IOError("spill write verification failed: " +
                             verify.status().ToString());
    }
    if (verify->size() != bytes.size()) {
      return Status::IOError("spill write verification failed: size " +
                             std::to_string(verify->size()) + " != " +
                             std::to_string(bytes.size()));
    }
  }
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ReadSpillFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open spill file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> image(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(image.data()), size);
  if (!in) return Status::IOError("spill read failed: " + path);
  if (image.size() < kSpillTrailerBytes) {
    return Status::IOError("spill file missing framing trailer: " + path);
  }
  // The tail passed to VerifyFraming must start at the CRC table; its
  // offset comes from the trailer, so sanity-check before trusting it.
  const uint8_t* trailer = image.data() + image.size() - kSpillTrailerBytes;
  const uint64_t body_len = wire::LoadU64(trailer);
  if (body_len > image.size() - kSpillTrailerBytes) {
    return Status::IOError("corrupt spill framing: " + path);
  }
  SPQ_ASSIGN_OR_RETURN(
      SpillFraming framing,
      VerifyFraming(path, image.data() + body_len, image.size() - body_len,
                    image.size()));
  for (uint32_t page = 0; page < framing.n_pages; ++page) {
    const std::size_t start = static_cast<std::size_t>(page) *
                              framing.page_size;
    const std::size_t len = std::min<std::size_t>(
        framing.page_size, static_cast<std::size_t>(body_len) - start);
    const uint32_t expected =
        wire::LoadU32(image.data() + body_len + 4ull * page);
    if (Crc32c(image.data() + start, len) != expected) {
      return Status::IOError("spill page checksum mismatch: " + path +
                             " page " + std::to_string(page));
    }
  }
  image.resize(static_cast<std::size_t>(body_len));
  return image;
}

void RemoveSpillFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

std::string SpillPath(const std::string& dir, uint64_t run_id,
                      uint32_t map_task, uint32_t reduce_part) {
  char name[96];
  std::snprintf(name, sizeof(name), "run%llu-m%u-r%u.seg",
                static_cast<unsigned long long>(run_id), map_task,
                reduce_part);
  return (std::filesystem::path(dir) / name).string();
}

uint64_t NextSpillRunId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1);
}

void SpillRegionReader::Open(std::string path, uint64_t offset,
                             uint64_t length, std::size_t buffer_capacity) {
  path_ = std::move(path);
  next_read_offset_ = offset;
  capacity_ = buffer_capacity > 0 ? buffer_capacity : kDefaultBufferBytes;
  buf_.clear();
  pos_ = len_ = 0;
  file_remaining_ = length;
  region_remaining_ = length;
  framing_loaded_ = false;
  body_len_ = 0;
  page_size_ = 0;
  page_crcs_.clear();
  scratch_.clear();
  cached_page_ = kNoPage;
}

void SpillRegionReader::Compact() {
  if (pos_ > 0) {
    std::memmove(buf_.data(), buf_.data() + pos_, len_ - pos_);
    len_ -= pos_;
    pos_ = 0;
  }
}

Status SpillRegionReader::EnsureFraming(std::ifstream& in) {
  if (framing_loaded_) return Status::OK();
  in.seekg(0, std::ios::end);
  if (!in) return Status::IOError("cannot seek spill file: " + path_);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (file_size < kSpillTrailerBytes) {
    return Status::IOError("spill file missing framing trailer: " + path_);
  }
  uint8_t trailer[kSpillTrailerBytes];
  in.seekg(static_cast<std::streamoff>(file_size - kSpillTrailerBytes));
  in.read(reinterpret_cast<char*>(trailer), kSpillTrailerBytes);
  if (!in) return Status::IOError("cannot read spill trailer: " + path_);
  const uint64_t body_len = wire::LoadU64(trailer);
  if (body_len > file_size - kSpillTrailerBytes) {
    return Status::IOError("corrupt spill framing: " + path_);
  }
  std::vector<uint8_t> tail(
      static_cast<std::size_t>(file_size - body_len));
  in.seekg(static_cast<std::streamoff>(body_len));
  in.read(reinterpret_cast<char*>(tail.data()),
          static_cast<std::streamsize>(tail.size()));
  if (!in) return Status::IOError("cannot read spill CRC table: " + path_);
  SPQ_ASSIGN_OR_RETURN(
      SpillFraming framing,
      VerifyFraming(path_, tail.data(), tail.size(), file_size));
  body_len_ = framing.body_len;
  page_size_ = framing.page_size;
  page_crcs_.resize(framing.n_pages);
  for (uint32_t p = 0; p < framing.n_pages; ++p) {
    page_crcs_[p] = wire::LoadU32(tail.data() + 4ull * p);
  }
  framing_loaded_ = true;
  return Status::OK();
}

Status SpillRegionReader::LoadPage(std::ifstream& in, uint64_t page,
                                   uint64_t page_start,
                                   std::size_t page_len) {
  if (cached_page_ == page) return Status::OK();
  scratch_.resize(page_len);
  in.clear();
  in.seekg(static_cast<std::streamoff>(page_start));
  if (!in) return Status::IOError("cannot seek spill file: " + path_);
  in.read(reinterpret_cast<char*>(scratch_.data()),
          static_cast<std::streamsize>(page_len));
  std::size_t got = static_cast<std::size_t>(in.gcount());
  if (const FaultSpec* spec = tl_spill_fault_spec) {
    const uint64_t site = Mix64(tl_spill_fault_salt ^ PathHash(path_) ^
                                Mix64(page ^ 0x53504c52454144ull));
    const auto kind = StorageFaultAt(*spec, site);
    if (kind == StorageFaultKind::kShortRead && got > 0) {
      got = Mix64(site) % got;
    } else if (kind == StorageFaultKind::kCorruptByte && page_len > 0) {
      scratch_[Mix64(site) % page_len] ^=
          static_cast<uint8_t>(1u << (Mix64(site) >> 61));
    }
  }
  if (got < page_len) {
    return Status::IOError("short read of spill page " +
                           std::to_string(page) + ": " + path_);
  }
  if (Crc32c(scratch_.data(), page_len) != page_crcs_[page]) {
    return Status::IOError("spill page checksum mismatch: " + path_ +
                           " page " + std::to_string(page));
  }
  cached_page_ = page;
  return Status::OK();
}

Status SpillRegionReader::FillTo(std::size_t min_len) {
  // Transient handle: opened for this refill only (see class comment).
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IOError("cannot open spill file: " + path_);
  SPQ_RETURN_NOT_OK(EnsureFraming(in));
  while (len_ < min_len && file_remaining_ > 0) {
    const std::size_t space = buf_.size() - len_;
    if (space == 0) break;
    if (next_read_offset_ >= body_len_) {
      // The region claims more bytes than the framed body holds.
      return Status::OutOfRange("spill region truncated on disk");
    }
    const uint64_t page = next_read_offset_ / page_size_;
    const uint64_t page_start = page * page_size_;
    const std::size_t page_len = static_cast<std::size_t>(
        std::min<uint64_t>(page_size_, body_len_ - page_start));
    SPQ_RETURN_NOT_OK(LoadPage(in, page, page_start, page_len));
    const std::size_t off_in_page =
        static_cast<std::size_t>(next_read_offset_ - page_start);
    const std::size_t take = static_cast<std::size_t>(std::min<uint64_t>(
        {static_cast<uint64_t>(page_len - off_in_page),
         static_cast<uint64_t>(space), file_remaining_}));
    std::memcpy(buf_.data() + len_, scratch_.data() + off_in_page, take);
    len_ += take;
    file_remaining_ -= take;
    next_read_offset_ += take;
  }
  if (len_ < min_len) {
    return Status::OutOfRange("spill region exhausted mid-record");
  }
  return Status::OK();
}

Status SpillRegionReader::Refill(std::size_t need) {
  Compact();
  const std::size_t want = std::max(need, capacity_);
  if (buf_.size() != want) buf_.resize(want);
  return FillTo(need);
}

Status SpillRegionReader::Fetch(std::size_t n, const uint8_t** out) {
  if (n > region_remaining_) {
    return Status::OutOfRange("fetch past end of spill region");
  }
  if (len_ - pos_ < n) {
    SPQ_RETURN_NOT_OK(Refill(n));
  }
  *out = buf_.data() + pos_;
  pos_ += n;
  region_remaining_ -= n;
  return Status::OK();
}

void SpillRegionReader::Consume(std::size_t n) {
  pos_ += n;
  region_remaining_ -= n;
}

Status SpillRegionReader::FetchMore() {
  if (file_remaining_ == 0) {
    return Status::OutOfRange("spill region exhausted");
  }
  Compact();
  if (len_ == buf_.size()) {
    // The unconsumed window fills the buffer: one record is larger than
    // it, so grow geometrically (shrunk back by the next Refill cycle).
    buf_.resize(std::max(buf_.size() * 2, capacity_));
  } else if (buf_.size() < capacity_) {
    buf_.resize(capacity_);
  }
  return FillTo(len_ + 1);
}

}  // namespace spq::mapreduce
