#include "mapreduce/spill.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace spq::mapreduce {

Status WriteSpillFile(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create spill dir: " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open spill file: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IOError("spill write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ReadSpillFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open spill file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Status::IOError("spill read failed: " + path);
  return bytes;
}

void RemoveSpillFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

std::string SpillPath(const std::string& dir, uint64_t run_id,
                      uint32_t map_task, uint32_t reduce_part) {
  char name[96];
  std::snprintf(name, sizeof(name), "run%llu-m%u-r%u.seg",
                static_cast<unsigned long long>(run_id), map_task,
                reduce_part);
  return (std::filesystem::path(dir) / name).string();
}

uint64_t NextSpillRunId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1);
}

void SpillRegionReader::Open(std::string path, uint64_t offset,
                             uint64_t length, std::size_t buffer_capacity) {
  path_ = std::move(path);
  next_read_offset_ = offset;
  capacity_ = buffer_capacity > 0 ? buffer_capacity : kDefaultBufferBytes;
  buf_.clear();
  pos_ = len_ = 0;
  file_remaining_ = length;
  region_remaining_ = length;
}

void SpillRegionReader::Compact() {
  if (pos_ > 0) {
    std::memmove(buf_.data(), buf_.data() + pos_, len_ - pos_);
    len_ -= pos_;
    pos_ = 0;
  }
}

Status SpillRegionReader::FillTo(std::size_t min_len) {
  // Transient handle: opened for this refill only (see class comment).
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IOError("cannot open spill file: " + path_);
  in.seekg(static_cast<std::streamoff>(next_read_offset_));
  if (!in) return Status::IOError("cannot seek spill file: " + path_);
  while (len_ < min_len && file_remaining_ > 0) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<uint64_t>(file_remaining_, buf_.size() - len_));
    if (chunk == 0) break;
    in.read(reinterpret_cast<char*>(buf_.data() + len_),
            static_cast<std::streamsize>(chunk));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) {
      return Status::OutOfRange("spill region truncated on disk");
    }
    len_ += got;
    file_remaining_ -= got;
    next_read_offset_ += got;
  }
  if (len_ < min_len) {
    return Status::OutOfRange("spill region exhausted mid-record");
  }
  return Status::OK();
}

Status SpillRegionReader::Refill(std::size_t need) {
  Compact();
  const std::size_t want = std::max(need, capacity_);
  if (buf_.size() != want) buf_.resize(want);
  return FillTo(need);
}

Status SpillRegionReader::Fetch(std::size_t n, const uint8_t** out) {
  if (n > region_remaining_) {
    return Status::OutOfRange("fetch past end of spill region");
  }
  if (len_ - pos_ < n) {
    SPQ_RETURN_NOT_OK(Refill(n));
  }
  *out = buf_.data() + pos_;
  pos_ += n;
  region_remaining_ -= n;
  return Status::OK();
}

void SpillRegionReader::Consume(std::size_t n) {
  pos_ += n;
  region_remaining_ -= n;
}

Status SpillRegionReader::FetchMore() {
  if (file_remaining_ == 0) {
    return Status::OutOfRange("spill region exhausted");
  }
  Compact();
  if (len_ == buf_.size()) {
    // The unconsumed window fills the buffer: one record is larger than
    // it, so grow geometrically (shrunk back by the next Refill cycle).
    buf_.resize(std::max(buf_.size() * 2, capacity_));
  } else if (buf_.size() < capacity_) {
    buf_.resize(capacity_);
  }
  return FillTo(len_ + 1);
}

}  // namespace spq::mapreduce
