#ifndef SPQ_MAPREDUCE_CODEC_H_
#define SPQ_MAPREDUCE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace spq::mapreduce {

/// \brief Serialization trait for shuffle keys and values.
///
/// Every key/value type crossing the map→reduce boundary must specialize
/// Codec<T> with:
///   static void Encode(const T& v, Buffer& buf);
///   static Status Decode(BufferReader& reader, T* out);
///
/// The runtime serializes every emitted record through its Codec — records
/// never cross the simulated machine boundary as live objects, which keeps
/// the shuffle byte accounting honest and catches non-serializable state.
template <typename T>
struct Codec;

template <>
struct Codec<uint32_t> {
  static void Encode(const uint32_t& v, Buffer& buf) { buf.PutVarint(v); }
  static Status Decode(BufferReader& reader, uint32_t* out) {
    uint64_t v;
    SPQ_RETURN_NOT_OK(reader.GetVarint(&v));
    *out = static_cast<uint32_t>(v);
    return Status::OK();
  }
};

template <>
struct Codec<uint64_t> {
  static void Encode(const uint64_t& v, Buffer& buf) { buf.PutVarint(v); }
  static Status Decode(BufferReader& reader, uint64_t* out) {
    return reader.GetVarint(out);
  }
};

template <>
struct Codec<double> {
  static void Encode(const double& v, Buffer& buf) { buf.PutDouble(v); }
  static Status Decode(BufferReader& reader, double* out) {
    return reader.GetDouble(out);
  }
};

template <>
struct Codec<std::string> {
  static void Encode(const std::string& v, Buffer& buf) { buf.PutString(v); }
  static Status Decode(BufferReader& reader, std::string* out) {
    return reader.GetString(out);
  }
};

template <typename T>
struct Codec<std::vector<T>> {
  static void Encode(const std::vector<T>& v, Buffer& buf) {
    buf.PutVarint(v.size());
    for (const auto& item : v) Codec<T>::Encode(item, buf);
  }
  static Status Decode(BufferReader& reader, std::vector<T>* out) {
    uint64_t n;
    SPQ_RETURN_NOT_OK(reader.GetVarint(&n));
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      T item;
      SPQ_RETURN_NOT_OK(Codec<T>::Decode(reader, &item));
      out->push_back(std::move(item));
    }
    return Status::OK();
  }
};

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_CODEC_H_
