#ifndef SPQ_MAPREDUCE_CODEC_H_
#define SPQ_MAPREDUCE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace spq::mapreduce {

/// Raw fixed-width scalar access for the flat-arena segment format
/// (merge.h). Unlike the Buffer/Codec varint encoding, these write host
/// byte order at fixed strides, so a record header can be decoded with
/// plain loads and no per-field bounds checks. Spill files written this
/// way are read back on the same host, exactly like Buffer's doubles.
namespace wire {

inline void StoreU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void StoreU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
inline void StoreF64(uint8_t* dst, double v) { std::memcpy(dst, &v, 8); }

inline uint32_t LoadU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t LoadU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}
inline double LoadF64(const uint8_t* src) {
  double v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace wire

/// \brief Serialization trait for shuffle keys and values.
///
/// Every key/value type crossing the map→reduce boundary must specialize
/// Codec<T> with:
///   static void Encode(const T& v, Buffer& buf);
///   static Status Decode(BufferReader& reader, T* out);
///
/// The runtime serializes every emitted record through its Codec — records
/// never cross the simulated machine boundary as live objects, which keeps
/// the shuffle byte accounting honest and catches non-serializable state.
template <typename T>
struct Codec;

template <>
struct Codec<uint32_t> {
  static void Encode(const uint32_t& v, Buffer& buf) { buf.PutVarint(v); }
  static Status Decode(BufferReader& reader, uint32_t* out) {
    uint64_t v;
    SPQ_RETURN_NOT_OK(reader.GetVarint(&v));
    *out = static_cast<uint32_t>(v);
    return Status::OK();
  }
};

template <>
struct Codec<uint64_t> {
  static void Encode(const uint64_t& v, Buffer& buf) { buf.PutVarint(v); }
  static Status Decode(BufferReader& reader, uint64_t* out) {
    return reader.GetVarint(out);
  }
};

template <>
struct Codec<double> {
  static void Encode(const double& v, Buffer& buf) { buf.PutDouble(v); }
  static Status Decode(BufferReader& reader, double* out) {
    return reader.GetDouble(out);
  }
};

template <>
struct Codec<std::string> {
  static void Encode(const std::string& v, Buffer& buf) { buf.PutString(v); }
  static Status Decode(BufferReader& reader, std::string* out) {
    return reader.GetString(out);
  }
};

template <typename T>
struct Codec<std::vector<T>> {
  static void Encode(const std::vector<T>& v, Buffer& buf) {
    buf.PutVarint(v.size());
    for (const auto& item : v) Codec<T>::Encode(item, buf);
  }
  static Status Decode(BufferReader& reader, std::vector<T>* out) {
    uint64_t n;
    SPQ_RETURN_NOT_OK(reader.GetVarint(&n));
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      T item;
      SPQ_RETURN_NOT_OK(Codec<T>::Decode(reader, &item));
      out->push_back(std::move(item));
    }
    return Status::OK();
  }
};

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_CODEC_H_
