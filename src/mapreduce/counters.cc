#include "mapreduce/counters.h"

namespace spq::mapreduce {

Counters& Counters::operator=(const Counters& other) {
  if (this == &other) return *this;
  auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  values_ = std::move(snapshot);
  return *this;
}

Counters& Counters::operator=(Counters&& other) noexcept {
  return *this = other;  // delegate to copy-assign (snapshot under lock)
}

void Counters::Increment(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  values_[name] += delta;
}

uint64_t Counters::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

void Counters::MergeFrom(const Counters& other) {
  std::map<std::string, uint64_t> snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : snapshot) values_[name] += value;
}

std::map<std::string, uint64_t> Counters::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_;
}

}  // namespace spq::mapreduce
