#ifndef SPQ_MAPREDUCE_RUNTIME_H_
#define SPQ_MAPREDUCE_RUNTIME_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/statusor.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mapreduce/job.h"
#include "mapreduce/merge.h"

namespace spq::mapreduce {

/// \brief Output of a successful job: the concatenated reducer emissions
/// (in reduce-partition order, deterministic) plus the measured stats.
template <typename Out>
struct JobOutput {
  std::vector<Out> records;
  JobStats stats;
};

namespace internal {

template <typename K, typename V>
class MapContextImpl : public MapContext<K, V> {
 public:
  MapContextImpl(uint32_t num_partitions,
                 const std::function<uint32_t(const K&, uint32_t)>* part)
      : partitions_(num_partitions), partitioner_(part) {}

  void Emit(const K& key, const V& value) override {
    uint32_t p = (*partitioner_)(key, static_cast<uint32_t>(partitions_.size()));
    partitions_[p].emplace_back(key, value);
    ++emitted_;
  }

  Counters& counters() override { return counters_; }

  std::vector<std::vector<std::pair<K, V>>>& partitions() {
    return partitions_;
  }
  uint64_t emitted() const { return emitted_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> partitions_;
  const std::function<uint32_t(const K&, uint32_t)>* partitioner_;
  Counters counters_;
  uint64_t emitted_ = 0;
};

template <typename Out>
class ReduceContextImpl : public ReduceContext<Out> {
 public:
  void Emit(const Out& record) override { records_.push_back(record); }
  Counters& counters() override { return counters_; }
  std::vector<Out>& records() { return records_; }
  Counters& task_counters() { return counters_; }

 private:
  std::vector<Out> records_;
  Counters counters_;
};

/// GroupValues over a MergeStream, bounded by the grouping comparator.
/// The stream must have a record loaded (the group's first) at construction.
template <typename K, typename V>
class GroupCursor : public GroupValues<K, V> {
 public:
  GroupCursor(MergeStream<K, V>* stream, const K* group_key,
              const std::function<bool(const K&, const K&)>* group_equal)
      : stream_(stream), group_key_(group_key), group_equal_(group_equal) {}

  bool Next() override {
    if (done_) return false;
    if (first_pending_) {
      // The group's first record is already loaded in the stream.
      first_pending_ = false;
      return true;
    }
    if (!stream_->Advance()) {
      done_ = true;
      next_group_loaded_ = false;
      return false;
    }
    if (!(*group_equal_)(*group_key_, stream_->key())) {
      // Crossed a group boundary; the next group's first record is loaded.
      done_ = true;
      next_group_loaded_ = true;
      return false;
    }
    return true;
  }

  const K& key() const override { return stream_->key(); }
  const V& value() const override { return stream_->value(); }

  /// Drains any values the reducer did not consume (early termination) and
  /// reports whether the stream stopped on the first record of the next
  /// group (true) or at end-of-stream (false).
  bool FinishGroup() {
    while (Next()) {
    }
    return next_group_loaded_;
  }

 private:
  MergeStream<K, V>* stream_;
  const K* group_key_;
  const std::function<bool(const K&, const K&)>* group_equal_;
  bool first_pending_ = true;
  bool done_ = false;
  bool next_group_loaded_ = false;
};

/// Sort-free map-output layout step of the cell-bucketed shuffle: group
/// the partition's records by Traits::Bucket (a hash map — the paper's
/// setup has only a handful of cells per reduce partition), emit buckets
/// in ascending bucket id, and sort *within* each bucket on the 8-byte
/// order key (plus emission index for stability) — a cheap integer sort
/// that replaces the comparison stable_sort over decoded composite keys.
/// Records are written straight into the flat-arena segment image; there
/// is no Codec round trip.
template <typename K, typename V>
StatusOr<FlatSegment> BuildFlatSegment(
    const std::vector<std::pair<K, V>>& records) {
  using Traits = FlatShuffleTraits<K, V>;
  FlatSegment seg;
  const std::size_t n = records.size();
  seg.num_records = n;
  if (n == 0) return seg;

  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  std::vector<uint64_t> order_keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    order_keys[i] = Traits::OrderKey(records[i].first);
    buckets[Traits::Bucket(records[i].first)].push_back(
        static_cast<uint32_t>(i));
  }
  std::vector<uint64_t> bucket_ids;
  bucket_ids.reserve(buckets.size());
  for (const auto& [b, unused] : buckets) bucket_ids.push_back(b);
  std::sort(bucket_ids.begin(), bucket_ids.end());

  // Exact-size the whole byte image up front (Traits::PoolBytes pre-pass)
  // so the segment is written in one allocation with no trailing copy.
  uint64_t pool_bytes = 0;
  for (const auto& [key, value] : records) {
    pool_bytes += Traits::PoolBytes(value);
  }
  if (pool_bytes > std::numeric_limits<uint32_t>::max()) {
    // Pool slices are addressed by u32 offsets; wrapping would silently
    // alias spans. Such a segment must use ShuffleMode::kLegacySort.
    return Status::InvalidArgument(
        "flat segment pool exceeds 4 GiB; run with ShuffleMode::kLegacySort");
  }
  const std::size_t keys_bytes = n * FlatSegment::kKeyRowBytes;
  const std::size_t payload_bytes = n * Traits::kPayloadStride;
  std::vector<uint8_t> bytes(keys_bytes + payload_bytes + pool_bytes);
  uint8_t* key_dst = bytes.data();
  uint8_t* payload_dst = bytes.data() + keys_bytes;
  uint8_t* pool = bytes.data() + keys_bytes + payload_bytes;
  uint64_t pool_pos = 0;
  std::vector<std::pair<uint64_t, uint32_t>> order;  // (order key, index)
  std::size_t out = 0;
  for (uint64_t b : bucket_ids) {
    const auto& idxs = buckets[b];
    order.clear();
    order.reserve(idxs.size());
    for (uint32_t idx : idxs) order.emplace_back(order_keys[idx], idx);
    std::sort(order.begin(), order.end());
    for (const auto& [okey, idx] : order) {
      wire::StoreU64(key_dst + out * FlatSegment::kKeyRowBytes, b);
      wire::StoreU64(key_dst + out * FlatSegment::kKeyRowBytes + 8, okey);
      Traits::EncodePayload(records[idx].second,
                            payload_dst + out * Traits::kPayloadStride, pool,
                            &pool_pos);
      ++out;
    }
  }
  seg.pool_bytes = pool_pos;
  seg.bytes = std::move(bytes);
  seg.byte_size = seg.bytes.size();
  return seg;
}

/// Sorted-run layout step of the legacy shuffle: comparison stable_sort of
/// the partition's records followed by a Codec round trip into one byte
/// image. Factored out of RunJob so side-input jobs (spq/cell_store.cc)
/// can run the identical legacy pipeline under their own reduce callable.
template <typename K, typename V, typename Less>
StatusOr<SortedSegment> BuildSortedSegment(std::vector<std::pair<K, V>>& records,
                                           const Less& sort_less) {
  std::stable_sort(records.begin(), records.end(),
                   [&](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                     return sort_less(a.first, b.first);
                   });
  Buffer buf;
  for (const auto& [key, value] : records) {
    Codec<K>::Encode(key, buf);
    Codec<V>::Encode(value, buf);
  }
  SortedSegment seg;
  seg.num_records = records.size();
  seg.bytes = buf.TakeBytes();
  seg.byte_size = seg.bytes.size();
  return seg;
}

/// Shared job orchestration: runs the map phase (with fault retries and
/// optional spilling), the shuffle accounting and the reduce phase (with
/// fault retries) for either segment representation. `SpillPartition`
/// turns one map partition's records into a StatusOr<Segment>;
/// `ReducePartition` consumes one reduce partition's segments and receives
/// the partition index, which is what enables side-input jobs: a reduce
/// callable may join its shuffled stream against resident state keyed by
/// the same partitioner (see spq/cell_store.cc), with the partition index
/// scoping which resident slice belongs to the task.
///
/// The legacy and flat pipelines below differ only in those two callables
/// — keeping a single driver guarantees both modes (and the side-input
/// jobs built on this entry point) share fault injection, retry, stats and
/// cleanup semantics exactly (the equivalence tests rely on it).
template <typename Segment, typename In, typename K, typename V,
          typename Out, typename SpillPartitionFn, typename ReducePartitionFn>
StatusOr<JobOutput<Out>> RunJobWith(const JobSpec<In, K, V, Out>& spec,
                                    const JobConfig& config,
                                    const std::vector<In>& input,
                                    SpillPartitionFn&& spill_partition,
                                    ReducePartitionFn&& reduce_partition) {
  JobOutput<Out> result;
  JobStats& stats = result.stats;
  stats.input_records = input.size();

  TRACE_SPAN("job.run");
  Stopwatch total_watch;
  const uint32_t num_maps = config.num_map_tasks;
  const uint32_t num_reduces = config.num_reduce_tasks;
  const uint64_t spill_run_id = NextSpillRunId();

  // A long-lived caller (the warm serving path) shares one pool across
  // jobs; otherwise the job owns a private pool for its duration.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* shared_pool = config.worker_pool;
  if (shared_pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(config.num_workers);
    shared_pool = owned_pool.get();
  }
  ThreadPool& pool = *shared_pool;

  // ---------------------------------------------------------------- map --
  // segments[m][r]: the sorted run map task m produced for reduce r.
  std::vector<std::vector<Segment>> segments(num_maps);
  std::vector<Counters> map_counters(num_maps);
  std::atomic<uint64_t> map_output_records{0};
  std::atomic<uint32_t> map_failures{0};
  std::atomic<uint32_t> storage_detections{0};
  stats.map_task_seconds.assign(num_maps, 0.0);
  stats.reduce_task_seconds.assign(num_reduces, 0.0);

  std::mutex error_mutex;
  Status first_error;
  auto record_error = [&](const Status& st) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.ok()) first_error = st;
  };

  Stopwatch map_watch;
  {
  TRACE_SPAN("job.map");
  ParallelFor(pool, num_maps, [&](std::size_t m) {
    TRACE_SPAN("map.task");
    const std::size_t begin = input.size() * m / num_maps;
    const std::size_t end = input.size() * (m + 1) / num_maps;
    bool succeeded = false;
    Stopwatch task_watch;
    for (int attempt = 0; attempt < config.max_task_attempts; ++attempt) {
      task_watch.Reset();
      const bool fail_this_attempt =
          AttemptFails(config.faults, /*kind=*/0,
                       static_cast<uint32_t>(m), attempt);
      MapContextImpl<K, V> ctx(num_reduces, &spec.partitioner);
      auto mapper = spec.mapper_factory();
      // A failing attempt dies halfway through its split.
      const std::size_t stop =
          fail_this_attempt ? begin + (end - begin) / 2 : end;
      for (std::size_t i = begin; i < stop; ++i) {
        mapper->Map(input[i], ctx);
      }
      if (fail_this_attempt) {
        ++map_failures;
        continue;  // discard attempt state, retry
      }
      // Spill: lay out each partition's sorted run and serialize it (to
      // disk when the job requests an out-of-core shuffle). Injected
      // storage faults are scoped to this attempt and salted with its
      // number, so a spill write that fails its verify-after-write costs
      // the attempt and the retry re-rolls with fresh fault sites.
      auto& parts = ctx.partitions();
      std::vector<Segment> task_segments(num_reduces);
      Status spill_status;
      {
        ScopedStorageFaults storage_scope(
            &config.faults,
            Mix64((spill_run_id << 20) ^ 0x4d4150ull ^
                  (static_cast<uint64_t>(m) << 8) ^
                  static_cast<uint64_t>(attempt)));
        for (uint32_t r = 0; r < num_reduces; ++r) {
          StatusOr<Segment> seg_or = spill_partition(parts[r]);
          if (!seg_or.ok()) {
            spill_status = seg_or.status();
            break;
          }
          Segment& seg = task_segments[r];
          seg = *std::move(seg_or);
          if (!config.spill_dir.empty() && seg.num_records > 0) {
            seg.spill_path = SpillPath(config.spill_dir, spill_run_id,
                                       static_cast<uint32_t>(m), r);
            spill_status = WriteSpillFile(seg.spill_path, seg.bytes);
            if (!spill_status.ok()) break;
            seg.bytes.clear();
            seg.bytes.shrink_to_fit();
          }
        }
      }
      if (!spill_status.ok()) {
        if (config.faults.storage_enabled() && spill_status.IsIOError()) {
          // Detected storage corruption, not a logic error: retry the
          // whole attempt (layout errors like InvalidArgument stay fatal).
          storage_detections.fetch_add(1, std::memory_order_relaxed);
          if (attempt + 1 < config.max_task_attempts) {
            ++map_failures;
            continue;
          }
        }
        record_error(spill_status);
        return;
      }
      segments[m] = std::move(task_segments);
      map_counters[m].MergeFrom(ctx.counters());
      map_output_records += ctx.emitted();
      stats.map_task_seconds[m] = task_watch.ElapsedSeconds();
      succeeded = true;
      break;
    }
    if (!succeeded) {
      record_error(Status::Aborted(
          "map task " + std::to_string(m) + " exceeded max attempts"));
    }
  });
  }  // TRACE_SPAN("job.map")
  stats.map_seconds = map_watch.ElapsedSeconds();

  // Spill files live until the job completes (reduce retries re-read them).
  struct SpillCleanup {
    std::vector<std::vector<Segment>>* segments;
    ~SpillCleanup() {
      for (auto& task_segments : *segments) {
        for (auto& seg : task_segments) {
          if (!seg.spill_path.empty()) RemoveSpillFile(seg.spill_path);
        }
      }
    }
  } spill_cleanup{&segments};

  if (!first_error.ok()) return first_error;

  stats.map_output_records = map_output_records.load();
  stats.map_task_failures = map_failures.load();
  for (const auto& c : map_counters) stats.counters.MergeFrom(c);

  // ------------------------------------------------------------- shuffle --
  // Reduce partition r reads segments[m][r] for every m. Bytes are counted
  // as shuffle traffic; in Hadoop these cross the network.
  std::vector<std::vector<const Segment*>> reduce_inputs(num_reduces);
  stats.reduce_input_records.assign(num_reduces, 0);
  {
    TRACE_SPAN("job.shuffle");
    for (uint32_t r = 0; r < num_reduces; ++r) {
      for (uint32_t m = 0; m < num_maps; ++m) {
        const Segment& seg = segments[m][r];
        if (seg.num_records == 0) continue;
        reduce_inputs[r].push_back(&seg);
        stats.shuffle_bytes += seg.byte_size;
        stats.reduce_input_records[r] += seg.num_records;
      }
    }
  }

  // -------------------------------------------------------------- reduce --
  std::vector<std::vector<Out>> reduce_outputs(num_reduces);
  std::vector<Counters> reduce_counters(num_reduces);
  std::atomic<uint32_t> reduce_failures{0};

  Stopwatch reduce_watch;
  {
  TRACE_SPAN("job.reduce");
  ParallelFor(pool, num_reduces, [&](std::size_t r) {
    TRACE_SPAN("reduce.task");
    bool succeeded = false;
    Stopwatch task_watch;
    for (int attempt = 0; attempt < config.max_task_attempts; ++attempt) {
      task_watch.Reset();
      if (AttemptFails(config.faults, /*kind=*/1, static_cast<uint32_t>(r),
                       attempt)) {
        ++reduce_failures;
        continue;
      }
      ReduceContextImpl<Out> ctx;
      Status st;
      {
        // Scope injected storage read faults to this attempt, salted with
        // the attempt number so a retry re-rolls its fault sites.
        ScopedStorageFaults storage_scope(
            &config.faults,
            Mix64((spill_run_id << 20) ^ 0x524544ull ^
                  (static_cast<uint64_t>(r) << 8) ^
                  static_cast<uint64_t>(attempt)));
        st = reduce_partition(static_cast<uint32_t>(r), reduce_inputs[r],
                              ctx);
      }
      if (!st.ok()) {
        if (config.faults.storage_enabled() &&
            (st.IsIOError() || st.IsOutOfRange())) {
          // Detected storage corruption reading spilled segments (page
          // checksum mismatch, short read, or a region truncated by a torn
          // write): costs the attempt, never yields a wrong record.
          storage_detections.fetch_add(1, std::memory_order_relaxed);
          if (attempt + 1 < config.max_task_attempts) {
            ++reduce_failures;
            continue;
          }
        }
        record_error(st);
        return;
      }
      reduce_outputs[r] = std::move(ctx.records());
      reduce_counters[r].MergeFrom(ctx.task_counters());
      stats.reduce_task_seconds[r] = task_watch.ElapsedSeconds();
      succeeded = true;
      break;
    }
    if (!succeeded) {
      record_error(Status::Aborted(
          "reduce task " + std::to_string(r) + " exceeded max attempts"));
    }
  });
  }  // TRACE_SPAN("job.reduce")
  stats.reduce_seconds = reduce_watch.ElapsedSeconds();
  if (!first_error.ok()) return first_error;

  stats.reduce_task_failures = reduce_failures.load();
  stats.storage_fault_detections = storage_detections.load();
  for (const auto& c : reduce_counters) stats.counters.MergeFrom(c);

  for (auto& outs : reduce_outputs) {
    result.records.insert(result.records.end(),
                          std::make_move_iterator(outs.begin()),
                          std::make_move_iterator(outs.end()));
  }
  stats.total_seconds = total_watch.ElapsedSeconds();

  // Job-phase latency histograms: one sample per job (never per record),
  // so the registry answers "where do jobs spend their time" while the
  // hot loops stay untouched. The references are resolved once per
  // process (same named Histogram for every template instantiation).
  {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter& jobs = registry.counter("spq.job.runs");
    static metrics::Histogram& map_ns = registry.histogram("spq.job.map_ns");
    static metrics::Histogram& reduce_ns =
        registry.histogram("spq.job.reduce_ns");
    static metrics::Histogram& total_ns =
        registry.histogram("spq.job.total_ns");
    jobs.Increment();
    map_ns.Record(static_cast<uint64_t>(stats.map_seconds * 1e9));
    reduce_ns.Record(static_cast<uint64_t>(stats.reduce_seconds * 1e9));
    total_ns.Record(static_cast<uint64_t>(stats.total_seconds * 1e9));
  }

  SPQ_LOG_DEBUG << config.job_name << ": " << stats.input_records
                << " input, " << stats.map_output_records
                << " map-output, " << stats.shuffle_bytes
                << " shuffle bytes, " << stats.total_seconds << "s";
  return result;
}

}  // namespace internal

/// \brief Executes a MapReduce job on the simulated cluster.
///
/// Phases, mirroring Hadoop with an in-memory "network":
///  1. The input is split into `num_map_tasks` contiguous splits.
///  2. Map tasks run on `num_workers` threads. Each task partitions its
///     emissions with the job's Partitioner and lays each partition out as
///     a sorted segment. On the legacy path that is a comparison
///     stable_sort plus Codec serialization; on the cell-bucketed path
///     (ShuffleMode::kCellBucketed + FlatShuffleTraits) it is sort-free
///     per-bucket grouping with an integer order-key sort, written
///     directly in the flat-arena layout.
///  3. Shuffle: each reduce partition collects its segment from every map
///     task; segment bytes are the job's shuffle traffic.
///  4. Reduce tasks k-way-merge their segments lazily and invoke the
///     reducer once per group (grouping comparator), with Hadoop
///     secondary-sort semantics; reducers may stop consuming a group
///     early. Flat-mode reducers consume zero-copy record views; their
///     merge upgrades itself from a binary heap to a tournament loser
///     tree at high fan-in (FlatMergeStream::kLoserTreeMinFanIn).
///
/// Task attempts can fail via `config.faults`; failed attempts are retried
/// up to `config.max_task_attempts` times with their partial output and
/// counters discarded. Deterministic for fixed config, spec, and input —
/// including across shuffle modes (the equivalence property tests assert
/// identical results and counters for both).
template <typename In, typename K, typename V, typename Out>
StatusOr<JobOutput<Out>> RunJob(const JobSpec<In, K, V, Out>& spec,
                                const JobConfig& config,
                                const std::vector<In>& input) {
  if (config.num_map_tasks == 0 || config.num_reduce_tasks == 0) {
    return Status::InvalidArgument("task counts must be >= 1");
  }
  if (!spec.mapper_factory || !spec.reducer_factory || !spec.partitioner ||
      !spec.sort_less || !spec.group_equal) {
    return Status::InvalidArgument("incomplete JobSpec");
  }

  if constexpr (FlatShuffleTraits<K, V>::kEnabled) {
    if (config.shuffle_mode == ShuffleMode::kCellBucketed &&
        spec.flat_reducer_factory) {
      // ---- sort-free cell-bucketed pipeline over flat-arena segments ----
      auto spill_partition =
          [](const std::vector<std::pair<K, V>>& records) {
            return internal::BuildFlatSegment<K, V>(records);
          };
      auto reduce_partition =
          [&spec](uint32_t /*partition*/,
                  const std::vector<const FlatSegment*>& segments,
                  ReduceContext<Out>& ctx) {
            FlatMergeStream<K, V> stream(segments);
            auto reduce_group = spec.flat_reducer_factory();
            bool has = stream.Advance();
            while (has) {
              const K group_key = stream.key();
              FlatGroupCursor<K, V> cursor(&stream, stream.bucket());
              reduce_group(group_key, cursor, ctx);
              has = cursor.FinishGroup();
            }
            return stream.status();
          };
      return internal::RunJobWith<FlatSegment>(spec, config, input,
                                               spill_partition,
                                               reduce_partition);
    }
  }

  // ------------------- legacy comparison-sort + Codec pipeline -------------
  auto spill_partition =
      [&spec](std::vector<std::pair<K, V>>& records) -> StatusOr<SortedSegment> {
    return internal::BuildSortedSegment<K, V>(records, spec.sort_less);
  };
  auto reduce_partition =
      [&spec](uint32_t /*partition*/,
              const std::vector<const SortedSegment*>& segments,
              ReduceContext<Out>& ctx) {
        auto reducer = spec.reducer_factory();
        MergeStream<K, V> stream(segments, spec.sort_less);
        bool has = stream.Advance();
        while (has) {
          const K group_key = stream.key();
          internal::GroupCursor<K, V> cursor(&stream, &group_key,
                                             &spec.group_equal);
          reducer->Reduce(group_key, cursor, ctx);
          has = cursor.FinishGroup();
        }
        return stream.status();
      };
  return internal::RunJobWith<SortedSegment>(spec, config, input,
                                             spill_partition,
                                             reduce_partition);
}

}  // namespace spq::mapreduce

#endif  // SPQ_MAPREDUCE_RUNTIME_H_
