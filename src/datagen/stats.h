#ifndef SPQ_DATAGEN_STATS_H_
#define SPQ_DATAGEN_STATS_H_

#include <cstdint>
#include <string>

#include "geo/grid.h"
#include "spq/types.h"

namespace spq::datagen {

/// \brief Summary statistics of a dataset — the numbers the paper reports
/// per dataset in Section 7.1 (object counts, keywords per object,
/// dictionary size) plus spatial-skew measures used to sanity-check the
/// generators against their targets.
struct DatasetStats {
  uint64_t num_data = 0;
  uint64_t num_features = 0;
  double avg_keywords = 0.0;
  uint32_t min_keywords = 0;
  uint32_t max_keywords = 0;
  /// Distinct terms actually used by the features.
  uint64_t distinct_terms = 0;
  /// Max/mean objects per cell of a `skew_grid` x `skew_grid` grid;
  /// 1.0 = perfectly uniform.
  double spatial_skew = 1.0;

  std::string ToString() const;
};

/// Computes stats; `skew_grid` controls the skew-measurement resolution.
DatasetStats ComputeStats(const core::Dataset& dataset,
                          uint32_t skew_grid = 16);

}  // namespace spq::datagen

#endif  // SPQ_DATAGEN_STATS_H_
