#ifndef SPQ_DATAGEN_GENERATOR_H_
#define SPQ_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "common/statusor.h"
#include "spq/types.h"

namespace spq::datagen {

/// \brief Generators for the paper's four evaluation datasets (Section 7.1).
///
/// The real Twitter/Flickr datasets are not redistributable; the generators
/// reproduce the statistics the experiments depend on — spatial skew,
/// vocabulary size, keywords per object and term-frequency skew — as
/// documented in DESIGN.md. All datasets span the unit square [0,1]² and
/// split objects half/half into data and feature objects, exactly like the
/// paper ("we randomly select half of the objects to act as data objects
/// and the other half as feature objects").

/// UN — uniform positions; per feature, a uniform number of keywords in
/// [min_keywords, max_keywords] drawn from a small vocabulary.
/// Paper: 512M objects, vocab 1,000, 10–100 keywords.
struct UniformSpec {
  uint64_t num_objects = 100'000;  ///< |O| + |F|
  uint64_t seed = 42;
  uint32_t vocab_size = 1'000;
  uint32_t min_keywords = 10;
  uint32_t max_keywords = 100;
};

/// CL — like UN but positions form `num_clusters` Gaussian clusters whose
/// centers are uniform-random. Paper: 16 clusters, same keyword scheme.
struct ClusteredSpec {
  uint64_t num_objects = 100'000;
  uint64_t seed = 43;
  uint32_t vocab_size = 1'000;
  uint32_t min_keywords = 10;
  uint32_t max_keywords = 100;
  uint32_t num_clusters = 16;
  /// Std-dev of each cluster, as a fraction of the unit square.
  double cluster_sigma = 0.02;
};

/// FL/TW-like — skewed "user-generated content" surrogate: a Zipf-weighted
/// mixture of Gaussian hotspots (cities) over a uniform background, with
/// Zipf term frequencies and Poisson keyword counts.
struct RealLikeSpec {
  uint64_t num_objects = 100'000;
  uint64_t seed = 44;
  uint32_t vocab_size = 34'716;    ///< Flickr's dictionary size
  double mean_keywords = 7.9;      ///< Flickr's avg keywords per object
  double term_zipf = 1.0;          ///< skew of term frequencies
  uint32_t num_hotspots = 64;
  double hotspot_zipf = 0.8;       ///< skew of hotspot popularity
  double hotspot_sigma = 0.03;
  double background_fraction = 0.1;  ///< objects placed uniformly
};

/// Flickr-like defaults (vocab 34,716; 7.9 keywords/object).
RealLikeSpec FlickrLikeSpec(uint64_t num_objects, uint64_t seed = 44);

/// Twitter-like defaults (vocab 88,706; 9.8 keywords/object).
RealLikeSpec TwitterLikeSpec(uint64_t num_objects, uint64_t seed = 45);

StatusOr<core::Dataset> MakeUniformDataset(const UniformSpec& spec);
StatusOr<core::Dataset> MakeClusteredDataset(const ClusteredSpec& spec);
StatusOr<core::Dataset> MakeRealLikeDataset(const RealLikeSpec& spec);

}  // namespace spq::datagen

#endif  // SPQ_DATAGEN_GENERATOR_H_
