#ifndef SPQ_DATAGEN_WORKLOAD_H_
#define SPQ_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "spq/types.h"

namespace spq::datagen {

/// How query keywords are drawn from the vocabulary (Section 7.1 notes the
/// authors tried random / most frequent / least frequent selections).
enum class KeywordSelection {
  /// Proportional to term frequency (Zipf-weighted for the real-like
  /// datasets, uniform for UN/CL whose terms are uniform). Mirrors a user
  /// typing words that actually occur in the data; the benches' default.
  kFrequencyWeighted,
  /// Uniform over the vocabulary.
  kUniformRandom,
  /// Always the most frequent terms (ranks 0..n-1).
  kMostFrequent,
  /// Always the least frequent terms.
  kLeastFrequent,
};

/// \brief Recipe for generating query workloads over a dataset family.
struct WorkloadSpec {
  uint32_t num_keywords = 3;
  /// Query radius as a fraction of the grid cell edge ("r = 10% of cell
  /// size" in Table 3). Resolved against a concrete grid via
  /// RadiusFromCellFraction.
  double radius = 0.002;
  uint32_t k = 10;
  KeywordSelection selection = KeywordSelection::kFrequencyWeighted;
  /// Zipf exponent of the dataset's term distribution (0 = uniform terms).
  double term_zipf = 0.0;
  uint32_t vocab_size = 1'000;
  uint64_t seed = 4242;
};

/// Converts the paper's "radius as a percentage of cell size" to an
/// absolute radius: fraction * (extent / grid_size).
double RadiusFromCellFraction(double fraction, double extent,
                              uint32_t grid_size);

/// Generates `count` queries per the spec. Deterministic in spec.seed.
std::vector<core::Query> MakeQueries(const WorkloadSpec& spec,
                                     std::size_t count);

/// Generates one query (the `index`-th of the stream, so callers can
/// sample a specific one without materializing the rest).
core::Query MakeQuery(const WorkloadSpec& spec, std::size_t index);

}  // namespace spq::datagen

#endif  // SPQ_DATAGEN_WORKLOAD_H_
