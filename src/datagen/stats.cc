#include "datagen/stats.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

namespace spq::datagen {

DatasetStats ComputeStats(const core::Dataset& dataset, uint32_t skew_grid) {
  DatasetStats stats;
  stats.num_data = dataset.data.size();
  stats.num_features = dataset.features.size();

  uint64_t total_keywords = 0;
  std::unordered_set<text::TermId> terms;
  bool first = true;
  for (const auto& f : dataset.features) {
    const uint32_t n = static_cast<uint32_t>(f.keywords.size());
    total_keywords += n;
    if (first) {
      stats.min_keywords = stats.max_keywords = n;
      first = false;
    } else {
      stats.min_keywords = std::min(stats.min_keywords, n);
      stats.max_keywords = std::max(stats.max_keywords, n);
    }
    for (text::TermId id : f.keywords.ids()) terms.insert(id);
  }
  stats.distinct_terms = terms.size();
  if (!dataset.features.empty()) {
    stats.avg_keywords =
        static_cast<double>(total_keywords) / dataset.features.size();
  }

  auto grid_or = geo::UniformGrid::Make(dataset.bounds, skew_grid, skew_grid);
  if (grid_or.ok() && stats.num_data + stats.num_features > 0) {
    std::vector<uint64_t> counts(grid_or->num_cells(), 0);
    for (const auto& p : dataset.data) ++counts[grid_or->CellOf(p.pos)];
    for (const auto& f : dataset.features) ++counts[grid_or->CellOf(f.pos)];
    const uint64_t max_count = *std::max_element(counts.begin(), counts.end());
    const double mean = static_cast<double>(stats.num_data +
                                            stats.num_features) /
                        counts.size();
    stats.spatial_skew = mean > 0 ? static_cast<double>(max_count) / mean : 1.0;
  }
  return stats;
}

std::string DatasetStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "|O|=%llu |F|=%llu, keywords/feature avg %.2f "
                "[%u, %u], %llu distinct terms, spatial skew %.2f",
                static_cast<unsigned long long>(num_data),
                static_cast<unsigned long long>(num_features), avg_keywords,
                min_keywords, max_keywords,
                static_cast<unsigned long long>(distinct_terms),
                spatial_skew);
  return buf;
}

}  // namespace spq::datagen
