#include "datagen/generator.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "geo/point.h"
#include "text/keyword_set.h"

namespace spq::datagen {

namespace {

using core::DataObject;
using core::Dataset;
using core::FeatureObject;
using core::ObjectId;

geo::Rect UnitSquare() { return geo::Rect{0.0, 0.0, 1.0, 1.0}; }

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Splits `positions` half/half into data objects and feature objects;
/// `make_keywords(i)` supplies the keyword set of the i-th feature.
template <typename KeywordFn>
Dataset AssembleDataset(const std::vector<geo::Point>& positions,
                        KeywordFn&& make_keywords) {
  Dataset dataset;
  dataset.bounds = UnitSquare();
  const std::size_t num_data = positions.size() / 2;
  dataset.data.reserve(num_data);
  dataset.features.reserve(positions.size() - num_data);
  for (std::size_t i = 0; i < num_data; ++i) {
    dataset.data.push_back(DataObject{static_cast<ObjectId>(i), positions[i]});
  }
  for (std::size_t i = num_data; i < positions.size(); ++i) {
    FeatureObject f;
    f.id = static_cast<ObjectId>(i);
    f.pos = positions[i];
    f.keywords = make_keywords(i - num_data);
    dataset.features.push_back(std::move(f));
  }
  return dataset;
}

/// `count` keywords drawn uniformly (with replacement; dedup by KeywordSet).
text::KeywordSet UniformKeywords(Rng& rng, uint32_t vocab_size,
                                 uint32_t count) {
  std::vector<text::TermId> ids;
  ids.reserve(count);
  for (uint32_t j = 0; j < count; ++j) ids.push_back(rng.NextUint32(vocab_size));
  return text::KeywordSet(std::move(ids));
}

Status ValidateCommon(uint64_t num_objects, uint32_t vocab_size) {
  if (num_objects < 2) {
    return Status::InvalidArgument("need at least 2 objects (1 data + 1 feature)");
  }
  if (vocab_size == 0) {
    return Status::InvalidArgument("vocab_size must be >= 1");
  }
  return Status::OK();
}

}  // namespace

RealLikeSpec FlickrLikeSpec(uint64_t num_objects, uint64_t seed) {
  RealLikeSpec spec;
  spec.num_objects = num_objects;
  spec.seed = seed;
  spec.vocab_size = 34'716;
  spec.mean_keywords = 7.9;
  return spec;
}

RealLikeSpec TwitterLikeSpec(uint64_t num_objects, uint64_t seed) {
  RealLikeSpec spec;
  spec.num_objects = num_objects;
  spec.seed = seed;
  spec.vocab_size = 88'706;
  spec.mean_keywords = 9.8;
  return spec;
}

StatusOr<Dataset> MakeUniformDataset(const UniformSpec& spec) {
  SPQ_RETURN_NOT_OK(ValidateCommon(spec.num_objects, spec.vocab_size));
  if (spec.min_keywords == 0 || spec.min_keywords > spec.max_keywords) {
    return Status::InvalidArgument("invalid keyword count range");
  }
  Rng rng(spec.seed);
  std::vector<geo::Point> positions(spec.num_objects);
  for (auto& p : positions) {
    p = geo::Point{rng.NextDouble(), rng.NextDouble()};
  }
  const uint32_t span = spec.max_keywords - spec.min_keywords + 1;
  return AssembleDataset(positions, [&](std::size_t) {
    const uint32_t count = spec.min_keywords + rng.NextUint32(span);
    return UniformKeywords(rng, spec.vocab_size, count);
  });
}

StatusOr<Dataset> MakeClusteredDataset(const ClusteredSpec& spec) {
  SPQ_RETURN_NOT_OK(ValidateCommon(spec.num_objects, spec.vocab_size));
  if (spec.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (spec.min_keywords == 0 || spec.min_keywords > spec.max_keywords) {
    return Status::InvalidArgument("invalid keyword count range");
  }
  Rng rng(spec.seed);
  // Cluster centers chosen uniformly at random (Section 7.1).
  std::vector<geo::Point> centers(spec.num_clusters);
  for (auto& c : centers) {
    c = geo::Point{rng.NextDouble(), rng.NextDouble()};
  }
  std::vector<geo::Point> positions(spec.num_objects);
  for (auto& p : positions) {
    const auto& c = centers[rng.NextUint32(spec.num_clusters)];
    p = geo::Point{Clamp01(rng.NextGaussian(c.x, spec.cluster_sigma)),
                   Clamp01(rng.NextGaussian(c.y, spec.cluster_sigma))};
  }
  const uint32_t span = spec.max_keywords - spec.min_keywords + 1;
  return AssembleDataset(positions, [&](std::size_t) {
    const uint32_t count = spec.min_keywords + rng.NextUint32(span);
    return UniformKeywords(rng, spec.vocab_size, count);
  });
}

StatusOr<Dataset> MakeRealLikeDataset(const RealLikeSpec& spec) {
  SPQ_RETURN_NOT_OK(ValidateCommon(spec.num_objects, spec.vocab_size));
  if (spec.mean_keywords <= 0.0) {
    return Status::InvalidArgument("mean_keywords must be > 0");
  }
  if (spec.num_hotspots == 0) {
    return Status::InvalidArgument("num_hotspots must be >= 1");
  }
  Rng rng(spec.seed);
  // Hotspots with Zipf-distributed popularity: a few dense "cities" and a
  // long tail — the shape of the paper's Figure 4(a)/(b) density maps.
  std::vector<geo::Point> centers(spec.num_hotspots);
  for (auto& c : centers) {
    c = geo::Point{rng.NextDouble(), rng.NextDouble()};
  }
  ZipfSampler hotspot_sampler(spec.num_hotspots, spec.hotspot_zipf);
  std::vector<geo::Point> positions(spec.num_objects);
  for (auto& p : positions) {
    if (rng.NextBool(spec.background_fraction)) {
      p = geo::Point{rng.NextDouble(), rng.NextDouble()};
    } else {
      const auto& c = centers[hotspot_sampler.Sample(rng)];
      p = geo::Point{Clamp01(rng.NextGaussian(c.x, spec.hotspot_sigma)),
                     Clamp01(rng.NextGaussian(c.y, spec.hotspot_sigma))};
    }
  }
  // Zipf term frequencies: term rank 0 is the most common, like natural
  // language tags/hashtags.
  ZipfSampler term_sampler(spec.vocab_size, spec.term_zipf);
  return AssembleDataset(positions, [&](std::size_t) {
    uint32_t count = std::max<uint32_t>(1, rng.NextPoisson(spec.mean_keywords));
    std::vector<text::TermId> ids;
    ids.reserve(count);
    for (uint32_t j = 0; j < count; ++j) ids.push_back(term_sampler.Sample(rng));
    return text::KeywordSet(std::move(ids));
  });
}

}  // namespace spq::datagen
