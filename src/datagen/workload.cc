#include "datagen/workload.h"

#include <algorithm>

#include "text/keyword_set.h"

namespace spq::datagen {

namespace {

core::Query MakeOne(const WorkloadSpec& spec, Rng& rng,
                    const ZipfSampler* zipf) {
  std::vector<text::TermId> ids;
  ids.reserve(spec.num_keywords);
  switch (spec.selection) {
    case KeywordSelection::kFrequencyWeighted:
      while (ids.size() < spec.num_keywords &&
             ids.size() < spec.vocab_size) {
        const text::TermId id = zipf ? zipf->Sample(rng)
                                     : rng.NextUint32(spec.vocab_size);
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      break;
    case KeywordSelection::kUniformRandom:
      while (ids.size() < spec.num_keywords &&
             ids.size() < spec.vocab_size) {
        const text::TermId id = rng.NextUint32(spec.vocab_size);
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      break;
    case KeywordSelection::kMostFrequent:
      for (uint32_t i = 0; i < spec.num_keywords && i < spec.vocab_size; ++i) {
        ids.push_back(i);  // Zipf rank i = i-th most frequent term
      }
      break;
    case KeywordSelection::kLeastFrequent:
      for (uint32_t i = 0; i < spec.num_keywords && i < spec.vocab_size; ++i) {
        ids.push_back(spec.vocab_size - 1 - i);
      }
      break;
  }
  core::Query query;
  query.k = spec.k;
  query.radius = spec.radius;
  query.keywords = text::KeywordSet(std::move(ids));
  return query;
}

}  // namespace

double RadiusFromCellFraction(double fraction, double extent,
                              uint32_t grid_size) {
  return fraction * extent / static_cast<double>(grid_size);
}

std::vector<core::Query> MakeQueries(const WorkloadSpec& spec,
                                     std::size_t count) {
  Rng rng(spec.seed);
  ZipfSampler zipf(spec.vocab_size, spec.term_zipf);
  const bool weighted =
      spec.selection == KeywordSelection::kFrequencyWeighted &&
      spec.term_zipf > 0.0;
  std::vector<core::Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back(MakeOne(spec, rng, weighted ? &zipf : nullptr));
  }
  return queries;
}

core::Query MakeQuery(const WorkloadSpec& spec, std::size_t index) {
  return MakeQueries(spec, index + 1).back();
}

}  // namespace spq::datagen
