// Extension ablation: batched multi-query jobs vs one job per query.
// Batching shares the input scan and job overhead across the batch; the
// shuffle still grows with the batch size (each query's groups need their
// objects), so the win is in fixed costs — which dominate exactly in the
// configurations where early termination has already shrunk reduce work.

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  auto dataset = datagen::MakeRealLikeDataset(
      datagen::FlickrLikeSpec(200'000));
  if (!dataset.ok()) return 1;
  core::EngineOptions options;
  options.grid_size = 50;
  core::SpqEngine engine(*std::move(dataset), options);

  datagen::WorkloadSpec spec;
  spec.num_keywords = 3;
  spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
  spec.k = 10;
  spec.term_zipf = 1.0;
  spec.vocab_size = 34'716;
  spec.seed = 2017;

  std::printf("==== Extension: batched query execution (FL-like, eSPQsco) "
              "====\n\n");
  std::printf("%-8s %16s %16s %10s\n", "batch", "sequential (s)",
              "batched (s)", "speedup");

  for (std::size_t batch_size : {1u, 4u, 8u, 16u}) {
    const auto queries = datagen::MakeQueries(spec, batch_size);

    Stopwatch sequential_watch;
    for (const auto& query : queries) {
      auto result = engine.Execute(query, core::Algorithm::kESPQSco);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
    }
    const double sequential = sequential_watch.ElapsedSeconds();

    Stopwatch batch_watch;
    auto batch = engine.ExecuteBatch(queries, core::Algorithm::kESPQSco);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
      return 1;
    }
    const double batched = batch_watch.ElapsedSeconds();

    std::printf("%-8zu %16.4f %16.4f %9.2fx\n", batch_size, sequential,
                batched, sequential / batched);
  }
  std::printf("\nAnswers are identical to per-query execution "
              "(verified in tests/spq/batch_test).\n");
  return 0;
}
